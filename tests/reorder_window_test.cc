// ReorderWindow: the bounded in-order result window shared by the
// morsel-driven parallel operators (parallel scan, parallel join probe).
// Covers out-of-order completion, the window-full backpressure bound, the
// single-slot degenerate case, failure propagation, cooperative
// cancellation, and a threaded producer stress (exercised under TSan in
// CI).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "parallel/reorder_window.h"
#include "parallel/thread_pool.h"

namespace queryer {
namespace {

TEST(ReorderWindowTest, OutOfOrderCompletionEmitsInOrder) {
  ReorderWindow<int> window(4);
  std::size_t slots[4];
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(window.TryAcquire(&slots[i]));
    EXPECT_EQ(slots[i], i);
  }
  // Complete in scrambled order; payload encodes the slot.
  for (std::size_t slot : {std::size_t{3}, std::size_t{1}, std::size_t{0},
                           std::size_t{2}}) {
    window.Complete(slot, static_cast<int>(slot * 10));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(window.HasPending());
    Result<int> value = window.AwaitNext();
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, static_cast<int>(i * 10));
  }
  EXPECT_FALSE(window.HasPending());
}

TEST(ReorderWindowTest, WindowFullBackpressure) {
  ReorderWindow<int> window(2);
  std::size_t slot;
  ASSERT_TRUE(window.TryAcquire(&slot));
  ASSERT_TRUE(window.TryAcquire(&slot));
  // Two slots in flight: the window refuses a third until one is emitted —
  // even after completion, because completed-but-unemitted results still
  // occupy the buffer the bound protects.
  EXPECT_FALSE(window.TryAcquire(&slot));
  EXPECT_FALSE(window.HasCapacity());
  window.Complete(0, 1);
  window.Complete(1, 2);
  EXPECT_FALSE(window.TryAcquire(&slot));
  ASSERT_TRUE(window.AwaitNext().ok());
  EXPECT_TRUE(window.HasCapacity());
  ASSERT_TRUE(window.TryAcquire(&slot));
  EXPECT_EQ(slot, 2u);
}

TEST(ReorderWindowTest, SingleSlotDegeneratesToSerial) {
  // window_size 0 clamps to 1: fully serialized acquire/await cycles.
  ReorderWindow<std::string> window(0);
  for (int round = 0; round < 3; ++round) {
    std::size_t slot;
    ASSERT_TRUE(window.TryAcquire(&slot));
    EXPECT_EQ(slot, static_cast<std::size_t>(round));
    std::size_t blocked;
    EXPECT_FALSE(window.TryAcquire(&blocked));
    window.Complete(slot, "r" + std::to_string(round));
    Result<std::string> value = window.AwaitNext();
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, "r" + std::to_string(round));
  }
}

TEST(ReorderWindowTest, FailurePropagatesAndCancels) {
  ReorderWindow<int> window(4);
  std::size_t slot;
  ASSERT_TRUE(window.TryAcquire(&slot));
  ASSERT_TRUE(window.TryAcquire(&slot));
  window.Fail(1, "disk on fire");
  // Fail-fast: the error surfaces on the next await even though slot 0 is
  // still outstanding — the query is doomed either way.
  Result<int> value = window.AwaitNext();
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("disk on fire"), std::string::npos);
  EXPECT_TRUE(window.cancelled());
}

TEST(ReorderWindowTest, FirstErrorWins) {
  ReorderWindow<int> window(4);
  std::size_t slot;
  ASSERT_TRUE(window.TryAcquire(&slot));
  ASSERT_TRUE(window.TryAcquire(&slot));
  window.Fail(0, "first");
  window.Fail(1, "second");
  Result<int> value = window.AwaitNext();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().message(), "first");
}

TEST(ReorderWindowTest, CancelIsCooperative) {
  ReorderWindow<int> window(2);
  EXPECT_FALSE(window.cancelled());
  window.Cancel();
  EXPECT_TRUE(window.cancelled());
  // Cancellation does not tear the protocol down: a straggler worker can
  // still deposit, and the coordinator can still drain.
  std::size_t slot;
  ASSERT_TRUE(window.TryAcquire(&slot));
  window.Complete(slot, 7);
  Result<int> value = window.AwaitNext();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7);
}

// Threaded stress mirroring the operators' usage: a coordinator primes the
// window, workers on a real pool complete slots in whatever order the
// scheduler produces, each consumed slot funds one more task. In-order
// emission and the backpressure bound must hold throughout.
TEST(ReorderWindowTest, ThreadedProducersEmitInOrder) {
  constexpr std::size_t kItems = 200;
  ThreadPool pool(4);
  auto window = std::make_shared<ReorderWindow<std::size_t>>(8);

  std::size_t submitted = 0;
  auto submit_one = [&]() {
    if (submitted >= kItems) return false;
    std::size_t slot;
    if (!window->TryAcquire(&slot)) return false;
    ++submitted;
    pool.Submit([window, slot] {
      if (slot % 3 == 0) std::this_thread::yield();  // Scramble completion.
      window->Complete(slot, slot * 2);
    });
    return true;
  };

  while (submit_one()) {
  }
  for (std::size_t i = 0; i < kItems; ++i) {
    Result<std::size_t> value = window->AwaitNext();
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, i * 2);
    submit_one();
  }
  EXPECT_FALSE(window->HasPending());
}

}  // namespace
}  // namespace queryer
