// Unit tests for similarity kernels, the Link Index and
// Comparison-Execution.

#include <gtest/gtest.h>

#include "datagen/scholarly.h"
#include "matching/comparison_execution.h"
#include "matching/link_index.h"
#include "matching/similarity.h"

namespace queryer {
namespace {

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  // Classic test vector: JARO("martha","marhta") = 0.944444...
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  // JARO("dixon","dicksonx") = 0.766667.
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoost) {
  // JW("martha","marhta") = 0.961111 with standard 0.1 scaling.
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  // JW("dixon","dicksonx") = 0.813333.
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.813333, 1e-5);
  // Boost never lowers the score.
  EXPECT_GE(JaroWinklerSimilarity("prefix", "pretext"),
            JaroSimilarity("prefix", "pretext"));
}

TEST(JaroTest, Symmetric) {
  const char* samples[] = {"entity", "entty", "resolution", "resolutoin"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      EXPECT_DOUBLE_EQ(JaroSimilarity(a, b), JaroSimilarity(b, a));
      EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, b), JaroWinklerSimilarity(b, a));
    }
  }
}

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_NEAR(NormalizedLevenshtein("kitten", "sitting"), 1.0 - 3.0 / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 1.0);
}

TEST(JaccardTest, TokenSets) {
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("big data", "big data"), 1.0);
  // {"big","data"} vs {"big","query"}: 1/3.
  EXPECT_NEAR(JaccardTokenSimilarity("big data", "big query"), 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("", ""), 1.0);
  // Repeated tokens count once.
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("data data data", "data"), 1.0);
}

TEST(CosineTest, TokenMultisets) {
  EXPECT_NEAR(CosineTokenSimilarity("big data", "big data"), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity("abc", "xyz"), 0.0);
  double sim = CosineTokenSimilarity("entity resolution", "entity matching");
  EXPECT_GT(sim, 0.4);
  EXPECT_LT(sim, 0.6);
}

TEST(ComputeSimilarityTest, Dispatch) {
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityFunction::kJaro, "abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityFunction::kJaroWinkler, "abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityFunction::kNormalizedLevenshtein, "a", "a"),
      1.0);
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityFunction::kJaccardTokens, "a b", "a b"), 1.0);
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityFunction::kCosineTokens, "a b", "a b"), 1.0);
}

MatchingConfig TestConfig() {
  MatchingConfig config;
  config.excluded_attributes = {0};  // The e_id column of the test tables.
  return config;
}

TEST(ValueSimilarityTest, ExactAndEmpty) {
  MatchingConfig config;
  EXPECT_DOUBLE_EQ(ValueSimilarity("edbt", "edbt", config), 1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity("", "", config), 1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity("x", "", config), 0.0);
}

TEST(ValueSimilarityTest, NumericValuesCompareByEquality) {
  MatchingConfig config;
  EXPECT_DOUBLE_EQ(ValueSimilarity("2008", "2008", config), 1.0);
  // "2008" and "2009" are one edit apart but are different years.
  EXPECT_DOUBLE_EQ(ValueSimilarity("2008", "2009", config), 0.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity("7", "7.0", config), 1.0);
}

TEST(ValueSimilarityTest, AbbreviationsMatch) {
  MatchingConfig config;
  // "Collective E.R." vs "Collective Entity Resolution": e->entity,
  // r->resolution via the single-letter rule.
  EXPECT_DOUBLE_EQ(ValueSimilarity("collective e.r.",
                                   "collective entity resolution", config),
                   1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity("j. davids", "jane davids", config), 1.0);
}

TEST(ValueSimilarityTest, TyposMatchViaKernel) {
  MatchingConfig config;
  // One transposition: "entity" vs "enitty" clears the 0.88 JW bar.
  EXPECT_DOUBLE_EQ(ValueSimilarity("entity resolution",
                                   "enitty resolution", config),
                   1.0);
  // Disjoint tokens share nothing.
  EXPECT_DOUBLE_EQ(ValueSimilarity("alpha beta", "gamma delta", config), 0.0);
}

TEST(ValueSimilarityTest, TokenSwapsAreFree) {
  MatchingConfig config;
  EXPECT_DOUBLE_EQ(
      ValueSimilarity("davidson lisa", "lisa davidson", config), 1.0);
}

TEST(ProfileSimilarityTest, SkipsMissingValues) {
  std::vector<std::string> a = {"id1", "Collective Entity Resolution", "",
                                "EDBT"};
  std::vector<std::string> b = {"id2", "Collective Entity Resolution",
                                "Allan Blake", "EDBT"};
  // Attribute 2 is skipped (empty on one side); the rest are identical.
  EXPECT_DOUBLE_EQ(ProfileSimilarity(a, b, TestConfig()), 1.0);
}

TEST(ProfileSimilarityTest, CaseInsensitive) {
  std::vector<std::string> a = {"x", "EDBT"};
  std::vector<std::string> b = {"x", "edbt"};
  EXPECT_DOUBLE_EQ(ProfileSimilarity(a, b, TestConfig()), 1.0);
}

TEST(ProfileSimilarityTest, AllMissingIsZero) {
  std::vector<std::string> a = {"x", "", ""};
  std::vector<std::string> b = {"x", "", "y"};
  EXPECT_DOUBLE_EQ(ProfileSimilarity(a, b, TestConfig()), 0.0);
}

TEST(ProfileSimilarityTest, CrossAttributeContentViaCosine) {
  // V1 vs V4 of the motivating example: one record's title is the other's
  // description; the aligned signal misses it, the cosine signal does not.
  datagen::GeneratedDataset v = datagen::MakeMotivatingVenues();
  AttributeWeights weights = AttributeWeights::Compute(*v.table);
  double sim = ProfileSimilarity(*v.table, 0, 3, TestConfig(), &weights);
  EXPECT_GE(sim, 0.65);
}

TEST(ProfileSimilarityTest, SeparatesMotivatingExample) {
  // Property check over both example tables: every true duplicate pair must
  // clear the default threshold, every non-duplicate must stay below it —
  // under the table's attribute-distinctiveness weights, as the engine
  // evaluates pairs.
  MatchingConfig config = TestConfig();
  for (auto dataset : {datagen::MakeMotivatingPublications(),
                       datagen::MakeMotivatingVenues()}) {
    const Table& t = *dataset.table;
    AttributeWeights weights = AttributeWeights::Compute(t);
    for (EntityId a = 0; a < t.num_rows(); ++a) {
      for (EntityId b = a + 1; b < t.num_rows(); ++b) {
        double sim = ProfileSimilarity(t, a, b, config, &weights);
        if (dataset.ground_truth.AreDuplicates(a, b)) {
          EXPECT_GE(sim, config.threshold)
              << t.name() << " rows " << a << "," << b;
        } else {
          EXPECT_LT(sim, config.threshold)
              << t.name() << " rows " << a << "," << b;
        }
      }
    }
  }
}

TEST(AttributeWeightsTest, DistinctivenessRatios) {
  TableBuilder builder("t", Schema({"id", "name", "country"}));
  ASSERT_TRUE(builder.AddRow({"0", "alpha", "greece"}).ok());
  ASSERT_TRUE(builder.AddRow({"1", "beta", "greece"}).ok());
  ASSERT_TRUE(builder.AddRow({"2", "gamma", "italy"}).ok());
  ASSERT_TRUE(builder.AddRow({"3", "delta", ""}).ok());
  TablePtr table = builder.Build();
  AttributeWeights weights = AttributeWeights::Compute(*table);
  EXPECT_DOUBLE_EQ(weights.weight(0), 1.0);        // All distinct.
  EXPECT_DOUBLE_EQ(weights.weight(1), 1.0);        // All distinct.
  EXPECT_DOUBLE_EQ(weights.weight(2), 2.0 / 3.0);  // 2 distinct / 3 non-empty.
  // Out-of-range attributes default to uniform.
  EXPECT_DOUBLE_EQ(weights.weight(9), 1.0);
}

TEST(AttributeWeightsTest, WeakAttributeAgreementIsNotEnough) {
  // Two organisations sharing only a code-list country must not match,
  // even though the country attribute agrees exactly.
  TableBuilder builder("orgs", Schema({"id", "name", "country"}));
  for (int i = 0; i < 40; ++i) {
    // Clearly distinct names (string distance between them is large).
    std::string name(6, static_cast<char>('a' + i % 26));
    name += " institute";
    ASSERT_TRUE(builder
                    .AddRow({std::to_string(i), name,
                             i % 2 == 0 ? "greece" : "italy"})
                    .ok());
  }
  TablePtr table = builder.Build();
  AttributeWeights weights = AttributeWeights::Compute(*table);
  MatchingConfig config = TestConfig();
  double sim = ProfileSimilarity(*table, 0, 2, config, &weights);
  EXPECT_LT(sim, config.threshold);
}

TEST(LinkIndexTest, SingletonsInitially) {
  LinkIndex li(5);
  EXPECT_EQ(li.num_entities(), 5u);
  EXPECT_FALSE(li.AreLinked(0, 1));
  EXPECT_EQ(li.Cluster(3), (std::vector<EntityId>{3}));
  EXPECT_TRUE(li.Duplicates(3).empty());
  EXPECT_EQ(li.num_links(), 0u);
}

TEST(LinkIndexTest, TransitiveClosure) {
  LinkIndex li(6);
  li.AddLink(0, 1);
  li.AddLink(1, 2);
  EXPECT_TRUE(li.AreLinked(0, 2));
  EXPECT_EQ(li.Cluster(1), (std::vector<EntityId>{0, 1, 2}));
  EXPECT_EQ(li.Duplicates(0), (std::vector<EntityId>{1, 2}));
  EXPECT_EQ(li.Representative(0), li.Representative(2));
  EXPECT_NE(li.Representative(0), li.Representative(3));
  EXPECT_EQ(li.num_links(), 2u);
}

TEST(LinkIndexTest, RedundantLinkIgnored) {
  LinkIndex li(4);
  li.AddLink(0, 1);
  li.AddLink(1, 0);
  li.AddLink(0, 1);
  EXPECT_EQ(li.num_links(), 1u);
  EXPECT_EQ(li.Cluster(0).size(), 2u);
}

TEST(LinkIndexTest, MergeTwoClusters) {
  LinkIndex li(6);
  li.AddLink(0, 1);
  li.AddLink(2, 3);
  EXPECT_FALSE(li.AreLinked(0, 3));
  li.AddLink(1, 2);
  EXPECT_TRUE(li.AreLinked(0, 3));
  EXPECT_EQ(li.Cluster(3), (std::vector<EntityId>{0, 1, 2, 3}));
}

TEST(LinkIndexTest, ResolvedMarks) {
  LinkIndex li(3);
  EXPECT_FALSE(li.IsResolved(1));
  li.MarkResolved(1);
  li.MarkResolved(1);  // Idempotent.
  EXPECT_TRUE(li.IsResolved(1));
  EXPECT_EQ(li.num_resolved(), 1u);
}

TEST(LinkIndexTest, ResetClearsEverything) {
  LinkIndex li(4);
  li.AddLink(0, 1);
  li.MarkResolved(0);
  li.Reset();
  EXPECT_FALSE(li.AreLinked(0, 1));
  EXPECT_FALSE(li.IsResolved(0));
  EXPECT_EQ(li.num_resolved(), 0u);
  EXPECT_EQ(li.num_links(), 0u);
  EXPECT_EQ(li.Cluster(0), (std::vector<EntityId>{0}));
}

TEST(ComparisonExecutionTest, FindsMotivatingDuplicates) {
  datagen::GeneratedDataset p = datagen::MakeMotivatingPublications();
  LinkIndex li(p.table->num_rows());
  // Compare P6 vs P7 vs P8 (true duplicates) and P1 vs P6 (not duplicates).
  std::vector<Comparison> comparisons = {{5, 6}, {5, 7}, {0, 5}};
  MatchingConfig config = TestConfig();
  ComparisonExecStats stats =
      *ExecuteComparisons(*p.table, comparisons, config, &li);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_TRUE(li.AreLinked(5, 6));
  EXPECT_TRUE(li.AreLinked(5, 7));
  EXPECT_TRUE(li.AreLinked(6, 7));  // Transitive.
  EXPECT_FALSE(li.AreLinked(0, 5));
  EXPECT_EQ(stats.matches_found, 2u);
}

TEST(ComparisonExecutionTest, SkipsAlreadyLinkedPairs) {
  datagen::GeneratedDataset p = datagen::MakeMotivatingPublications();
  LinkIndex li(p.table->num_rows());
  li.AddLink(5, 6);
  std::vector<Comparison> comparisons = {{5, 6}};
  ComparisonExecStats stats =
      *ExecuteComparisons(*p.table, comparisons, TestConfig(), &li);
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(stats.skipped_linked, 1u);
}

}  // namespace
}  // namespace queryer
