// Integration and property tests: the DQ Correctness contract (paper
// Sec. 5) — for any query, the Dedupe Query over dirty data must return the
// same grouped entities as the Batch Approach — plus cross-mode agreement
// and Link-Index idempotence, exercised over generated datasets and a
// parameterized query workload.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/batch_er.h"
#include "datagen/orgs.h"
#include "datagen/people.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"

namespace queryer {
namespace {

std::vector<std::vector<std::string>> Canonical(
    std::vector<std::vector<std::string>> rows) {
  // Variant order inside a fused value can differ between plans that visit
  // entities in different orders; canonicalize each cell by sorting its
  // variants.
  for (auto& row : rows) {
    for (auto& cell : row) {
      std::vector<std::string> parts;
      std::size_t start = 0;
      const std::string separator = " | ";
      while (true) {
        std::size_t pos = cell.find(separator, start);
        if (pos == std::string::npos) {
          parts.push_back(cell.substr(start));
          break;
        }
        parts.push_back(cell.substr(start, pos - start));
        start = pos + separator.size();
      }
      std::sort(parts.begin(), parts.end());
      cell.clear();
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) cell += separator;
        cell += parts[i];
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Exclude the e_id column from blocking and matching, as the engine does.
BlockingOptions TestBlocking() {
  BlockingOptions options;
  options.excluded_attributes = {0};
  return options;
}
MatchingConfig TestMatching() {
  MatchingConfig config;
  config.excluded_attributes = {0};
  return config;
}

EngineOptions TestOptions() {
  EngineOptions options;
  // Pruning-free meta-blocking: BP/BF/EP decisions are relative to their
  // input collection, so the full-table run (BA) and the query-restricted
  // run (DQ) can keep slightly different comparison sets — exactly the
  // approximation the paper's PC metric quantifies (Table 8). With pruning
  // off, DQ's comparisons are a strict subset of BA's and the DQ
  // Correctness contract can be asserted as exact set equality.
  options.meta_blocking = MetaBlockingConfig::None();
  return options;
}

// Builds a fresh engine over shared tables.
QueryEngine MakeEngine(const std::vector<TablePtr>& tables,
                       ExecutionMode mode) {
  QueryEngine engine(TestOptions());
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine.RegisterTable(table).ok());
  }
  engine.set_mode(mode);
  return engine;
}

struct WorkloadCase {
  std::string name;
  std::string sql;
};

class DqEqualsBaTest : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  // The exact-equality contract requires single-duplicate clusters: in a
  // cluster {orig, dupA, dupB} the Batch Approach may link orig-dupB (a
  // pair between two non-query entities) even when the query-restricted
  // run could not — the transitive-bridging caveat. With one duplicate per
  // original, every link-determining pair has a query endpoint and DQ ≡ BA
  // holds exactly. The paper's full parameters (3 duplicates per record)
  // are exercised by the approximate-equality test below.
  static void SetUpTestSuite() {
    if (tables_ != nullptr) return;
    tables_ = new std::vector<TablePtr>();
    auto dsd = datagen::MakeDsdLike(1200, 101);
    auto oao_options = datagen::OrgOptions();
    oao_options.duplication.max_duplicates_per_record = 1;
    auto oao = datagen::MakeOrganisations(250, 102, oao_options);
    auto pool = datagen::OrganisationNamePool(oao);
    datagen::PeopleOptions ppl_options;
    ppl_options.duplication.max_duplicates_per_record = 1;
    auto ppl = datagen::MakePeople(800, pool, 103, ppl_options);
    auto oap_options = datagen::ProjectOptions();
    oap_options.duplication.max_duplicates_per_record = 1;
    auto oap = datagen::MakeProjects(600, pool, 104, oap_options);
    tables_->push_back(dsd.table);
    tables_->push_back(oao.table);
    tables_->push_back(ppl.table);
    tables_->push_back(oap.table);
  }

  static std::vector<TablePtr>* tables_;
};

std::vector<TablePtr>* DqEqualsBaTest::tables_ = nullptr;

TEST_P(DqEqualsBaTest, AllModesMatchBatch) {
  const WorkloadCase& test_case = GetParam();

  QueryEngine batch = MakeEngine(*tables_, ExecutionMode::kBatch);
  auto expected = batch.Execute(test_case.sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto expected_rows = Canonical(expected->rows);

  for (ExecutionMode mode : {ExecutionMode::kNaive, ExecutionMode::kNaive2,
                             ExecutionMode::kAdvanced}) {
    QueryEngine engine = MakeEngine(*tables_, mode);
    auto result = engine.Execute(test_case.sql);
    ASSERT_TRUE(result.ok())
        << ExecutionModeToString(mode) << ": " << result.status().ToString();
    EXPECT_EQ(Canonical(result->rows), expected_rows)
        << test_case.name << " under " << ExecutionModeToString(mode);
    // And the analysis-aware path never does more comparisons than batch.
    EXPECT_LE(result->stats.comparisons_executed,
              expected->stats.comparisons_executed)
        << test_case.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workload, DqEqualsBaTest,
    ::testing::Values(
        WorkloadCase{"SpEquality",
                     "SELECT DEDUP title, venue FROM dsd WHERE venue = 'EDBT'"},
        WorkloadCase{"SpLike",
                     "SELECT DEDUP title FROM dsd WHERE title LIKE '%entity%'"},
        WorkloadCase{"SpDisjunction",
                     "SELECT DEDUP title FROM dsd WHERE venue = 'EDBT' OR "
                     "venue = 'SIGMOD'"},
        WorkloadCase{"SpRange",
                     "SELECT DEDUP title, year FROM dsd WHERE year BETWEEN "
                     "2010 AND 2012"},
        WorkloadCase{"SpMod",
                     "SELECT DEDUP title FROM dsd WHERE MOD(id, 50) < 1"},
        WorkloadCase{"SpConjunction",
                     "SELECT DEDUP title FROM dsd WHERE venue = 'EDBT' AND "
                     "year > 2005"},
        WorkloadCase{"SpIn",
                     "SELECT DEDUP title FROM dsd WHERE venue IN ('EDBT', "
                     "'VLDB', 'CIDR')"},
        WorkloadCase{"SpjPeopleOrgs",
                     "SELECT DEDUP ppl.surname, oao.country FROM ppl INNER "
                     "JOIN oao ON ppl.org = oao.name WHERE MOD(ppl.id, 20) "
                     "< 1"},
        WorkloadCase{"SpjProjectsOrgs",
                     "SELECT DEDUP oap.title, oao.name FROM oap INNER JOIN "
                     "oao ON oap.org = oao.name WHERE MOD(oap.id, 10) < 1"},
        WorkloadCase{"SpjSelectiveRight",
                     "SELECT DEDUP oap.title, oao.country FROM oap INNER "
                     "JOIN oao ON oap.org = oao.name WHERE oao.country = "
                     "'greece'"}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return info.param.name;
    });

// Under the paper's full parameters (multi-duplicate clusters, ALL
// meta-blocking) DQ and BA agree approximately — the recall trade-off the
// paper's PC metric quantifies. Assert high but not perfect agreement.
TEST(DqApproxEqualsBaTest, PaperParametersHighAgreement) {
  datagen::PeopleOptions options;  // Paper defaults: 40% dups, <= 3 each.
  auto ppl = datagen::MakePeople(1500, {}, 105, options);

  EngineOptions engine_options;  // ALL meta-blocking, engine defaults.
  QueryEngine batch(engine_options);
  ASSERT_TRUE(batch.RegisterTable(ppl.table).ok());
  batch.set_mode(ExecutionMode::kBatch);
  const char* sql =
      "SELECT DEDUP surname, suburb FROM ppl WHERE MOD(id, 10) < 2";
  auto expected = batch.Execute(sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  QueryEngine engine(engine_options);
  ASSERT_TRUE(engine.RegisterTable(ppl.table).ok());
  engine.set_mode(ExecutionMode::kAdvanced);
  auto result = engine.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto ba_rows = Canonical(expected->rows);
  auto dq_rows = Canonical(result->rows);
  std::vector<std::vector<std::string>> common;
  std::set_intersection(ba_rows.begin(), ba_rows.end(), dq_rows.begin(),
                        dq_rows.end(), std::back_inserter(common));
  double jaccard =
      static_cast<double>(common.size()) /
      static_cast<double>(ba_rows.size() + dq_rows.size() - common.size());
  EXPECT_GT(jaccard, 0.9) << "BA rows " << ba_rows.size() << ", DQ rows "
                          << dq_rows.size() << ", common " << common.size();
  // And the analysis-aware run is much cheaper.
  EXPECT_LT(result->stats.comparisons_executed,
            expected->stats.comparisons_executed / 2);
}

TEST(BatchErTest, ResolvesEverythingAndIsIdempotent) {
  auto dsd = datagen::MakeDsdLike(600, 111);
  TableRuntime runtime(dsd.table, TestBlocking(),
                       MetaBlockingConfig::BpBf(), TestMatching());
  BatchErStats first = *BatchDeduplicate(&runtime);
  EXPECT_EQ(runtime.link_index().num_resolved(), dsd.table->num_rows());
  EXPECT_GT(first.comparisons_executed, 0u);
  // Recall of batch ER against ground truth (pairwise-safe corruption):
  std::size_t found = 0;
  std::size_t total = 0;
  for (EntityId e = 0; e < dsd.table->num_rows(); ++e) {
    for (EntityId other : dsd.ground_truth.ClusterMembers(e)) {
      if (other <= e) continue;
      ++total;
      if (runtime.link_index().AreLinked(e, other)) ++found;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.8);

  // Second run finds all matching pairs already linked.
  BatchErStats second = *BatchDeduplicate(&runtime);
  EXPECT_EQ(second.matches_found, 0u);
  EXPECT_LT(second.comparisons_executed, first.comparisons_executed);
}

TEST(LinkIndexReuseTest, OverlappingQueriesMonotonicallyCheaper) {
  auto dsd = datagen::MakeDsdLike(1500, 121);
  QueryEngine engine(TestOptions());
  ASSERT_TRUE(engine.RegisterTable(dsd.table).ok());
  // Growing range queries (the Fig. 11 pattern).
  std::vector<std::string> queries = {
      "SELECT DEDUP title FROM dsd WHERE year BETWEEN 2000 AND 2006",
      "SELECT DEDUP title FROM dsd WHERE year BETWEEN 2000 AND 2012",
      "SELECT DEDUP title FROM dsd WHERE year BETWEEN 2000 AND 2018",
  };
  std::size_t previous_fresh = SIZE_MAX;
  for (const std::string& sql : queries) {
    auto result = engine.Execute(sql);
    ASSERT_TRUE(result.ok());
    std::size_t fresh =
        result->stats.query_entities - result->stats.entities_already_resolved;
    // Each query only pays for entities beyond the previous coverage; with
    // growing overlap the already-resolved share must grow.
    if (previous_fresh != SIZE_MAX) {
      EXPECT_LT(fresh, result->stats.query_entities);
    }
    previous_fresh = fresh;
  }
}

TEST(SelectivityMonotonicityTest, ComparisonsGrowWithSelectivity) {
  auto dsd = datagen::MakeDsdLike(2000, 131);
  std::vector<std::size_t> comparisons;
  for (int selectivity : {5, 20, 45, 80}) {
    QueryEngine engine(TestOptions());
    ASSERT_TRUE(engine.RegisterTable(dsd.table).ok());
    auto result = engine.Execute(
        "SELECT DEDUP title FROM dsd WHERE MOD(id, 100) < " +
        std::to_string(selectivity));
    ASSERT_TRUE(result.ok());
    comparisons.push_back(result->stats.comparisons_executed);
  }
  EXPECT_TRUE(std::is_sorted(comparisons.begin(), comparisons.end()))
      << comparisons[0] << " " << comparisons[1] << " " << comparisons[2]
      << " " << comparisons[3];
}

TEST(MultiJoinTest, ThreeTableDedupQueryRuns) {
  auto oao = datagen::MakeOrganisations(150, 141);
  auto pool = datagen::OrganisationNamePool(oao);
  auto ppl = datagen::MakePeople(400, pool, 142);
  auto oap = datagen::MakeProjects(300, pool, 143);

  for (ExecutionMode mode : {ExecutionMode::kBatch, ExecutionMode::kNaive2,
                             ExecutionMode::kAdvanced}) {
    QueryEngine engine =
        MakeEngine({oao.table, ppl.table, oap.table}, mode);
    auto result = engine.Execute(
        "SELECT DEDUP ppl.surname, oao.name, oap.title FROM ppl "
        "INNER JOIN oao ON ppl.org = oao.name "
        "INNER JOIN oap ON oap.org = oao.name "
        "WHERE MOD(ppl.id, 40) < 1");
    ASSERT_TRUE(result.ok())
        << ExecutionModeToString(mode) << ": " << result.status().ToString();
    EXPECT_GT(result->rows.size(), 0u) << ExecutionModeToString(mode);
  }
}

}  // namespace
}  // namespace queryer
