// Observability subsystem tests: the metrics registry's counters must be
// exact under concurrent hammering (relaxed atomics lose no increments),
// session traces must be well-formed Chrome trace-event JSON with the spans
// the engine promises, EXPLAIN ANALYZE must report exactly the row counts
// Execute materializes at every num_threads x batch_size point, and
// tracing-off must record nothing at all (the zero-overhead contract,
// asserted through TraceSink::TotalEventsRecorded).

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace queryer {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader, enough to VALIDATE (not interpret)
// a trace document: objects, arrays, strings with escapes, numbers, bools,
// null. Returns false on any syntax error.
// ---------------------------------------------------------------------------
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::unique_ptr<QueryEngine> MakeEngine(
    const std::vector<TablePtr>& tables, std::size_t batch_size = 0,
    std::size_t num_threads = 1, std::shared_ptr<TraceSink> trace = nullptr) {
  EngineOptions options;
  if (batch_size != 0) options.batch_size = batch_size;
  options.num_threads = num_threads;
  options.trace_sink = std::move(trace);
  auto engine = std::make_unique<QueryEngine>(options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine->RegisterTable(table).ok());
  }
  return engine;
}

// The root operator's emitted row count from an annotated plan: the first
// line reads "Label  (rows=N batches=M self=...)".
std::size_t RootRows(const std::string& annotated_plan) {
  std::size_t line_end = annotated_plan.find('\n');
  std::string first = annotated_plan.substr(0, line_end);
  std::size_t at = first.find("rows=");
  EXPECT_NE(at, std::string::npos) << first;
  if (at == std::string::npos) return SIZE_MAX;
  return static_cast<std::size_t>(
      std::strtoull(first.c_str() + at + 5, nullptr, 10));
}

class ObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // > 2 morsels (kMinMorselRows = 1024) so multi-thread engines really
    // run parallel morsel scans and emit per-morsel trace instants.
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(2600, 4242));
    auto universe = datagen::MakeVenueUniverse(300, 7);
    datagen::OagpOptions oagp_options;
    oagp_options.venue_join_fraction = 0.5;
    oagp_ = new datagen::GeneratedDataset(
        datagen::MakeOagpLike(3000, universe, 11, oagp_options));
    oagv_ = new datagen::GeneratedDataset(
        datagen::MakeOagvLike(800, universe, 13));
  }
  static void TearDownTestSuite() {
    delete dsd_;
    delete oagp_;
    delete oagv_;
    dsd_ = nullptr;
    oagp_ = nullptr;
    oagv_ = nullptr;
  }

  static datagen::GeneratedDataset* dsd_;
  static datagen::GeneratedDataset* oagp_;
  static datagen::GeneratedDataset* oagv_;
};

datagen::GeneratedDataset* ObsTest::dsd_ = nullptr;
datagen::GeneratedDataset* ObsTest::oagp_ = nullptr;
datagen::GeneratedDataset* ObsTest::oagv_ = nullptr;

// Relaxed atomic counters must still be EXACT: N threads of M increments
// land N*M, no lost updates.
TEST(MetricsTest, ConcurrentCounterTotalsAreExact) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("obs_test_hammer_total");
  LatencyHistogram* histogram =
      MetricsRegistry::Global().GetHistogram("obs_test_hammer_seconds");
  const std::uint64_t before_count = counter->Value();
  const HistogramSnapshot before = histogram->Snapshot();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(1e-5);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter->Value() - before_count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot delta = histogram->Snapshot().Since(before);
  EXPECT_EQ(delta.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(delta.sum_seconds, kThreads * kPerThread * 1e-5,
              kThreads * kPerThread * 1e-8);
}

// Same name + kind returns the same instrument; exports carry it in both
// formats, and the Prometheus text has the cumulative +Inf bucket.
TEST(MetricsTest, RegistryLookupAndExportFormats) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("obs_test_export_total");
  EXPECT_EQ(counter, registry.GetCounter("obs_test_export_total"));
  counter->Increment(3);
  registry.GetHistogram("obs_test_export_seconds")->Observe(0.001);

  const std::string json = registry.ExportJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"obs_test_export_total\""), std::string::npos);

  const std::string prom = registry.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE obs_test_export_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE obs_test_export_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("obs_test_export_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

// Quantile interpolation sanity: the median of a uniform spread lands
// inside the right bucket's bounds.
TEST(MetricsTest, HistogramQuantilesAreOrderedAndBounded) {
  LatencyHistogram* histogram =
      MetricsRegistry::Global().GetHistogram("obs_test_quantile_seconds");
  const HistogramSnapshot before = histogram->Snapshot();
  for (int i = 0; i < 1000; ++i) histogram->Observe(1e-4);  // 100 µs.
  const HistogramSnapshot delta = histogram->Snapshot().Since(before);
  const double p50 = delta.Quantile(0.50);
  const double p99 = delta.Quantile(0.99);
  EXPECT_LE(p50, p99);
  // 100 µs falls in the (64 µs, 128 µs] power-of-two bucket; every
  // quantile of a single-bucket distribution stays inside that bucket.
  EXPECT_GE(p50, 64e-6);
  EXPECT_LE(p50, 128e-6);
  EXPECT_GE(delta.Quantile(0.0), 64e-6);
  EXPECT_LE(delta.Quantile(1.0), 128e-6);
}

// A traced DEDUP session produces a parseable Chrome trace document with
// the promised spans: plan, open, ER stages, the operator tree, emit.
TEST_F(ObsTest, TraceJsonIsWellFormedAndHasSessionSpans) {
  auto trace = std::make_shared<TraceSink>();
  auto engine = MakeEngine({dsd_->table}, 0, 1, trace);
  auto result =
      engine->Execute("SELECT DEDUP title, venue FROM dsd "
                      "WHERE MOD(id, 100) < 10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(trace->event_count(), 0u);
  const std::string json = trace->ToJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json.substr(0, 500);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* span : {"\"plan\"", "\"open\"", "\"blocking\"",
                           "\"block-join\"", "\"resolution\"", "\"emit\"",
                           "Deduplicate", "TableScan"}) {
    EXPECT_NE(json.find(span), std::string::npos) << "missing span " << span;
  }
}

// Parallel morsel scans emit per-morsel instant events tagged with the
// worker thread that materialized them.
TEST_F(ObsTest, ParallelScanEmitsMorselInstants) {
  auto trace = std::make_shared<TraceSink>();
  auto engine = MakeEngine({dsd_->table}, 0, 4, trace);
  auto result = engine->Execute("SELECT id, title FROM dsd");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string json = trace->ToJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid());
  // 2600 rows / 1024-row morsels = 3 scan morsels.
  EXPECT_NE(json.find("\"scan-morsel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

// EXPLAIN ANALYZE executes the query: its root-operator row count must be
// bit-identical to what Execute materializes, at every threads x batch_size
// point, for scan/join/DEDUP plans alike.
TEST_F(ObsTest, ExplainAnalyzeRowCountsMatchExecute) {
  struct Case {
    std::vector<TablePtr> tables;
    std::string sql;
  };
  const Case cases[] = {
      {{dsd_->table}, "SELECT id, title FROM dsd WHERE MOD(id, 100) < 23"},
      {{oagp_->table, oagv_->table},
       "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title"},
      {{dsd_->table},
       "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10"},
  };
  for (const Case& c : cases) {
    for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t batch_size : {std::size_t{1}, std::size_t{1024}}) {
        auto execute_engine = MakeEngine(c.tables, batch_size, num_threads);
        auto result = execute_engine->Execute(c.sql);
        ASSERT_TRUE(result.ok()) << result.status().ToString();

        // A fresh engine for the analyze run, so a DEDUP query resolves
        // from an equally cold Link Index.
        auto analyze_engine = MakeEngine(c.tables, batch_size, num_threads);
        auto annotated = analyze_engine->Explain("EXPLAIN ANALYZE " + c.sql);
        ASSERT_TRUE(annotated.ok()) << annotated.status().ToString();
        EXPECT_EQ(RootRows(*annotated), result->rows.size())
            << c.sql << " threads=" << num_threads << " batch=" << batch_size
            << "\n" << *annotated;
        // The ER-stage breakdown rides along below the tree.
        EXPECT_NE(annotated->find("breakdown["), std::string::npos);
      }
    }
  }
}

// The Execute presentation of EXPLAIN / EXPLAIN ANALYZE: a single
// "QUERY PLAN" column, one line per row; plain EXPLAIN runs nothing.
TEST_F(ObsTest, ExecuteExplainFormsReturnPlanRows) {
  auto engine = MakeEngine({dsd_->table});
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";

  auto plain = engine->Execute("EXPLAIN " + sql);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_EQ(plain->columns, std::vector<std::string>{"QUERY PLAN"});
  EXPECT_FALSE(plain->rows.empty());
  // Nothing executed: no comparisons ran, no entities were resolved.
  EXPECT_EQ(plain->stats.comparisons_executed, 0u);
  EXPECT_EQ(plain->stats.query_entities, 0u);

  auto analyzed = engine->Execute("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_EQ(analyzed->columns, std::vector<std::string>{"QUERY PLAN"});
  ASSERT_FALSE(analyzed->rows.empty());
  EXPECT_NE(analyzed->rows.front().front().find("rows="), std::string::npos);
  // This one DID execute.
  EXPECT_GT(analyzed->stats.query_entities, 0u);
}

// Cursor sessions keep their profile past Close, and the profile's counts
// agree with what the client actually pulled.
TEST_F(ObsTest, CursorProfileSurvivesCloseAndCountsRows) {
  auto engine = MakeEngine({dsd_->table}, 128);
  auto cursor = engine->ExecuteStream("SELECT id, title FROM dsd");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::size_t rows = 0;
  RowBatch batch((*cursor)->batch_size());
  while (true) {
    auto has = (*cursor)->Next(&batch);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    rows += batch.size();
  }
  (*cursor)->Close();
  const OperatorProfile* root = (*cursor)->profile().root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->rows, rows);
  EXPECT_EQ(root->opens, 1u);
  EXPECT_NE((*cursor)->AnnotatedPlan().find("rows="), std::string::npos);
}

// The zero-overhead-when-off contract: with no sink attached, running a
// full DEDUP query records NO trace events anywhere in the process.
TEST_F(ObsTest, TracingOffRecordsNoEvents) {
  auto engine = MakeEngine({dsd_->table});
  const std::uint64_t before = TraceSink::TotalEventsRecorded();
  auto result =
      engine->Execute("SELECT DEDUP title, venue FROM dsd "
                      "WHERE MOD(id, 100) < 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(TraceSink::TotalEventsRecorded(), before);
}

// Failure-path metrics are EXACT totals, not approximations: every actual
// failpoint trigger lands in its per-site counter, every shed session in
// queryer_sessions_shed_total, and every cancel/deadline pre-emption of ER
// resolution in queryer_sessions_cancelled_in_resolution_total. Each leg
// below sets up a deterministic single increment and asserts the delta.
TEST_F(ObsTest, FailureMetricsCountExactTotals) {
  const EngineMetrics& metrics = GlobalEngineMetrics();

  // Leg 1: a per-site trigger counter counts exact fires. The injected
  // error is sticky at the cursor, so Execute's drain evaluates the site
  // exactly once.
  {
    Counter* triggered = MetricsRegistry::Global().GetCounter(
        "queryer_failpoint_triggered_total_cursor_next");
    const std::uint64_t before = triggered->Value();
    const std::uint64_t failed_before = metrics.queries_failed->Value();
    ASSERT_TRUE(Failpoints::Global().Arm("cursor.next", "error").ok());
    auto engine = MakeEngine({dsd_->table});
    auto result = engine->Execute("SELECT id FROM dsd");
    Failpoints::Global().Disarm("cursor.next");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(triggered->Value(), before + 1);
    EXPECT_EQ(metrics.queries_failed->Value(), failed_before + 1);
  }

  // Leg 2: bounded admission sheds exactly the refused session. A holder
  // cursor pins the engine's single slot; the timed-out Execute is the
  // one and only shed.
  {
    const std::uint64_t shed_before = metrics.sessions_shed->Value();
    auto engine = MakeEngine({dsd_->table});
    engine->set_admission_timeout(0.05);
    auto holder = engine->ExecuteStream("SELECT id FROM dsd");
    ASSERT_TRUE(holder.ok()) << holder.status().ToString();
    auto shed = engine->Execute("SELECT id FROM dsd");
    ASSERT_FALSE(shed.ok());
    EXPECT_TRUE(shed.status().IsResourceExhausted())
        << shed.status().ToString();
    (*holder)->Close();
    EXPECT_EQ(metrics.sessions_shed->Value(), shed_before + 1);
  }

  // Leg 3: a deadline pre-empting ER resolution counts once in
  // cancelled_in_resolution (and once in queries_deadline_exceeded). A
  // delay failpoint inside the comparison chunk pushes the session past
  // its deadline deterministically — no cancelling thread needed.
  {
    const std::uint64_t preempted_before =
        metrics.cancelled_in_resolution->Value();
    const std::uint64_t deadline_before =
        metrics.queries_deadline_exceeded->Value();
    ASSERT_TRUE(Failpoints::Global()
                    .Arm("er.comparison_chunk", "delay(400)")
                    .ok());
    auto engine = MakeEngine({dsd_->table});
    engine->set_default_query_deadline(0.2);
    auto result = engine->Execute(
        "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10");
    Failpoints::Global().Disarm("er.comparison_chunk");
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << result.status().ToString();
    EXPECT_EQ(metrics.cancelled_in_resolution->Value(), preempted_before + 1);
    EXPECT_EQ(metrics.queries_deadline_exceeded->Value(), deadline_before + 1);
  }
}

// The QUERYER_CHECK satellite: failure messages print file paths relative
// to the source tree (one parent directory), not absolute build paths.
TEST(LoggingTest, CheckFileNameKeepsOneParentDirectory) {
  EXPECT_STREQ(internal::CheckFileName("/root/repo/src/exec/operator.cc"),
               "exec/operator.cc");
  EXPECT_STREQ(internal::CheckFileName("operator.cc"), "operator.cc");
  EXPECT_STREQ(internal::CheckFileName("exec/operator.cc"),
               "exec/operator.cc");
}

}  // namespace
}  // namespace queryer
