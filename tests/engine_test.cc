// End-to-end tests of the QueryEngine facade over the paper's motivating
// example: the DEDUP query of Sec. 2 must produce exactly the Table 3
// result, under every execution mode.

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"

namespace queryer {
namespace {

constexpr const char* kPaperQuery =
    "SELECT DEDUP P.Title, P.Year, V.Rank FROM P INNER JOIN V ON "
    "P.venue = V.title WHERE P.venue = 'EDBT'";

std::vector<std::vector<std::string>> Sorted(
    std::vector<std::vector<std::string>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

class EngineTest : public ::testing::Test {
 protected:
  static EngineOptions Options() {
    EngineOptions options;
    // The 14-row example is too small for Edge Pruning statistics to be
    // meaningful; BP+BF keeps all true pairs.
    options.meta_blocking = MetaBlockingConfig::BpBf();
    return options;
  }

  void RegisterExample(QueryEngine* engine) {
    ASSERT_TRUE(
        engine->RegisterTable(datagen::MakeMotivatingPublications().table).ok());
    ASSERT_TRUE(
        engine->RegisterTable(datagen::MakeMotivatingVenues().table).ok());
  }
};

TEST_F(EngineTest, PlainQueryMissesDuplicates) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  auto result = engine.Execute(
      "SELECT P.Title, P.Year, V.Rank FROM P INNER JOIN V ON P.venue = "
      "V.title WHERE P.venue = 'EDBT'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Plain SQL: P1, P6, P8 join V4 only; no ranks (V4's rank is null).
  EXPECT_EQ(result->rows.size(), 3u);
  for (const auto& row : result->rows) EXPECT_EQ(row[2], "");
}

TEST_F(EngineTest, DedupQueryProducesTable3) {
  for (ExecutionMode mode :
       {ExecutionMode::kBatch, ExecutionMode::kNaive, ExecutionMode::kNaive2,
        ExecutionMode::kAdvanced}) {
    QueryEngine engine(Options());
    RegisterExample(&engine);
    engine.set_mode(mode);
    auto result = engine.Execute(kPaperQuery);
    ASSERT_TRUE(result.ok())
        << ExecutionModeToString(mode) << ": " << result.status().ToString();
    auto rows = Sorted(result->rows);
    ASSERT_EQ(rows.size(), 2u) << ExecutionModeToString(mode);
    // Paper Table 3 (attribute variants fused with " | ").
    EXPECT_EQ(rows[0][0],
              "Collective Entity Resolution | Collective E.R.");
    EXPECT_EQ(rows[0][1], "2008");
    EXPECT_EQ(rows[0][2], "1");
    EXPECT_EQ(rows[1][0],
              "E.R for consumer data | Entity-Resolution for consumer data");
    EXPECT_EQ(rows[1][1], "2015");
    EXPECT_EQ(rows[1][2], "1");
  }
}

TEST_F(EngineTest, AllModesAgreeOnSelectStar) {
  std::vector<std::vector<std::vector<std::string>>> outputs;
  for (ExecutionMode mode :
       {ExecutionMode::kBatch, ExecutionMode::kNaive, ExecutionMode::kNaive2,
        ExecutionMode::kAdvanced}) {
    QueryEngine engine(Options());
    RegisterExample(&engine);
    engine.set_mode(mode);
    auto result =
        engine.Execute("SELECT DEDUP * FROM P WHERE P.venue = 'EDBT'");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    outputs.push_back(Sorted(result->rows));
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[0], outputs[i]) << "mode " << i << " diverged";
  }
}

TEST_F(EngineTest, SpDedupQueryGroupsDuplicates) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  auto result = engine.Execute(
      "SELECT DEDUP title FROM P WHERE title LIKE '%consumer%'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0],
            "E.R for consumer data | Entity-Resolution for consumer data");
}

TEST_F(EngineTest, BatchModeDoesAllComparisonsUpfront) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  engine.set_mode(ExecutionMode::kBatch);
  auto first = engine.Execute(kPaperQuery);
  ASSERT_TRUE(first.ok());
  std::size_t batch_comparisons = first->stats.comparisons_executed;

  QueryEngine lazy(Options());
  ASSERT_TRUE(
      lazy.RegisterTable(datagen::MakeMotivatingPublications().table).ok());
  ASSERT_TRUE(lazy.RegisterTable(datagen::MakeMotivatingVenues().table).ok());
  lazy.set_mode(ExecutionMode::kAdvanced);
  auto aes = lazy.Execute(kPaperQuery);
  ASSERT_TRUE(aes.ok());
  // The analysis-aware path never exceeds batch ER. (On this 14-row example
  // most entities join, so equality is possible; the strict gap is asserted
  // at realistic scale below.)
  EXPECT_LE(aes->stats.comparisons_executed, batch_comparisons);
}

TEST_F(EngineTest, AnalysisAwarePathBeatsBatchAtScale) {
  auto dsd = datagen::MakeDsdLike(2500, 55);
  const char* sql = "SELECT DEDUP title FROM dsd WHERE venue = 'CIDR'";

  QueryEngine batch(Options());
  ASSERT_TRUE(batch.RegisterTable(dsd.table).ok());
  batch.set_mode(ExecutionMode::kBatch);
  auto ba = batch.Execute(sql);
  ASSERT_TRUE(ba.ok());

  QueryEngine lazy(Options());
  ASSERT_TRUE(lazy.RegisterTable(dsd.table).ok());
  lazy.set_mode(ExecutionMode::kAdvanced);
  auto aes = lazy.Execute(sql);
  ASSERT_TRUE(aes.ok());

  EXPECT_GT(ba->stats.comparisons_executed, 0u);
  // A selective query must resolve far less than the whole table.
  EXPECT_LT(aes->stats.comparisons_executed,
            ba->stats.comparisons_executed / 2);
}

TEST_F(EngineTest, LinkIndexMakesRepeatsCheaper) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  auto first = engine.Execute(kPaperQuery);
  ASSERT_TRUE(first.ok());
  auto second = engine.Execute(kPaperQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->stats.comparisons_executed, 0u);
  EXPECT_EQ(second->stats.comparisons_executed, 0u);
  EXPECT_EQ(second->rows.size(), first->rows.size());
}

TEST_F(EngineTest, WithoutLinkIndexRepeatsPayAgain) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  engine.set_use_link_index(false);
  auto first = engine.Execute(kPaperQuery);
  ASSERT_TRUE(first.ok());
  auto second = engine.Execute(kPaperQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.comparisons_executed,
            first->stats.comparisons_executed);
  EXPECT_GT(second->stats.comparisons_executed, 0u);
}

TEST_F(EngineTest, ExplainShowsOperators) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  engine.set_mode(ExecutionMode::kAdvanced);
  auto plan = engine.Explain(kPaperQuery);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("DedupJoin"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("GroupEntities"), std::string::npos);
  EXPECT_NE(plan->find("Project"), std::string::npos);
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  EXPECT_TRUE(engine.Execute("SELECT * FROM missing").status().IsNotFound());
  EXPECT_TRUE(engine.Execute("SELEC garbage").status().IsParseError());
  EXPECT_TRUE(
      engine.Execute("SELECT nope FROM P").status().IsPlanError());
  EXPECT_FALSE(engine.RegisterTable(nullptr).ok());
  EXPECT_EQ(
      engine.RegisterTable(datagen::MakeMotivatingVenues().table).code(),
      StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, CsvRegistrationWorks) {
  QueryEngine engine(Options());
  std::string path = testing::TempDir() + "/queryer_engine_test.csv";
  ASSERT_TRUE(
      WriteCsvFile(*datagen::MakeMotivatingPublications().table, path).ok());
  ASSERT_TRUE(engine.RegisterCsvFile(path, "pubs").ok());
  auto result = engine.Execute("SELECT title FROM pubs WHERE venue = 'EDBT'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
  std::remove(path.c_str());
}

TEST_F(EngineTest, StatsBreakdownIsConsistent) {
  QueryEngine engine(Options());
  RegisterExample(&engine);
  auto result = engine.Execute(kPaperQuery);
  ASSERT_TRUE(result.ok());
  const ExecStats& stats = result->stats;
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.other_seconds(), 0.0);
  EXPECT_GE(stats.relational_seconds(), 0.0);
  double sum = stats.blocking_seconds + stats.block_join_seconds +
               stats.meta_blocking_seconds() + stats.resolution_seconds +
               stats.group_seconds + stats.relational_seconds() +
               stats.other_seconds();
  EXPECT_NEAR(sum, stats.total_seconds, 1e-6);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace queryer
