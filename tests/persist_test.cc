// The persistence tier's snapshot half: CRC32 and the snapshot container
// (round trip, atomic commit, failpoint-aborted writes), table snapshots
// (mmap-backed loads bit-identical to the builder-built table, including
// empty strings, embedded NUL bytes and arena-spanning dictionaries),
// index snapshots (TBI/ITBI + attribute weights round trip), snapshot-
// reader hardening (truncation, flipped bytes at every offset, wrong
// magic, future version — always a clean Status, never a crash), the
// checked-in golden file that pins format compatibility, and the engine-
// level warm-start contract: a snapshot-loaded engine answers bit-
// identically to the CSV-loaded one across the threads x batch x layout
// matrix, and serves a previously-resolved DEDUP query with ZERO
// comparisons executed.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "matching/profile_matcher.h"
#include "persist/crc32.h"
#include "persist/index_snapshot.h"
#include "persist/snapshot.h"
#include "persist/table_snapshot.h"
#include "storage/csv.h"
#include "storage/table.h"

namespace queryer {
namespace {

using Rows = std::vector<std::vector<std::string>>;

// Fresh per-test scratch directory under the gtest temp root. Wiped on
// every call: stale durable state from a previous run must never leak
// into a "cold" engine.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "persist_test_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  EXPECT_TRUE(EnsureDir(dir).ok());
  return dir;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---- CRC32 ---------------------------------------------------------------

TEST(Crc32Test, KnownVectorsAndSeedChaining) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Chaining via the seed equals the one-shot CRC of the concatenation.
  const std::uint32_t first = Crc32("1234", 4);
  EXPECT_EQ(Crc32("56789", 5, first), 0xCBF43926u);
  // A single flipped bit changes the sum.
  EXPECT_NE(Crc32("123456788", 9), 0xCBF43926u);
}

// ---- Snapshot container --------------------------------------------------

TEST(SnapshotContainerTest, RoundTripsSectionsAligned) {
  const std::string dir = ScratchDir("container");
  const std::string path = dir + "/round.snap";
  SnapshotWriter writer(SnapshotKind::kTable);
  writer.AddSection("first section");
  writer.AddSection("");  // Empty sections are legal.
  writer.AddSection(std::string("\x00\x01\x02\xff", 4));
  ASSERT_TRUE(writer.Commit(path, /*fsync=*/false).ok());

  auto reader = SnapshotReader::Open(path, SnapshotKind::kTable);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->num_sections(), 3u);
  EXPECT_EQ(reader->section(0), "first section");
  EXPECT_EQ(reader->section(1), "");
  EXPECT_EQ(reader->section(2), std::string_view("\x00\x01\x02\xff", 4));
  // The mmap-ability contract: every section starts 64-byte aligned.
  for (std::size_t i = 0; i < reader->num_sections(); ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(reader->section(i).data()) % 64,
              0u)
        << "section " << i;
  }
}

TEST(SnapshotContainerTest, WrongKindIsRejected) {
  const std::string dir = ScratchDir("kind");
  const std::string path = dir + "/kind.snap";
  SnapshotWriter writer(SnapshotKind::kIndex);
  writer.AddSection("payload");
  ASSERT_TRUE(writer.Commit(path, false).ok());
  EXPECT_TRUE(
      SnapshotReader::Open(path, SnapshotKind::kTable).status().IsCorruption());
}

TEST(SnapshotContainerTest, FailpointAbortedCommitLeavesNoFile) {
  const std::string dir = ScratchDir("abort");
  const std::string path = dir + "/never.snap";
  ASSERT_TRUE(
      Failpoints::Global().Arm("persist.write_section", "error(once)").ok());
  SnapshotWriter writer(SnapshotKind::kTable);
  writer.AddSection("doomed");
  EXPECT_FALSE(writer.Commit(path, false).ok());
  Failpoints::Global().Disarm("persist.write_section");
  // Neither the target nor the temp file survives an aborted commit.
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(SnapshotContainerTest, AbortedRewriteKeepsThePreviousSnapshot) {
  const std::string dir = ScratchDir("atomic");
  const std::string path = dir + "/table.snap";
  SnapshotWriter first(SnapshotKind::kTable);
  first.AddSection("generation 1");
  ASSERT_TRUE(first.Commit(path, false).ok());

  ASSERT_TRUE(Failpoints::Global().Arm("persist.fsync", "error(once)").ok());
  SnapshotWriter second(SnapshotKind::kTable);
  second.AddSection("generation 2");
  EXPECT_FALSE(second.Commit(path, /*fsync=*/true).ok());
  Failpoints::Global().Disarm("persist.fsync");

  // The crash-mid-rewrite drill: the live file still holds generation 1.
  auto reader = SnapshotReader::Open(path, SnapshotKind::kTable);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->section(0), "generation 1");
}

// ---- Snapshot reader hardening (fuzz / corruption) -----------------------

TEST(SnapshotFuzzTest, TruncationsAtEveryLengthFailCleanly) {
  const std::string dir = ScratchDir("truncate");
  const std::string path = dir + "/full.snap";
  SnapshotWriter writer(SnapshotKind::kTable);
  writer.AddSection("some section payload to truncate");
  writer.AddSection(std::string(100, 'q'));
  ASSERT_TRUE(writer.Commit(path, false).ok());
  const std::string bytes = SlurpFile(path);

  const std::string cut = dir + "/cut.snap";
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    DumpFile(cut, bytes.substr(0, len));
    auto reader = SnapshotReader::Open(cut, SnapshotKind::kTable);
    ASSERT_FALSE(reader.ok()) << "length " << len;
    EXPECT_TRUE(reader.status().IsCorruption()) << reader.status().ToString();
  }
  // And the un-truncated control still opens.
  DumpFile(cut, bytes);
  EXPECT_TRUE(SnapshotReader::Open(cut, SnapshotKind::kTable).ok());
}

TEST(SnapshotFuzzTest, EveryFlippedByteIsDetected) {
  const std::string dir = ScratchDir("flip");
  const std::string path = dir + "/full.snap";
  SnapshotWriter writer(SnapshotKind::kTable);
  writer.AddSection("sensitive payload");
  ASSERT_TRUE(writer.Commit(path, false).ok());
  const std::string bytes = SlurpFile(path);

  const std::string flipped = dir + "/flipped.snap";
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    DumpFile(flipped, mutated);
    auto reader = SnapshotReader::Open(flipped, SnapshotKind::kTable);
    // Flips in the zero padding between sections are outside every CRC's
    // coverage and harmless; everywhere else the flip must be caught.
    if (reader.ok()) {
      EXPECT_EQ(reader->section(0), "sensitive payload") << "byte " << i;
    } else {
      EXPECT_TRUE(reader.status().IsCorruption() ||
                  reader.status().IsNotImplemented())
          << "byte " << i << ": " << reader.status().ToString();
    }
  }
}

TEST(SnapshotFuzzTest, WrongMagicAndFutureVersion) {
  const std::string dir = ScratchDir("header");
  const std::string path = dir + "/full.snap";
  SnapshotWriter writer(SnapshotKind::kTable);
  writer.AddSection("x");
  ASSERT_TRUE(writer.Commit(path, false).ok());
  std::string bytes = SlurpFile(path);

  const std::string bad = dir + "/bad.snap";
  {
    std::string mutated = bytes;
    mutated.replace(0, 8, "NOTASNAP");
    DumpFile(bad, mutated);
    EXPECT_TRUE(
        SnapshotReader::Open(bad, SnapshotKind::kTable).status().IsCorruption());
  }
  {
    // Bump the version field (offset 8) past this build's. The header CRC
    // is deliberately not consulted first: a future-version file is
    // reported as kNotImplemented, not corruption.
    std::string mutated = bytes;
    const std::uint32_t future = kSnapshotFormatVersion + 1;
    std::memcpy(&mutated[8], &future, sizeof(future));
    DumpFile(bad, mutated);
    EXPECT_TRUE(SnapshotReader::Open(bad, SnapshotKind::kTable)
                    .status()
                    .IsNotImplemented());
  }
  {
    // Absurd section count with a fixed-up nothing: bounds-checked, clean
    // corruption.
    std::string mutated = bytes;
    const std::uint32_t huge = 0x7fffffff;
    std::memcpy(&mutated[16], &huge, sizeof(huge));
    DumpFile(bad, mutated);
    EXPECT_TRUE(
        SnapshotReader::Open(bad, SnapshotKind::kTable).status().IsCorruption());
  }
  EXPECT_TRUE(SnapshotReader::Open(dir + "/missing.snap", SnapshotKind::kTable)
                  .status()
                  .IsNotFound());
}

// ---- Table snapshots -----------------------------------------------------

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  EXPECT_EQ(a.name(), b.name());
  for (std::size_t attr = 0; attr < a.num_attributes(); ++attr) {
    EXPECT_EQ(a.schema().names()[attr], b.schema().names()[attr]);
    for (EntityId e = 0; e < a.num_rows(); ++e) {
      ASSERT_EQ(a.ValueAt(e, attr), b.ValueAt(e, attr))
          << "row " << e << " attr " << attr;
      // The determinism contract: codes survive, not just values.
      ASSERT_EQ(a.CodeAt(e, attr), b.CodeAt(e, attr))
          << "row " << e << " attr " << attr;
    }
  }
}

TEST(TableSnapshotTest, RoundTripsEmptyStringsAndEmbeddedNuls) {
  TableBuilder builder("weird", Schema({"id", "payload", "note"}));
  ASSERT_TRUE(builder.AddRow({"0", "", "empty payload"}).ok());
  ASSERT_TRUE(builder.AddRow({"1", std::string("a\0b", 3), "embedded nul"}).ok());
  ASSERT_TRUE(builder.AddRow({"2", std::string("\0", 1), "nul only"}).ok());
  ASSERT_TRUE(builder.AddRow({"3", "", "empty again"}).ok());
  ASSERT_TRUE(builder.AddRow({"4", std::string("x\0\0y", 4), "two nuls"}).ok());
  TablePtr original = builder.Build();

  const std::string path = ScratchDir("nuls") + "/weird.tbl";
  ASSERT_TRUE(TableSnapshotIO::Write(*original, path, false).ok());
  auto loaded = TableSnapshotIO::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTablesIdentical(*original, **loaded);
  // The NUL-termination contract ParseNumber relies on holds for mapped
  // dictionaries too: the byte past every value is readable and NUL.
  for (EntityId e = 0; e < (*loaded)->num_rows(); ++e) {
    const std::string_view v = (*loaded)->ValueAt(e, 1);
    EXPECT_EQ(v.data()[v.size()], '\0') << "row " << e;
  }
}

TEST(TableSnapshotTest, RoundTripsArenaSpanningDictionary) {
  // 5000 distinct long-ish values span several 64 KiB arena blocks when
  // built; the snapshot concatenates them and the loader must rebuild
  // every view at the right offset.
  TableBuilder builder("big", Schema({"id", "value"}));
  constexpr std::size_t kDistinct = 5000;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    ASSERT_TRUE(builder
                    .AddRow({std::to_string(i), "entity-" + std::to_string(i) +
                                                    "-" + std::string(40, 'x')})
                    .ok());
  }
  TablePtr original = builder.Build();
  const std::string path = ScratchDir("arena") + "/big.tbl";
  ASSERT_TRUE(TableSnapshotIO::Write(*original, path, false).ok());
  auto loaded = TableSnapshotIO::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTablesIdentical(*original, **loaded);
  EXPECT_EQ((*loaded)->column(1).dictionary().size(), kDistinct);
}

TEST(TableSnapshotTest, RoundTripsGeneratedDataset) {
  datagen::GeneratedDataset dsd = datagen::MakeDsdLike(800, 99);
  const std::string path = ScratchDir("dsd") + "/dsd.tbl";
  ASSERT_TRUE(TableSnapshotIO::Write(*dsd.table, path, false).ok());
  auto loaded = TableSnapshotIO::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTablesIdentical(*dsd.table, **loaded);
}

TEST(TableSnapshotTest, FuzzedTableSnapshotsNeverCrashTheLoader) {
  TableBuilder builder("t", Schema({"id", "v"}));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(builder.AddRow({std::to_string(i), "val" + std::to_string(i % 7)})
                    .ok());
  }
  TablePtr original = builder.Build();
  const std::string dir = ScratchDir("tbl_fuzz");
  const std::string path = dir + "/t.tbl";
  ASSERT_TRUE(TableSnapshotIO::Write(*original, path, false).ok());
  const std::string bytes = SlurpFile(path);

  // Deterministic byte-flip fuzz across the whole file. What this pins:
  // no flip, anywhere, crashes the loader or yields a corrupted table —
  // every outcome is either a clean error Status or a bit-identical load
  // (padding flips and identity flips).
  std::mt19937 rng(4242);
  const std::string mutated_path = dir + "/mut.tbl";
  for (int round = 0; round < 200; ++round) {
    std::string mutated = bytes;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] = static_cast<char>(rng());
    DumpFile(mutated_path, mutated);
    auto loaded = TableSnapshotIO::Load(mutated_path);
    if (loaded.ok()) {
      // The flip hit padding or replaced a byte with itself — the table
      // must then be fully intact.
      ExpectTablesIdentical(*original, **loaded);
    }
  }
}

// ---- Index snapshots -----------------------------------------------------

TEST(IndexSnapshotTest, RoundTripsBlockIndexAndWeights) {
  datagen::GeneratedDataset dsd = datagen::MakeDsdLike(600, 123);
  BlockingOptions blocking;
  auto built = TableBlockIndex::Build(*dsd.table, blocking, nullptr);
  AttributeWeights weights = AttributeWeights::Compute(*dsd.table);

  const std::string path = ScratchDir("index") + "/dsd.tbi";
  ASSERT_TRUE(IndexSnapshotIO::Write(*built, weights, path, false).ok());
  auto loaded = IndexSnapshotIO::Load(path, dsd.table->num_rows());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const TableBlockIndex& tbi = *loaded->tbi;
  ASSERT_EQ(tbi.num_blocks(), built->num_blocks());
  for (std::size_t b = 0; b < tbi.num_blocks(); ++b) {
    EXPECT_EQ(tbi.block_key(b), built->block_key(b));
    EXPECT_EQ(tbi.block_entities(b), built->block_entities(b));
    // The key -> block map was rebuilt, not serialized.
    EXPECT_EQ(tbi.FindBlock(tbi.block_key(b)),
              static_cast<std::int64_t>(b));
  }
  for (EntityId e = 0; e < dsd.table->num_rows(); ++e) {
    EXPECT_EQ(tbi.entity_blocks(e), built->entity_blocks(e)) << "entity " << e;
  }
  EXPECT_EQ(tbi.options().min_token_length, blocking.min_token_length);
  ASSERT_EQ(loaded->weights.size(), weights.size());
  for (std::size_t a = 0; a < weights.size(); ++a) {
    EXPECT_EQ(loaded->weights.weight(a), weights.weight(a)) << "attr " << a;
  }
}

TEST(IndexSnapshotTest, RowCountMismatchIsCorruption) {
  datagen::GeneratedDataset dsd = datagen::MakeDsdLike(200, 5);
  auto built = TableBlockIndex::Build(*dsd.table, BlockingOptions{}, nullptr);
  const std::string path = ScratchDir("index_rows") + "/dsd.tbi";
  ASSERT_TRUE(IndexSnapshotIO::Write(
                  *built, AttributeWeights::Compute(*dsd.table), path, false)
                  .ok());
  // A snapshot built over different table contents must not mis-index.
  EXPECT_TRUE(IndexSnapshotIO::Load(path, dsd.table->num_rows() - 1)
                  .status()
                  .IsCorruption());
}

// ---- Golden snapshot (format compatibility) ------------------------------

TablePtr GoldenTable() {
  TableBuilder builder("golden", Schema({"id", "title", "venue"}));
  EXPECT_TRUE(builder.AddRow({"0", "QueryER", "EDBT"}).ok());
  EXPECT_TRUE(builder.AddRow({"1", "Query-Driven ER", "EDBT"}).ok());
  EXPECT_TRUE(builder.AddRow({"2", "", "VLDB"}).ok());
  EXPECT_TRUE(builder.AddRow({"3", std::string("a\0b", 3), ""}).ok());
  EXPECT_TRUE(builder.AddRow({"4", "QueryER", "edbt"}).ok());
  return builder.Build();
}

TEST(GoldenSnapshotTest, CheckedInFileStillLoads) {
  // tests/data/golden_table.v1.tbl is a committed format-v1 table
  // snapshot. Every future build must keep loading it bit-identically —
  // this is the CI tripwire against silent format changes. Regenerate
  // (and commit, bumping the name's version) only on a deliberate format
  // bump: QUERYER_REGEN_GOLDEN=1 ./persist_test.
  const std::string path =
      std::string(QUERYER_SOURCE_DIR) + "/tests/data/golden_table.v1.tbl";
  if (std::getenv("QUERYER_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(TableSnapshotIO::Write(*GoldenTable(), path, false).ok());
  }
  ASSERT_TRUE(FileExists(path)) << path;
  auto loaded = TableSnapshotIO::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTablesIdentical(*GoldenTable(), **loaded);
}

TEST(GoldenSnapshotTest, WriterOutputIsByteStableForTheGoldenTable) {
  // The writer is deterministic (no timestamps, no map iteration), so the
  // golden file also pins the WRITE side of the format: a fresh write of
  // the same logical table is byte-identical to the committed file.
  const std::string golden =
      std::string(QUERYER_SOURCE_DIR) + "/tests/data/golden_table.v1.tbl";
  if (!FileExists(golden)) GTEST_SKIP() << "golden not yet generated";
  const std::string fresh = ScratchDir("golden") + "/fresh.tbl";
  ASSERT_TRUE(TableSnapshotIO::Write(*GoldenTable(), fresh, false).ok());
  EXPECT_EQ(SlurpFile(fresh), SlurpFile(golden));
}

// ---- Engine-level warm start ---------------------------------------------

Rows CanonicalRows(const QueryResult& result) {
  if (result.layout == ResultLayout::kRowMajor) return result.rows;
  Rows rows(result.num_rows());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
      rows[r].emplace_back(result.ValueAt(r, c));
    }
  }
  return rows;
}

class WarmStartTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(2600, 4242));
    csv_path_ = new std::string(ScratchDir("warm_csv") + "/dsd.csv");
    ASSERT_TRUE(WriteCsvFile(*dsd_->table, *csv_path_).ok());
  }
  static void TearDownTestSuite() {
    delete dsd_;
    delete csv_path_;
    dsd_ = nullptr;
    csv_path_ = nullptr;
  }

  static datagen::GeneratedDataset* dsd_;
  static std::string* csv_path_;
};

datagen::GeneratedDataset* WarmStartTest::dsd_ = nullptr;
std::string* WarmStartTest::csv_path_ = nullptr;

TEST_F(WarmStartTest, SnapshotLoadedEngineMatchesCsvAcrossMatrixAndLayouts) {
  const std::string data_dir = ScratchDir("warm_matrix");
  // Cold engine: CSV-loaded, snapshots saved (indices warmed first).
  {
    EngineOptions options;
    options.data_dir = data_dir;
    QueryEngine cold(options);
    ASSERT_TRUE(cold.RegisterCsvFile(*csv_path_, "dsd").ok());
    ASSERT_TRUE(cold.SaveSnapshots().ok());
  }

  const std::vector<std::string> queries = {
      "SELECT * FROM dsd WHERE MOD(id, 100) < 30",
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10",
  };
  for (const std::string& sql : queries) {
    Rows reference;
    {
      QueryEngine csv_engine;
      ASSERT_TRUE(csv_engine.RegisterCsvFile(*csv_path_, "dsd").ok());
      auto result = csv_engine.Execute(sql);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      reference = CanonicalRows(*result);
      ASSERT_FALSE(reference.empty());
    }
    for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t batch_size : {std::size_t{1}, std::size_t{1024}}) {
        for (ResultLayout layout :
             {ResultLayout::kRowMajor, ResultLayout::kColumnMajor}) {
          EngineOptions options;
          options.data_dir = data_dir;
          options.num_threads = num_threads;
          options.batch_size = batch_size;
          options.result_layout = layout;
          QueryEngine warm(options);
          ASSERT_TRUE(warm.RegisterTableFromSnapshots("dsd").ok());
          auto result = warm.Execute(sql);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          EXPECT_EQ(CanonicalRows(*result), reference)
              << sql << " threads=" << num_threads << " batch=" << batch_size
              << " layout=" << static_cast<int>(layout);
        }
      }
    }
  }
}

TEST_F(WarmStartTest, WarmRestartServesResolvedDedupWithZeroComparisons) {
  const std::string data_dir = ScratchDir("warm_zero");
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
  Rows first_answer;
  std::size_t cold_comparisons = 0;
  {
    EngineOptions options;
    options.data_dir = data_dir;
    QueryEngine cold(options);
    ASSERT_TRUE(cold.RegisterCsvFile(*csv_path_, "dsd").ok());
    auto result = cold.Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    first_answer = CanonicalRows(*result);
    cold_comparisons = result->stats.comparisons_executed;
    EXPECT_GT(cold_comparisons, 0u);  // The cold run really resolved.
    ASSERT_TRUE(cold.SaveSnapshots().ok());
  }
  // Warm restart: a brand-new process image (new engine), snapshots only.
  {
    EngineOptions options;
    options.data_dir = data_dir;
    QueryEngine warm(options);
    ASSERT_TRUE(warm.RegisterTableFromSnapshots("dsd").ok());
    auto result = warm.Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(CanonicalRows(*result), first_answer);
    // The acceptance pin: previously-resolved entities are served from the
    // recovered Link Index without a single comparison.
    EXPECT_EQ(result->stats.comparisons_executed, 0u);
    EXPECT_EQ(result->stats.entities_already_resolved,
              result->stats.query_entities);
  }
}

TEST_F(WarmStartTest, DurableEngineAnswersMatchEphemeralEngine) {
  // The durable Link Index must be a pure observer: with a data_dir, every
  // answer (and the comparison count) matches the in-memory engine's.
  const std::string data_dir = ScratchDir("warm_observer");
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 20";
  QueryEngine plain;
  ASSERT_TRUE(plain.RegisterTable(dsd_->table).ok());
  auto expected = plain.Execute(sql);
  ASSERT_TRUE(expected.ok());

  EngineOptions options;
  options.data_dir = data_dir;
  QueryEngine durable(options);
  ASSERT_TRUE(durable.RegisterTable(dsd_->table).ok());
  auto actual = durable.Execute(sql);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(CanonicalRows(*actual), CanonicalRows(*expected));
  EXPECT_EQ(actual->stats.comparisons_executed,
            expected->stats.comparisons_executed);
}

TEST(PersistApiTest, SnapshotCallsWithoutDataDirFailCleanly) {
  QueryEngine engine;
  EXPECT_TRUE(engine.SaveSnapshots().ok());  // No tables: trivially OK.
  EXPECT_TRUE(engine.RegisterTableFromSnapshots("nope").IsInvalidArgument());
  TableBuilder builder("t", Schema({"id", "v"}));
  ASSERT_TRUE(builder.AddRow({"0", "x"}).ok());
  ASSERT_TRUE(engine.RegisterTable(builder.Build()).ok());
  EXPECT_TRUE(engine.SaveSnapshot("t").IsInvalidArgument());
}

}  // namespace
}  // namespace queryer
