// Tests of inter-query concurrency: the Link Index reader/writer protocol,
// the resolution coordinator's claim tables, and multi-client
// QueryEngine::Execute sessions — concurrent same-table queries,
// overlapping predicates, dedup-join sessions, racing cold-start warmup,
// and the {num_threads} x {clients} determinism matrix.
//
// The engine guarantees concurrent execution is equivalent to a serial
// execution of the same queries in claim order. The workloads here are
// built so that *every* serial order gives the same answers and link
// counts (clique-structured duplicates whose clusters are fully discovered
// by any single resolution, or identical queries from every client), so
// the concurrent runs can be compared byte-for-byte against one fixed
// serial baseline. Rows are compared as sorted bags: a SQL answer without
// ORDER BY fixes its content, not its order.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "matching/link_index.h"
#include "matching/resolution_coordinator.h"
#include "parallel/thread_pool.h"

namespace queryer {
namespace {

std::vector<std::vector<std::string>> Sorted(
    std::vector<std::vector<std::string>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

// A dirty table whose duplicate groups are cliques: members of one group
// are identical except for the (blocking/matching-excluded) id attribute,
// and different groups share no token. Resolving any member therefore
// discovers its whole cluster, and no query can grow another query's
// clusters — answers are independent of resolution order.
TablePtr MakeCliqueTable(std::size_t num_groups, std::size_t dups_per_group,
                         const std::string& name = "cliq") {
  TableBuilder builder(name, Schema({"id", "name", "city"}));
  std::size_t row = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    std::string group = std::to_string(g);
    for (std::size_t d = 0; d < dups_per_group; ++d) {
      EXPECT_TRUE(builder
                      .AddRow({"r" + std::to_string(row++),
                               "alpha" + group + " beta" + group,
                               "city" + group})
                      .ok());
    }
  }
  return builder.Build();
}

EngineOptions CliqueOptions(std::size_t max_concurrent,
                            std::size_t num_threads = 1) {
  EngineOptions options;
  // Tiny per-group blocks make Edge Pruning statistics meaningless (same
  // reasoning as the motivating-example tests); BP+BF keeps all true pairs.
  options.meta_blocking = MetaBlockingConfig::BpBf();
  options.max_concurrent_queries = max_concurrent;
  options.num_threads = num_threads;
  return options;
}

// ---------------------------------------------------------------------------
// LinkIndex reader/writer protocol.
// ---------------------------------------------------------------------------

TEST(LinkIndexProtocolTest, PublishLinksCountsOnlyRealMerges) {
  LinkIndex li(6);
  std::uint64_t epoch0 = li.epoch();
  // {0,1,2} via two links plus one redundant, {4,5} via one.
  std::size_t merged =
      li.PublishLinks({{0, 1}, {1, 2}, {0, 2}, {4, 5}});
  EXPECT_EQ(merged, 3u);
  EXPECT_EQ(li.num_links(), 3u);
  // One batch = one epoch bump, not one per link.
  EXPECT_EQ(li.epoch(), epoch0 + 1);
  EXPECT_TRUE(li.AreLinked(0, 2));
  EXPECT_TRUE(li.AreLinked(4, 5));
  EXPECT_FALSE(li.AreLinked(2, 4));
  // Publishing again is all no-op merges.
  EXPECT_EQ(li.PublishLinks({{0, 1}, {2, 0}}), 0u);
  EXPECT_EQ(li.num_links(), 3u);
}

TEST(LinkIndexProtocolTest, MarkResolvedBatchAndReadView) {
  LinkIndex li(4);
  li.MarkResolvedBatch({0, 2, 2});
  EXPECT_EQ(li.num_resolved(), 2u);
  li.PublishLinks({{1, 3}});
  LinkIndex::ReadView view = li.SharedSnapshot();
  EXPECT_TRUE(view.IsResolved(0));
  EXPECT_FALSE(view.IsResolved(1));
  EXPECT_TRUE(view.AreLinked(1, 3));
  EXPECT_EQ(view.Cluster(1), (std::vector<EntityId>{1, 3}));
  EXPECT_EQ(view.Representative(1), view.Representative(3));
}

TEST(LinkIndexProtocolTest, ConcurrentReadersWhilePublishing) {
  // Publisher threads append disjoint chains while readers hammer the read
  // accessors; under TSan this validates the lock discipline, and the final
  // clustering must be the full chains regardless of interleaving.
  constexpr std::size_t kEntities = 512;
  LinkIndex li(kEntities);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        for (EntityId e = 0; e + 1 < kEntities; e += 7) {
          li.AreLinked(e, e + 1);
          li.Representative(e);
          li.IsResolved(e);
        }
        li.num_links();
      }
    });
  }
  std::vector<std::thread> publishers;
  for (int p = 0; p < 2; ++p) {
    publishers.emplace_back([&, p] {
      // Publisher p links entities == p (mod 4) to their successors in
      // batches: chains 0-4-8-..., 1-5-9-...
      for (EntityId e = static_cast<EntityId>(p); e + 4 < kEntities; e += 4) {
        li.PublishLinks({{e, static_cast<EntityId>(e + 4)}});
      }
      li.MarkResolvedBatch({static_cast<EntityId>(p)});
    });
  }
  for (std::thread& t : publishers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(li.AreLinked(0, 128));
  EXPECT_TRUE(li.AreLinked(1, 129));
  EXPECT_FALSE(li.AreLinked(0, 1));
  EXPECT_EQ(li.num_resolved(), 2u);
}

// ---------------------------------------------------------------------------
// ResolutionCoordinator claim tables.
// ---------------------------------------------------------------------------

TEST(ResolutionCoordinatorTest, EntityClaimsPartition) {
  LinkIndex li(8);
  li.MarkResolved(5);
  ResolutionCoordinator coordinator;

  auto first = coordinator.ClaimEntities({1, 2, 5}, li);
  EXPECT_EQ(first.claimed, (std::vector<EntityId>{1, 2}));
  EXPECT_TRUE(first.foreign.empty());
  EXPECT_EQ(first.already_resolved, 1u);

  // A second session overlapping the first gets the leftovers only.
  auto second = coordinator.ClaimEntities({2, 3, 5}, li);
  EXPECT_EQ(second.claimed, (std::vector<EntityId>{3}));
  EXPECT_EQ(second.foreign, (std::vector<EntityId>{2}));
  EXPECT_EQ(second.already_resolved, 1u);

  // First session finishes: resolve, then release. A third claim must see
  // the entities as resolved, never as claimable.
  li.MarkResolvedBatch(first.claimed);
  coordinator.ReleaseEntities(first.claimed);
  auto third = coordinator.ClaimEntities({1, 2, 3}, li);
  EXPECT_TRUE(third.claimed.empty());
  EXPECT_EQ(third.foreign, (std::vector<EntityId>{3}));
  EXPECT_EQ(third.already_resolved, 2u);
  coordinator.AwaitEntities(first.claimed);  // Released: returns at once.
}

TEST(ResolutionCoordinatorTest, ComparisonClaimsDedupAcrossSessions) {
  ResolutionCoordinator coordinator;
  auto first = coordinator.ClaimComparisons({{1, 2}, {3, 4}});
  EXPECT_EQ(first.owned.size(), 2u);
  EXPECT_TRUE(first.foreign.empty());

  // Orientation must not matter: (2,1) is the in-flight (1,2).
  auto second = coordinator.ClaimComparisons({{2, 1}, {5, 6}});
  EXPECT_EQ(second.owned, (std::vector<Comparison>{{5, 6}}));
  EXPECT_EQ(second.foreign, (std::vector<Comparison>{{2, 1}}));

  coordinator.ReleaseComparisons(first.owned);
  coordinator.AwaitComparisons(second.foreign);  // Returns at once now.
  auto third = coordinator.ClaimComparisons({{1, 2}});
  EXPECT_EQ(third.owned.size(), 1u);
}

TEST(ResolutionCoordinatorTest, AbandonedComparisonsAreAdoptedByWaiters) {
  // An owner that fails before publishing parks its pairs; a session that
  // was waiting on them must adopt them instead of treating them as done.
  ResolutionCoordinator coordinator;
  auto owner = coordinator.ClaimComparisons({{1, 2}, {3, 4}});
  auto waiter = coordinator.ClaimComparisons({{1, 2}});
  ASSERT_EQ(waiter.foreign, (std::vector<Comparison>{{1, 2}}));

  coordinator.AbandonComparisons(owner.owned);
  std::vector<Comparison> adopted = coordinator.AwaitComparisons(waiter.foreign);
  EXPECT_EQ(adopted, (std::vector<Comparison>{{1, 2}}));

  // The adopted pair is in flight under the waiter: foreign to others.
  auto third = coordinator.ClaimComparisons({{1, 2}, {3, 4}});
  EXPECT_EQ(third.foreign, (std::vector<Comparison>{{1, 2}}));
  // (3,4) was abandoned but never awaited; the fresh claim adopts it, so
  // it must not resurface when someone later waits on it.
  EXPECT_EQ(third.owned, (std::vector<Comparison>{{3, 4}}));
  coordinator.ReleaseComparisons(third.owned);
  EXPECT_TRUE(coordinator.AwaitComparisons({{3, 4}}).empty());

  coordinator.ReleaseComparisons(adopted);
  // After the waiter publishes and releases, the pair settles normally.
  EXPECT_TRUE(coordinator.AwaitComparisons({{2, 1}}).empty());
}

TEST(ResolutionCoordinatorTest, AwaitBlocksUntilRelease) {
  ResolutionCoordinator coordinator;
  LinkIndex li(4);
  auto claim = coordinator.ClaimEntities({1}, li);
  ASSERT_EQ(claim.claimed.size(), 1u);

  std::atomic<bool> awaited{false};
  std::thread waiter([&] {
    coordinator.AwaitEntities({1});
    awaited.store(true);
  });
  // The waiter cannot finish before the release.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(awaited.load());
  coordinator.ReleaseEntities(claim.claimed);
  waiter.join();
  EXPECT_TRUE(awaited.load());
}

TEST(SemaphoreTest, BoundsAdmission) {
  Semaphore semaphore(2);
  semaphore.Acquire();
  semaphore.Acquire();
  std::atomic<bool> admitted{false};
  std::thread third([&] {
    Semaphore::Slot slot(&semaphore);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  semaphore.Release();
  third.join();
  EXPECT_TRUE(admitted.load());
  semaphore.Release();
}

TEST(SharedPoolTest, EngineWidthIsACapNotAFloor) {
  // Engines share the process-wide pool, but each one's num_threads() must
  // stay its own configured parallelism cap — not silently widen to
  // whatever another engine grew the shared pool to.
  EngineOptions wide;
  wide.num_threads = 4;
  QueryEngine a(wide);
  EXPECT_EQ(a.num_threads(), 4u);
  EngineOptions narrow;
  narrow.num_threads = 2;
  QueryEngine b(narrow);
  EXPECT_EQ(b.num_threads(), 2u);
}

TEST(SharedPoolTest, ProcessWidePoolIsSharedAndGrows) {
  std::shared_ptr<ThreadPool> a = ThreadPool::Shared(2);
  std::shared_ptr<ThreadPool> b = ThreadPool::Shared(3);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(a->num_threads(), 3u);  // Grown, never shrunk.
  std::shared_ptr<ThreadPool> c = ThreadPool::Shared(2);
  EXPECT_EQ(c.get(), a.get());
  EXPECT_GE(c->num_threads(), 3u);
}

// ---------------------------------------------------------------------------
// Multi-client engine sessions.
// ---------------------------------------------------------------------------

struct RunOutcome {
  std::vector<std::vector<std::string>> rows;  // Sorted.
  std::size_t links = 0;
};

// Runs `queries` serially on a fresh engine (the baseline schedule).
std::vector<RunOutcome> RunSerial(const std::vector<TablePtr>& tables,
                                  const std::vector<std::string>& queries,
                                  const EngineOptions& options,
                                  std::size_t* final_links) {
  QueryEngine engine(options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine.RegisterTable(table).ok());
  }
  std::vector<RunOutcome> outcomes(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto result = engine.Execute(queries[i]);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    outcomes[i].rows = Sorted(result->rows);
    outcomes[i].links =
        engine.GetRuntime(tables[0]->name())->get()->link_index().num_links();
  }
  *final_links =
      engine.GetRuntime(tables[0]->name())->get()->link_index().num_links();
  return outcomes;
}

// Runs query i on client thread i % clients, all clients concurrently.
std::vector<RunOutcome> RunConcurrent(const std::vector<TablePtr>& tables,
                                      const std::vector<std::string>& queries,
                                      const EngineOptions& options,
                                      std::size_t clients,
                                      std::size_t* final_links) {
  QueryEngine engine(options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine.RegisterTable(table).ok());
  }
  std::vector<RunOutcome> outcomes(queries.size());
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < queries.size(); i += clients) {
        auto result = engine.Execute(queries[i]);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        outcomes[i].rows = Sorted(result->rows);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  *final_links =
      engine.GetRuntime(tables[0]->name())->get()->link_index().num_links();
  return outcomes;
}

TEST(ConcurrentSessionsTest, SameQueryFromFourClientsMatchesSerial) {
  // Identical queries: the first claimer resolves the whole selection, the
  // rest wait and reuse — any claim order is the same serial schedule, so
  // this is safe even with Edge Pruning enabled on generated dirty data.
  auto dsd = datagen::MakeDsdLike(800, 4242);
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 40";

  EngineOptions serial_options;
  std::size_t serial_links = 0;
  std::vector<RunOutcome> baseline =
      RunSerial({dsd.table}, {sql}, serial_options, &serial_links);

  EngineOptions concurrent_options;
  concurrent_options.max_concurrent_queries = 4;
  std::size_t concurrent_links = 0;
  std::vector<RunOutcome> outcomes =
      RunConcurrent({dsd.table}, {sql, sql, sql, sql}, concurrent_options, 4,
                    &concurrent_links);

  EXPECT_GT(serial_links, 0u);
  EXPECT_EQ(concurrent_links, serial_links);
  for (const RunOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.rows, baseline[0].rows);
  }
}

TEST(ConcurrentSessionsTest, OverlappingPredicatesMatchSerial) {
  TablePtr cliq = MakeCliqueTable(24, 3);
  std::vector<std::string> queries;
  for (int q = 0; q < 8; ++q) {
    // Windows of four cities overlapping the neighbours by two.
    std::string a = std::to_string(2 * q), b = std::to_string(2 * q + 1);
    std::string c = std::to_string(2 * q + 2), d = std::to_string(2 * q + 3);
    queries.push_back("SELECT DEDUP name, city FROM cliq WHERE city IN "
                      "('city" + a + "', 'city" + b + "', 'city" + c +
                      "', 'city" + d + "')");
  }

  std::size_t serial_links = 0;
  std::vector<RunOutcome> baseline =
      RunSerial({cliq}, queries, CliqueOptions(1), &serial_links);

  std::size_t concurrent_links = 0;
  std::vector<RunOutcome> outcomes = RunConcurrent(
      {cliq}, queries, CliqueOptions(4), 4, &concurrent_links);

  EXPECT_GT(serial_links, 0u);
  EXPECT_EQ(concurrent_links, serial_links);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(outcomes[i].rows, baseline[i].rows) << queries[i];
  }
}

TEST(ConcurrentSessionsTest, DedupJoinSessionsMatchSerial) {
  TablePtr cliq = MakeCliqueTable(16, 3);
  TableBuilder regions_builder("regions", Schema({"city", "region"}));
  for (std::size_t g = 0; g < 16; ++g) {
    ASSERT_TRUE(regions_builder
                    .AddRow({"city" + std::to_string(g),
                             g % 2 == 0 ? "east" : "west"})
                    .ok());
  }
  TablePtr regions = regions_builder.Build();
  std::vector<std::string> queries = {
      "SELECT DEDUP cliq.name, regions.region FROM cliq INNER JOIN regions "
      "ON cliq.city = regions.city WHERE regions.region = 'east'",
      "SELECT DEDUP cliq.name, regions.region FROM cliq INNER JOIN regions "
      "ON cliq.city = regions.city WHERE regions.region = 'west'",
      "SELECT DEDUP name, city FROM cliq WHERE city IN ('city1', 'city2')",
      "SELECT DEDUP cliq.name, regions.region FROM cliq INNER JOIN regions "
      "ON cliq.city = regions.city WHERE regions.region = 'east'",
  };

  std::size_t serial_links = 0;
  std::vector<RunOutcome> baseline =
      RunSerial({cliq, regions}, queries, CliqueOptions(1), &serial_links);

  std::size_t concurrent_links = 0;
  std::vector<RunOutcome> outcomes = RunConcurrent(
      {cliq, regions}, queries, CliqueOptions(4), 4, &concurrent_links);

  EXPECT_GT(serial_links, 0u);
  EXPECT_EQ(concurrent_links, serial_links);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(outcomes[i].rows, baseline[i].rows) << queries[i];
  }
}

TEST(ConcurrentSessionsTest, RacingColdStartWarmup) {
  // No WarmIndices call: the first queries race the lazy TBI/weights
  // construction from four threads (one mixes explicit WarmIndices in).
  TablePtr cliq = MakeCliqueTable(20, 3);
  std::vector<std::string> queries;
  for (int q = 0; q < 12; ++q) {
    queries.push_back("SELECT DEDUP name, city FROM cliq WHERE city = 'city" +
                      std::to_string(q) + "'");
  }
  std::size_t serial_links = 0;
  std::vector<RunOutcome> baseline =
      RunSerial({cliq}, queries, CliqueOptions(1), &serial_links);

  QueryEngine engine(CliqueOptions(4));
  ASSERT_TRUE(engine.RegisterTable(cliq).ok());
  std::vector<RunOutcome> outcomes(queries.size());
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      if (c == 0) EXPECT_TRUE(engine.WarmIndices("cliq").ok());
      for (std::size_t i = c; i < queries.size(); i += 4) {
        auto result = engine.Execute(queries[i]);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        outcomes[i].rows = Sorted(result->rows);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(engine.GetRuntime("cliq")->get()->link_index().num_links(),
            serial_links);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(outcomes[i].rows, baseline[i].rows) << queries[i];
  }
}

// The determinism regression of the issue: the same workload at
// num_threads in {1,4} x concurrent clients in {1,4} must produce
// identical per-query answers and an identical final link count.
TEST(ConcurrentSessionsTest, DeterminismMatrix) {
  TablePtr cliq = MakeCliqueTable(20, 4);
  std::vector<std::string> queries;
  for (int q = 0; q < 8; ++q) {
    std::string a = std::to_string(2 * q), b = std::to_string(2 * q + 3);
    queries.push_back("SELECT DEDUP name, city FROM cliq WHERE city IN "
                      "('city" + a + "', 'city" + b + "')");
  }

  std::size_t baseline_links = 0;
  std::vector<RunOutcome> baseline =
      RunSerial({cliq}, queries, CliqueOptions(1, 1), &baseline_links);
  EXPECT_GT(baseline_links, 0u);

  for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t clients : {std::size_t{1}, std::size_t{4}}) {
      std::size_t links = 0;
      std::vector<RunOutcome> outcomes =
          RunConcurrent({cliq}, queries, CliqueOptions(clients, num_threads),
                        clients, &links);
      EXPECT_EQ(links, baseline_links)
          << "num_threads=" << num_threads << " clients=" << clients;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(outcomes[i].rows, baseline[i].rows)
            << "num_threads=" << num_threads << " clients=" << clients
            << " query " << i;
      }
    }
  }
}

}  // namespace
}  // namespace queryer
