// Unit tests for the dataset generators: determinism, duplicate ratios,
// ground-truth consistency, corruption model bounds.

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "datagen/corruptor.h"
#include "datagen/dictionaries.h"
#include "datagen/orgs.h"
#include "datagen/people.h"
#include "datagen/scholarly.h"

namespace queryer::datagen {
namespace {

// Cell-by-cell equality of two tables (the old row-vector comparison).
bool SameTableContents(const queryer::Table& a, const queryer::Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.num_attributes() != b.num_attributes()) return false;
  for (queryer::EntityId e = 0; e < a.num_rows(); ++e) {
    for (std::size_t c = 0; c < a.num_attributes(); ++c) {
      if (a.ValueAt(e, c) != b.ValueAt(e, c)) return false;
    }
  }
  return true;
}

TEST(CorruptorTest, TypoChangesString) {
  queryer::RandomEngine rng(1);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    std::string out = ApplyTypo("entity resolution", &rng);
    if (out != "entity resolution") ++changed;
    // A single typo changes length by at most 1.
    EXPECT_LE(out.size(), 18u);
    EXPECT_GE(out.size(), 16u);
  }
  EXPECT_GT(changed, 40);  // Transpose of equal chars can no-op, rarely.
}

TEST(CorruptorTest, AbbreviateToken) {
  queryer::RandomEngine rng(2);
  std::string out = AbbreviateToken("collective entity", &rng);
  EXPECT_TRUE(out == "c. entity" || out == "collective e.") << out;
  // Short tokens are not abbreviated.
  EXPECT_EQ(AbbreviateToken("a bc", &rng), "a bc");
}

TEST(CorruptorTest, SwapTokens) {
  queryer::RandomEngine rng(3);
  EXPECT_EQ(SwapTokens("allan blake", &rng), "blake allan");
  EXPECT_EQ(SwapTokens("single", &rng), "single");
}

TEST(CorruptorTest, RecordCorruptionAlwaysChangesSomething) {
  queryer::RandomEngine rng(4);
  std::vector<std::string> record = {"id9", "allan blake", "edbt", "2015"};
  CorruptionConfig config;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::string> dup = CorruptRecord(record, {1, 2, 3}, &rng, config);
    EXPECT_EQ(dup[0], record[0]);  // Non-corruptible column intact.
    EXPECT_NE(dup, record);
  }
}

TEST(CorruptorTest, AtMostOneBlankedAttributePerRecord) {
  queryer::RandomEngine rng(5);
  CorruptionConfig config;
  config.missing_value_probability = 0.9;  // Force blanking pressure.
  config.max_mods_per_record = 6;
  std::vector<std::string> record = {"id", "alpha beta", "gamma delta",
                                     "epsilon zeta", "eta theta"};
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> dup = CorruptRecord(record, {1, 2, 3, 4}, &rng, config);
    int blanked = 0;
    for (std::size_t a = 1; a < dup.size(); ++a) {
      if (dup[a].empty()) ++blanked;
    }
    EXPECT_LE(blanked, 1) << "record lost more than one attribute";
  }
}

TEST(CorruptorTest, NumericTokensAreNeverAbbreviated) {
  queryer::RandomEngine rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(AbbreviateToken("2011", &rng), "2011");
    std::string out = AbbreviateToken("edbt 2011", &rng);
    EXPECT_TRUE(out == "e. 2011" || out == "edbt 2011") << out;
  }
}

TEST(GroundTruthTest, CountsAndMembership) {
  // Clusters: {0,1}, {2}, {3,4,5}.
  GroundTruth gt({0, 0, 1, 2, 2, 2});
  EXPECT_EQ(gt.NumDuplicateRecords(), 3u);
  EXPECT_EQ(gt.NumDuplicatePairs(), 1u + 3u);
  EXPECT_TRUE(gt.AreDuplicates(3, 5));
  EXPECT_FALSE(gt.AreDuplicates(0, 2));
  EXPECT_FALSE(gt.AreDuplicates(2, 2));
  EXPECT_EQ(gt.ClusterMembers(4), (std::vector<queryer::EntityId>{3, 4, 5}));
}

TEST(GroundTruthTest, PairCompleteness) {
  GroundTruth gt({0, 0, 1, 2, 2, 2});
  // Query = {0, 3}: wanted pairs (0,1), (3,4), (3,5).
  std::vector<queryer::Comparison> comparisons = {{0, 1}, {3, 4}, {1, 2}};
  EXPECT_NEAR(gt.PairCompleteness(comparisons, {0, 3}), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(gt.PairCompleteness({}, {2}), 1.0);  // Nothing to find.
}

TEST(PeopleTest, SizeAndDeterminism) {
  auto a = MakePeople(2000, {"athena institute"}, 42);
  auto b = MakePeople(2000, {"athena institute"}, 42);
  EXPECT_NEAR(static_cast<double>(a.table->num_rows()), 2000.0, 40.0);
  EXPECT_TRUE(SameTableContents(*a.table, *b.table));
  EXPECT_EQ(a.table->num_attributes(), 12u);
  auto c = MakePeople(2000, {"athena institute"}, 43);
  EXPECT_FALSE(SameTableContents(*a.table, *c.table));
}

TEST(PeopleTest, DuplicateRatioRoughlyForty) {
  auto ppl = MakePeople(5000, {}, 7);
  double ratio = static_cast<double>(ppl.ground_truth.NumDuplicateRecords()) /
                 static_cast<double>(ppl.table->num_rows());
  EXPECT_NEAR(ratio, 0.4, 0.05);
}

TEST(PeopleTest, IdsAreSequential) {
  auto ppl = MakePeople(500, {}, 9);
  auto id_idx = ppl.table->schema().IndexOf("id");
  ASSERT_TRUE(id_idx.has_value());
  for (queryer::EntityId e = 0; e < ppl.table->num_rows(); ++e) {
    EXPECT_EQ(ppl.table->ValueAt(e, *id_idx), std::to_string(e));
  }
}

TEST(PeopleTest, OrgJoinFractionControlsFk) {
  std::vector<std::string> orgs = {"athena institute", "ntua lab"};
  auto ppl = MakePeople(2000, orgs, 11);
  auto org_idx = ppl.table->schema().IndexOf("org");
  std::set<std::string> pool(orgs.begin(), orgs.end());
  std::size_t joining = 0;
  for (queryer::EntityId e = 0; e < ppl.table->num_rows(); ++e) {
    if (pool.count(std::string(ppl.table->ValueAt(e, *org_idx))) > 0) ++joining;
  }
  // All originals reference the pool; only corrupted duplicates may differ.
  EXPECT_GT(static_cast<double>(joining) /
                static_cast<double>(ppl.table->num_rows()),
            0.55);
}

TEST(OrgsTest, PoolNamesJoinBack) {
  auto oao = MakeOrganisations(800, 21);
  EXPECT_EQ(oao.table->num_attributes(), 3u);
  std::vector<std::string> pool = OrganisationNamePool(oao);
  EXPECT_GT(pool.size(), 0.8 * 0.9 * 800);  // ~one per cluster.
  // Every pool name exists verbatim in the table.
  std::set<std::string> names;
  auto name_idx = oao.table->schema().IndexOf("name");
  for (queryer::EntityId e = 0; e < oao.table->num_rows(); ++e) {
    names.insert(std::string(oao.table->ValueAt(e, *name_idx)));
  }
  for (const std::string& name : pool) EXPECT_TRUE(names.count(name) > 0);
}

TEST(OrgsTest, ProjectsReferenceOrgs) {
  auto oao = MakeOrganisations(400, 22);
  std::vector<std::string> pool = OrganisationNamePool(oao);
  auto oap = MakeProjects(1500, pool, 23);
  EXPECT_EQ(oap.table->num_attributes(), 8u);
  double ratio = static_cast<double>(oap.ground_truth.NumDuplicateRecords()) /
                 static_cast<double>(oap.table->num_rows());
  EXPECT_NEAR(ratio, 0.10, 0.03);
}

TEST(ScholarlyTest, DsdShape) {
  auto dsd = MakeDsdLike(3000, 31);
  EXPECT_EQ(dsd.table->num_attributes(), 5u);
  double ratio = static_cast<double>(dsd.ground_truth.NumDuplicateRecords()) /
                 static_cast<double>(dsd.table->num_rows());
  EXPECT_NEAR(ratio, 0.08, 0.03);
}

TEST(ScholarlyTest, VenueUniverseDeterministicAndSized) {
  auto u1 = MakeVenueUniverse(120, 5);
  auto u2 = MakeVenueUniverse(120, 5);
  ASSERT_EQ(u1.size(), 120u);
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_EQ(u1[i].short_name, u2[i].short_name);
    EXPECT_EQ(u1[i].full_name, u2[i].full_name);
  }
  // Short names are distinct (they act as join keys).
  std::set<std::string> shorts;
  for (const auto& v : u1) shorts.insert(v.short_name);
  EXPECT_EQ(shorts.size(), u1.size());
}

TEST(ScholarlyTest, OagpJoinFraction) {
  auto universe = MakeVenueUniverse(100, 6);
  OagpOptions options;
  options.venue_join_fraction = 0.3;
  options.venue_table_coverage = 0.2;
  auto oagp = MakeOagpLike(4000, universe, 33, options);
  EXPECT_EQ(oagp.table->num_attributes(), 18u);

  // Count papers whose venue is one of the covered (first 20) entries.
  std::set<std::string> covered;
  for (std::size_t i = 0; i < 20; ++i) {
    covered.insert(universe[i].short_name);
    covered.insert(universe[i].full_name);
  }
  auto venue_idx = oagp.table->schema().IndexOf("venue");
  std::size_t joining = 0;
  for (queryer::EntityId e = 0; e < oagp.table->num_rows(); ++e) {
    if (covered.count(std::string(oagp.table->ValueAt(e, *venue_idx))) > 0) {
      ++joining;
    }
  }
  double fraction = static_cast<double>(joining) /
                    static_cast<double>(oagp.table->num_rows());
  // Corruption on duplicates blurs it slightly; stays near the knob.
  EXPECT_NEAR(fraction, 0.3, 0.08);
}

TEST(ScholarlyTest, OagvCoversJoinableVenues) {
  auto universe = MakeVenueUniverse(100, 6);
  OagvOptions options;
  options.universe_coverage = 0.2;
  auto oagv = MakeOagvLike(600, universe, 35, options);
  EXPECT_EQ(oagv.table->num_attributes(), 6u);
  // Every covered venue appears at least once (short or full form).
  auto title_idx = oagv.table->schema().IndexOf("title");
  std::set<std::string> titles;
  for (queryer::EntityId e = 0; e < oagv.table->num_rows(); ++e) {
    titles.insert(std::string(oagv.table->ValueAt(e, *title_idx)));
  }
  std::size_t present = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (titles.count(universe[i].short_name) > 0 ||
        titles.count(universe[i].full_name) > 0) {
      ++present;
    }
  }
  EXPECT_EQ(present, 20u);
}

TEST(MotivatingExampleTest, MatchesPaperTables) {
  auto p = MakeMotivatingPublications();
  ASSERT_EQ(p.table->num_rows(), 8u);
  EXPECT_EQ(p.table->ValueAt(0, 1), "Collective Entity Resolution");
  EXPECT_TRUE(p.ground_truth.AreDuplicates(0, 1));    // P1 ≡ P2.
  EXPECT_TRUE(p.ground_truth.AreDuplicates(5, 7));    // P6 ≡ P8.
  EXPECT_FALSE(p.ground_truth.AreDuplicates(0, 5));
  auto v = MakeMotivatingVenues();
  ASSERT_EQ(v.table->num_rows(), 6u);
  EXPECT_TRUE(v.ground_truth.AreDuplicates(0, 3));    // V1 ≡ V4.
  EXPECT_TRUE(v.ground_truth.AreDuplicates(1, 2));    // V2 ≡ V3.
  EXPECT_TRUE(v.ground_truth.AreDuplicates(4, 5));    // V5 ≡ V6.
}

TEST(DictionariesTest, PoolsNonEmptyAndTitlesCompose) {
  EXPECT_GE(FirstNames().size(), 100u);
  EXPECT_GE(LastNames().size(), 100u);
  EXPECT_GE(TopicWords().size(), 80u);
  EXPECT_GE(Venues().size(), 30u);
  queryer::RandomEngine rng(8);
  std::string title = MakeTitle(&rng, 5);
  EXPECT_GE(queryer::Split(title, ' ').size(), 5u);
}

}  // namespace
}  // namespace queryer::datagen
