// Unit tests for Meta-Blocking: Block Purging, Block Filtering, the
// blocking graph and Edge Pruning.

#include <gtest/gtest.h>

#include <algorithm>

#include "metablocking/meta_blocking.h"

namespace queryer {
namespace {

Block MakeBlock(std::string key, std::vector<EntityId> entities,
                std::vector<EntityId> query_entities) {
  Block b;
  b.key = std::move(key);
  b.entities = std::move(entities);
  b.query_entities = std::move(query_entities);
  return b;
}

// A synthetic collection with one oversized stop-word block ("entity") and
// several small discriminative blocks.
BlockCollection StopWordCollection() {
  BlockCollection blocks;
  std::vector<EntityId> everyone;
  for (EntityId e = 0; e < 40; ++e) everyone.push_back(e);
  blocks.push_back(MakeBlock("entity", everyone, {0, 1}));
  blocks.push_back(MakeBlock("collective", {0, 1}, {0}));
  blocks.push_back(MakeBlock("consumer", {2, 3, 4}, {2}));
  blocks.push_back(MakeBlock("davids", {5, 6}, {5}));
  blocks.push_back(MakeBlock("blake", {7, 8, 9}, {7}));
  blocks.push_back(MakeBlock("2008", {0, 1, 10}, {0}));
  return blocks;
}

TEST(BlockPurgingTest, RemovesOversizedBlock) {
  BlockCollection purged = BlockPurging(StopWordCollection());
  EXPECT_EQ(purged.size(), 5u);
  for (const Block& b : purged) EXPECT_NE(b.key, "entity");
}

TEST(BlockPurgingTest, KeepsUniformCollection) {
  BlockCollection blocks;
  for (int i = 0; i < 10; ++i) {
    blocks.push_back(MakeBlock("k" + std::to_string(i),
                               {static_cast<EntityId>(2 * i),
                                static_cast<EntityId>(2 * i + 1)},
                               {static_cast<EntityId>(2 * i)}));
  }
  BlockCollection purged = BlockPurging(blocks);
  EXPECT_EQ(purged.size(), blocks.size());
}

TEST(BlockPurgingTest, EmptyCollection) {
  EXPECT_TRUE(BlockPurging(BlockCollection{}).empty());
  EXPECT_DOUBLE_EQ(ComputePurgingThreshold({}), 0.0);
}

TEST(BlockPurgingTest, ThresholdFromSizesMatchesBlockVersion) {
  BlockCollection blocks = StopWordCollection();
  std::vector<std::size_t> sizes;
  for (const Block& b : blocks) sizes.push_back(b.size());
  EXPECT_DOUBLE_EQ(ComputePurgingThreshold(blocks),
                   ComputePurgingThresholdFromSizes(sizes));
}

TEST(BlockFilteringTest, RatioOneKeepsEverything) {
  BlockCollection blocks = StopWordCollection();
  BlockCollection filtered = BlockFiltering(blocks, 1.0);
  EXPECT_EQ(filtered.size(), blocks.size());
}

TEST(BlockFilteringTest, EntityRetainedInSmallestBlocks) {
  // Entity 0 appears in three blocks of sizes 2, 3, 40. With ratio 0.5 it
  // must keep ceil(0.5*3)=2 blocks: the two smallest.
  BlockCollection blocks;
  std::vector<EntityId> everyone;
  for (EntityId e = 0; e < 40; ++e) everyone.push_back(e);
  blocks.push_back(MakeBlock("big", everyone, {0}));
  blocks.push_back(MakeBlock("mid", {0, 1, 2}, {0}));
  blocks.push_back(MakeBlock("small", {0, 1}, {0}));
  BlockCollection filtered = BlockFiltering(blocks, 0.5);
  bool saw_big = false;
  for (const Block& b : filtered) {
    if (b.key == "big") {
      saw_big = true;
      EXPECT_EQ(std::count(b.entities.begin(), b.entities.end(), 0), 0);
    }
  }
  // Entity 1 also kept only 2 of its 3 blocks; entity 0 stays in mid+small.
  (void)saw_big;
  auto small_it = std::find_if(filtered.begin(), filtered.end(),
                               [](const Block& b) { return b.key == "small"; });
  ASSERT_NE(small_it, filtered.end());
  EXPECT_NE(std::count(small_it->entities.begin(), small_it->entities.end(), 0), 0);
}

TEST(BlockFilteringTest, DropsBlocksWithoutQueryEntities) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("a", {0, 1}, {}));  // No query entity.
  blocks.push_back(MakeBlock("b", {2, 3}, {2}));
  BlockCollection filtered = BlockFiltering(blocks, 0.9);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].key, "b");
}

TEST(BlockingGraphTest, CbsCountsSharedBlocks) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("x", {0, 1}, {0}));
  blocks.push_back(MakeBlock("y", {0, 1}, {0}));
  blocks.push_back(MakeBlock("z", {0, 2}, {0}));
  BlockingGraph graph = BuildBlockingGraph(blocks, EdgeWeighting::kCbs);
  ASSERT_EQ(graph.edges.size(), 2u);
  // Edges sorted by pair: (0,1) weight 2, (0,2) weight 1.
  EXPECT_EQ(graph.edges[0].pair, (Comparison{0, 1}));
  EXPECT_DOUBLE_EQ(graph.edges[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(graph.edges[1].weight, 1.0);
  EXPECT_DOUBLE_EQ(graph.mean_weight, 1.5);
}

TEST(BlockingGraphTest, JsNormalizesBySharedUniverse) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("x", {0, 1}, {0}));
  blocks.push_back(MakeBlock("y", {0, 1}, {0}));
  blocks.push_back(MakeBlock("z", {0, 2}, {0}));
  BlockingGraph graph = BuildBlockingGraph(blocks, EdgeWeighting::kJs);
  // (0,1): shared 2, |blocks(0)|=3, |blocks(1)|=2 -> 2/(3+2-2) = 2/3.
  EXPECT_NEAR(graph.edges[0].weight, 2.0 / 3.0, 1e-9);
  // (0,2): shared 1 -> 1/(3+1-1) = 1/3.
  EXPECT_NEAR(graph.edges[1].weight, 1.0 / 3.0, 1e-9);
}

TEST(BlockingGraphTest, ArcsRewardsSmallBlocks) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("small", {0, 1}, {0}));          // ||b|| = 1.
  blocks.push_back(MakeBlock("large", {0, 2, 3, 4, 5}, {0})); // ||b|| = 10.
  BlockingGraph graph = BuildBlockingGraph(blocks, EdgeWeighting::kArcs);
  auto weight_of = [&](Comparison pair) {
    for (const auto& edge : graph.edges) {
      if (edge.pair == pair) return edge.weight;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(weight_of({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(weight_of({0, 2}), 0.1);
}

TEST(BlockingGraphTest, OnlyQueryRelevantEdges) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("x", {0, 1, 2, 3}, {0}));
  BlockingGraph graph = BuildBlockingGraph(blocks, EdgeWeighting::kCbs);
  // Only pairs touching entity 0: (0,1), (0,2), (0,3) — not (1,2) etc.
  EXPECT_EQ(graph.edges.size(), 3u);
  for (const auto& edge : graph.edges) EXPECT_EQ(edge.pair.first, 0u);
}

TEST(EdgePruningTest, KeepsAtOrAboveMean) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("x", {0, 1}, {0}));
  blocks.push_back(MakeBlock("y", {0, 1}, {0}));
  blocks.push_back(MakeBlock("z", {0, 2}, {0}));
  std::vector<Comparison> kept = EdgePruning(blocks, EdgeWeighting::kCbs);
  // Mean = 1.5; only (0,1) with weight 2 survives.
  EXPECT_EQ(kept, (std::vector<Comparison>{{0, 1}}));
}

TEST(EdgePruningTest, UniformWeightsKeepAll) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("x", {0, 1}, {0}));
  blocks.push_back(MakeBlock("y", {2, 3}, {2}));
  std::vector<Comparison> kept = EdgePruning(blocks, EdgeWeighting::kCbs);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(DistinctComparisonsTest, DeduplicatesAcrossBlocks) {
  BlockCollection blocks;
  blocks.push_back(MakeBlock("x", {0, 1}, {0}));
  blocks.push_back(MakeBlock("y", {1, 0}, {0}));  // Same pair, other order.
  std::vector<Comparison> comparisons = DistinctComparisons(blocks);
  EXPECT_EQ(comparisons, (std::vector<Comparison>{{0, 1}}));
}

TEST(MetaBlockingTest, AllConfigRunsEveryStage) {
  MetaBlockingResult result =
      RunMetaBlocking(StopWordCollection(), MetaBlockingConfig::All());
  EXPECT_EQ(result.blocks_in, 6u);
  EXPECT_LT(result.blocks_after_purging, result.blocks_in);
  EXPECT_LE(result.comparisons.size(), result.comparisons_before_pruning);
}

TEST(MetaBlockingTest, ConfigsOrderedByAggressiveness) {
  std::size_t all =
      RunMetaBlocking(StopWordCollection(), MetaBlockingConfig::All())
          .comparisons.size();
  std::size_t bp_bf =
      RunMetaBlocking(StopWordCollection(), MetaBlockingConfig::BpBf())
          .comparisons.size();
  std::size_t none =
      RunMetaBlocking(StopWordCollection(), MetaBlockingConfig::None())
          .comparisons.size();
  EXPECT_LE(all, bp_bf);
  EXPECT_LE(bp_bf, none);
  EXPECT_GT(none, 0u);
}

}  // namespace
}  // namespace queryer
