// Crash-recovery drills for the durable Link Index and the snapshot tier:
// the WAL round trip (publish/mark/mark-all/reset replayed bit-for-bit),
// compaction folding the log into a snapshot, torn tails from crash-mid-
// append failpoints (truncated on recovery, acked state never lost),
// corrupted logs failing cleanly, and the engine-level invariant the
// ISSUE pins: after ANY failpoint-injected crash (mid-log-append, mid-
// section-write, mid-fsync), every recovered link is genuine and a fault-
// free re-resolution on the recovered engine converges bit-for-bit to the
// clean-engine reference — with only the torn tail re-resolved. Capped by
// seeded write -> crash -> recover chaos loops (QUERYER_CHAOS_SEED narrows
// to one seed, as in the CI chaos matrix).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "matching/link_index.h"
#include "obs/metrics.h"
#include "persist/durable_link_index.h"
#include "persist/snapshot.h"
#include "storage/csv.h"

namespace queryer {
namespace {

using Rows = std::vector<std::vector<std::string>>;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "recovery_test_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  EXPECT_TRUE(EnsureDir(dir).ok());
  return dir;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class ScopedFailpoint {
 public:
  ScopedFailpoint(const std::string& site, const std::string& spec)
      : site_(site) {
    Status armed = Failpoints::Global().Arm(site, spec);
    EXPECT_TRUE(armed.ok()) << armed.ToString();
  }
  ~ScopedFailpoint() { Failpoints::Global().Disarm(site_); }

 private:
  std::string site_;
};

// Opens (recovering) a durable index over `dir` attached to `index`.
std::unique_ptr<DurableLinkIndex> OpenDurable(
    const std::string& dir, LinkIndex* index,
    DurableLinkIndex::Options options = {}) {
  auto opened =
      DurableLinkIndex::Open(dir + "/t.li", dir + "/t.lilog", index, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return opened.ok() ? std::move(*opened) : nullptr;
}

// The full observable ER state of a LinkIndex, for bit-for-bit compares.
struct IndexState {
  std::vector<EntityId> representative;
  std::vector<std::vector<EntityId>> cluster;
  std::vector<bool> resolved;
  std::size_t num_links;

  static IndexState Capture(const LinkIndex& index) {
    IndexState state;
    for (EntityId e = 0; e < index.num_entities(); ++e) {
      state.representative.push_back(index.Representative(e));
      state.cluster.push_back(index.Cluster(e));
      state.resolved.push_back(index.IsResolved(e));
    }
    state.num_links = index.num_links();
    return state;
  }

  bool operator==(const IndexState& other) const {
    return representative == other.representative && cluster == other.cluster &&
           resolved == other.resolved && num_links == other.num_links;
  }
};

// ---- Durable Link Index: log round trip ----------------------------------

TEST(DurableLinkIndexTest, LogReplayRestoresLinksAndMarks) {
  const std::string dir = ScratchDir("replay");
  IndexState before;
  {
    LinkIndex index(10);
    auto durable = OpenDurable(dir, &index);
    ASSERT_NE(durable, nullptr);
    EXPECT_EQ(durable->recovery_stats().replayed_records, 0u);
    index.PublishLinks({{0, 1}, {2, 3}, {1, 4}});
    index.MarkResolvedBatch({0, 1, 2});
    index.AddLink(5, 6);
    index.MarkResolved(5);
    before = IndexState::Capture(index);
  }
  LinkIndex recovered(10);
  auto durable = OpenDurable(dir, &recovered);
  ASSERT_NE(durable, nullptr);
  EXPECT_EQ(IndexState::Capture(recovered), before);
  EXPECT_EQ(durable->recovery_stats().replayed_records, 4u);
  EXPECT_FALSE(durable->recovery_stats().torn_tail_truncated);
  // Recovered LSNs continue monotonically: new appends after recovery are
  // themselves recoverable.
  recovered.PublishLinks({{7, 8}});
  recovered.MarkResolvedBatch({7, 8});
}

TEST(DurableLinkIndexTest, MarkAllAndResetAreReplayed) {
  const std::string dir = ScratchDir("markall");
  {
    LinkIndex index(6);
    auto durable = OpenDurable(dir, &index);
    index.PublishLinks({{0, 1}});
    index.MarkAllResolved();
  }
  {
    LinkIndex recovered(6);
    auto durable = OpenDurable(dir, &recovered);
    EXPECT_EQ(recovered.num_resolved(), 6u);
    EXPECT_EQ(recovered.Representative(1), recovered.Representative(0));
    // Reset wipes the slate — and must survive recovery too.
    recovered.Reset();
  }
  LinkIndex after_reset(6);
  auto durable = OpenDurable(dir, &after_reset);
  EXPECT_EQ(after_reset.num_links(), 0u);
  EXPECT_EQ(after_reset.num_resolved(), 0u);
  EXPECT_EQ(after_reset.Representative(1), 1u);
}

TEST(DurableLinkIndexTest, CompactionFoldsLogIntoSnapshot) {
  const std::string dir = ScratchDir("compact");
  IndexState before;
  {
    LinkIndex index(12);
    auto durable = OpenDurable(dir, &index);
    index.PublishLinks({{0, 1}, {1, 2}, {4, 5}});
    index.MarkResolvedBatch({0, 1, 2, 4, 5});
    before = IndexState::Capture(index);
    ASSERT_TRUE(durable->Compact().ok());
    // The log is truncated to its header; the state lives in the snapshot.
    EXPECT_EQ(durable->log_bytes(), 16u);
    // Appends after compaction land in the (now tiny) log.
    index.PublishLinks({{6, 7}});
    index.MarkResolvedBatch({6, 7});
    before = IndexState::Capture(index);
  }
  LinkIndex recovered(12);
  auto durable = OpenDurable(dir, &recovered);
  ASSERT_NE(durable, nullptr);
  EXPECT_EQ(IndexState::Capture(recovered), before);
  EXPECT_GT(durable->recovery_stats().snapshot_lsn, 0u);
  // Only the post-compaction records replay.
  EXPECT_EQ(durable->recovery_stats().replayed_records, 2u);
}

TEST(DurableLinkIndexTest, SnapshotEntityCountMismatchIsCorruption) {
  const std::string dir = ScratchDir("size_mismatch");
  {
    LinkIndex index(8);
    auto durable = OpenDurable(dir, &index);
    index.PublishLinks({{0, 1}});
    ASSERT_TRUE(durable->Compact().ok());
  }
  LinkIndex wrong_size(9);
  auto opened = DurableLinkIndex::Open(dir + "/t.li", dir + "/t.lilog",
                                       &wrong_size, {});
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
}

// ---- Torn tails and log corruption ---------------------------------------

TEST(DurableLinkIndexTest, TornAppendIsTruncatedAndAckedStateSurvives) {
  const std::string dir = ScratchDir("torn");
  IndexState acked;
  {
    LinkIndex index(10);
    auto durable = OpenDurable(dir, &index);
    index.PublishLinks({{0, 1}, {2, 3}});
    index.MarkResolvedBatch({0, 1, 2, 3});
    acked = IndexState::Capture(index);
    // Crash mid-append: the failpoint writes a torn half-record and fails
    // the publish; the in-memory index must stay untouched...
    ScopedFailpoint armed("li.log_append", "error(once)");
    EXPECT_THROW(index.PublishLinks({{4, 5}}), LinkIndexWalError);
    EXPECT_EQ(IndexState::Capture(index), acked);
  }  // ...and the process "dies" with the torn tail on disk.
  const std::uint64_t torn_before =
      GlobalEngineMetrics().recovery_torn_tails->Value();
  LinkIndex recovered(10);
  auto durable = OpenDurable(dir, &recovered);
  ASSERT_NE(durable, nullptr);
  EXPECT_EQ(IndexState::Capture(recovered), acked);
  EXPECT_TRUE(durable->recovery_stats().torn_tail_truncated);
  EXPECT_EQ(GlobalEngineMetrics().recovery_torn_tails->Value(),
            torn_before + 1);
  // The truncated log is clean again: append + a third recovery round-trip.
  recovered.PublishLinks({{4, 5}});
  IndexState final_state = IndexState::Capture(recovered);
  durable.reset();
  LinkIndex again(10);
  auto durable2 = OpenDurable(dir, &again);
  EXPECT_EQ(IndexState::Capture(again), final_state);
  EXPECT_FALSE(durable2->recovery_stats().torn_tail_truncated);
}

TEST(DurableLinkIndexTest, TornAppendOverwrittenByNextSuccessfulAppend) {
  // A FAILED append must not poison a SURVIVING process: the next
  // successful append overwrites the torn half-record in place.
  const std::string dir = ScratchDir("overwrite");
  IndexState expected;
  {
    LinkIndex index(10);
    auto durable = OpenDurable(dir, &index);
    index.PublishLinks({{0, 1}});
    {
      ScopedFailpoint armed("li.log_append", "error(once)");
      EXPECT_THROW(index.PublishLinks({{2, 3}}), LinkIndexWalError);
    }
    index.PublishLinks({{4, 5}});  // Overwrites the torn bytes.
    index.MarkResolvedBatch({0, 1, 4, 5});
    expected = IndexState::Capture(index);
  }
  LinkIndex recovered(10);
  auto durable = OpenDurable(dir, &recovered);
  EXPECT_EQ(IndexState::Capture(recovered), expected);
  // No torn tail: the overwrite left a fully valid log.
  EXPECT_FALSE(durable->recovery_stats().torn_tail_truncated);
}

TEST(DurableLinkIndexTest, MidLogCorruptionTruncatesFromThere) {
  const std::string dir = ScratchDir("midflip");
  IndexState full;
  {
    LinkIndex index(10);
    auto durable = OpenDurable(dir, &index);
    index.PublishLinks({{0, 1}});
    index.PublishLinks({{2, 3}});
    index.PublishLinks({{4, 5}});
    full = IndexState::Capture(index);
  }
  // Flip one byte in the SECOND record's payload region. Standard WAL
  // semantics: replay stops at the first bad checksum; the first record
  // survives, everything from the flip on is gone.
  const std::string log_path = dir + "/t.lilog";
  std::string bytes = SlurpFile(log_path);
  ASSERT_GT(bytes.size(), 60u);
  bytes[55] = static_cast<char>(bytes[55] ^ 0xff);
  DumpFile(log_path, bytes);

  LinkIndex recovered(10);
  auto durable = OpenDurable(dir, &recovered);
  ASSERT_NE(durable, nullptr);
  EXPECT_TRUE(durable->recovery_stats().torn_tail_truncated);
  EXPECT_LT(durable->recovery_stats().replayed_records, 3u);
  // Whatever was recovered is a prefix of the acked state — links are
  // genuine, never invented.
  for (EntityId e = 0; e < 10; ++e) {
    for (EntityId member : recovered.Cluster(e)) {
      if (member == e) continue;
      EXPECT_EQ(full.representative[member], full.representative[e])
          << "recovered link " << e << "-" << member << " was never published";
    }
  }
}

TEST(DurableLinkIndexTest, CorruptLogHeaderFailsCleanly) {
  const std::string dir = ScratchDir("header");
  {
    LinkIndex index(4);
    auto durable = OpenDurable(dir, &index);
    index.PublishLinks({{0, 1}});
  }
  const std::string log_path = dir + "/t.lilog";
  std::string bytes = SlurpFile(log_path);
  bytes[0] = static_cast<char>(bytes[0] ^ 0xff);  // Break the magic.
  DumpFile(log_path, bytes);
  LinkIndex recovered(4);
  auto opened =
      DurableLinkIndex::Open(dir + "/t.li", dir + "/t.lilog", &recovered, {});
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
}

// ---- Engine-level crash drills -------------------------------------------

class CrashDrillTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(1400, 777));
    csv_path_ = new std::string(ScratchDir("drill_csv") + "/dsd.csv");
    ASSERT_TRUE(WriteCsvFile(*dsd_->table, *csv_path_).ok());
    // The clean-engine reference every recovery must converge to.
    QueryEngine reference;
    ASSERT_TRUE(reference.RegisterCsvFile(*csv_path_, "dsd").ok());
    auto result = reference.Execute(kDedupSql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference_rows_ = new Rows(result->rows);
    reference_comparisons_ = result->stats.comparisons_executed;
    ASSERT_FALSE(reference_rows_->empty());
  }
  static void TearDownTestSuite() {
    delete dsd_;
    delete csv_path_;
    delete reference_rows_;
    dsd_ = nullptr;
    csv_path_ = nullptr;
    reference_rows_ = nullptr;
  }

  static constexpr const char* kDedupSql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 25";

  // One write -> crash -> recover drill: run the DEDUP query on a durable
  // engine with `site` armed as `spec` (success or failure both fine —
  // the arming decides), destroy the engine mid-flight state and all,
  // then recover a fresh engine from the same data_dir and assert the
  // fault-free re-resolution answers bit-for-bit like the clean engine.
  void Drill(const std::string& data_dir, const std::string& site,
             const std::string& spec) {
    {
      EngineOptions options;
      options.data_dir = data_dir;
      QueryEngine crashing(options);
      ASSERT_TRUE(crashing.RegisterCsvFile(*csv_path_, "dsd").ok());
      ScopedFailpoint armed(site, spec);
      (void)crashing.Execute(kDedupSql);  // May fail — that is the drill.
      if (site == "persist.write_section" || site == "persist.fsync") {
        (void)crashing.SaveSnapshots();  // Crash inside the snapshot tier.
      }
    }  // "Crash": the engine dies; torn on-disk state stays.
    EngineOptions options;
    options.data_dir = data_dir;
    QueryEngine recovered(options);
    ASSERT_TRUE(recovered.RegisterCsvFile(*csv_path_, "dsd").ok())
        << "recovery must open whatever the crash left behind";
    auto result = recovered.Execute(kDedupSql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows, *reference_rows_)
        << site << " " << spec << ": recovered engine diverged";
    // Only the torn tail is re-resolved: recovery never does MORE
    // comparison work than a fully cold engine.
    EXPECT_LE(result->stats.comparisons_executed, reference_comparisons_);
  }

  static datagen::GeneratedDataset* dsd_;
  static std::string* csv_path_;
  static Rows* reference_rows_;
  static std::size_t reference_comparisons_;
};

datagen::GeneratedDataset* CrashDrillTest::dsd_ = nullptr;
std::string* CrashDrillTest::csv_path_ = nullptr;
Rows* CrashDrillTest::reference_rows_ = nullptr;
std::size_t CrashDrillTest::reference_comparisons_ = 0;

TEST_F(CrashDrillTest, CrashMidLogAppendEveryOtherRecord) {
  Drill(ScratchDir("drill_append"), "li.log_append", "error(every=2)");
}

TEST_F(CrashDrillTest, CrashOnFirstLogAppend) {
  Drill(ScratchDir("drill_first"), "li.log_append", "error");
}

TEST_F(CrashDrillTest, CrashMidSnapshotSectionWrite) {
  Drill(ScratchDir("drill_section"), "persist.write_section", "error(once)");
}

TEST_F(CrashDrillTest, CrashMidSnapshotFsync) {
  Drill(ScratchDir("drill_fsync"), "persist.fsync", "error(once)");
}

TEST_F(CrashDrillTest, RecoveredStateSkipsAlreadyResolvedWork) {
  // The half-successful run's surviving appends must SAVE work on
  // recovery: a crash after some clean publishes leaves a recovered
  // engine that re-resolves strictly less than a cold engine.
  const std::string data_dir = ScratchDir("drill_partial");
  {
    EngineOptions options;
    options.data_dir = data_dir;
    QueryEngine crashing(options);
    ASSERT_TRUE(crashing.RegisterCsvFile(*csv_path_, "dsd").ok());
    // Fault-free full run: everything resolved and logged...
    auto result = crashing.Execute(kDedupSql);
    ASSERT_TRUE(result.ok());
    // ...then a torn append right before "the crash".
    ScopedFailpoint armed("li.log_append", "error");
    auto runtime = crashing.GetRuntime("dsd");
    ASSERT_TRUE(runtime.ok());
    EXPECT_THROW((*runtime)->link_index().PublishLinks({{0, 1}}),
                 LinkIndexWalError);
  }
  EngineOptions options;
  options.data_dir = data_dir;
  QueryEngine recovered(options);
  ASSERT_TRUE(recovered.RegisterCsvFile(*csv_path_, "dsd").ok());
  auto result = recovered.Execute(kDedupSql);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows, *reference_rows_);
  EXPECT_EQ(result->stats.comparisons_executed, 0u)
      << "everything before the torn tail was already resolved";
}

// ---- Seeded chaos: write -> crash -> recover loops -----------------------

TEST_F(CrashDrillTest, SeededChaosLoopsConvergeAfterEveryCrash) {
  const char* seed_env = std::getenv("QUERYER_CHAOS_SEED");
  std::vector<unsigned> seeds = {1, 2, 3, 4};
  if (seed_env != nullptr) seeds = {static_cast<unsigned>(std::atoi(seed_env))};

  for (unsigned seed : seeds) {
    const std::string data_dir =
        ScratchDir("chaos_" + std::to_string(seed));
    // Several crash-recover rounds over the SAME data_dir: each round
    // recovers the previous round's torn state, does some faulty work,
    // and crashes again. Recovery must converge every single time.
    for (int round = 0; round < 3; ++round) {
      EngineOptions options;
      options.data_dir = data_dir;
      // Small compaction threshold: chaos rounds cross the compaction
      // boundary too, so snapshot+log recovery interleaves with pure-log.
      options.link_log_compact_bytes = 1 << 12;
      QueryEngine crashing(options);
      ASSERT_TRUE(crashing.RegisterCsvFile(*csv_path_, "dsd").ok());
      const std::string spec =
          "error(p=0.4,seed=" +
          std::to_string(seed * 100 + static_cast<unsigned>(round)) + ")";
      ScopedFailpoint armed("li.log_append", spec);
      (void)crashing.Execute(kDedupSql);
      (void)crashing.Execute(
          "SELECT DEDUP title FROM dsd WHERE MOD(id, 100) >= 75");
    }
    // Final recovery: fault-free, must match the clean-engine reference.
    EngineOptions options;
    options.data_dir = data_dir;
    QueryEngine recovered(options);
    ASSERT_TRUE(recovered.RegisterCsvFile(*csv_path_, "dsd").ok());
    auto result = recovered.Execute(kDedupSql);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_EQ(result->rows, *reference_rows_) << "seed " << seed;
    EXPECT_LE(result->stats.comparisons_executed, reference_comparisons_)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace queryer
