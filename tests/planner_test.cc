// Unit tests for the cost-based planner: statistics, comparison estimation
// and plan-shape selection (NES / NES2 / AES, Dirty-Left vs Dirty-Right).

#include <gtest/gtest.h>

#include "datagen/orgs.h"
#include "datagen/people.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "planner/planner.h"
#include "planner/statistics.h"

namespace queryer {
namespace {

// Exclude the e_id column from blocking and matching, as the engine does.
BlockingOptions TestBlocking() {
  BlockingOptions options;
  options.excluded_attributes = {0};
  return options;
}
MatchingConfig TestMatching() {
  MatchingConfig config;
  config.excluded_attributes = {0};
  return config;
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p = datagen::MakeMotivatingPublications();
    auto v = datagen::MakeMotivatingVenues();
    catalog_.RegisterOrReplace(p.table);
    catalog_.RegisterOrReplace(v.table);
    runtimes_["p"] = std::make_shared<TableRuntime>(
        p.table, TestBlocking(), MetaBlockingConfig::BpBf(), TestMatching());
    runtimes_["v"] = std::make_shared<TableRuntime>(
        v.table, TestBlocking(), MetaBlockingConfig::BpBf(), TestMatching());
  }

  Result<PlanPtr> Plan(const std::string& sql, PlannerMode mode) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    Planner planner(&catalog_, &runtimes_, &statistics_);
    return planner.BuildPlan(*stmt, mode);
  }

  Catalog catalog_;
  RuntimeRegistry runtimes_;
  StatisticsCache statistics_;
};

constexpr const char* kSpDedup =
    "SELECT DEDUP title FROM p WHERE venue = 'EDBT'";
constexpr const char* kSpjDedup =
    "SELECT DEDUP p.title, v.rank FROM p INNER JOIN v ON p.venue = v.title "
    "WHERE p.venue = 'EDBT'";

TEST_F(PlannerTest, SpNaivePutsDedupAboveScan) {
  auto plan = Plan(kSpDedup, PlannerMode::kNaive);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = (*plan)->ToString();
  // GroupFilter above Deduplicate above TableScan (Fig. 5 shape).
  std::size_t group_filter = text.find("GroupFilter");
  std::size_t dedup = text.find("Deduplicate");
  std::size_t scan = text.find("TableScan");
  ASSERT_NE(group_filter, std::string::npos) << text;
  ASSERT_NE(dedup, std::string::npos);
  EXPECT_LT(group_filter, dedup);
  EXPECT_LT(dedup, scan);
}

TEST_F(PlannerTest, SpNaive2PutsDedupAboveFilter) {
  auto plan = Plan(kSpDedup, PlannerMode::kNaive2);
  ASSERT_TRUE(plan.ok());
  std::string text = (*plan)->ToString();
  std::size_t dedup = text.find("Deduplicate");
  std::size_t filter = text.find("Filter(");
  ASSERT_NE(dedup, std::string::npos) << text;
  ASSERT_NE(filter, std::string::npos);
  EXPECT_LT(dedup, filter);  // Dedup above Filter (Fig. 6 shape).
  EXPECT_EQ(text.find("GroupFilter"), std::string::npos);
}

TEST_F(PlannerTest, SpjNaiveUsesCleanJoin) {
  auto plan = Plan(kSpjDedup, PlannerMode::kNaive);
  ASSERT_TRUE(plan.ok());
  std::string text = (*plan)->ToString();
  EXPECT_NE(text.find("DedupJoin[Clean]"), std::string::npos) << text;
  // Both branches carry their own Deduplicate.
  std::size_t first = text.find("Deduplicate");
  std::size_t second = text.find("Deduplicate", first + 1);
  EXPECT_NE(second, std::string::npos);
}

TEST_F(PlannerTest, SpjAdvancedCleansSelectiveBranchFirst) {
  auto plan = Plan(kSpjDedup, PlannerMode::kAdvanced);
  ASSERT_TRUE(plan.ok());
  std::string text = (*plan)->ToString();
  // Under the safe dirty-side semantics (DESIGN.md §3a.2) the dirty branch
  // is unfiltered, so the filtered P selection is the cheap side to clean:
  // Dirty-Right, with P's predicate pushed into the Deduplicate branch.
  EXPECT_NE(text.find("DedupJoin[Dirty-Right]"), std::string::npos) << text;
  // Exactly one Deduplicate operator in the tree (the dirty side resolves
  // inside the join).
  std::size_t first = text.find("Deduplicate");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("Deduplicate", first + 1), std::string::npos);
}

TEST_F(PlannerTest, SpjAdvancedFlipsWhenOtherSideCheaper) {
  // Without any predicate, both sides would be fully resolved; the smaller
  // V table is the cheaper branch to clean first: Dirty-Left.
  auto plan = Plan(
      "SELECT DEDUP p.title FROM p INNER JOIN v ON p.venue = v.title",
      PlannerMode::kAdvanced);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = (*plan)->ToString();
  EXPECT_NE(text.find("DedupJoin[Dirty-Left]"), std::string::npos) << text;
}

TEST_F(PlannerTest, AdvancedDirtySidePredicateBecomesGroupFilter) {
  auto plan = Plan(
      "SELECT DEDUP p.title FROM p INNER JOIN v ON p.venue = v.title "
      "WHERE p.venue = 'EDBT' AND v.rank = 1",
      PlannerMode::kAdvanced);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = (*plan)->ToString();
  // The dirty side's predicate must be applied duplicate-group-aware above
  // the join, and its scan must be unfiltered.
  EXPECT_NE(text.find("GroupFilter"), std::string::npos) << text;
  std::size_t group_filter = text.find("GroupFilter");
  std::size_t join = text.find("DedupJoin");
  EXPECT_LT(group_filter, join) << text;
}

TEST_F(PlannerTest, PlainQueryHasNoErOperators) {
  auto plan = Plan(
      "SELECT p.title FROM p INNER JOIN v ON p.venue = v.title "
      "WHERE p.year > 2000",
      PlannerMode::kAdvanced);
  ASSERT_TRUE(plan.ok());
  std::string text = (*plan)->ToString();
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_EQ(text.find("Dedup"), std::string::npos);
  EXPECT_EQ(text.find("GroupEntities"), std::string::npos);
}

TEST_F(PlannerTest, WhereStyleEquijoinBecomesJoin) {
  auto plan = Plan(
      "SELECT DEDUP p.title FROM p INNER JOIN v ON p.venue = v.title "
      "WHERE p.venue = v.title AND p.year > 2000",
      PlannerMode::kNaive2);
  // The WHERE equijoin duplicates the ON condition; it must not break
  // planning (it re-joins the same pair, which the planner folds).
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST_F(PlannerTest, UnknownTableOrColumnFails) {
  EXPECT_FALSE(Plan("SELECT DEDUP x FROM unknown", PlannerMode::kNaive).ok());
  EXPECT_FALSE(
      Plan("SELECT DEDUP nope FROM p", PlannerMode::kNaive).ok());
  // Ambiguity: both p and v have a "title" column.
  EXPECT_FALSE(Plan(
                   "SELECT DEDUP title FROM p INNER JOIN v ON p.venue = "
                   "v.title WHERE title = 'EDBT'",
                   PlannerMode::kNaive)
                   .ok());
}

TEST_F(PlannerTest, EstimateBranchComparisons) {
  auto stmt = ParseSelect(kSpjDedup);
  ASSERT_TRUE(stmt.ok());
  Planner planner(&catalog_, &runtimes_, &statistics_);
  auto p_cost = planner.EstimateBranchComparisons(*stmt, "p");
  auto v_cost = planner.EstimateBranchComparisons(*stmt, "v");
  ASSERT_TRUE(p_cost.ok());
  ASSERT_TRUE(v_cost.ok());
  EXPECT_GT(*p_cost, 0.0);
  EXPECT_GT(*v_cost, 0.0);
  // Paper Table 5 ordering: the whole (small) V table costs less than the
  // EDBT selection of P, whose entities sit in the example's big blocks.
  EXPECT_LT(*v_cost, *p_cost);
  EXPECT_FALSE(planner.EstimateBranchComparisons(*stmt, "zzz").ok());
}

TEST(StatisticsTest, DuplicationFactorDetectsDuplicates) {
  auto ppl = datagen::MakePeople(1500, {}, 77);
  TableRuntime runtime(ppl.table, TestBlocking(), MetaBlockingConfig::All(),
                       TestMatching());
  StatisticsCache stats;
  double df = stats.DuplicationFactor(&runtime);
  // PPL has ~40% duplicates: resolving a sample should grow it noticeably.
  EXPECT_GT(df, 1.15);
  EXPECT_LT(df, 2.5);
  // Cached value identical.
  EXPECT_DOUBLE_EQ(stats.DuplicationFactor(&runtime), df);
  // Sampling must not pollute the runtime's own link index.
  EXPECT_EQ(runtime.link_index().num_resolved(), 0u);
  EXPECT_EQ(runtime.link_index().num_links(), 0u);
}

TEST(StatisticsTest, JoinFractionMeasuresOverlap) {
  auto oao = datagen::MakeOrganisations(300, 5);
  std::vector<std::string> pool = datagen::OrganisationNamePool(oao);
  auto ppl = datagen::MakePeople(900, pool, 6);
  TableRuntime ppl_rt(ppl.table, TestBlocking(), MetaBlockingConfig::All(),
                      TestMatching());
  TableRuntime oao_rt(oao.table, TestBlocking(), MetaBlockingConfig::All(),
                      TestMatching());
  StatisticsCache stats;
  double fraction = stats.JoinFraction(&ppl_rt, "org", &oao_rt, "name");
  EXPECT_GT(fraction, 0.5);  // Originals all join; duplicates may not.
  EXPECT_LE(fraction, 1.0);
  // Unknown column yields zero, not an error.
  EXPECT_DOUBLE_EQ(stats.JoinFraction(&ppl_rt, "nope", &oao_rt, "name"), 0.0);
}

TEST(StatisticsTest, EstimationTracksSelectivity) {
  auto dsd = datagen::MakeDsdLike(4000, 13);
  TableRuntime runtime(dsd.table, TestBlocking(), MetaBlockingConfig::All(),
                       TestMatching());
  StatisticsCache stats;

  ExprPtr narrow = Expr::Compare(CompareOp::kEq, Expr::Column("dsd", "venue"),
                                 Expr::Literal("EDBT"));
  ExprPtr wide = nullptr;  // Whole table.
  auto narrow_cost = stats.EstimateComparisons(&runtime, narrow.get(), "dsd");
  auto wide_cost = stats.EstimateComparisons(&runtime, nullptr, "dsd");
  ASSERT_TRUE(narrow_cost.ok());
  ASSERT_TRUE(wide_cost.ok());
  EXPECT_LT(*narrow_cost, *wide_cost);
  EXPECT_GT(*wide_cost, 0.0);
}

TEST(StatisticsTest, ModPredicateFallsBackToExactScan) {
  auto dsd = datagen::MakeDsdLike(1000, 17);
  TableRuntime runtime(dsd.table, TestBlocking(), MetaBlockingConfig::All(),
                       TestMatching());
  StatisticsCache stats;
  ExprPtr pred = Expr::Compare(
      CompareOp::kLt, Expr::Mod(Expr::Column("dsd", "id"), Expr::NumberLiteral(10)),
      Expr::NumberLiteral(1));
  auto size = stats.EstimateSelectionSize(&runtime, pred.get(), "dsd");
  ASSERT_TRUE(size.ok());
  EXPECT_NEAR(static_cast<double>(*size),
              static_cast<double>(dsd.table->num_rows()) / 10.0, 2.0);
}

TEST(StatisticsTest, ResolvedEntitiesCostNothing) {
  auto dsd = datagen::MakeDsdLike(800, 19);
  TableRuntime runtime(dsd.table, TestBlocking(), MetaBlockingConfig::All(),
                       TestMatching());
  std::vector<EntityId> all;
  for (EntityId e = 0; e < dsd.table->num_rows(); ++e) all.push_back(e);
  double before = ApproximateComparisonsAfterMetaBlocking(&runtime, all);
  EXPECT_GT(before, 0.0);
  for (EntityId e = 0; e < dsd.table->num_rows(); ++e) {
    runtime.link_index().MarkResolved(e);
  }
  EXPECT_DOUBLE_EQ(ApproximateComparisonsAfterMetaBlocking(&runtime, all), 0.0);
}

}  // namespace
}  // namespace queryer
