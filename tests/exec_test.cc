// Unit tests for the physical operators, including the three QueryER ER
// operators over the paper's motivating example.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "datagen/scholarly.h"
#include "exec/dedup_join_op.h"
#include "exec/deduplicate_op.h"
#include "exec/executor.h"
#include "exec/filter.h"
#include "exec/group_entities_op.h"
#include "exec/group_filter.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/table_scan.h"

namespace queryer {
namespace {

// Exclude the e_id column from blocking and matching, as the engine does.
BlockingOptions TestBlocking() {
  BlockingOptions options;
  options.excluded_attributes = {0};
  return options;
}
MatchingConfig TestMatching() {
  MatchingConfig config;
  config.excluded_attributes = {0};
  return config;
}

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p = datagen::MakeMotivatingPublications();
    auto v = datagen::MakeMotivatingVenues();
    p_runtime_ = std::make_shared<TableRuntime>(
        p.table, TestBlocking(), MetaBlockingConfig::BpBf(), TestMatching());
    v_runtime_ = std::make_shared<TableRuntime>(
        v.table, TestBlocking(), MetaBlockingConfig::BpBf(), TestMatching());
  }

  OperatorPtr ScanP() {
    return std::make_unique<TableScanOp>(p_runtime_->table_ptr(), "p");
  }
  OperatorPtr ScanV() {
    return std::make_unique<TableScanOp>(v_runtime_->table_ptr(), "v");
  }

  // venue = 'EDBT' over p.
  ExprPtr EdbtPredicate(const std::vector<std::string>& columns) {
    ExprPtr pred = Expr::Compare(CompareOp::kEq, Expr::Column("p", "venue"),
                                 Expr::Literal("EDBT"));
    EXPECT_TRUE(pred->Bind(columns).ok());
    return pred;
  }

  std::shared_ptr<TableRuntime> p_runtime_;
  std::shared_ptr<TableRuntime> v_runtime_;
  ExecStats stats_;
};

TEST_F(ExecTest, TableScanEmitsAllRowsWithEntityIds) {
  OperatorPtr scan = ScanP();
  EXPECT_EQ(scan->output_columns()[1], "p.title");
  auto rows = DrainOperator(scan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 8u);
  EXPECT_EQ((*rows)[3].entity_id, 3u);
  EXPECT_EQ((*rows)[3].values[0], "P4");
}

TEST_F(ExecTest, FilterSelectsMatchingRows) {
  OperatorPtr scan = ScanP();
  ExprPtr pred = EdbtPredicate(scan->output_columns());
  FilterOp filter(std::move(scan), std::move(pred));
  auto rows = DrainOperator(&filter);
  ASSERT_TRUE(rows.ok());
  // P1, P6, P8 carry venue EDBT.
  std::set<EntityId> ids;
  for (const Row& row : *rows) ids.insert(row.entity_id);
  EXPECT_EQ(ids, (std::set<EntityId>{0, 5, 7}));
}

TEST_F(ExecTest, ProjectEvaluatesItems) {
  OperatorPtr scan = ScanP();
  std::vector<ExprPtr> exprs;
  ExprPtr title = Expr::Column("p", "title");
  ASSERT_TRUE(title->Bind(scan->output_columns()).ok());
  exprs.push_back(std::move(title));
  ProjectOp project(std::move(scan), std::move(exprs), {"title"});
  EXPECT_EQ(project.output_columns(), (std::vector<std::string>{"title"}));
  auto rows = DrainOperator(&project);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].values,
            (std::vector<std::string>{"Collective Entity Resolution"}));
}

TEST_F(ExecTest, HashJoinMatchesCaseInsensitively) {
  OperatorPtr left = ScanP();
  OperatorPtr right = ScanV();
  ExprPtr lk = Expr::Column("p", "venue");
  ExprPtr rk = Expr::Column("v", "title");
  ASSERT_TRUE(lk->Bind(left->output_columns()).ok());
  ASSERT_TRUE(rk->Bind(right->output_columns()).ok());
  HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk));
  auto rows = DrainOperator(&join);
  ASSERT_TRUE(rows.ok());
  // Paper Sec. 2: plain SQL retrieves [P1-V4], [P6-V4], [P8-V4]; plus
  // P2-V1 and P7-V1 (full venue name matches V1's title), P3-V3
  // ("ACM Sigmod" = "ACM SIGMOD" case-insensitively) and P4-V2
  // ("Sigmod" = "SIGMOD").
  EXPECT_EQ(rows->size(), 7u);
  std::set<std::pair<std::string, std::string>> pairs;
  for (const Row& row : *rows) pairs.insert({row.values[0], row.values[5]});
  EXPECT_TRUE(pairs.count({"P1", "V4"}) > 0);
  EXPECT_TRUE(pairs.count({"P6", "V4"}) > 0);
  EXPECT_TRUE(pairs.count({"P8", "V4"}) > 0);
  EXPECT_TRUE(pairs.count({"P2", "V1"}) > 0);
}

TEST_F(ExecTest, DeduplicateExtendsSelectionWithDuplicates) {
  OperatorPtr scan = ScanP();
  ExprPtr pred = EdbtPredicate(scan->output_columns());
  OperatorPtr filter =
      std::make_unique<FilterOp>(std::move(scan), std::move(pred));
  DeduplicateOp dedup(std::move(filter), p_runtime_, &stats_);
  auto rows = DrainOperator(&dedup);
  ASSERT_TRUE(rows.ok());
  // QE = {P1, P6, P8}; duplicates P2 and P7 must be recovered.
  std::set<EntityId> ids;
  for (const Row& row : *rows) ids.insert(row.entity_id);
  EXPECT_EQ(ids, (std::set<EntityId>{0, 1, 5, 6, 7}));
  EXPECT_GT(stats_.comparisons_executed, 0u);
  EXPECT_EQ(stats_.query_entities, 3u);

  // Group keys tie duplicates together.
  std::uint64_t g1 = 0, g2 = 0, g6 = 0;
  for (const Row& row : *rows) {
    if (row.entity_id == 0) g1 = row.group_key;
    if (row.entity_id == 1) g2 = row.group_key;
    if (row.entity_id == 5) g6 = row.group_key;
  }
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, g6);
}

TEST_F(ExecTest, DeduplicateUsesLinkIndexOnRepeat) {
  for (int round = 0; round < 2; ++round) {
    OperatorPtr scan = ScanP();
    ExprPtr pred = EdbtPredicate(scan->output_columns());
    OperatorPtr filter =
        std::make_unique<FilterOp>(std::move(scan), std::move(pred));
    DeduplicateOp dedup(std::move(filter), p_runtime_, &stats_);
    ASSERT_TRUE(DrainOperator(&dedup).ok());
  }
  // Second round: all three query entities served from the LI.
  EXPECT_EQ(stats_.entities_already_resolved, 3u);
}

TEST_F(ExecTest, DeduplicateRejectsCompositeRows) {
  // Feed join output (no entity ids) into Deduplicate: must error.
  OperatorPtr left = ScanP();
  OperatorPtr right = ScanV();
  ExprPtr lk = Expr::Column("p", "venue");
  ExprPtr rk = Expr::Column("v", "title");
  ASSERT_TRUE(lk->Bind(left->output_columns()).ok());
  ASSERT_TRUE(rk->Bind(right->output_columns()).ok());
  OperatorPtr join = std::make_unique<HashJoinOp>(
      std::move(left), std::move(right), std::move(lk), std::move(rk));
  // Arity differs from p's table; constructor would CHECK. Use a project to
  // fake the arity and verify the runtime error path instead.
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 5; ++i) {
    ExprPtr col = Expr::Column("", "");
    // Direct column selection via join columns.
    col = Expr::Column("p", p_runtime_->table().schema().name(i));
    ASSERT_TRUE(col->Bind(join->output_columns()).ok());
    exprs.push_back(std::move(col));
    names.push_back(p_runtime_->table().schema().name(i));
  }
  OperatorPtr project = std::make_unique<ProjectOp>(
      std::move(join), std::move(exprs), std::move(names));
  DeduplicateOp dedup(std::move(project), p_runtime_, &stats_);
  Status st = dedup.Open();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
}

TEST_F(ExecTest, GroupFilterKeepsWholeGroups) {
  OperatorPtr scan = ScanP();
  OperatorPtr dedup =
      std::make_unique<DeduplicateOp>(std::move(scan), p_runtime_, &stats_);
  ExprPtr pred = EdbtPredicate(dedup->output_columns());
  GroupFilterOp group_filter(std::move(dedup), std::move(pred));
  auto rows = DrainOperator(&group_filter);
  ASSERT_TRUE(rows.ok());
  std::set<EntityId> ids;
  for (const Row& row : *rows) ids.insert(row.entity_id);
  // Whole-table dedup + group filter on venue=EDBT: clusters of P1 and P6.
  EXPECT_EQ(ids, (std::set<EntityId>{0, 1, 5, 6, 7}));
}

TEST_F(ExecTest, DedupJoinDirtyRightMatchesPaperExample) {
  // Left: resolved publications selection (venue = EDBT).
  OperatorPtr scan = ScanP();
  ExprPtr pred = EdbtPredicate(scan->output_columns());
  OperatorPtr filter =
      std::make_unique<FilterOp>(std::move(scan), std::move(pred));
  OperatorPtr dedup =
      std::make_unique<DeduplicateOp>(std::move(filter), p_runtime_, &stats_);
  // Right: dirty venues.
  OperatorPtr venues = ScanV();
  ExprPtr lk = Expr::Column("p", "venue");
  ExprPtr rk = Expr::Column("v", "title");
  ASSERT_TRUE(lk->Bind(dedup->output_columns()).ok());
  ASSERT_TRUE(rk->Bind(venues->output_columns()).ok());
  DedupJoinOp join(std::move(dedup), std::move(venues), std::move(lk),
                   std::move(rk), DirtySide::kRight, v_runtime_, &stats_);
  auto rows = DrainOperator(&join);
  ASSERT_TRUE(rows.ok());

  // Expected joined groups: (P1-cluster, V4-cluster) and (P6-cluster,
  // V4-cluster): each left cluster has 2/3 members, right cluster {V1,V4}.
  // Group keys partition the rows into exactly two groups.
  std::set<std::uint64_t> groups;
  for (const Row& row : *rows) groups.insert(row.group_key);
  EXPECT_EQ(groups.size(), 2u);
  // P1 cluster (2 rows) x {V1,V4} (2) + P6 cluster (3) x 2 = 10 rows.
  EXPECT_EQ(rows->size(), 10u);
  // Every emitted right side is V1 or V4.
  for (const Row& row : *rows) {
    EXPECT_TRUE(row.values[5] == "V1" || row.values[5] == "V4")
        << row.values[5];
  }
}

TEST_F(ExecTest, GroupEntitiesFusesVariants) {
  OperatorPtr scan = ScanP();
  ExprPtr pred = EdbtPredicate(scan->output_columns());
  OperatorPtr filter =
      std::make_unique<FilterOp>(std::move(scan), std::move(pred));
  OperatorPtr dedup =
      std::make_unique<DeduplicateOp>(std::move(filter), p_runtime_, &stats_);
  GroupEntitiesOp group(std::move(dedup), &stats_);
  auto rows = DrainOperator(&group);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);  // Two hyper-entities.

  // Find the P1/P2 hyper-entity and check the fused title (paper Table 3).
  bool found = false;
  for (const Row& row : *rows) {
    if (row.values[1].find("Collective Entity Resolution") != std::string::npos) {
      found = true;
      EXPECT_EQ(row.values[1], "Collective Entity Resolution | Collective E.R.");
      EXPECT_EQ(row.values[4], "2008");  // Same year fused once; null skipped.
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(stats_.group_seconds, 0.0);
}

TEST_F(ExecTest, DedupJoinCleanVariantJoinsResolvedSides) {
  // DirtySide::kNone (the NES shape): both inputs already resolved.
  OperatorPtr left = std::make_unique<DeduplicateOp>(ScanP(), p_runtime_,
                                                     &stats_);
  OperatorPtr right = std::make_unique<DeduplicateOp>(ScanV(), v_runtime_,
                                                      &stats_);
  ExprPtr lk = Expr::Column("p", "venue");
  ExprPtr rk = Expr::Column("v", "title");
  ASSERT_TRUE(lk->Bind(left->output_columns()).ok());
  ASSERT_TRUE(rk->Bind(right->output_columns()).ok());
  DedupJoinOp join(std::move(left), std::move(right), std::move(lk),
                   std::move(rk), DirtySide::kNone, nullptr, &stats_);
  auto rows = DrainOperator(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(rows->size(), 0u);
  // Every joined group pairs one P cluster with one V cluster: group keys
  // partition rows, and within a group all left ids share a cluster.
  std::map<std::uint64_t, std::set<std::string>> group_left_ids;
  for (const Row& row : *rows) {
    group_left_ids[row.group_key].insert(row.values[0]);
  }
  for (const auto& [key, ids] : group_left_ids) {
    EXPECT_LE(ids.size(), 3u);  // Largest P cluster has 3 members.
  }
}

TEST_F(ExecTest, EmptySelectionYieldsEmptyResult) {
  OperatorPtr scan = ScanP();
  ExprPtr pred = Expr::Compare(CompareOp::kEq, Expr::Column("p", "venue"),
                               Expr::Literal("NOPE"));
  ASSERT_TRUE(pred->Bind(scan->output_columns()).ok());
  OperatorPtr filter =
      std::make_unique<FilterOp>(std::move(scan), std::move(pred));
  DeduplicateOp dedup(std::move(filter), p_runtime_, &stats_);
  auto rows = DrainOperator(&dedup);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ExecTest, HashJoinEmptyBuildSide) {
  OperatorPtr left = ScanP();
  auto empty = TableBuilder("e", Schema({"k"})).Build();
  OperatorPtr right = std::make_unique<TableScanOp>(empty, "e");
  ExprPtr lk = Expr::Column("p", "venue");
  ExprPtr rk = Expr::Column("e", "k");
  ASSERT_TRUE(lk->Bind(left->output_columns()).ok());
  ASSERT_TRUE(rk->Bind(right->output_columns()).ok());
  HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk));
  auto rows = DrainOperator(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ExecTest, GroupEntitiesIdenticalValuesOnce) {
  OperatorPtr scan = ScanP();
  OperatorPtr dedup =
      std::make_unique<DeduplicateOp>(std::move(scan), p_runtime_, &stats_);
  GroupEntitiesOp group(std::move(dedup), &stats_);
  auto rows = DrainOperator(&group);
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    // P6/P8 share venue "EDBT": it must appear once, with P7's variant.
    if (row.values[0].find("P6") != std::string::npos) {
      EXPECT_EQ(row.values[3],
                "EDBT | International Conference on Extending Database "
                "Technology");
    }
  }
}

}  // namespace
}  // namespace queryer
