// The batch execution engine: RowBatch mechanics, batch predicate
// evaluation, and the two determinism contracts of the vectorized pipeline
// — query answers (and LinkIndex::num_links()) must be identical at every
// batch size (batch_size == 1 degenerates to row-at-a-time execution, so
// the sweep pins the batch path to the row path) and at every thread count
// of the morsel-parallel scan.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "exec/row_batch.h"
#include "plan/expr.h"

namespace queryer {
namespace {

TEST(RowBatchTest, AppendAndSelection) {
  RowBatch batch(4);
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_TRUE(batch.empty());
  for (int i = 0; i < 4; ++i) {
    Row* row = batch.AppendRow();
    row->values = {std::to_string(i)};
    row->entity_id = static_cast<EntityId>(i);
  }
  EXPECT_TRUE(batch.full());
  ASSERT_EQ(batch.size(), 4u);

  // Keep rows 1 and 3 (a filter compacting the selection).
  std::size_t out = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch.row(i).entity_id % 2 == 1) batch.Keep(out++, i);
  }
  batch.TruncateSelection(out);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.row(0).values[0], "1");
  EXPECT_EQ(batch.row(1).values[0], "3");
}

TEST(RowBatchTest, ClearReusesRowStorage) {
  RowBatch batch(2);
  Row* first = batch.AppendRow();
  first->values = {"abcdefghij"};
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  // The same slot (and its string storage) comes back after Clear.
  EXPECT_EQ(batch.AppendRow(), first);
}

TEST(RowBatchTest, ZeroCapacityClampsToOne) {
  RowBatch batch(0);
  EXPECT_EQ(batch.capacity(), 1u);
  batch.AppendRow();
  EXPECT_TRUE(batch.full());
}

// FilterBatch == per-row EvalBool on every predicate shape, including the
// allocation-free comparison fast path and its fallbacks.
TEST(FilterBatchTest, MatchesPerRowEvalBool) {
  const std::vector<std::string> columns = {"t.id", "t.name", "t.score"};
  std::vector<std::vector<std::string>> rows = {
      {"1", "Alice", "3.5"},  {"2", "bob", "7"},     {"3", "ALICE", "x"},
      {"17", "Carol", "-2"},  {"100", "", "3.5"},    {"5", "alice", ""},
      {"abc", "Dave", "0"},   {"6", "Eve", "100.0"},
  };

  std::vector<ExprPtr> predicates;
  predicates.push_back(Expr::Compare(CompareOp::kEq, Expr::Column("t", "name"),
                                     Expr::Literal("alice")));
  predicates.push_back(Expr::Compare(CompareOp::kLt, Expr::Column("t", "id"),
                                     Expr::NumberLiteral(10)));
  predicates.push_back(Expr::Compare(
      CompareOp::kGe, Expr::Column("t", "score"), Expr::Column("t", "id")));
  predicates.push_back(Expr::Compare(
      CompareOp::kEq,
      Expr::Mod(Expr::Column("t", "id"), Expr::NumberLiteral(5)),
      Expr::NumberLiteral(2)));
  // MOD against a non-numeric string: the fast path must fall back.
  predicates.push_back(Expr::Compare(
      CompareOp::kEq,
      Expr::Mod(Expr::Column("t", "id"), Expr::NumberLiteral(5)),
      Expr::Literal("nope")));
  predicates.push_back(Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::Column("t", "id"),
                    Expr::NumberLiteral(2)),
      Expr::Like(Expr::Column("t", "name"), "%a%")));

  for (ExprPtr& predicate : predicates) {
    ASSERT_TRUE(predicate->Bind(columns).ok()) << predicate->ToString();
    RowBatch batch(rows.size());
    for (const auto& values : rows) batch.AppendRow()->values = values;
    std::vector<std::string> expected;
    for (const auto& values : rows) {
      if (predicate->EvalBool(values)) expected.push_back(values[0]);
    }
    predicate->FilterBatch(&batch);
    ASSERT_EQ(batch.size(), expected.size()) << predicate->ToString();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.row(i).values[0], expected[i]) << predicate->ToString();
    }
  }
}

struct RunOutcome {
  std::vector<std::vector<std::string>> rows;
  std::size_t num_links = 0;
  ExecStats stats;
};

// Executes `sql` on a fresh engine (cold Link Index) over `tables`,
// reporting the answer and, when `link_table` is non-empty, that table's
// final link count.
RunOutcome RunSql(const std::vector<TablePtr>& tables, const std::string& sql,
               std::size_t batch_size, std::size_t num_threads,
               const std::string& link_table = "") {
  EngineOptions options;
  options.batch_size = batch_size;
  options.num_threads = num_threads;
  QueryEngine engine(options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine.RegisterTable(table).ok());
  }
  auto result = engine.Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunOutcome outcome;
  if (result.ok()) {
    outcome.rows = std::move(result->rows);
    outcome.stats = result->stats;
  }
  if (!link_table.empty()) {
    auto runtime = engine.GetRuntime(link_table);
    EXPECT_TRUE(runtime.ok());
    outcome.num_links = (*runtime)->link_index().num_links();
  }
  return outcome;
}

constexpr std::size_t kBatchSizes[] = {1, 7, 1024};

class ExecBatchSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // > 2 morsels (kMinMorselRows = 1024), so 4-thread runs really schedule
    // parallel morsels. Generated once; tables are immutable and shared.
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(2600, 4242));
    pubs_ = new datagen::GeneratedDataset(
        datagen::MakeMotivatingPublications());
    venues_ = new datagen::GeneratedDataset(datagen::MakeMotivatingVenues());
    // An OAGP/OAGV pair big enough that the join's probe side (left = the
    // papers) spans several probe morsels.
    auto universe = datagen::MakeVenueUniverse(300, 7);
    datagen::OagpOptions oagp_options;
    oagp_options.venue_join_fraction = 0.5;  // A joinier-than-paper mix.
    oagp_ = new datagen::GeneratedDataset(
        datagen::MakeOagpLike(3000, universe, 11, oagp_options));
    oagv_ = new datagen::GeneratedDataset(
        datagen::MakeOagvLike(800, universe, 13));
  }
  static void TearDownTestSuite() {
    delete dsd_;
    delete pubs_;
    delete venues_;
    delete oagp_;
    delete oagv_;
    dsd_ = nullptr;
    pubs_ = nullptr;
    venues_ = nullptr;
    oagp_ = nullptr;
    oagv_ = nullptr;
  }

  static datagen::GeneratedDataset* dsd_;
  static datagen::GeneratedDataset* pubs_;
  static datagen::GeneratedDataset* venues_;
  static datagen::GeneratedDataset* oagp_;
  static datagen::GeneratedDataset* oagv_;
};

datagen::GeneratedDataset* ExecBatchSweepTest::dsd_ = nullptr;
datagen::GeneratedDataset* ExecBatchSweepTest::pubs_ = nullptr;
datagen::GeneratedDataset* ExecBatchSweepTest::venues_ = nullptr;
datagen::GeneratedDataset* ExecBatchSweepTest::oagp_ = nullptr;
datagen::GeneratedDataset* ExecBatchSweepTest::oagv_ = nullptr;

// Plain relational queries (scan, fused filter, projection, hash join):
// identical answers at every batch size.
TEST_F(ExecBatchSweepTest, PlainQueriesIdenticalAcrossBatchSizes) {
  const std::vector<std::string> queries = {
      "SELECT * FROM dsd",
      "SELECT * FROM dsd WHERE MOD(id, 100) < 7",
      "SELECT title, year FROM dsd WHERE venue LIKE '%SIGMOD%'",
  };
  for (const std::string& sql : queries) {
    RunOutcome reference = RunSql({dsd_->table}, sql, 1, 1);
    for (std::size_t batch_size : kBatchSizes) {
      if (batch_size == 1) continue;
      RunOutcome outcome = RunSql({dsd_->table}, sql, batch_size, 1);
      EXPECT_EQ(outcome.rows, reference.rows) << sql << " @" << batch_size;
    }
  }
}

TEST_F(ExecBatchSweepTest, JoinIdenticalAcrossBatchSizes) {
  const std::string sql =
      "SELECT * FROM p INNER JOIN v ON p.venue = v.title";
  RunOutcome reference = RunSql({pubs_->table, venues_->table}, sql, 1, 1);
  EXPECT_FALSE(reference.rows.empty());
  for (std::size_t batch_size : kBatchSizes) {
    if (batch_size == 1) continue;
    RunOutcome outcome = RunSql({pubs_->table, venues_->table}, sql, batch_size, 1);
    EXPECT_EQ(outcome.rows, reference.rows) << "batch " << batch_size;
  }
}

// The full DEDUP pipeline: identical answers AND identical link counts at
// every batch size.
TEST_F(ExecBatchSweepTest, DedupIdenticalAcrossBatchSizes) {
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
  RunOutcome reference = RunSql({dsd_->table}, sql, 1, 1, "dsd");
  EXPECT_FALSE(reference.rows.empty());
  EXPECT_GT(reference.num_links, 0u);
  for (std::size_t batch_size : kBatchSizes) {
    if (batch_size == 1) continue;
    RunOutcome outcome = RunSql({dsd_->table}, sql, batch_size, 1, "dsd");
    EXPECT_EQ(outcome.rows, reference.rows) << "batch " << batch_size;
    EXPECT_EQ(outcome.num_links, reference.num_links) << "batch " << batch_size;
  }
}

// Morsel-driven parallel scans: the num_threads x batch_size matrix returns
// the sequential answer bit for bit (morsels are emitted in table order).
TEST_F(ExecBatchSweepTest, MorselScanDeterminismMatrix) {
  const std::vector<std::string> queries = {
      "SELECT * FROM dsd WHERE MOD(id, 100) < 23",
      "SELECT id, title FROM dsd WHERE year >= 2000",
  };
  for (const std::string& sql : queries) {
    RunOutcome reference = RunSql({dsd_->table}, sql, 1024, 1);
    EXPECT_FALSE(reference.rows.empty());
    for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t batch_size : kBatchSizes) {
        RunOutcome outcome = RunSql({dsd_->table}, sql, batch_size, num_threads);
        EXPECT_EQ(outcome.rows, reference.rows)
            << sql << " threads=" << num_threads << " batch=" << batch_size;
      }
    }
  }
}

// The parallel hash-join probe: probe morsels are dispatched to the pool
// and emitted through the reorder window in probe order, so the join's
// answer is bit-identical to the sequential probe across the whole
// num_threads x batch_size matrix.
TEST_F(ExecBatchSweepTest, ParallelJoinProbeDeterminismMatrix) {
  const std::vector<std::string> queries = {
      "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title",
      // A fused-filtered (morsel-parallel) scan feeding the probe side.
      "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title "
      "WHERE MOD(oagp.id, 100) < 50",
  };
  for (const std::string& sql : queries) {
    RunOutcome reference = RunSql({oagp_->table, oagv_->table}, sql, 1024, 1);
    EXPECT_FALSE(reference.rows.empty());
    EXPECT_EQ(reference.stats.probe_morsels, 0u);
    for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t batch_size : kBatchSizes) {
        RunOutcome outcome =
            RunSql({oagp_->table, oagv_->table}, sql, batch_size, num_threads);
        EXPECT_EQ(outcome.rows, reference.rows)
            << sql << " threads=" << num_threads << " batch=" << batch_size;
      }
    }
  }
}

// The parallel probe must actually engage with a multi-worker pool: the
// 3000-row probe side spans 3 morsels at the kMinMorselRows granularity.
TEST_F(ExecBatchSweepTest, ParallelJoinProbeConsumesMorsels) {
  const std::string sql =
      "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title";
  RunOutcome outcome = RunSql({oagp_->table, oagv_->table}, sql, 1024, 4);
  EXPECT_EQ(outcome.stats.probe_morsels, 3u);
}

// Parallel Group-Entities aggregation: per-chunk partial group tables
// merged in chunk order reproduce the sequential grouping bit for bit, for
// answers AND link counts, across the num_threads x batch_size matrix.
TEST_F(ExecBatchSweepTest, ParallelGroupEntitiesDeterminismMatrix) {
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 50";
  RunOutcome reference = RunSql({dsd_->table}, sql, 1024, 1, "dsd");
  EXPECT_FALSE(reference.rows.empty());
  EXPECT_EQ(reference.stats.partial_groups_merged, 0u);
  for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t batch_size : kBatchSizes) {
      RunOutcome outcome =
          RunSql({dsd_->table}, sql, batch_size, num_threads, "dsd");
      EXPECT_EQ(outcome.rows, reference.rows)
          << "threads=" << num_threads << " batch=" << batch_size;
      EXPECT_EQ(outcome.num_links, reference.num_links)
          << "threads=" << num_threads << " batch=" << batch_size;
      if (num_threads > 1) {
        // > kMinMorselRows input rows reach Group-Entities, so the
        // parallel aggregation really ran and merged at least one partial
        // table per chunk.
        EXPECT_GT(outcome.stats.partial_groups_merged, 0u);
      }
    }
  }
}

// DEDUP through a parallel morsel scan: answers and link counts match the
// sequential run (the scan feeds the Deduplicate operator, so this pins the
// whole ER pipeline on top of the parallel source).
TEST_F(ExecBatchSweepTest, MorselScanDedupDeterminism) {
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
  RunOutcome reference = RunSql({dsd_->table}, sql, 1024, 1, "dsd");
  for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
    RunOutcome outcome = RunSql({dsd_->table}, sql, 1024, num_threads, "dsd");
    EXPECT_EQ(outcome.rows, reference.rows) << "threads " << num_threads;
    EXPECT_EQ(outcome.num_links, reference.num_links)
        << "threads " << num_threads;
  }
}

}  // namespace
}  // namespace queryer
