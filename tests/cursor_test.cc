// The streaming query-session API: Prepare/Open/Next cursors must produce
// bit-identical answers to Execute at every num_threads x batch_size (which
// is trivially true for Execute itself — it IS a cursor drain — so the
// matrix here drives an explicit client-side Next loop), and the session
// lifecycle must hold: an abandoned or cancelled cursor releases its
// admission slot and leaves no ResolutionCoordinator claim behind, so a
// second client's query completes; Cancel() during a morsel-parallel
// scan/probe is TSan-clean; a destructor-without-drain leaks nothing under
// ASan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"

namespace queryer {
namespace {

using Rows = std::vector<std::vector<std::string>>;

std::unique_ptr<QueryEngine> MakeEngine(
    const std::vector<TablePtr>& tables, std::size_t batch_size = 0,
    std::size_t num_threads = 1, std::size_t max_concurrent = 1,
    double deadline = 0) {
  EngineOptions options;
  if (batch_size != 0) options.batch_size = batch_size;
  options.num_threads = num_threads;
  options.max_concurrent_queries = max_concurrent;
  options.default_query_deadline = deadline;
  auto engine = std::make_unique<QueryEngine>(options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine->RegisterTable(table).ok());
  }
  return engine;
}

// Drains a cursor through an explicit client-side Next loop.
Rows DrainCursor(QueryCursor* cursor) {
  Rows rows;
  RowBatch batch(cursor->batch_size());
  while (true) {
    auto has = cursor->Next(&batch);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!has.ok() || !*has) break;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      rows.push_back(batch.row(i).values);
    }
  }
  cursor->Close();
  return rows;
}

class CursorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // > 2 morsels (kMinMorselRows = 1024) so multi-thread engines really
    // run parallel morsel scans; the OAGP/OAGV pair gives the join's probe
    // side several probe morsels.
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(2600, 4242));
    auto universe = datagen::MakeVenueUniverse(300, 7);
    datagen::OagpOptions oagp_options;
    oagp_options.venue_join_fraction = 0.5;
    oagp_ = new datagen::GeneratedDataset(
        datagen::MakeOagpLike(3000, universe, 11, oagp_options));
    oagv_ = new datagen::GeneratedDataset(
        datagen::MakeOagvLike(800, universe, 13));
  }
  static void TearDownTestSuite() {
    delete dsd_;
    delete oagp_;
    delete oagv_;
    dsd_ = nullptr;
    oagp_ = nullptr;
    oagv_ = nullptr;
  }

  static datagen::GeneratedDataset* dsd_;
  static datagen::GeneratedDataset* oagp_;
  static datagen::GeneratedDataset* oagv_;
};

datagen::GeneratedDataset* CursorTest::dsd_ = nullptr;
datagen::GeneratedDataset* CursorTest::oagp_ = nullptr;
datagen::GeneratedDataset* CursorTest::oagv_ = nullptr;

// Cursor answers == Execute answers, bit for bit, across the whole
// num_threads x batch_size matrix, for every pipeline shape (scan+filter,
// parallel-probe join, full DEDUP).
TEST_F(CursorTest, CursorMatchesExecuteAcrossThreadsAndBatchSizes) {
  struct Case {
    std::vector<TablePtr> tables;
    std::string sql;
  };
  const Case cases[] = {
      {{dsd_->table}, "SELECT id, title FROM dsd WHERE MOD(id, 100) < 23"},
      {{oagp_->table, oagv_->table},
       "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title"},
      {{dsd_->table},
       "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10"},
  };
  for (const Case& c : cases) {
    for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t batch_size : {std::size_t{1}, std::size_t{7},
                                     std::size_t{1024}}) {
        auto execute_engine = MakeEngine(c.tables, batch_size, num_threads);
        auto result = execute_engine->Execute(c.sql);
        ASSERT_TRUE(result.ok()) << result.status().ToString();

        auto cursor_engine = MakeEngine(c.tables, batch_size, num_threads);
        auto cursor = cursor_engine->ExecuteStream(c.sql);
        ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
        Rows streamed = DrainCursor(cursor->get());
        EXPECT_EQ(streamed, result->rows)
            << c.sql << " threads=" << num_threads << " batch=" << batch_size;
      }
    }
  }
}

// Prepare once, inspect the plan, open twice: same answer both times, and
// the second run is served from the Link Index (no re-resolution).
TEST_F(CursorTest, PrepareIsReExecutableAndInspectable) {
  auto engine = MakeEngine({dsd_->table});
  auto prepared = engine->Prepare(
      "SELECT DEDUP title, year FROM dsd WHERE MOD(id, 100) < 10");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(prepared->dedup());
  EXPECT_NE(prepared->plan_text().find("Deduplicate"), std::string::npos)
      << prepared->plan_text();

  auto first = prepared->Open();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Rows first_rows = DrainCursor(first->get());
  EXPECT_FALSE(first_rows.empty());
  EXPECT_GT((*first)->stats().comparisons_executed, 0u);

  auto second = prepared->Open();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  Rows second_rows = DrainCursor(second->get());
  EXPECT_EQ(second_rows, first_rows);
  // Everything was resolved by the first run.
  EXPECT_EQ((*second)->stats().comparisons_executed, 0u);
  EXPECT_GT((*second)->stats().entities_already_resolved, 0u);
}

// Prepare captures the mode at prepare time: a later set_mode call changes
// what Explain/Prepare produce from then on, but not an already-prepared
// query, which still opens and answers under its captured plan.
TEST_F(CursorTest, PrepareCapturesOptionsAtPrepareTime) {
  auto engine = MakeEngine({dsd_->table});
  const std::string sql =
      "SELECT DEDUP title FROM dsd WHERE MOD(id, 100) < 5";
  auto aes_plan = engine->Explain(sql);
  ASSERT_TRUE(aes_plan.ok());
  auto prepared = engine->Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->plan_text(), *aes_plan);

  engine->set_mode(ExecutionMode::kNaive);
  auto nes_plan = engine->Explain(sql);
  ASSERT_TRUE(nes_plan.ok());
  // The engine replans under the new mode...
  auto reprepared = engine->Prepare(sql);
  ASSERT_TRUE(reprepared.ok());
  EXPECT_EQ(reprepared->plan_text(), *nes_plan);
  // ...but the old prepared query keeps its captured plan and still runs.
  EXPECT_EQ(prepared->plan_text(), *aes_plan);
  auto cursor = prepared->Open();
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_FALSE(DrainCursor(cursor->get()).empty());
}

// The without-LI arm defers planning to Open (the plan depends on the
// per-Open Link Index reset): PreparedQuery says so in its plan text,
// Explain still shows a real plan, and execution works.
TEST_F(CursorTest, WithoutLinkIndexDefersPlanningButExplains) {
  auto engine = MakeEngine({dsd_->table});
  engine->set_use_link_index(false);
  const std::string sql =
      "SELECT DEDUP title FROM dsd WHERE MOD(id, 100) < 5";
  auto plan = engine->Explain(sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("Deduplicate"), std::string::npos) << *plan;
  auto prepared = engine->Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  EXPECT_NE(prepared->plan_text().find("planned at Open"), std::string::npos)
      << prepared->plan_text();
  auto result = engine->Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->rows.empty());
  // The executed plan (post-reset) is reported, not the placeholder.
  EXPECT_NE(result->plan_text.find("Deduplicate"), std::string::npos)
      << result->plan_text;
}

// Fetch(n) returns exactly n rows until the stream runs dry, and the
// concatenation equals the Execute answer.
TEST_F(CursorTest, FetchReturnsRowsInOrder) {
  auto engine = MakeEngine({dsd_->table});
  const std::string sql = "SELECT id, title FROM dsd WHERE MOD(id, 100) < 23";
  auto result = engine->Execute(sql);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->rows.size(), 150u);

  auto cursor = engine->ExecuteStream(sql);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  Rows fetched;
  // An n that never divides the batch size, so Fetch must carry partially
  // consumed batches across calls.
  while (true) {
    auto chunk = (*cursor)->Fetch(150);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk->empty()) break;
    EXPECT_LE(chunk->size(), 150u);
    for (auto& row : *chunk) fetched.push_back(std::move(row));
    if (chunk->size() < 150) break;  // End of stream.
  }
  EXPECT_EQ(fetched, result->rows);
  // Exhausted: one more Fetch finds nothing.
  auto empty = (*cursor)->Fetch(10);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// An early Close mid-stream releases the admission slot: with
// max_concurrent_queries == 1, a second query on the same engine would
// block forever (the ctest timeout would kill us) if the slot leaked.
TEST_F(CursorTest, EarlyCloseReleasesAdmissionSlot) {
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/64);
  auto cursor = engine->ExecuteStream("SELECT * FROM dsd");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  RowBatch batch((*cursor)->batch_size());
  auto has = (*cursor)->Next(&batch);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  (*cursor)->Close();  // Mid-stream: most of the table is undrained.

  auto second = engine->Execute("SELECT id FROM dsd WHERE MOD(id, 100) < 5");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second->rows.empty());
}

// Destruction without Close (and without draining) also releases the slot
// — and, under ASan, proves the abandoned session state (operator tree,
// in-flight morsels, ER state) leaks nothing.
TEST_F(CursorTest, AbandonedCursorDestructorReleasesEverything) {
  for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
    auto engine = MakeEngine({oagp_->table, oagv_->table}, /*batch_size=*/64,
                             num_threads);
    {
      auto cursor = engine->ExecuteStream(
          "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title");
      ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
      RowBatch batch((*cursor)->batch_size());
      auto has = (*cursor)->Next(&batch);
      ASSERT_TRUE(has.ok());
      // Drop the cursor mid-stream with probe morsels in flight.
    }
    auto after = engine->Execute("SELECT id FROM oagp WHERE MOD(id, 100) < 5");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
  }
}

// An abandoned DEDUP session leaves no ResolutionCoordinator claim behind:
// a second client's overlapping DEDUP query (a different session on the
// same engine) completes and matches the serial answer.
TEST_F(CursorTest, EarlyCloseLeavesNoCoordinatorClaims) {
  // Serial reference.
  auto reference_engine = MakeEngine({dsd_->table});
  auto reference = reference_engine->Execute(
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10");
  ASSERT_TRUE(reference.ok());

  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/16, /*num_threads=*/1,
                           /*max_concurrent=*/2);
  auto cursor = engine->ExecuteStream(
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  RowBatch batch((*cursor)->batch_size());
  auto has = (*cursor)->Next(&batch);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  (*cursor)->Close();  // Abandon with most of DR_E undrained.

  // The overlapping second session must complete (claims released) and
  // reuse the first session's published links for the same answer.
  auto second = engine->Execute(
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->rows, reference->rows);
  EXPECT_EQ(second->stats.comparisons_executed, 0u);
}

// Cancel() from the consuming thread: sticky kCancelled at the next batch
// boundary, and the session's resources are released.
TEST_F(CursorTest, CancelSurfacesCancelledStatus) {
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/16);
  auto cursor = engine->ExecuteStream("SELECT * FROM dsd");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  RowBatch batch((*cursor)->batch_size());
  auto has = (*cursor)->Next(&batch);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  (*cursor)->Cancel();
  auto cancelled = (*cursor)->Next(&batch);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled())
      << cancelled.status().ToString();
  // Sticky.
  auto again = (*cursor)->Next(&batch);
  EXPECT_TRUE(again.status().IsCancelled());
  // The slot is free: the engine admits the next session.
  auto after = engine->Execute("SELECT id FROM dsd WHERE MOD(id, 100) < 5");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

// Cancel() from another thread while the consumer drains a morsel-parallel
// scan and a parallel join probe: the race between the cancel flag, the
// window-queued pool tasks and the consumer is exactly what TSan checks
// here. The drain ends either cancelled or complete — nothing else.
TEST_F(CursorTest, CancelDuringParallelScanAndProbeIsClean) {
  const std::string queries[] = {
      "SELECT * FROM oagp",
      "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title",
  };
  for (const std::string& sql : queries) {
    auto engine = MakeEngine({oagp_->table, oagv_->table}, /*batch_size=*/32,
                             /*num_threads=*/4);
    auto cursor = engine->ExecuteStream(sql);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();

    std::atomic<bool> started{false};
    std::thread canceller([&] {
      while (!started.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      (*cursor)->Cancel();
    });

    RowBatch batch((*cursor)->batch_size());
    Status final_status;
    bool ended = false;
    while (true) {
      auto has = (*cursor)->Next(&batch);
      started.store(true, std::memory_order_release);
      if (!has.ok()) {
        final_status = has.status();
        break;
      }
      if (!*has) {
        ended = true;
        break;
      }
    }
    canceller.join();
    if (!ended) {
      EXPECT_TRUE(final_status.IsCancelled()) << final_status.ToString();
    }
    // Either way the session is over and the engine admits the next one.
    auto after = engine->Execute("SELECT id FROM oagp WHERE MOD(id, 100) < 5");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
  }
}

// A pre-cancelled cursor delivers no rows: the first batch boundary
// already surfaces kCancelled.
TEST_F(CursorTest, CancelBeforeFirstBatchDeliversNothing) {
  auto engine = MakeEngine({dsd_->table});
  auto cursor = engine->ExecuteStream("SELECT * FROM dsd");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  (*cursor)->Cancel();
  RowBatch batch((*cursor)->batch_size());
  auto has = (*cursor)->Next(&batch);
  ASSERT_FALSE(has.ok());
  EXPECT_TRUE(has.status().IsCancelled());
}

// EngineOptions::default_query_deadline, checked at batch boundaries:
// an (unreasonably) tight deadline surfaces kDeadlineExceeded from the
// cursor — and through Execute, which is a cursor drain.
TEST_F(CursorTest, DeadlineExceededSurfacesAtBatchBoundary) {
  auto engine = MakeEngine({dsd_->table}, 0, 1, 1, /*deadline=*/1e-9);
  auto cursor = engine->ExecuteStream("SELECT * FROM dsd");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  RowBatch batch((*cursor)->batch_size());
  auto has = (*cursor)->Next(&batch);
  ASSERT_FALSE(has.ok());
  EXPECT_TRUE(has.status().IsDeadlineExceeded()) << has.status().ToString();

  auto result = engine->Execute("SELECT * FROM dsd");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // The expired sessions released their slots.
  auto relaxed = MakeEngine({dsd_->table});
  EXPECT_TRUE(relaxed->Execute("SELECT id FROM dsd").ok());
}

// Lifecycle edges: a fully drained cursor has released its session (the
// engine admits the next query with the handle still alive), its stats are
// complete, and further Next calls keep reporting end of stream — even
// after a late Cancel or an explicit Close. Next after Close on an
// UNFINISHED cursor is an error.
TEST_F(CursorTest, CloseSemantics) {
  auto engine = MakeEngine({dsd_->table});
  auto cursor = engine->ExecuteStream("SELECT id FROM dsd");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  Rows rows = DrainCursor(cursor->get());  // Also Closes.
  EXPECT_FALSE(rows.empty());
  EXPECT_GT((*cursor)->stats().total_seconds, 0.0);
  // Drained => session released even before Close: with the handle still
  // alive, the engine's single slot is free for the next query.
  auto next_query = engine->Execute("SELECT id FROM dsd WHERE MOD(id, 100) < 5");
  ASSERT_TRUE(next_query.ok()) << next_query.status().ToString();
  // Sticky end-of-stream, unchanged by a late Cancel or repeated Close.
  (*cursor)->Cancel();
  (*cursor)->Close();
  RowBatch batch((*cursor)->batch_size());
  auto has = (*cursor)->Next(&batch);
  ASSERT_TRUE(has.ok()) << has.status().ToString();
  EXPECT_FALSE(*has);

  // Close before the stream ends: Next becomes an error.
  auto unfinished = engine->ExecuteStream("SELECT id FROM dsd");
  ASSERT_TRUE(unfinished.ok());
  (*unfinished)->Close();
  auto after_close = (*unfinished)->Next(&batch);
  EXPECT_FALSE(after_close.ok());
}

// Cancel() followed by Close() while the session is still inside ER
// resolution: the cancel pre-empts the comparison loop (an armed delay on
// er.comparison_chunk holds the session there long enough for the race to
// be deterministic), the cancellation is counted exactly once, and the
// admission slot is released exactly once — a double release would mint a
// phantom second slot, which the bounded-admission probe below would
// expose as an admission that should have been shed.
TEST_F(CursorTest, CancelThenCloseDuringResolutionReleasesSlotExactlyOnce) {
  const std::string dedup =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/16);

  const EngineMetrics& metrics = GlobalEngineMetrics();
  const std::uint64_t cancelled_before = metrics.queries_cancelled->Value();
  const std::uint64_t in_resolution_before =
      metrics.cancelled_in_resolution->Value();

  ASSERT_TRUE(Failpoints::Global()
                  .Arm("er.comparison_chunk", "delay(150)")
                  .ok());
  auto cursor = engine->ExecuteStream(dedup);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();

  // The consumer drives the first Next into the cold-LI resolution, where
  // the delay holds it; the main thread cancels mid-flight.
  Status from_next;
  std::thread consumer([&] {
    RowBatch batch((*cursor)->batch_size());
    auto has = (*cursor)->Next(&batch);
    from_next = has.ok() ? Status::OK() : has.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  (*cursor)->Cancel();
  consumer.join();
  Failpoints::Global().Disarm("er.comparison_chunk");

  ASSERT_FALSE(from_next.ok());
  EXPECT_TRUE(from_next.IsCancelled()) << from_next.ToString();
  (*cursor)->Close();  // After the cancelled Next: must not double-count.

  EXPECT_EQ(metrics.queries_cancelled->Value(), cancelled_before + 1);
  EXPECT_EQ(metrics.cancelled_in_resolution->Value(),
            in_resolution_before + 1);

  // Exactly one slot exists afterwards: a holder takes it, a second
  // session is shed, and releasing the holder re-admits.
  engine->set_admission_timeout(0.05);
  auto holder = engine->ExecuteStream("SELECT id FROM dsd");
  ASSERT_TRUE(holder.ok()) << holder.status().ToString();
  auto shed = engine->Execute("SELECT id FROM dsd");
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  (*holder)->Close();
  EXPECT_TRUE(engine->Execute("SELECT id FROM dsd").ok());
}

// The session deadline expiring in the middle of a cold-LI resolution
// (not at a batch boundary): an armed delay on er.comparison_chunk pushes
// the first comparison chunk past the deadline, the cancel poll inside
// the comparison loop trips, and kDeadlineExceeded surfaces through both
// Next and Execute. The pre-empted sessions leave zero coordinator claims
// behind, and once the failpoint is disarmed and the deadline dropped the
// same engine answers the query correctly.
TEST_F(CursorTest, DeadlineMidResolutionPreemptsAndLeavesNoClaims) {
  const std::string dedup =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
  auto reference_engine = MakeEngine({dsd_->table});
  auto reference = reference_engine->Execute(dedup);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // max_concurrent=2 selects the concurrent claim/publish protocol, so the
  // pre-emption exercises claim release, not just the serial early-out.
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/16,
                           /*num_threads=*/1, /*max_concurrent=*/2,
                           /*deadline=*/0.25);
  ASSERT_TRUE(Failpoints::Global()
                  .Arm("er.comparison_chunk", "delay(400)")
                  .ok());

  // Through the cursor's Next.
  auto cursor = engine->ExecuteStream(dedup);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  RowBatch batch((*cursor)->batch_size());
  auto has = (*cursor)->Next(&batch);
  ASSERT_FALSE(has.ok());
  EXPECT_TRUE(has.status().IsDeadlineExceeded()) << has.status().ToString();
  (*cursor)->Close();

  // Through Execute (the LI is still cold — nothing was published).
  auto via_execute = engine->Execute(dedup);
  ASSERT_FALSE(via_execute.ok());
  EXPECT_TRUE(via_execute.status().IsDeadlineExceeded())
      << via_execute.status().ToString();

  // Both pre-empted sessions released every coordinator claim.
  auto runtime = engine->GetRuntime("dsd");
  ASSERT_TRUE(runtime.ok());
  EXPECT_EQ((*runtime)->coordinator().num_entities_in_flight(), 0u);
  EXPECT_EQ((*runtime)->coordinator().num_comparisons_in_flight(), 0u);

  // Disarmed and deadline-free, the same engine resolves correctly.
  Failpoints::Global().Disarm("er.comparison_chunk");
  engine->set_default_query_deadline(0);
  auto recovered = engine->Execute(dedup);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->rows, reference->rows);
}

}  // namespace
}  // namespace queryer
