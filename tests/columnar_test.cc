// The columnar storage engine: dictionary encoding round-trips, the
// TableBuilder/ColumnView/ValueAt API, TablePredicate's truth-table and
// cardinality-gate paths, reference-mode RowBatches, the QueryResult
// accessors over both result layouts, and the end-to-end determinism
// contract — scan, join and DEDUP answers are bit-identical across the
// num_threads x batch_size matrix and across row-/column-major results.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "exec/row_batch.h"
#include "exec/table_predicate.h"
#include "plan/expr.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace queryer {
namespace {

// ---- Dictionary ---------------------------------------------------------

TEST(DictionaryTest, DuplicatesShareDenseFirstAppearanceCodes) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd("edbt"), 0u);
  EXPECT_EQ(dict.GetOrAdd("vldb"), 1u);
  EXPECT_EQ(dict.GetOrAdd("edbt"), 0u);  // Duplicate: same code, no growth.
  EXPECT_EQ(dict.GetOrAdd("sigmod"), 2u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.value(0), "edbt");
  EXPECT_EQ(dict.value(2), "sigmod");
  ASSERT_TRUE(dict.Find("vldb").has_value());
  EXPECT_EQ(*dict.Find("vldb"), 1u);
  EXPECT_FALSE(dict.Find("icde").has_value());
  // Find is byte-exact; case variants are distinct dictionary entries.
  EXPECT_FALSE(dict.Find("EDBT").has_value());
  EXPECT_EQ(dict.GetOrAdd("EDBT"), 3u);
}

TEST(DictionaryTest, EmptyStringsAndEmbeddedNulBytes) {
  Dictionary dict;
  const std::string with_nul = std::string("a\0b", 3);
  const std::string nul_only = std::string("\0", 1);
  const DictCode empty_code = dict.GetOrAdd("");
  const DictCode nul_code = dict.GetOrAdd(with_nul);
  const DictCode nul_only_code = dict.GetOrAdd(nul_only);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.value(empty_code), "");
  EXPECT_EQ(dict.value(nul_code), std::string_view(with_nul));
  EXPECT_EQ(dict.value(nul_code).size(), 3u);
  EXPECT_EQ(dict.value(nul_only_code), std::string_view(nul_only));
  // "a" and "a\0b" must not collide, and the empty string round-trips.
  EXPECT_NE(dict.GetOrAdd("a"), nul_code);
  EXPECT_EQ(dict.GetOrAdd(""), empty_code);
}

TEST(DictionaryTest, HighCardinalityViewsStayStableAcrossArenaChunks) {
  // Enough long-ish distinct strings to span several 64 KiB arena blocks;
  // earlier views must survive later allocations (address stability).
  Dictionary dict;
  constexpr std::size_t kDistinct = 5000;
  std::vector<std::string_view> early;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    const std::string value =
        "entity-" + std::to_string(i) + "-" + std::string(40, 'x');
    const DictCode code = dict.GetOrAdd(value);
    EXPECT_EQ(code, i);
    if (i < 100) early.push_back(dict.value(code));
  }
  EXPECT_EQ(dict.size(), kDistinct);
  for (std::size_t i = 0; i < early.size(); ++i) {
    EXPECT_EQ(early[i], dict.value(static_cast<DictCode>(i)));
    EXPECT_EQ(early[i].data(),
              dict.value(static_cast<DictCode>(i)).data());  // Same bytes.
  }
  EXPECT_EQ(dict.value(4999),
            "entity-4999-" + std::string(40, 'x'));  // Round-trip at the end.
}

TEST(DictionaryTest, ArenaNulTerminatesEveryValue) {
  // ParseNumber's in-place strtod relies on this: the byte one past every
  // interned string is readable and NUL.
  Dictionary dict;
  for (const char* s : {"123", "4.5", "not a number", ""}) {
    const DictCode code = dict.GetOrAdd(s);
    const std::string_view view = dict.value(code);
    EXPECT_EQ(view.data()[view.size()], '\0') << s;
  }
}

// ---- ParseNumber over views ---------------------------------------------

TEST(ParseNumberTest, ViewsWithAndWithoutTermination) {
  // A mid-buffer substring (no NUL at the end of the view) must still parse
  // via the copy-out path, and match the terminated parse bit for bit.
  const std::string buffer = "3.14159x";
  const std::string_view sub(buffer.data(), 7);  // "3.14159", 'x' follows.
  auto from_sub = ParseNumber(sub);
  auto from_string = ParseNumber(std::string("3.14159"));
  ASSERT_TRUE(from_sub.has_value());
  ASSERT_TRUE(from_string.has_value());
  EXPECT_EQ(*from_sub, *from_string);
  // The integer fast path agrees with the general parse.
  EXPECT_EQ(*ParseNumber("987654321098765"), 987654321098765.0);
  EXPECT_EQ(*ParseNumber(std::string_view("42x", 2)), 42.0);
  // Embedded NUL stops the parse — not a number.
  EXPECT_FALSE(ParseNumber(std::string_view("1\0002", 3)).has_value());
  EXPECT_FALSE(ParseNumber("").has_value());
}

// ---- TableBuilder / Table -----------------------------------------------

TablePtr MakeSmallTable() {
  TableBuilder builder("t", Schema({"id", "venue", "year"}));
  builder.Reserve(6);
  EXPECT_TRUE(builder.AddRow({"0", "EDBT", "2024"}).ok());
  EXPECT_TRUE(builder.AddRow({"1", "VLDB", "2024"}).ok());
  EXPECT_TRUE(builder.AddRow({"2", "EDBT", "2025"}).ok());
  EXPECT_TRUE(builder.AddRow({"3", "edbt", "2025"}).ok());
  EXPECT_TRUE(builder.AddRow({"4", "", "2024"}).ok());
  EXPECT_TRUE(builder.AddRow({"5", "EDBT", "2023"}).ok());
  return builder.Build();
}

TEST(TableBuilderTest, ArityMismatchFails) {
  TableBuilder builder("t", Schema({"a", "b"}));
  EXPECT_FALSE(builder.AddRow({}).ok());
  EXPECT_FALSE(builder.AddRow({"1"}).ok());
  EXPECT_FALSE(builder.AddRow({"1", "2", "3"}).ok());
  EXPECT_TRUE(builder.AddRow({"1", "2"}).ok());
  EXPECT_EQ(builder.num_rows(), 1u);  // Failed rows leave no trace.
  TablePtr table = builder.Build();
  ASSERT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->ValueAt(0, 0), "1");
  EXPECT_EQ(table->ValueAt(0, 1), "2");
}

TEST(TableTest, ColumnViewSharesCodesForEqualBytes) {
  TablePtr table = MakeSmallTable();
  const ColumnView venue = table->column(1);
  ASSERT_EQ(venue.size(), 6u);
  EXPECT_EQ(venue.code(0), venue.code(2));  // "EDBT" == "EDBT"
  EXPECT_EQ(venue.code(0), venue.code(5));
  EXPECT_NE(venue.code(0), venue.code(3));  // "EDBT" != "edbt" (byte-wise)
  EXPECT_NE(venue.code(0), venue.code(1));
  EXPECT_EQ(venue.value(4), "");
  EXPECT_EQ(venue.dictionary().size(), 4u);  // EDBT, VLDB, edbt, ""
  EXPECT_EQ(table->CodeAt(2, 1), venue.code(2));
  EXPECT_EQ(table->ValueAt(3, 1), "edbt");

  // MaterializeRow reproduces the full row.
  std::vector<std::string> row;
  table->MaterializeRow(3, &row);
  EXPECT_EQ(row, (std::vector<std::string>{"3", "edbt", "2025"}));
}

// ---- TablePredicate ------------------------------------------------------

// Binds `expr` against `table` the way a fused scan predicate is bound:
// bound_index == attribute position.
ExprPtr BindToTable(ExprPtr expr, const Table& table) {
  std::vector<std::string> columns;
  for (const std::string& name : table.schema().names()) {
    columns.push_back("t." + name);
  }
  EXPECT_TRUE(expr->Bind(columns).ok());
  return expr;
}

// Matches() must agree with per-row evaluation on the materialized row,
// whichever internal path (truth table, hoisted column, full row) is taken.
void ExpectMatchesPerRow(const TablePredicate& predicate, const Expr& expr,
                         const Table& table) {
  std::vector<std::string> row;
  for (EntityId e = 0; e < table.num_rows(); ++e) {
    table.MaterializeRow(e, &row);
    EXPECT_EQ(predicate.Matches(e), expr.EvalBoolFast(RowRef(row)))
        << "row " << e;
  }
}

TEST(TablePredicateTest, TruthTableForRepetitiveColumn) {
  TablePtr table = MakeSmallTable();
  // venue has 4 distinct values over 6 rows: 2*4 > 6 — just over the gate.
  // Repeat the rows so the dictionary is at most half the row count.
  TableBuilder builder("t", Schema({"id", "venue", "year"}));
  for (int copy = 0; copy < 3; ++copy) {
    for (EntityId e = 0; e < table->num_rows(); ++e) {
      std::vector<std::string> row;
      table->MaterializeRow(e, &row);
      EXPECT_TRUE(builder.AddRow(row).ok());
    }
  }
  TablePtr big = builder.Build();
  ExprPtr expr = BindToTable(
      Expr::Compare(CompareOp::kEq, Expr::Column("t", "venue"),
                    Expr::Literal("edbt")),
      *big);
  TablePredicate predicate(expr.get(), big.get());
  EXPECT_TRUE(predicate.has_predicate());
  EXPECT_TRUE(predicate.uses_truth_table());
  ExpectMatchesPerRow(predicate, *expr, *big);
  // Case-insensitive comparison: both "EDBT" and "edbt" rows match.
  std::size_t matches = 0;
  for (EntityId e = 0; e < big->num_rows(); ++e) {
    if (predicate.Matches(e)) ++matches;
  }
  EXPECT_EQ(matches, 12u);  // 4 EDBT/edbt rows x 3 copies.
}

TEST(TablePredicateTest, CardinalityGateSkipsNearUniqueColumns) {
  // id is unique per row: the truth table would cost as much as the scan,
  // so the predicate keeps per-row evaluation over the hoisted column.
  TablePtr table = MakeSmallTable();
  ExprPtr expr = BindToTable(
      Expr::Compare(CompareOp::kLt, Expr::Column("t", "id"),
                    Expr::NumberLiteral(3)),
      *table);
  TablePredicate predicate(expr.get(), table.get());
  EXPECT_TRUE(predicate.has_predicate());
  EXPECT_FALSE(predicate.uses_truth_table());
  ExpectMatchesPerRow(predicate, *expr, *table);
}

TEST(TablePredicateTest, MultiColumnFallsBackToRowEvaluation) {
  TablePtr table = MakeSmallTable();
  ExprPtr expr = BindToTable(
      Expr::Compare(CompareOp::kGe, Expr::Column("t", "year"),
                    Expr::Column("t", "id")),
      *table);
  TablePredicate predicate(expr.get(), table.get());
  EXPECT_FALSE(predicate.uses_truth_table());
  ExpectMatchesPerRow(predicate, *expr, *table);

  TablePredicate match_all;
  EXPECT_FALSE(match_all.has_predicate());
  EXPECT_TRUE(match_all.Matches(0));
}

// ---- Reference-mode RowBatch --------------------------------------------

TEST(RowBatchTest, ReferenceModeReadsAndMaterializes) {
  TablePtr table = MakeSmallTable();
  RowBatch batch(4);
  batch.BeginReference(table.get());
  EXPECT_TRUE(batch.reference_mode());
  EXPECT_EQ(batch.reference_table(), table.get());
  batch.AppendReference(1, 101);
  batch.AppendReference(3, 103);
  batch.AppendReference(4, 104);
  ASSERT_EQ(batch.size(), 3u);

  // Mode-agnostic reads view straight into the table's dictionaries.
  EXPECT_EQ(batch.value(0, 1), "VLDB");
  EXPECT_EQ(batch.value(1, 1), "edbt");
  EXPECT_EQ(batch.width(0), 3u);
  EXPECT_EQ(batch.group_key(2), 104u);
  EXPECT_EQ(batch.entity_id(1), 3u);
  EXPECT_EQ(batch.RowRefAt(2).Get(2), "2024");

  // Selection compaction works without touching storage.
  batch.Keep(0, 1);
  batch.TruncateSelection(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.entity_id(0), 3u);

  // Materialization copies out of the dictionaries.
  EXPECT_EQ(batch.TakeValues(0),
            (std::vector<std::string>{"3", "edbt", "2025"}));
  Row row;
  batch.MoveRowInto(0, &row);
  EXPECT_EQ(row.entity_id, 3u);
  EXPECT_EQ(row.group_key, 103u);
  EXPECT_EQ(row.values, (std::vector<std::string>{"3", "edbt", "2025"}));

  // Clear drops reference mode; the batch is reusable as owned.
  batch.Clear();
  EXPECT_FALSE(batch.reference_mode());
  Row* slot = batch.AppendRow();
  slot->values = {"owned"};
  EXPECT_EQ(batch.value(0, 0), "owned");
}

// ---- QueryResult accessors ----------------------------------------------

TEST(QueryResultTest, AccessorsWorkInBothLayouts) {
  QueryResult row_major;
  row_major.columns = {"P.Title", "V.Rank"};
  row_major.rows = {{"a", "A"}, {"b", "B"}, {"c", "C"}};

  QueryResult column_major;
  column_major.columns = {"P.Title", "V.Rank"};
  column_major.layout = ResultLayout::kColumnMajor;
  column_major.column_data = {{"a", "b", "c"}, {"A", "B", "C"}};

  for (const QueryResult* result : {&row_major, &column_major}) {
    EXPECT_EQ(result->num_rows(), 3u);
    ASSERT_TRUE(result->ColumnIndex("v.rank").has_value());  // Case-insensitive.
    EXPECT_EQ(*result->ColumnIndex("v.rank"), 1u);
    EXPECT_EQ(*result->ColumnIndex("P.Title"), 0u);
    EXPECT_FALSE(result->ColumnIndex("missing").has_value());
    EXPECT_EQ(result->ValueAt(1, 0), "b");
    EXPECT_EQ(result->ValueAt(2, 1), "C");
  }

  QueryResult empty;
  EXPECT_EQ(empty.num_rows(), 0u);
  empty.layout = ResultLayout::kColumnMajor;
  EXPECT_EQ(empty.num_rows(), 0u);
}

// ---- End-to-end equivalence sweep ---------------------------------------

// Canonical row-major answer regardless of the result layout the engine
// produced, so sweeps compare row- and column-major runs directly.
std::vector<std::vector<std::string>> CanonicalRows(const QueryResult& result) {
  if (result.layout == ResultLayout::kRowMajor) return result.rows;
  std::vector<std::vector<std::string>> rows(result.num_rows());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    rows[r].reserve(result.columns.size());
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
      rows[r].emplace_back(result.ValueAt(r, c));
    }
  }
  return rows;
}

std::vector<std::vector<std::string>> RunSql(
    const std::vector<TablePtr>& tables, const std::string& sql,
    std::size_t batch_size, std::size_t num_threads, ResultLayout layout) {
  EngineOptions options;
  options.batch_size = batch_size;
  options.num_threads = num_threads;
  options.result_layout = layout;
  QueryEngine engine(options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine.RegisterTable(table).ok());
  }
  auto result = engine.Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  EXPECT_EQ(result->layout, layout);
  return CanonicalRows(*result);
}

class ColumnarSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // > 2 morsels (kMinMorselRows = 1024), so 4-thread runs really schedule
    // parallel morsels.
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(2600, 4242));
    auto universe = datagen::MakeVenueUniverse(200, 7);
    oagp_ = new datagen::GeneratedDataset(
        datagen::MakeOagpLike(2400, universe, 11));
    oagv_ = new datagen::GeneratedDataset(
        datagen::MakeOagvLike(600, universe, 13));
  }
  static void TearDownTestSuite() {
    delete dsd_;
    delete oagp_;
    delete oagv_;
    dsd_ = oagp_ = oagv_ = nullptr;
  }

  static datagen::GeneratedDataset* dsd_;
  static datagen::GeneratedDataset* oagp_;
  static datagen::GeneratedDataset* oagv_;
};

datagen::GeneratedDataset* ColumnarSweepTest::dsd_ = nullptr;
datagen::GeneratedDataset* ColumnarSweepTest::oagp_ = nullptr;
datagen::GeneratedDataset* ColumnarSweepTest::oagv_ = nullptr;

constexpr std::size_t kThreads[] = {1, 4};
constexpr std::size_t kBatchSizes[] = {1, 7, 1024};

TEST_F(ColumnarSweepTest, ScanAnswersAreIdenticalAcrossMatrixAndLayouts) {
  const std::string sql = "SELECT * FROM dsd WHERE MOD(id, 100) < 30";
  const auto reference =
      RunSql({dsd_->table}, sql, 1024, 1, ResultLayout::kRowMajor);
  ASSERT_FALSE(reference.empty());
  for (std::size_t num_threads : kThreads) {
    for (std::size_t batch_size : kBatchSizes) {
      for (ResultLayout layout :
           {ResultLayout::kRowMajor, ResultLayout::kColumnMajor}) {
        EXPECT_EQ(RunSql({dsd_->table}, sql, batch_size, num_threads, layout),
                  reference)
            << "threads=" << num_threads << " batch=" << batch_size
            << " layout=" << static_cast<int>(layout);
      }
    }
  }
}

TEST_F(ColumnarSweepTest, JoinAnswersAreIdenticalAcrossMatrixAndLayouts) {
  const std::string sql =
      "SELECT oagp.title, oagv.rank FROM oagp "
      "INNER JOIN oagv ON oagp.venue = oagv.title";
  const auto reference = RunSql({oagp_->table, oagv_->table}, sql, 1024, 1,
                                ResultLayout::kRowMajor);
  ASSERT_FALSE(reference.empty());
  for (std::size_t num_threads : kThreads) {
    for (std::size_t batch_size : kBatchSizes) {
      for (ResultLayout layout :
           {ResultLayout::kRowMajor, ResultLayout::kColumnMajor}) {
        EXPECT_EQ(RunSql({oagp_->table, oagv_->table}, sql, batch_size,
                         num_threads, layout),
                  reference)
            << "threads=" << num_threads << " batch=" << batch_size
            << " layout=" << static_cast<int>(layout);
      }
    }
  }
}

TEST_F(ColumnarSweepTest, DedupAnswersAreIdenticalAcrossMatrix) {
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
  const auto reference =
      RunSql({dsd_->table}, sql, 1024, 1, ResultLayout::kRowMajor);
  ASSERT_FALSE(reference.empty());
  for (std::size_t num_threads : kThreads) {
    for (std::size_t batch_size : kBatchSizes) {
      EXPECT_EQ(RunSql({dsd_->table}, sql, batch_size, num_threads,
                       ResultLayout::kRowMajor),
                reference)
          << "threads=" << num_threads << " batch=" << batch_size;
    }
  }
  // The column-major layout is a transposition of the same answer.
  EXPECT_EQ(RunSql({dsd_->table}, sql, 7, 4, ResultLayout::kColumnMajor),
            reference);
  EXPECT_EQ(RunSql({dsd_->table}, sql, 1024, 1, ResultLayout::kColumnMajor),
            reference);
}

}  // namespace
}  // namespace queryer
