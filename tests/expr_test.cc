// Unit tests for expression binding and evaluation.

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "plan/expr.h"
#include "plan/logical_plan.h"

namespace queryer {
namespace {

const std::vector<std::string> kColumns = {"p.id", "p.title", "p.venue",
                                           "p.year"};

ExprPtr Bound(ExprPtr expr) {
  Status st = expr->Bind(kColumns);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return expr;
}

TEST(ParseNumberTest, FullParseOnly) {
  EXPECT_EQ(ParseNumber("42"), 42.0);
  EXPECT_EQ(ParseNumber("-1.5"), -1.5);
  EXPECT_FALSE(ParseNumber("42x").has_value());
  EXPECT_FALSE(ParseNumber("").has_value());
  EXPECT_FALSE(ParseNumber("EDBT").has_value());
}

TEST(ExprBindTest, QualifiedAndBareNames) {
  ExprPtr qualified = Expr::Column("p", "venue");
  EXPECT_TRUE(qualified->Bind(kColumns).ok());
  EXPECT_EQ(qualified->bound_index(), 2u);

  ExprPtr bare = Expr::Column("", "year");
  EXPECT_TRUE(bare->Bind(kColumns).ok());
  EXPECT_EQ(bare->bound_index(), 3u);
}

TEST(ExprBindTest, UnknownAndAmbiguous) {
  ExprPtr unknown = Expr::Column("p", "missing");
  EXPECT_TRUE(unknown->Bind(kColumns).IsPlanError());

  std::vector<std::string> two_tables = {"a.x", "b.x"};
  ExprPtr ambiguous = Expr::Column("", "x");
  EXPECT_TRUE(ambiguous->Bind(two_tables).IsPlanError());
}

TEST(ExprEvalTest, Comparisons) {
  std::vector<std::string> row = {"7", "Entity Resolution", "EDBT", "2008"};
  EXPECT_TRUE(Bound(Expr::Compare(CompareOp::kEq, Expr::Column("p", "venue"),
                                  Expr::Literal("edbt")))
                  ->EvalBool(row));  // Case-insensitive equality.
  EXPECT_TRUE(Bound(Expr::Compare(CompareOp::kGt, Expr::Column("p", "year"),
                                  Expr::Literal("2000")))
                  ->EvalBool(row));  // Numeric comparison.
  EXPECT_FALSE(Bound(Expr::Compare(CompareOp::kLt, Expr::Column("p", "year"),
                                   Expr::Literal("101")))
                   ->EvalBool(row));  // 2008 < 101 is false numerically.
  EXPECT_TRUE(Bound(Expr::Compare(CompareOp::kNe, Expr::Column("p", "venue"),
                                  Expr::Literal("SIGMOD")))
                  ->EvalBool(row));
  EXPECT_TRUE(Bound(Expr::Compare(CompareOp::kGe, Expr::Column("p", "year"),
                                  Expr::Literal("2008")))
                  ->EvalBool(row));
  EXPECT_TRUE(Bound(Expr::Compare(CompareOp::kLe, Expr::Column("p", "id"),
                                  Expr::Literal("7")))
                  ->EvalBool(row));
}

TEST(ExprEvalTest, StringOrderingWhenNotNumeric) {
  std::vector<std::string> row = {"x", "apple", "", ""};
  EXPECT_TRUE(Bound(Expr::Compare(CompareOp::kLt, Expr::Column("p", "title"),
                                  Expr::Literal("banana")))
                  ->EvalBool(row));
}

TEST(ExprEvalTest, AndOrNot) {
  std::vector<std::string> row = {"1", "t", "EDBT", "2008"};
  ExprPtr both = Bound(Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Column("", "venue"),
                    Expr::Literal("EDBT")),
      Expr::Compare(CompareOp::kEq, Expr::Column("", "year"),
                    Expr::Literal("2008"))));
  EXPECT_TRUE(both->EvalBool(row));
  ExprPtr either = Bound(Expr::Or(
      Expr::Compare(CompareOp::kEq, Expr::Column("", "venue"),
                    Expr::Literal("SIGMOD")),
      Expr::Compare(CompareOp::kEq, Expr::Column("", "year"),
                    Expr::Literal("2008"))));
  EXPECT_TRUE(either->EvalBool(row));
  ExprPtr negated = Bound(Expr::Not(Expr::Compare(
      CompareOp::kEq, Expr::Column("", "venue"), Expr::Literal("EDBT"))));
  EXPECT_FALSE(negated->EvalBool(row));
}

TEST(ExprEvalTest, InLikeBetween) {
  std::vector<std::string> row = {"1", "Entity Resolution on Big Data",
                                  "SIGMOD", "2017"};
  std::vector<ExprPtr> list;
  list.push_back(Expr::Literal("EDBT"));
  list.push_back(Expr::Literal("sigmod"));
  EXPECT_TRUE(Bound(Expr::In(Expr::Column("", "venue"), std::move(list)))
                  ->EvalBool(row));

  EXPECT_TRUE(Bound(Expr::Like(Expr::Column("", "title"), "%big data%"))
                  ->EvalBool(row));
  EXPECT_FALSE(Bound(Expr::Like(Expr::Column("", "title"), "big data"))
                   ->EvalBool(row));

  EXPECT_TRUE(Bound(Expr::Between(Expr::Column("", "year"),
                                  Expr::Literal("2010"), Expr::Literal("2020")))
                  ->EvalBool(row));
  EXPECT_FALSE(Bound(Expr::Between(Expr::Column("", "year"),
                                   Expr::Literal("2018"), Expr::Literal("2020")))
                   ->EvalBool(row));
}

TEST(ExprEvalTest, Mod) {
  std::vector<std::string> row = {"17", "", "", ""};
  ExprPtr pred = Bound(Expr::Compare(
      CompareOp::kEq,
      Expr::Mod(Expr::Column("", "id"), Expr::NumberLiteral(10)),
      Expr::NumberLiteral(7)));
  EXPECT_TRUE(pred->EvalBool(row));
  std::vector<std::string> row2 = {"20", "", "", ""};
  EXPECT_FALSE(pred->EvalBool(row2));
  // Non-numeric input: MOD yields a non-numeric empty value, predicate false.
  std::vector<std::string> row3 = {"abc", "", "", ""};
  EXPECT_FALSE(pred->EvalBool(row3));
}

TEST(ExprCloneTest, DeepAndIndependent) {
  ExprPtr original = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Column("p", "venue"),
                    Expr::Literal("EDBT")),
      Expr::Like(Expr::Column("p", "title"), "%entity%"));
  ExprPtr clone = original->Clone();
  EXPECT_EQ(original->ToString(), clone->ToString());
  EXPECT_TRUE(clone->Bind(kColumns).ok());
  EXPECT_TRUE(clone->IsBound());
  EXPECT_FALSE(original->IsBound());  // Binding the clone left it untouched.
}

TEST(ExprCollectColumnsTest, FindsAllRefs) {
  ExprPtr expr = Expr::Or(
      Expr::Compare(CompareOp::kEq, Expr::Column("a", "x"),
                    Expr::Column("b", "y")),
      Expr::Compare(CompareOp::kLt, Expr::Mod(Expr::Column("a", "z"),
                                              Expr::NumberLiteral(2)),
                    Expr::NumberLiteral(1)));
  std::vector<const Expr*> columns;
  expr->CollectColumns(&columns);
  ASSERT_EQ(columns.size(), 3u);
}

TEST(LogicalPlanTest, ToStringRendersTree) {
  PlanPtr plan = LogicalPlan::GroupEntities(LogicalPlan::DedupJoin(
      LogicalPlan::Deduplicate(
          LogicalPlan::Filter(
              LogicalPlan::Scan("p", "p"),
              Expr::Compare(CompareOp::kEq, Expr::Column("p", "venue"),
                            Expr::Literal("EDBT"))),
          "p", "p"),
      LogicalPlan::Scan("v", "v"), Expr::Column("p", "venue"),
      Expr::Column("v", "title"), DirtySide::kRight, "v", "v"));
  std::string text = plan->ToString();
  EXPECT_NE(text.find("GroupEntities"), std::string::npos);
  EXPECT_NE(text.find("DedupJoin[Dirty-Right]"), std::string::npos);
  EXPECT_NE(text.find("Deduplicate(p)"), std::string::npos);
  EXPECT_NE(text.find("Filter(p.venue = 'EDBT')"), std::string::npos);
  EXPECT_NE(text.find("TableScan(p)"), std::string::npos);
}

}  // namespace
}  // namespace queryer
