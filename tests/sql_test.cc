// Unit tests for the SQL lexer and parser.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace queryer {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a.b, * FROM t WHERE x >= 1.5");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kIdentifier, TokenType::kIdentifier,
                       TokenType::kDot, TokenType::kIdentifier,
                       TokenType::kComma, TokenType::kStar,
                       TokenType::kIdentifier, TokenType::kIdentifier,
                       TokenType::kIdentifier, TokenType::kIdentifier,
                       TokenType::kGe, TokenType::kNumber, TokenType::kEnd}));
}

TEST(LexerTest, StringLiterals) {
  auto tokens = Tokenize("'EDBT' 'it''s' \"quoted\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "EDBT");
  EXPECT_EQ((*tokens)[1].text, "it's");
  EXPECT_EQ((*tokens)[2].text, "quoted");
}

TEST(LexerTest, Operators) {
  auto tokens = Tokenize("= <> != < <= > >=");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kEq, TokenType::kNe, TokenType::kNe,
                       TokenType::kLt, TokenType::kLe, TokenType::kGt,
                       TokenType::kGe, TokenType::kEnd}));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a ; b").ok());
}

TEST(ParserTest, MotivatingExampleQuery) {
  auto stmt = ParseSelect(
      "SELECT P.Title, P.Year, V.Rank FROM P INNER JOIN V ON P.venue = "
      "V.title WHERE P.venue = 'EDBT'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->dedup);
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].expr->ToString(), "P.Title");
  EXPECT_EQ(stmt->from.name, "P");
  ASSERT_EQ(stmt->joins.size(), 1u);
  EXPECT_EQ(stmt->joins[0].table.name, "V");
  EXPECT_EQ(stmt->joins[0].left_key->ToString(), "P.venue");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->ToString(), "P.venue = 'EDBT'");
}

TEST(ParserTest, DedupKeyword) {
  auto stmt = ParseSelect("SELECT DEDUP * FROM p");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->dedup);
  EXPECT_TRUE(stmt->select_star);
  auto plain = ParseSelect("SELECT * FROM p");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->dedup);
}

TEST(ParserTest, DoubleQuotedLiteral) {
  // The paper writes venue="EDBT"; double quotes act as string literals.
  auto stmt = ParseSelect("SELECT * FROM p WHERE venue = \"EDBT\"");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->ToString(), "venue = 'EDBT'");
}

TEST(ParserTest, Aliases) {
  auto stmt = ParseSelect(
      "SELECT x.a AS first FROM pubs AS x INNER JOIN venues y ON x.v = y.t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->from.alias, "x");
  EXPECT_EQ(stmt->joins[0].table.alias, "y");
  EXPECT_EQ(stmt->items[0].alias, "first");
}

TEST(ParserTest, AndOrPrecedence) {
  auto stmt =
      ParseSelect("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  // AND binds tighter: a=1 OR (b=2 AND c=3).
  EXPECT_EQ(stmt->where->kind(), ExprKind::kOr);
  EXPECT_EQ(stmt->where->children()[1]->kind(), ExprKind::kAnd);
}

TEST(ParserTest, Parentheses) {
  auto stmt =
      ParseSelect("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind(), ExprKind::kAnd);
  EXPECT_EQ(stmt->where->children()[0]->kind(), ExprKind::kOr);
}

TEST(ParserTest, InLikeBetweenNot) {
  auto stmt = ParseSelect(
      "SELECT * FROM t WHERE a IN ('x', 'y') AND b LIKE '%data%' AND "
      "c BETWEEN 1 AND 5 AND NOT d = 2");
  ASSERT_TRUE(stmt.ok());
  std::string text = stmt->where->ToString();
  EXPECT_NE(text.find("IN ('x', 'y')"), std::string::npos);
  EXPECT_NE(text.find("LIKE '%data%'"), std::string::npos);
  EXPECT_NE(text.find("BETWEEN 1 AND 5"), std::string::npos);
  EXPECT_NE(text.find("NOT (d = 2)"), std::string::npos);
}

TEST(ParserTest, ModFunction) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE MOD(id, 10) < 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->ToString(), "MOD(id, 10) < 1");
}

TEST(ParserTest, WhereStyleJoin) {
  auto stmt = ParseSelect("SELECT * FROM a, b WHERE a.x = b.y");
  // Comma-joins are not in the dialect; the statement must fail cleanly.
  EXPECT_FALSE(stmt.ok());
  auto ok = ParseSelect(
      "SELECT * FROM a INNER JOIN b ON a.x = b.y WHERE a.x = b.y");
  EXPECT_TRUE(ok.ok());
}

TEST(ParserTest, TrailingSemicolonAndWhitespace) {
  EXPECT_TRUE(ParseSelect("  SELECT * FROM t ;  ").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a =").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t extra garbage").ok());
  EXPECT_FALSE(ParseSelect("UPDATE t SET a = 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t JOIN u").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a LIKE 5").ok());
}

TEST(ParserTest, RoundTripToString) {
  const char* sql =
      "SELECT DEDUP p.title AS t FROM pubs AS p INNER JOIN v ON p.venue = "
      "v.title WHERE p.year > 2000 AND p.venue = 'EDBT'";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  auto reparsed = ParseSelect(stmt->ToString());
  ASSERT_TRUE(reparsed.ok()) << stmt->ToString();
  EXPECT_EQ(stmt->ToString(), reparsed->ToString());
}

}  // namespace
}  // namespace queryer
