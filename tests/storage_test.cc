// Unit tests for storage: schema, table, CSV round-trips, catalog.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace queryer {
namespace {

TEST(SchemaTest, MakeValidatesNames) {
  EXPECT_TRUE(Schema::Make({"id", "title"}).ok());
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({"id", "ID"}).ok());  // Case-insensitive dup.
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema schema({"Id", "Title", "Venue"});
  EXPECT_EQ(schema.IndexOf("title"), 1u);
  EXPECT_EQ(schema.IndexOf("VENUE"), 2u);
  EXPECT_FALSE(schema.IndexOf("missing").has_value());
}

TEST(SchemaTest, Equals) {
  Schema a({"id", "x"});
  Schema b({"ID", "X"});
  Schema c({"id", "y"});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(TableTest, BuilderChecksArity) {
  TableBuilder builder("t", Schema({"a", "b"}));
  EXPECT_TRUE(builder.AddRow({"1", "2"}).ok());
  EXPECT_FALSE(builder.AddRow({"1"}).ok());
  EXPECT_FALSE(builder.AddRow({"1", "2", "3"}).ok());
  TablePtr table = builder.Build();
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->ValueAt(0, 1), "2");
}

TEST(CsvTest, ParsesHeaderAndRows) {
  auto result = ReadCsvString("id,title\n1,Entity Resolution\n2,Blocking\n", "t");
  ASSERT_TRUE(result.ok());
  TablePtr table = *result;
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().name(1), "title");
  EXPECT_EQ(table->ValueAt(1, 1), "Blocking");
}

TEST(CsvTest, QuotedFields) {
  auto result = ReadCsvString(
      "id,title\n1,\"Resolution, collective\"\n2,\"say \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->ValueAt(0, 1), "Resolution, collective");
  EXPECT_EQ((*result)->ValueAt(1, 1), "say \"hi\"");
}

TEST(CsvTest, EmbeddedNewlineInQuotes) {
  auto result = ReadCsvString("a,b\n\"line1\nline2\",x\n", "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->ValueAt(0, 0), "line1\nline2");
}

TEST(CsvTest, CrLfAndTrailingBlankLines) {
  auto result = ReadCsvString("a,b\r\n1,2\r\n\r\n", "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 1u);
  EXPECT_EQ((*result)->ValueAt(0, 1), "2");
}

TEST(CsvTest, NoHeaderGeneratesColumnNames) {
  CsvOptions options;
  options.has_header = false;
  auto result = ReadCsvString("1,2\n3,4\n", "t", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().name(0), "c0");
  EXPECT_EQ((*result)->num_rows(), 2u);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsvString("", "t").ok());                 // Empty input.
  EXPECT_FALSE(ReadCsvString("a,b\n\"unterminated\n", "t").ok());
  EXPECT_FALSE(ReadCsvString("a,b\nx\"y,2\n", "t").ok());    // Stray quote.
}

TEST(CsvTest, RoundTrip) {
  TableBuilder builder("t", Schema({"a", "b"}));
  ASSERT_TRUE(builder.AddRow({"plain", "with, comma"}).ok());
  ASSERT_TRUE(builder.AddRow({"quote\"inside", ""}).ok());
  TablePtr table = builder.Build();
  std::string csv = WriteCsvString(*table);
  auto parsed = ReadCsvString(csv, "t2");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ((*parsed)->num_rows(), table->num_rows());
  for (EntityId e = 0; e < table->num_rows(); ++e) {
    for (std::size_t a = 0; a < table->num_attributes(); ++a) {
      EXPECT_EQ((*parsed)->ValueAt(e, a), table->ValueAt(e, a));
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  TableBuilder builder("t", Schema({"x"}));
  ASSERT_TRUE(builder.AddRow({"value"}).ok());
  TablePtr table = builder.Build();
  std::string path =
      (std::filesystem::temp_directory_path() / "queryer_csv_test.csv").string();
  ASSERT_TRUE(WriteCsvFile(*table, path).ok());
  auto parsed = ReadCsvFile(path, "t");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->ValueAt(0, 0), "value");
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile(path, "t").ok());  // Now missing.
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  TablePtr table = TableBuilder("Pubs", Schema({"id"})).Build();
  ASSERT_TRUE(catalog.Register(table).ok());
  EXPECT_TRUE(catalog.Contains("pubs"));
  auto fetched = catalog.Get("PUBS");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->name(), "Pubs");
  EXPECT_FALSE(catalog.Get("other").ok());
}

TEST(CatalogTest, DuplicateRejectedReplaceAllowed) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(TableBuilder("t", Schema({"a"})).Build()).ok());
  EXPECT_EQ(catalog.Register(TableBuilder("T", Schema({"a"})).Build()).code(),
            StatusCode::kAlreadyExists);
  catalog.RegisterOrReplace(TableBuilder("T", Schema({"b"})).Build());
  auto fetched = catalog.Get("t");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->schema().name(0), "b");
  EXPECT_EQ(catalog.size(), 1u);
}

}  // namespace
}  // namespace queryer
