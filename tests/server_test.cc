// QueryServer protocol tests: round-trips over real sockets, malformed
// frames as structured errors (never dropped connections), mid-stream
// disconnect releasing everything the connection held (engine admission
// slot + coordinator claims — the PR-8 phantom-slot probe, over the wire),
// per-tenant quota shedding that does not starve other tenants, plan-cache
// reuse, and result-cache invalidation driven by Link Index epochs.
//
// Every test runs a real server on an ephemeral loopback port; engine
// admission timeouts are set so a buggy slot leak fails fast as a shed
// instead of hanging the suite.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/query_server.h"

namespace queryer {
namespace {

using Rows = std::vector<std::vector<std::string>>;

constexpr char kDedupSql[] =
    "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
constexpr char kDisjointDedupSql[] =
    "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) >= 95";
constexpr char kScanSql[] =
    "SELECT id, title FROM dsd WHERE MOD(id, 100) < 23";

/// A server plus the engine it fronts, torn down in order.
struct TestServer {
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<QueryServer> server;

  std::uint16_t port() const { return server->port(); }
};

TestServer StartServer(const std::vector<TablePtr>& tables,
                       EngineOptions engine_options = {},
                       ServerOptions server_options = {}) {
  if (engine_options.admission_timeout == 0) {
    engine_options.admission_timeout = 30;  // Fail fast, never hang.
  }
  TestServer ts;
  ts.engine = std::make_unique<QueryEngine>(engine_options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(ts.engine->RegisterTable(table).ok());
  }
  ts.server = std::make_unique<QueryServer>(ts.engine.get(), server_options);
  Status st = ts.server->Start();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return ts;
}

/// Raw line-framed socket, for the malformed-frame and disconnect tests
/// where the typed Client is too well-behaved.
struct RawConn {
  int fd = -1;
  std::string buf;

  static RawConn Open(std::uint16_t port) {
    RawConn conn;
    conn.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(conn.fd);
      conn.fd = -1;
    }
    return conn;
  }

  bool Send(const std::string& line) {
    std::string framed = line + "\n";
    return ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(framed.size());
  }

  /// Blocking read of one frame; empty string = connection closed.
  std::string ReadLine() {
    char chunk[4096];
    for (;;) {
      std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ~RawConn() { Close(); }
};

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(2600, 4242));
  }
  static void TearDownTestSuite() {
    delete dsd_;
    dsd_ = nullptr;
  }
  void TearDown() override { Failpoints::Global().DisarmAll(); }

  /// The in-process reference answer, from a fresh single-client engine.
  static Rows ReferenceRows(const std::string& sql) {
    QueryEngine engine;
    EXPECT_TRUE(engine.RegisterTable(dsd_->table).ok());
    auto result = engine.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->rows : Rows{};
  }

  static datagen::GeneratedDataset* dsd_;
};

datagen::GeneratedDataset* ServerTest::dsd_ = nullptr;

// ---------------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------------

// PREPARE -> OPEN -> NEXT pages -> done: the paged rows are exactly the
// in-process answer, the final page reports done and releases the cursor.
TEST_F(ServerTest, PreparedCursorPagesMatchInProcessAnswer) {
  Rows reference = ReferenceRows(kScanSql);
  TestServer ts = StartServer({dsd_->table});

  auto client = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto stmt = client->Prepare(kScanSql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto open = client->OpenPrepared(*stmt);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->columns, (std::vector<std::string>{"id", "title"}));

  Rows paged;
  bool done = false;
  while (!done) {
    auto page = client->Next(open->cursor, 57);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    for (auto& row : page->rows) paged.push_back(std::move(row));
    done = page->done;
  }
  EXPECT_EQ(paged, reference);

  // done released the cursor server-side: a further NEXT is a structured
  // NotFound, not a dead connection.
  auto after = client->Next(open->cursor, 1);
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsNotFound()) << after.status().ToString();

  // And the connection is still perfectly usable.
  auto executed = client->Execute(kScanSql);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_EQ(executed->rows, reference);
}

// EXECUTE of a DEDUP statement over the wire equals the in-process answer.
TEST_F(ServerTest, ExecuteDedupMatchesInProcessAnswer) {
  Rows reference = ReferenceRows(kDedupSql);
  TestServer ts = StartServer({dsd_->table});

  auto client = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto executed = client->Execute(kDedupSql);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_EQ(executed->rows, reference);
  EXPECT_FALSE(executed->cached);
  EXPECT_GT(executed->comparisons_executed, 0u);
}

// CANCEL maps onto QueryCursor::Cancel: the following NEXT reports
// kCancelled as data and releases the cursor handle.
TEST_F(ServerTest, CancelSurfacesOnNextAndReleasesCursor) {
  EngineOptions engine_options;
  engine_options.batch_size = 16;
  TestServer ts = StartServer({dsd_->table}, engine_options);
  auto client = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto open = client->Open("SELECT * FROM dsd");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  // Batch-aligned fetches so the next NEXT must pull a fresh batch (the
  // cancel flag is checked at batch boundaries, not in the carry buffer).
  auto first = client->Next(open->cursor, 16);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(client->Cancel(open->cursor).ok());

  auto cancelled = client->Next(open->cursor, 16);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled())
      << cancelled.status().ToString();
  auto gone = client->Next(open->cursor, 16);
  EXPECT_TRUE(gone.status().IsNotFound()) << gone.status().ToString();
}

// ---------------------------------------------------------------------------
// Protocol robustness
// ---------------------------------------------------------------------------

// Malformed frames — garbage bytes, non-object JSON, unknown verbs, bad
// handles, verbs before HELLO — each get a structured error frame and the
// connection keeps serving.
TEST_F(ServerTest, MalformedFramesGetStructuredErrorsNotDisconnects) {
  TestServer ts = StartServer({dsd_->table});
  RawConn conn = RawConn::Open(ts.port());
  ASSERT_GE(conn.fd, 0);

  ASSERT_TRUE(conn.Send("this is not json"));
  EXPECT_NE(conn.ReadLine().find("\"Parse error\""), std::string::npos);

  ASSERT_TRUE(conn.Send("[1,2,3]"));
  EXPECT_NE(conn.ReadLine().find("\"Invalid argument\""), std::string::npos);

  // A verb before HELLO is refused but answered.
  ASSERT_TRUE(conn.Send(R"({"op":"EXECUTE","sql":"SELECT * FROM dsd"})"));
  EXPECT_NE(conn.ReadLine().find("HELLO"), std::string::npos);

  ASSERT_TRUE(conn.Send(R"({"op":"HELLO","tenant":"t"})"));
  EXPECT_NE(conn.ReadLine().find("\"ok\":true"), std::string::npos);

  ASSERT_TRUE(conn.Send(R"({"op":"FROBNICATE"})"));
  EXPECT_NE(conn.ReadLine().find("unknown op"), std::string::npos);

  ASSERT_TRUE(conn.Send(R"({"op":"NEXT","cursor":99})"));
  EXPECT_NE(conn.ReadLine().find("\"Not found\""), std::string::npos);

  // After all that abuse, real work still flows on the same connection.
  ASSERT_TRUE(conn.Send(
      R"({"op":"EXECUTE","sql":"SELECT id FROM dsd WHERE MOD(id, 100) < 1"})"));
  std::string answer = conn.ReadLine();
  EXPECT_NE(answer.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(answer.find("\"rows\""), std::string::npos);
}

// Over-long frames are swallowed and refused without losing the framing.
TEST_F(ServerTest, OversizedFrameIsRefusedAndConnectionSurvives) {
  ServerOptions server_options;
  server_options.max_frame_bytes = 1024;
  TestServer ts = StartServer({dsd_->table}, {}, server_options);
  RawConn conn = RawConn::Open(ts.port());
  ASSERT_GE(conn.fd, 0);

  ASSERT_TRUE(conn.Send(R"({"op":"HELLO","tenant":"t"})"));
  EXPECT_NE(conn.ReadLine().find("\"ok\":true"), std::string::npos);

  ASSERT_TRUE(conn.Send(std::string(4096, 'x')));
  EXPECT_NE(conn.ReadLine().find("max_frame_bytes"), std::string::npos);

  ASSERT_TRUE(conn.Send(
      R"({"op":"EXECUTE","sql":"SELECT id FROM dsd WHERE MOD(id, 100) < 1"})"));
  EXPECT_NE(conn.ReadLine().find("\"ok\":true"), std::string::npos);
}

// The idle timeout ends a silent connection with a structured goodbye, not
// a silent close.
TEST_F(ServerTest, IdleTimeoutSendsStructuredGoodbye) {
  ServerOptions server_options;
  server_options.idle_timeout = 0.2;
  TestServer ts = StartServer({dsd_->table}, {}, server_options);
  RawConn conn = RawConn::Open(ts.port());
  ASSERT_GE(conn.fd, 0);

  std::string goodbye = conn.ReadLine();  // Blocks until the timeout fires.
  EXPECT_NE(goodbye.find("idle timeout"), std::string::npos);
  EXPECT_NE(goodbye.find("\"bye\":true"), std::string::npos);
  EXPECT_EQ(conn.ReadLine(), "");  // Then the connection really closes.
}

// Connections beyond max_connections get a structured refusal frame.
TEST_F(ServerTest, ConnectionLimitRefusesStructurally) {
  ServerOptions server_options;
  server_options.max_connections = 1;
  TestServer ts = StartServer({dsd_->table}, {}, server_options);

  auto first = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  auto second = Client::Connect("127.0.0.1", ts.port(), "tenant-b");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();

  // Freeing the slot lets the next connection in (the accept loop reaps).
  first->Disconnect();
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto retry = Client::Connect("127.0.0.1", ts.port(), "tenant-b");
    if (retry.ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  FAIL() << "connection slot never freed after disconnect";
}

// ---------------------------------------------------------------------------
// Disconnect = release everything (the phantom-slot probe, over the wire)
// ---------------------------------------------------------------------------

// An abrupt mid-stream disconnect must release the engine admission slot
// AND the coordinator claims: at max_concurrent_queries=1, a second
// connection's identical DEDUP query can only complete if the slot came
// back, can only produce the reference answer if the abandoned claims were
// released, and can only report zero executed comparisons if the first
// session's published links survived.
TEST_F(ServerTest, MidStreamDisconnectReleasesSlotAndClaims) {
  Rows reference = ReferenceRows(kDedupSql);

  EngineOptions engine_options;
  engine_options.max_concurrent_queries = 1;
  engine_options.batch_size = 16;
  TestServer ts = StartServer({dsd_->table}, engine_options);

  {
    RawConn conn = RawConn::Open(ts.port());
    ASSERT_GE(conn.fd, 0);
    ASSERT_TRUE(conn.Send(R"({"op":"HELLO","tenant":"t"})"));
    conn.ReadLine();
    ASSERT_TRUE(conn.Send(std::string(R"({"op":"OPEN","sql":")") + kDedupSql +
                          R"("})"));
    std::string opened = conn.ReadLine();
    ASSERT_NE(opened.find("\"cursor\""), std::string::npos) << opened;
    ASSERT_TRUE(conn.Send(R"({"op":"NEXT","cursor":1,"n":4})"));
    ASSERT_NE(conn.ReadLine().find("\"rows\""), std::string::npos);
    // Vanish with the cursor open and most of the stream undrained.
    conn.Close();
  }

  auto client = Client::Connect("127.0.0.1", ts.port(), "tenant-b");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto second = client->Execute(kDedupSql);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->rows, reference);
  EXPECT_EQ(second->comparisons_executed, 0u)
      << "abandoned claims were not released / links were lost";
}

// ---------------------------------------------------------------------------
// Tenancy
// ---------------------------------------------------------------------------

// A tenant at its quota is shed with kResourceExhausted while other
// tenants keep being admitted; closing the session restores the quota.
TEST_F(ServerTest, TenantQuotaShedsWithoutStarvingOthers) {
  EngineOptions engine_options;
  engine_options.max_concurrent_queries = 4;
  engine_options.max_concurrent_per_tenant = 1;
  TestServer ts = StartServer({dsd_->table}, engine_options);

  std::uint64_t shed_before =
      GlobalServerMetrics().requests_shed->Value();

  auto alice = Client::Connect("127.0.0.1", ts.port(), "alice");
  ASSERT_TRUE(alice.ok()) << alice.status().ToString();
  auto bob = Client::Connect("127.0.0.1", ts.port(), "bob");
  ASSERT_TRUE(bob.ok()) << bob.status().ToString();

  // Alice's open cursor occupies her whole quota.
  auto held = alice->Open("SELECT * FROM dsd");
  ASSERT_TRUE(held.ok()) << held.status().ToString();

  auto shed = alice->Execute(kScanSql);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  auto shed_open = alice->Open(kScanSql);
  ASSERT_FALSE(shed_open.ok());
  EXPECT_TRUE(shed_open.status().IsResourceExhausted());

  // Bob is unaffected by Alice hammering her quota.
  auto bobs = bob->Execute(kScanSql);
  ASSERT_TRUE(bobs.ok()) << bobs.status().ToString();

  EXPECT_GE(GlobalServerMetrics().requests_shed->Value(), shed_before + 2);
  EXPECT_GE(MetricsRegistry::Global()
                .GetCounter("queryer_server_tenant_shed_total_alice")
                ->Value(),
            2u);

  // CLOSE returns the quota; Alice works again.
  ASSERT_TRUE(alice->Close(held->cursor).ok());
  auto after = alice->Execute(kScanSql);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// ---------------------------------------------------------------------------
// Caches
// ---------------------------------------------------------------------------

// The shared plan cache serves repeated PREPAREs of the same text — across
// connections — without re-planning.
TEST_F(ServerTest, PlanCacheServesRepeatedPrepares) {
  TestServer ts = StartServer({dsd_->table});
  std::uint64_t hits_before = GlobalServerMetrics().plan_cache_hits->Value();

  auto a = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(a->Prepare(kScanSql).ok());
  EXPECT_EQ(ts.server->plan_cache().size(), 1u);

  auto b = Client::Connect("127.0.0.1", ts.port(), "tenant-b");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(b->Prepare(kScanSql).ok());
  EXPECT_EQ(ts.server->plan_cache().size(), 1u)
      << "second PREPARE of the same text must reuse the cached plan";
  EXPECT_GE(GlobalServerMetrics().plan_cache_hits->Value(), hits_before + 1);

  // Parse errors are never cached.
  EXPECT_FALSE(a->Prepare("SELECT FROM WHERE").ok());
  EXPECT_EQ(ts.server->plan_cache().size(), 1u);
}

// The hot-query path: the first EXECUTE computes and caches, the repeat is
// served from the result cache with zero engine work, and a link
// publication on an involved table (another query's resolution advancing
// the Link Index epoch) provably invalidates the cached answer.
TEST_F(ServerTest, ResultCacheHitsUntilLinkPublicationMovesEpoch) {
  TestServer ts = StartServer({dsd_->table});
  auto client = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto first = client->Execute(kDedupSql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cached);

  // Repeat: a pure cache hit — no session, no admission, 0 comparisons
  // (the engine-wide counter does not move at all).
  std::uint64_t comparisons_before =
      GlobalEngineMetrics().comparisons_executed->Value();
  std::uint64_t hits_before = GlobalServerMetrics().result_cache_hits->Value();
  auto repeat = client->Execute(kDedupSql);
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
  EXPECT_TRUE(repeat->cached);
  EXPECT_EQ(repeat->rows, first->rows);
  EXPECT_EQ(GlobalEngineMetrics().comparisons_executed->Value(),
            comparisons_before);
  EXPECT_EQ(GlobalServerMetrics().result_cache_hits->Value(),
            hits_before + 1);

  // A DIFFERENT query resolves a disjoint selection: its resolution
  // publishes links on dsd, which advances the Link Index epoch.
  std::uint64_t epoch_before =
      (*ts.engine->GetRuntime("dsd"))->link_index().epoch();
  auto other = client->Execute(kDisjointDedupSql);
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  ASSERT_GT((*ts.engine->GetRuntime("dsd"))->link_index().epoch(),
            epoch_before)
      << "the disjoint DEDUP published nothing; the probe is inert";

  // The cached answer for the original statement is now stale: the next
  // EXECUTE detects the moved epoch, drops the entry and re-executes.
  std::uint64_t invalidated_before =
      GlobalServerMetrics().result_cache_invalidated->Value();
  auto after = client->Execute(kDedupSql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->cached) << "stale entry served after epoch advance";
  EXPECT_EQ(GlobalServerMetrics().result_cache_invalidated->Value(),
            invalidated_before + 1);
  // Same answer — the links all survived; nothing needed re-comparing.
  EXPECT_EQ(after->rows, first->rows);
  EXPECT_EQ(after->comparisons_executed, 0u);
}

// ---------------------------------------------------------------------------
// Failpoints
// ---------------------------------------------------------------------------

// server.accept refuses the connection with a structured frame;
// server.read fails the read path, which the server treats as a peer
// disconnect (cleanup, no crash, later connections unaffected).
TEST_F(ServerTest, ServerFailpointsExerciseFailurePaths) {
  TestServer ts = StartServer({dsd_->table});

  ASSERT_TRUE(
      Failpoints::Global().Arm("server.accept", "error(once)").ok());
  auto refused = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_FALSE(refused.ok());

  auto client = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_TRUE(Failpoints::Global().Arm("server.read", "error(once)").ok());
  // The injected read failure kills this connection (disconnect path).
  auto dead = client->Execute(kScanSql);
  ASSERT_FALSE(dead.ok());

  // The server survives and serves fresh connections.
  auto again = Client::Connect("127.0.0.1", ts.port(), "tenant-a");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->Execute(kScanSql).ok());
}

}  // namespace
}  // namespace queryer
