// Unit tests for the common substrate: Status/Result, string utilities and
// the deterministic random engine.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace queryer {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("missing");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
  Status assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.IsNotFound());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::PlanError("x").code(), StatusCode::kPlanError);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

Result<int> ReturnsValue() { return 42; }
Result<int> ReturnsError() { return Status::NotFound("no value"); }
Result<int> Propagates() {
  QUERYER_ASSIGN_OR_RETURN(int value, ReturnsError());
  return value + 1;
}
Result<int> PropagatesOk() {
  QUERYER_ASSIGN_OR_RETURN(int value, ReturnsValue());
  return value + 1;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ReturnsValue();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ReturnsError();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_FALSE(Propagates().ok());
  Result<int> ok = PropagatesOk();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 43);
}

TEST(StringUtilTest, CaseFolding) {
  EXPECT_EQ(ToLower("EDBT 2025"), "edbt 2025");
  EXPECT_EQ(ToUpper("edbt"), "EDBT");
  EXPECT_TRUE(EqualsIgnoreCase("SIGMOD", "sigmod"));
  EXPECT_FALSE(EqualsIgnoreCase("SIGMOD", "sigmo"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitAndJoin) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
  EXPECT_EQ(Split("one", ',').size(), 1u);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("deduplicate", "dedup"));
  EXPECT_FALSE(StartsWith("dedup", "deduplicate"));
  EXPECT_TRUE(EndsWith("query.csv", ".csv"));
  EXPECT_FALSE(EndsWith("query.csv", ".tsv"));
}

TEST(TokenizeTest, SchemaAgnosticTokens) {
  std::vector<std::string> tokens =
      TokenizeAlnum("Collective Entity-Resolution, 2008!");
  EXPECT_EQ(tokens, (std::vector<std::string>{"collective", "entity",
                                              "resolution", "2008"}));
}

TEST(TokenizeTest, MinLengthDropsNoise) {
  std::vector<std::string> tokens = TokenizeAlnum("E.R on Big Data", 2);
  // "E" and "R" are dropped at min length 2; "on" stays.
  EXPECT_EQ(tokens, (std::vector<std::string>{"on", "big", "data"}));
  std::vector<std::string> all = TokenizeAlnum("E.R on Big Data", 1);
  EXPECT_EQ(all.size(), 5u);
}

TEST(TokenizeTest, EmptyInput) {
  EXPECT_TRUE(TokenizeAlnum("").empty());
  EXPECT_TRUE(TokenizeAlnum("...---!!!").empty());
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("entity resolution", "%resolution"));
  EXPECT_TRUE(LikeMatch("entity resolution", "entity%"));
  EXPECT_TRUE(LikeMatch("entity resolution", "%tity%"));
  EXPECT_TRUE(LikeMatch("edbt", "e_bt"));
  EXPECT_FALSE(LikeMatch("edbt", "e_t"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
}

TEST(LikeMatchTest, CaseInsensitive) {
  EXPECT_TRUE(LikeMatch("EDBT", "edbt"));
  EXPECT_TRUE(LikeMatch("SIGMOD Conference", "%conference"));
}

TEST(LikeMatchTest, BacktrackingPattern) {
  // Requires backtracking over the '%'.
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));
  EXPECT_TRUE(LikeMatch("mississippi", "%issip%"));
  EXPECT_FALSE(LikeMatch("mississippi", "%issip%x"));
}

TEST(RandomEngineTest, Deterministic) {
  RandomEngine a(7);
  RandomEngine b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RandomEngineTest, UniformBounds) {
  RandomEngine rng(11);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomEngineTest, BernoulliEdges) {
  RandomEngine rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomEngineTest, ZipfSkewsLow) {
  RandomEngine rng(17);
  std::size_t low = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // With positive skew the first decile must be over-represented.
  EXPECT_GT(low, kDraws / 10);
}

TEST(RandomEngineTest, ShuffleIsPermutation) {
  RandomEngine rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace queryer
