// Unit tests for Token Blocking, the table/query block indices and
// Block-Join, using the paper's motivating-example data where possible.

#include <gtest/gtest.h>

#include <algorithm>

#include "blocking/block_join.h"
#include "blocking/token_blocking.h"
#include "datagen/scholarly.h"

namespace queryer {
namespace {

TablePtr MotivatingP() { return datagen::MakeMotivatingPublications().table; }

TEST(EntityBlockingKeysTest, DistinctLowercasedTokens) {
  TablePtr p = MotivatingP();
  // P1 = {P1, "Collective Entity Resolution", "", "EDBT", "2008"}.
  std::vector<std::string> keys = EntityBlockingKeys(*p, 0, BlockingOptions{});
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_NE(std::find(keys.begin(), keys.end(), "collective"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "edbt"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "2008"), keys.end());
  // Duplicate tokens across attributes appear once.
  EXPECT_EQ(std::count(keys.begin(), keys.end(), "edbt"), 1);
}

TEST(EntityBlockingKeysTest, ExcludedAttributes) {
  TablePtr p = MotivatingP();
  BlockingOptions options;
  options.excluded_attributes = {0};  // Drop the id column.
  std::vector<std::string> keys = EntityBlockingKeys(*p, 0, options);
  EXPECT_EQ(std::find(keys.begin(), keys.end(), "p1"), keys.end());
}

TEST(TableBlockIndexTest, BuildsExpectedBlocks) {
  TablePtr p = MotivatingP();
  auto tbi = TableBlockIndex::Build(*p, BlockingOptions{});
  // "edbt" appears in P1, P6, P8.
  std::int64_t edbt = tbi->FindBlock("edbt");
  ASSERT_GE(edbt, 0);
  EXPECT_EQ(tbi->block_entities(static_cast<std::size_t>(edbt)),
            (std::vector<EntityId>{0, 5, 7}));
  // "collective" appears in P1, P2.
  std::int64_t collective = tbi->FindBlock("collective");
  ASSERT_GE(collective, 0);
  EXPECT_EQ(tbi->block_entities(static_cast<std::size_t>(collective)),
            (std::vector<EntityId>{0, 1}));
}

TEST(TableBlockIndexTest, SingletonBlocksDropped) {
  TablePtr p = MotivatingP();
  auto tbi = TableBlockIndex::Build(*p, BlockingOptions{});
  // "collective" is shared; a unique token like "p3" (id of one row) forms
  // no block.
  EXPECT_EQ(tbi->FindBlock("p3"), -1);
  EXPECT_EQ(tbi->FindBlock("nonexistent-token"), -1);
}

TEST(TableBlockIndexTest, InverseIndexSortedBySize) {
  TablePtr p = MotivatingP();
  auto tbi = TableBlockIndex::Build(*p, BlockingOptions{});
  for (EntityId e = 0; e < p->num_rows(); ++e) {
    const auto& blocks = tbi->entity_blocks(e);
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      EXPECT_LE(tbi->block_size(blocks[i - 1]), tbi->block_size(blocks[i]))
          << "entity " << e << " block list not ascending";
    }
  }
}

TEST(TableBlockIndexTest, EveryBlockMembershipInverted) {
  TablePtr p = MotivatingP();
  auto tbi = TableBlockIndex::Build(*p, BlockingOptions{});
  for (std::size_t b = 0; b < tbi->num_blocks(); ++b) {
    for (EntityId e : tbi->block_entities(b)) {
      const auto& blocks = tbi->entity_blocks(e);
      EXPECT_NE(std::find(blocks.begin(), blocks.end(), b), blocks.end());
    }
  }
}

TEST(TableBlockIndexTest, MemoryFootprintPositive) {
  TablePtr p = MotivatingP();
  auto tbi = TableBlockIndex::Build(*p, BlockingOptions{});
  EXPECT_GT(tbi->MemoryFootprint(), 0u);
}

TEST(QueryBlockIndexTest, BuildsOnlyOverQueryEntities) {
  TablePtr p = MotivatingP();
  QueryBlockIndex qbi = QueryBlockIndex::Build(*p, {0}, BlockingOptions{});
  // All keys must be P1's tokens.
  std::vector<std::string> expected =
      EntityBlockingKeys(*p, 0, BlockingOptions{});
  EXPECT_EQ(qbi.num_blocks(), expected.size());
  for (const auto& [key, entities] : qbi.blocks()) {
    EXPECT_EQ(entities, (std::vector<EntityId>{0}));
  }
}

TEST(BlockJoinTest, EnrichesQueryBlocksWithTableEntities) {
  TablePtr p = MotivatingP();
  auto tbi = TableBlockIndex::Build(*p, BlockingOptions{});
  // Query: P1 only (as selected by venue='EDBT' + year 2008, say).
  QueryBlockIndex qbi = QueryBlockIndex::Build(*p, {0}, BlockingOptions{});
  BlockJoinStats stats;
  BlockCollection enriched = BlockJoin(qbi, *tbi, &stats);
  EXPECT_EQ(stats.qbi_blocks, qbi.num_blocks());
  EXPECT_EQ(stats.matched_blocks, enriched.size());
  EXPECT_LE(enriched.size(), qbi.num_blocks());

  // The "collective" block must now contain P2 as well.
  auto it = std::find_if(enriched.begin(), enriched.end(),
                         [](const Block& b) { return b.key == "collective"; });
  ASSERT_NE(it, enriched.end());
  EXPECT_EQ(it->entities, (std::vector<EntityId>{0, 1}));
  EXPECT_EQ(it->query_entities, (std::vector<EntityId>{0}));
}

TEST(BlockJoinTest, KeysAbsentFromTbiProduceNoBlocks) {
  TablePtr p = MotivatingP();
  auto tbi = TableBlockIndex::Build(*p, BlockingOptions{});
  // P4 has tokens ("davids", "doe", ...) shared with P3/P5, but its id token
  // "p4" has no block; joined blocks only cover shared keys.
  QueryBlockIndex qbi = QueryBlockIndex::Build(*p, {3}, BlockingOptions{});
  BlockCollection enriched = BlockJoin(qbi, *tbi);
  for (const Block& b : enriched) {
    EXPECT_GE(b.entities.size(), 2u) << "block " << b.key;
  }
}

TEST(BlockTest, ComparisonFormulas) {
  Block b;
  b.entities = {1, 2, 3, 4};
  b.query_entities = {1};
  // |QE|=1, |b|=4: 1 * (4 - (1+1)/2) = 3 comparisons.
  EXPECT_DOUBLE_EQ(b.QueryComparisons(), 3.0);
  EXPECT_DOUBLE_EQ(b.Cardinality(), 6.0);
  b.query_entities = {1, 2, 3, 4};
  // All query: full cardinality 4*3/2 = 6.
  EXPECT_DOUBLE_EQ(b.QueryComparisons(), 6.0);
  b.query_entities.clear();
  EXPECT_DOUBLE_EQ(b.QueryComparisons(), 0.0);
}

TEST(BlockTest, CollectionAggregates) {
  Block a;
  a.entities = {1, 2};
  a.query_entities = {1};
  Block b;
  b.entities = {3, 4, 5};
  b.query_entities = {3, 4};
  BlockCollection blocks = {a, b};
  EXPECT_DOUBLE_EQ(TotalCardinality(blocks), 1.0 + 3.0);
  EXPECT_EQ(TotalAssignments(blocks), 5u);
  // a: 1*(2-1)=1; b: 2*(3-1.5)=3.
  EXPECT_DOUBLE_EQ(TotalQueryComparisons(blocks), 4.0);
}

}  // namespace
}  // namespace queryer
