// Tests of the parallel-execution subsystem: ThreadPool submit/wait,
// exception-to-Status propagation and chunking edge cases of ParallelFor,
// the concurrency-safe Link Index read path, and the determinism contract —
// a multi-threaded engine must produce the same rows and link counts as the
// sequential one.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "matching/comparison_execution.h"
#include "matching/link_index.h"
#include "parallel/thread_pool.h"

namespace queryer {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool drains the queue before joining.
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(SplitRangeTest, EmptyRange) {
  EXPECT_TRUE(SplitRange(0, 4).empty());
}

TEST(SplitRangeTest, FewerElementsThanChunks) {
  std::vector<ChunkRange> chunks = SplitRange(3, 8);
  ASSERT_EQ(chunks.size(), 3u);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].begin, c);
    EXPECT_EQ(chunks[c].end, c + 1);
  }
}

TEST(SplitRangeTest, UnevenSplitCoversRangeExactlyOnce) {
  // 10 over 4 chunks: sizes 3,3,2,2 — contiguous, gap-free.
  std::vector<ChunkRange> chunks = SplitRange(10, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].end - chunks[0].begin, 3u);
  EXPECT_EQ(chunks[1].end - chunks[1].begin, 3u);
  EXPECT_EQ(chunks[2].end - chunks[2].begin, 2u);
  EXPECT_EQ(chunks[3].end - chunks[3].begin, 2u);
  std::size_t expected_begin = 0;
  for (const ChunkRange& chunk : chunks) {
    EXPECT_EQ(chunk.begin, expected_begin);
    expected_begin = chunk.end;
  }
  EXPECT_EQ(expected_begin, 10u);
}

TEST(SplitRangeTest, ZeroChunksClampsToOne) {
  std::vector<ChunkRange> chunks = SplitRange(5, 0);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 5u);
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  Status status = ParallelFor(
      &pool, visits.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++visits[i];
        return Status::OK();
      },
      16);
  ASSERT_TRUE(status.ok());
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> visits(100, 0);  // No atomics needed: inline = one thread.
  Status status = ParallelFor(
      nullptr, visits.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++visits[i];
        return Status::OK();
      },
      7);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 100);
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  ThreadPool pool(2);
  bool called = false;
  Status status =
      ParallelFor(&pool, 0, [&](std::size_t, std::size_t, std::size_t) {
        called = true;
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, PropagatesBodyStatus) {
  ThreadPool pool(4);
  Status status = ParallelFor(
      &pool, 100,
      [](std::size_t chunk, std::size_t, std::size_t) {
        if (chunk >= 2) {
          return Status::ExecutionError("chunk " + std::to_string(chunk));
        }
        return Status::OK();
      },
      8);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kExecutionError);
  // The lowest failing chunk wins, independent of scheduling.
  EXPECT_EQ(status.message(), "chunk 2");
}

TEST(ParallelForTest, ConvertsExceptionsToStatus) {
  ThreadPool pool(4);
  Status status = ParallelFor(
      &pool, 100,
      [](std::size_t chunk, std::size_t, std::size_t) -> Status {
        if (chunk == 1) throw std::runtime_error("worker exploded");
        return Status::OK();
      },
      4);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("worker exploded"), std::string::npos);
}

TEST(ParallelForTest, InlineExceptionAlsoBecomesStatus) {
  Status status = ParallelFor(
      nullptr, 10, [](std::size_t, std::size_t, std::size_t) -> Status {
        throw std::logic_error("sequential throw");
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(LinkIndexTest, SharedReadMatchesHalvingRead) {
  LinkIndex li(16);
  li.AddLink(0, 1);
  li.AddLink(1, 2);
  li.AddLink(5, 9);
  for (EntityId a = 0; a < 16; ++a) {
    for (EntityId b = 0; b < 16; ++b) {
      EXPECT_EQ(li.AreLinkedShared(a, b), li.AreLinked(a, b));
    }
  }
}

TEST(LinkIndexTest, AddLinkReportsMerges) {
  LinkIndex li(4);
  EXPECT_TRUE(li.AddLink(0, 1));
  EXPECT_TRUE(li.AddLink(2, 3));
  EXPECT_TRUE(li.AddLink(0, 2));
  // Transitively linked already: no merge, no count.
  EXPECT_FALSE(li.AddLink(1, 3));
  EXPECT_EQ(li.num_links(), 3u);
}

// The whole-pipeline determinism contract on a seeded dirty table: the
// 4-thread engine must produce exactly the 1-thread rows and link counts.
TEST(ParallelDeterminismTest, FourThreadsMatchSequential) {
  auto dsd = datagen::MakeDsdLike(1500, 4242);
  const std::string sql =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 40";

  auto run = [&](std::size_t num_threads) {
    EngineOptions options;
    options.num_threads = num_threads;
    QueryEngine engine(options);
    EXPECT_TRUE(engine.RegisterTable(dsd.table).ok());
    EXPECT_TRUE(engine.WarmIndices("dsd").ok());
    auto result = engine.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::size_t links =
        engine.GetRuntime("dsd")->get()->link_index().num_links();
    return std::make_tuple(result->rows, links, result->stats.matches_found);
  };

  auto [rows1, links1, matches1] = run(1);
  auto [rows4, links4, matches4] = run(4);
  EXPECT_EQ(rows4, rows1);
  EXPECT_EQ(links4, links1);
  EXPECT_EQ(matches4, matches1);
  EXPECT_GT(links1, 0u);
  EXPECT_FALSE(rows1.empty());
}

// Comparison execution alone, parallel vs sequential, on top of links some
// earlier "query" already resolved — the merge path must treat them as
// skippable and end at the identical clustering.
TEST(ParallelDeterminismTest, ComparisonExecutionMatchesSequential) {
  auto dsd = datagen::MakeDsdLike(800, 77);
  BlockingOptions blocking;
  blocking.excluded_attributes = {0};
  MatchingConfig matching;
  matching.excluded_attributes = {0};
  auto tbi = TableBlockIndex::Build(*dsd.table, blocking);
  std::vector<Comparison> comparisons;
  for (std::size_t b = 0; b < tbi->num_blocks(); ++b) {
    const auto& entities = tbi->block_entities(b);
    for (std::size_t i = 0; i < entities.size(); ++i) {
      for (std::size_t j = i + 1; j < entities.size(); ++j) {
        comparisons.emplace_back(entities[i], entities[j]);
      }
    }
  }
  ASSERT_GE(comparisons.size(), kParallelComparisonThreshold);
  AttributeWeights weights = AttributeWeights::Compute(*dsd.table);

  LinkIndex sequential(dsd.table->num_rows());
  sequential.AddLink(0, 1);  // Pre-existing link from an "earlier query".
  ComparisonExecStats seq_stats = *ExecuteComparisons(
      *dsd.table, comparisons, matching, &sequential, &weights);

  ThreadPool pool(4);
  LinkIndex parallel(dsd.table->num_rows());
  parallel.AddLink(0, 1);
  ComparisonExecStats par_stats = *ExecuteComparisons(
      *dsd.table, comparisons, matching, &parallel, &weights, &pool);

  EXPECT_EQ(parallel.num_links(), sequential.num_links());
  EXPECT_EQ(par_stats.matches_found, seq_stats.matches_found);
  for (EntityId e = 0; e < dsd.table->num_rows(); ++e) {
    EXPECT_EQ(parallel.Cluster(e), sequential.Cluster(e));
  }
}

// The sharded TBI build must be indistinguishable from the sequential one.
TEST(ParallelTbiBuildTest, PooledBuildMatchesSequential) {
  auto dsd = datagen::MakeDsdLike(600, 9);
  BlockingOptions blocking;
  blocking.excluded_attributes = {0};
  auto sequential = TableBlockIndex::Build(*dsd.table, blocking);
  ThreadPool pool(4);
  auto pooled = TableBlockIndex::Build(*dsd.table, blocking, &pool);

  ASSERT_EQ(pooled->num_blocks(), sequential->num_blocks());
  for (std::size_t b = 0; b < sequential->num_blocks(); ++b) {
    EXPECT_EQ(pooled->block_key(b), sequential->block_key(b));
    EXPECT_EQ(pooled->block_entities(b), sequential->block_entities(b));
  }
  ASSERT_EQ(pooled->num_entities(), sequential->num_entities());
  for (EntityId e = 0; e < sequential->num_entities(); ++e) {
    EXPECT_EQ(pooled->entity_blocks(e), sequential->entity_blocks(e));
  }
}

}  // namespace
}  // namespace queryer
