// Fault injection: the failpoint subsystem itself (spec grammar, trigger
// gates, seeded replay, env arming) and the engine's behavior under
// injected failures — claim abandonment, Link Index consistency, admission
// slot release, first-error-wins propagation — capped by seeded chaos
// schedules that interleave failing scan / join / DEDUP sessions and then
// assert the engine's structural invariants:
//
//   * no stranded ResolutionCoordinator claims (all in-flight counts zero),
//   * no leaked admission slots (a full-width fault-free round completes),
//   * only genuine links ever published (a fault-free rerun on the chaosed
//     engine answers bit-identically to a never-chaosed engine),
//   * the Link Index stays structurally sane (num_resolved <= rows).
//
// QUERYER_CHAOS_SEED=<n> narrows the chaos matrix to one seed (the CI
// chaos job runs one seed per matrix leg); unset, all seeds run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <memory>

#include "common/cancel_context.h"
#include "common/failpoint.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"
#include "exec/deduplicator.h"
#include "exec/exec_stats.h"
#include "exec/table_runtime.h"
#include "obs/metrics.h"

namespace queryer {
namespace {

using Rows = std::vector<std::vector<std::string>>;

// Arms a site for one scope; always disarmed on exit, so a failing
// EXPECT cannot leak an armed failpoint into the next test.
class ScopedFailpoint {
 public:
  ScopedFailpoint(const std::string& site, const std::string& spec)
      : site_(site) {
    Status armed = Failpoints::Global().Arm(site, spec);
    EXPECT_TRUE(armed.ok()) << armed.ToString();
  }
  ~ScopedFailpoint() { Failpoints::Global().Disarm(site_); }

 private:
  std::string site_;
};

std::unique_ptr<QueryEngine> MakeEngine(
    const std::vector<TablePtr>& tables, std::size_t batch_size = 0,
    std::size_t num_threads = 1, std::size_t max_concurrent = 1) {
  EngineOptions options;
  if (batch_size != 0) options.batch_size = batch_size;
  options.num_threads = num_threads;
  options.max_concurrent_queries = max_concurrent;
  auto engine = std::make_unique<QueryEngine>(options);
  for (const TablePtr& table : tables) {
    EXPECT_TRUE(engine->RegisterTable(table).ok());
  }
  return engine;
}

// ---------------------------------------------------------------------------
// Failpoint mechanics.
// ---------------------------------------------------------------------------

TEST(FailpointTest, SpecGrammarAcceptsAndRejects) {
  Failpoints& fps = Failpoints::Global();
  EXPECT_TRUE(fps.Arm("fi.grammar", "error").ok());
  EXPECT_TRUE(fps.Arm("fi.grammar", "throw").ok());
  EXPECT_TRUE(fps.Arm("fi.grammar", "delay(10)").ok());
  EXPECT_TRUE(fps.Arm("fi.grammar", "error(p=0.5,seed=42)").ok());
  EXPECT_TRUE(fps.Arm("fi.grammar", "error(every=3)").ok());
  EXPECT_TRUE(fps.Arm("fi.grammar", "throw(once)").ok());
  EXPECT_TRUE(fps.Arm("fi.grammar", "delay(5,p=0.25,seed=7)").ok());

  EXPECT_TRUE(fps.Arm("fi.grammar", "explode").IsInvalidArgument());
  EXPECT_TRUE(fps.Arm("fi.grammar", "error(p=2.0)").IsInvalidArgument());
  EXPECT_TRUE(fps.Arm("fi.grammar", "error(wat=1)").IsInvalidArgument());
  EXPECT_TRUE(fps.Arm("fi.grammar", "").IsInvalidArgument());

  // A failed Arm must not leave the site armed with the bad spec; the
  // last good spec ("delay(5,...)") — or nothing — may remain. Disarm and
  // verify the site reports disarmed.
  fps.Disarm("fi.grammar");
  EXPECT_FALSE(fps.Get("fi.grammar")->armed());
}

TEST(FailpointTest, ErrorModeReturnsStatusNamingTheSite) {
  ScopedFailpoint armed("fi.error_site", "error");
  Failpoint* fp = Failpoints::Global().Get("fi.error_site");
  ASSERT_TRUE(fp->armed());
  Status fired = fp->Fire();
  ASSERT_FALSE(fired.ok());
  EXPECT_NE(fired.message().find("fi.error_site"), std::string::npos)
      << fired.ToString();
  Failpoints::Global().Disarm("fi.error_site");
  EXPECT_FALSE(fp->armed());
  EXPECT_TRUE(fp->Fire().ok());
}

TEST(FailpointTest, ThrowModeThrowsFailpointError) {
  ScopedFailpoint armed("fi.throw_site", "throw");
  Failpoint* fp = Failpoints::Global().Get("fi.throw_site");
  EXPECT_THROW(fp->FireOrThrow(), FailpointError);
  EXPECT_THROW((void)fp->Fire(), FailpointError);
  // Inert evaluation never throws — it only counts.
  EXPECT_NO_THROW(fp->FireInert());
}

TEST(FailpointTest, EveryNGateFiresOnExactMultiples) {
  ScopedFailpoint armed("fi.every_site", "error(every=3)");
  Failpoint* fp = Failpoints::Global().Get("fi.every_site");
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!fp->Fire().ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST(FailpointTest, OnceDisarmsAfterFirstTrigger) {
  ScopedFailpoint armed("fi.once_site", "error(once)");
  Failpoint* fp = Failpoints::Global().Get("fi.once_site");
  EXPECT_FALSE(fp->Fire().ok());
  EXPECT_FALSE(fp->armed());
  EXPECT_TRUE(fp->Fire().ok());
}

TEST(FailpointTest, SeededProbabilityReplaysIdentically) {
  auto sample = [](std::uint64_t seed) {
    Status armed = Failpoints::Global().Arm(
        "fi.prob_site", "error(p=0.5,seed=" + std::to_string(seed) + ")");
    EXPECT_TRUE(armed.ok());
    Failpoint* fp = Failpoints::Global().Get("fi.prob_site");
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) outcomes.push_back(!fp->Fire().ok());
    Failpoints::Global().Disarm("fi.prob_site");
    return outcomes;
  };
  std::vector<bool> first = sample(42);
  std::vector<bool> replay = sample(42);
  EXPECT_EQ(first, replay);  // Same seed => identical schedule.
  // The gate really gates: neither all-fire nor never-fire over 64 draws.
  std::size_t fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
  // A different seed produces a different schedule (2^-64 false-failure
  // odds notwithstanding).
  EXPECT_NE(sample(43), first);
}

TEST(FailpointTest, EnvFormatArmsSitesAndSkipsMalformedEntries) {
  Failpoints& fps = Failpoints::Global();
  fps.ArmFromEnv(
      "fi.env_a=error;no_equals_sign;fi.env_b=delay(1);fi.env_c=bogus(");
  EXPECT_TRUE(fps.Get("fi.env_a")->armed());
  EXPECT_TRUE(fps.Get("fi.env_b")->armed());
  EXPECT_FALSE(fps.Get("fi.env_c")->armed());
  std::vector<std::string> armed = fps.ArmedSites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "fi.env_a"), armed.end());
  fps.DisarmAll();
  EXPECT_TRUE(fps.ArmedSites().empty());
  EXPECT_FALSE(fps.Get("fi.env_a")->armed());
}

TEST(FailpointTest, TriggerCounterCountsExactFires) {
  Counter* counter = MetricsRegistry::Global().GetCounter(
      "queryer_failpoint_triggered_total_fi_counted_site");
  const std::uint64_t before = counter->Value();
  ScopedFailpoint armed("fi.counted_site", "error(every=2)");
  Failpoint* fp = Failpoints::Global().Get("fi.counted_site");
  for (int i = 0; i < 10; ++i) (void)fp->Fire();  // Fires on 2,4,6,8,10.
  EXPECT_EQ(counter->Value() - before, 5u);
}

// Regression: a cancellation observed at the claim-loop's top poll — while
// the session still holds the entity claims it just took — must release
// those claims before the error surfaces. A leak there is permanent: the
// coordinator's in-flight set never clears, so every later session's
// AwaitEntities on any of the entities blocks forever.
TEST(DeduplicatorCancelTest, LoopTopCancelReleasesHeldEntityClaims) {
  auto dsd = datagen::MakeDsdLike(300, 555);
  BlockingOptions blocking;
  blocking.excluded_attributes = {0};
  MatchingConfig matching;
  matching.excluded_attributes = {0};
  TableRuntime runtime(dsd.table, blocking, MetaBlockingConfig::All(),
                       matching);

  // Cancel already raised when Resolve starts: ClaimEntities still claims
  // (a cold LI makes every entity unresolved), so the first loop-top poll
  // fires with this session holding all the claims — the leak path.
  auto flag = std::make_shared<std::atomic<bool>>(true);
  CancelContext cancel;
  cancel.cancel = flag;

  ExecStats stats;
  Deduplicator cancelled_session(&runtime, &stats, /*pool=*/nullptr,
                                 /*concurrent_sessions=*/true,
                                 /*trace=*/nullptr, &cancel);
  std::vector<EntityId> entities;
  for (EntityId e = 0; e < 20; ++e) entities.push_back(e);
  auto cancelled = cancelled_session.Resolve(entities);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled()) << cancelled.status().ToString();
  EXPECT_EQ(runtime.coordinator().num_entities_in_flight(), 0u);
  EXPECT_EQ(runtime.coordinator().num_comparisons_in_flight(), 0u);

  // And the entities are genuinely claimable again: a fresh session must
  // resolve them to completion instead of hanging in AwaitEntities.
  flag->store(false);
  ExecStats retry_stats;
  Deduplicator retry_session(&runtime, &retry_stats, nullptr, true, nullptr,
                             &cancel);
  auto resolved = retry_session.Resolve(entities);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_GE(resolved->size(), entities.size());
  EXPECT_EQ(runtime.coordinator().num_entities_in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Deterministic engine failure paths.
// ---------------------------------------------------------------------------

class FaultInjectionTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    dsd_ = new datagen::GeneratedDataset(datagen::MakeDsdLike(1200, 777));
    auto universe = datagen::MakeVenueUniverse(150, 7);
    datagen::OagpOptions oagp_options;
    oagp_options.venue_join_fraction = 0.5;
    oagp_ = new datagen::GeneratedDataset(
        datagen::MakeOagpLike(1500, universe, 11, oagp_options));
    oagv_ = new datagen::GeneratedDataset(
        datagen::MakeOagvLike(400, universe, 13));
    // The fault-free DEDUP reference every consistency check compares
    // against — computed on an engine that never sees a failpoint.
    auto clean = MakeEngine({dsd_->table});
    auto reference = clean->Execute(kDedupQuery);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    reference_rows_ = new Rows(reference->rows);
  }
  static void TearDownTestSuite() {
    delete dsd_;
    delete oagp_;
    delete oagv_;
    delete reference_rows_;
    dsd_ = nullptr;
    oagp_ = nullptr;
    oagv_ = nullptr;
    reference_rows_ = nullptr;
  }
  void TearDown() override {
    // A test that fails mid-way must not leave chaos armed for the next.
    Failpoints::Global().DisarmAll();
  }

  // Every in-flight count of every registered runtime must be zero once no
  // session is running — the no-stranded-claims invariant.
  static void ExpectNoClaims(QueryEngine* engine,
                             const std::vector<std::string>& tables) {
    for (const std::string& name : tables) {
      auto runtime = engine->GetRuntime(name);
      ASSERT_TRUE(runtime.ok());
      ResolutionCoordinator& coordinator = (*runtime)->coordinator();
      EXPECT_EQ(coordinator.num_entities_in_flight(), 0u) << name;
      EXPECT_EQ(coordinator.num_comparisons_in_flight(), 0u) << name;
      const LinkIndex& li = (*runtime)->link_index();
      EXPECT_LE(li.num_resolved(), (*runtime)->table().num_rows()) << name;
    }
  }

  static constexpr const char* kDedupQuery =
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";

  static datagen::GeneratedDataset* dsd_;
  static datagen::GeneratedDataset* oagp_;
  static datagen::GeneratedDataset* oagv_;
  static Rows* reference_rows_;
};

datagen::GeneratedDataset* FaultInjectionTest::dsd_ = nullptr;
datagen::GeneratedDataset* FaultInjectionTest::oagp_ = nullptr;
datagen::GeneratedDataset* FaultInjectionTest::oagv_ = nullptr;
Rows* FaultInjectionTest::reference_rows_ = nullptr;

// An injected comparison-chunk failure aborts the resolution transaction:
// the session fails with a message naming the site and the session, no
// coordinator claim survives, and — because nothing was published — a
// fault-free retry on the same engine matches the clean reference.
TEST_F(FaultInjectionTest, ChunkFailureAbandonsClaimsAndEngineRecovers) {
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/32,
                           /*num_threads=*/1, /*max_concurrent=*/2);
  {
    ScopedFailpoint armed("er.comparison_chunk", "error");
    auto cursor = engine->ExecuteStream(kDedupQuery);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    RowBatch batch((*cursor)->batch_size());
    auto has = (*cursor)->Next(&batch);
    ASSERT_FALSE(has.ok());
    EXPECT_NE(has.status().message().find("er.comparison_chunk"),
              std::string::npos)
        << has.status().ToString();
    EXPECT_NE(has.status().message().find("session"), std::string::npos)
        << has.status().ToString();
    (*cursor)->Close();
  }
  ExpectNoClaims(engine.get(), {"dsd"});
  auto retry = engine->Execute(kDedupQuery);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rows, *reference_rows_);
}

// li.publish throws BEFORE any mutation (all-or-nothing publish): a failed
// session leaves link count and epoch exactly where they were, and the
// fault-free retry still answers identically to the clean reference.
TEST_F(FaultInjectionTest, PublishFailureLeavesLinkIndexUntouched) {
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/32,
                           /*num_threads=*/1, /*max_concurrent=*/2);
  auto runtime = engine->GetRuntime("dsd");
  ASSERT_TRUE(runtime.ok());
  const std::size_t links_before = (*runtime)->link_index().num_links();
  const std::uint64_t epoch_before = (*runtime)->link_index().epoch();
  {
    ScopedFailpoint armed("li.publish", "throw");
    auto failed = engine->Execute(kDedupQuery);
    ASSERT_FALSE(failed.ok());
    EXPECT_NE(failed.status().message().find("li.publish"), std::string::npos)
        << failed.status().ToString();
  }
  EXPECT_EQ((*runtime)->link_index().num_links(), links_before);
  EXPECT_EQ((*runtime)->link_index().epoch(), epoch_before);
  ExpectNoClaims(engine.get(), {"dsd"});
  auto retry = engine->Execute(kDedupQuery);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rows, *reference_rows_);
}

// A claim-transaction failure (coordinator.claim_comparisons throws before
// mutating the dedup table) releases the session's entity claims, so an
// immediately following session resolves the same entities to the clean
// answer.
TEST_F(FaultInjectionTest, ClaimFailureReleasesEntityClaims) {
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/32,
                           /*num_threads=*/1, /*max_concurrent=*/2);
  {
    ScopedFailpoint armed("coordinator.claim_comparisons", "throw");
    auto failed = engine->Execute(kDedupQuery);
    ASSERT_FALSE(failed.ok());
  }
  ExpectNoClaims(engine.get(), {"dsd"});
  auto retry = engine->Execute(kDedupQuery);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rows, *reference_rows_);
}

// Morsel failures on the parallel scan and join probe paths: the injected
// exception rides the ReorderWindow failure path, first-error-wins reaches
// the consumer, and the session's slot frees for the next query.
TEST_F(FaultInjectionTest, MorselFailuresSurfaceFirstErrorAndFreeTheSlot) {
  struct Case {
    const char* site;
    const char* sql;
  };
  const Case cases[] = {
      {"scan.morsel", "SELECT * FROM oagp"},
      {"join.probe_morsel",
       "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title"},
  };
  for (const Case& c : cases) {
    auto engine = MakeEngine({oagp_->table, oagv_->table}, /*batch_size=*/32,
                             /*num_threads=*/4);
    {
      ScopedFailpoint armed(c.site, "throw");
      auto cursor = engine->ExecuteStream(c.sql);
      ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
      RowBatch batch((*cursor)->batch_size());
      Status final_status;
      while (true) {
        auto has = (*cursor)->Next(&batch);
        if (!has.ok()) {
          final_status = has.status();
          break;
        }
        ASSERT_TRUE(*has) << c.site
                          << ": stream ended despite every morsel failing";
      }
      EXPECT_NE(final_status.message().find(c.site), std::string::npos)
          << final_status.ToString();
      (*cursor)->Close();
    }
    auto after = engine->Execute("SELECT id FROM oagp WHERE MOD(id, 100) < 5");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
  }
}

// engine.admission fires after the slot is acquired: the injected failure
// must ride the RAII release, or this 1-wide engine would wedge.
TEST_F(FaultInjectionTest, AdmissionFailureReleasesTheSlot) {
  auto engine = MakeEngine({dsd_->table});
  {
    ScopedFailpoint armed("engine.admission", "error");
    auto cursor = engine->ExecuteStream("SELECT id FROM dsd");
    ASSERT_FALSE(cursor.ok());
    EXPECT_NE(cursor.status().message().find("engine.admission"),
              std::string::npos)
        << cursor.status().ToString();
  }
  auto after = engine->Execute("SELECT id FROM dsd WHERE MOD(id, 100) < 5");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

// cursor.next failures are sticky and terminal: the cursor reports the
// injected error on every subsequent Next, and the session released its
// slot at the first one.
TEST_F(FaultInjectionTest, CursorNextFailureIsStickyAndReleases) {
  auto engine = MakeEngine({dsd_->table}, /*batch_size=*/16);
  auto cursor = engine->ExecuteStream("SELECT id FROM dsd");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  RowBatch batch((*cursor)->batch_size());
  Status final_status;
  int batches = 0;
  {
    ScopedFailpoint armed("cursor.next", "error(every=3)");
    while (true) {
      auto has = (*cursor)->Next(&batch);
      if (!has.ok()) {
        final_status = has.status();
        break;
      }
      ASSERT_TRUE(*has);
      ++batches;
    }
  }
  EXPECT_EQ(batches, 2);  // every=3: the third Next fails.
  EXPECT_NE(final_status.message().find("cursor.next"), std::string::npos);
  // Sticky even now that the site is disarmed: the cursor terminated.
  auto again = (*cursor)->Next(&batch);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().ToString(), final_status.ToString());
  auto after = engine->Execute("SELECT id FROM dsd WHERE MOD(id, 100) < 5");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

// Bounded admission: with every slot held, an arriving session waits only
// admission_timeout and is shed with kResourceExhausted — it held nothing,
// so releasing the blocker admits the next session instantly.
TEST_F(FaultInjectionTest, AdmissionTimeoutShedsInsteadOfQueueing) {
  EngineOptions options;
  options.max_concurrent_queries = 1;
  options.admission_timeout = 0.05;
  auto engine = std::make_unique<QueryEngine>(options);
  ASSERT_TRUE(engine->RegisterTable(dsd_->table).ok());

  auto holder = engine->ExecuteStream("SELECT id FROM dsd");
  ASSERT_TRUE(holder.ok()) << holder.status().ToString();
  auto shed = engine->Execute("SELECT id FROM dsd");
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status().ToString();
  (*holder)->Close();
  auto admitted = engine->Execute("SELECT id FROM dsd WHERE MOD(id, 100) < 5");
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
}

// ---------------------------------------------------------------------------
// Seeded chaos schedules.
// ---------------------------------------------------------------------------

class ChaosTest : public FaultInjectionTest {};

// One chaos round: arm probabilistic failure schedules on every layer,
// interleave concurrent scan / join / DEDUP sessions with random drains,
// cancels and early closes, then assert the structural invariants.
void RunChaosRound(unsigned seed, datagen::GeneratedDataset* dsd,
                   datagen::GeneratedDataset* oagp,
                   datagen::GeneratedDataset* oagv,
                   const Rows& reference_rows) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  EngineOptions options;
  options.batch_size = 32;
  options.num_threads = 4;
  options.max_concurrent_queries = 3;
  auto engine = std::make_unique<QueryEngine>(options);
  ASSERT_TRUE(engine->RegisterTable(dsd->table).ok());
  ASSERT_TRUE(engine->RegisterTable(oagp->table).ok());
  ASSERT_TRUE(engine->RegisterTable(oagv->table).ok());

  const std::string s = std::to_string(seed * 10);
  Failpoints& fps = Failpoints::Global();
  ASSERT_TRUE(fps.Arm("er.comparison_chunk",
                      "error(p=0.08,seed=" + s + "1)").ok());
  ASSERT_TRUE(fps.Arm("li.publish", "throw(p=0.04,seed=" + s + "2)").ok());
  ASSERT_TRUE(fps.Arm("coordinator.claim_comparisons",
                      "throw(p=0.04,seed=" + s + "3)").ok());
  ASSERT_TRUE(fps.Arm("scan.morsel", "throw(p=0.02,seed=" + s + "4)").ok());
  ASSERT_TRUE(
      fps.Arm("join.probe_morsel", "throw(p=0.02,seed=" + s + "5)").ok());
  ASSERT_TRUE(fps.Arm("cursor.next", "error(p=0.02,seed=" + s + "6)").ok());
  ASSERT_TRUE(fps.Arm("cursor.open", "error(p=0.02,seed=" + s + "7)").ok());
  ASSERT_TRUE(
      fps.Arm("threadpool.task", "delay(1,p=0.05,seed=" + s + "8)").ok());
  ASSERT_TRUE(
      fps.Arm("coordinator.release", "delay(1,p=0.1,seed=" + s + "9)").ok());

  const std::string queries[] = {
      "SELECT id, title FROM dsd WHERE MOD(id, 100) < 23",
      "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title",
      "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10",
      "SELECT DEDUP title FROM dsd WHERE MOD(id, 100) < 20",
  };

  constexpr int kThreads = 3;
  constexpr int kSessionsPerThread = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kSessionsPerThread; ++i) {
        std::mt19937 rng(seed * 1000 + t * 100 + i);
        auto cursor = engine->ExecuteStream(queries[(t + i) % 4]);
        if (!cursor.ok()) continue;  // Injected pre-open failure: fine.
        RowBatch batch((*cursor)->batch_size());
        const unsigned action = rng() % 3;
        const unsigned keep_batches = 1 + rng() % 8;
        unsigned drained = 0;
        while (true) {
          if (action == 1 && drained >= keep_batches) break;  // Early close.
          if (action == 2 && drained == keep_batches) (*cursor)->Cancel();
          auto has = (*cursor)->Next(&batch);
          if (!has.ok() || !*has) break;  // Error / cancel / end: all fine.
          ++drained;
        }
        (*cursor)->Close();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  fps.DisarmAll();

  // Invariant 1: no stranded coordinator claims, structurally sane LI.
  FaultInjectionTest::ExpectNoClaims(engine.get(), {"dsd", "oagp", "oagv"});

  // Invariant 2: no leaked admission slots — a fault-free round at full
  // admission width completes (a leaked slot would wedge one of these
  // sessions forever, and the ctest timeout would flag it).
  {
    std::vector<std::thread> drains;
    for (int t = 0; t < kThreads; ++t) {
      drains.emplace_back([&] {
        auto result = engine->Execute(
            "SELECT id FROM dsd WHERE MOD(id, 100) < 5");
        EXPECT_TRUE(result.ok()) << result.status().ToString();
      });
    }
    for (std::thread& drain : drains) drain.join();
  }

  // Invariant 3: every link the chaos round published is genuine — the
  // fault-free rerun on this engine reuses them and still answers
  // bit-identically to an engine that never saw a failpoint.
  auto rerun = engine->Execute(FaultInjectionTest::kDedupQuery);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->rows, reference_rows);
}

TEST_F(ChaosTest, SeededSchedulesHoldEngineInvariants) {
  std::vector<unsigned> seeds = {1, 2, 3, 4};
  if (const char* env = std::getenv("QUERYER_CHAOS_SEED")) {
    seeds = {static_cast<unsigned>(std::strtoul(env, nullptr, 10))};
  }
  for (unsigned seed : seeds) {
    RunChaosRound(seed, dsd_, oagp_, oagv_, *reference_rows_);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace queryer
