// Parallel-scaling sweep: one fixed DEDUP query over a generated people
// table, executed at 1/2/4/8 worker threads. Reported per point: total
// time, comparison-execution (resolution) time, speedup of both relative
// to the single-thread run, and the invariants the parallel subsystem
// guarantees — identical result rows and identical LinkIndex::num_links()
// at every thread count.
//
// The dominant cost of a DEDUP query is the embarrassingly parallel
// comparison loop, so resolution time should scale near-linearly with
// cores (on a machine that has them; thread counts beyond the core count
// only add scheduling noise).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Parallel scaling: comparison execution at 1/2/4/8 threads");

  const std::size_t rows = Scaled(kSize1M);  // >= 50k entities at scale 1.
  auto dataset = Ppl(rows, {});
  const std::string sql =
      SelectivityQuery(dataset.table->name(), 50,
                       dataset.table->schema().name(1));
  std::printf("|E|=%zu  query: %s\n\n", rows, sql.c_str());

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<std::string>> baseline_rows;
  std::size_t baseline_links = 0;
  double baseline_total = 0;
  double baseline_resolution = 0;

  for (std::size_t threads : thread_counts) {
    SetThreads(threads);
    // A fresh engine per point: the Link Index must start empty each time,
    // otherwise later points would be served from resolved links.
    queryer::QueryEngine engine =
        MakeEngine({dataset.table}, queryer::ExecutionMode::kAdvanced);
    queryer::QueryResult result = MustExecute(&engine, sql);
    std::size_t links =
        engine.GetRuntime(dataset.table->name())->get()->link_index().num_links();

    bool identical = true;
    if (threads == 1) {
      baseline_rows = result.rows;
      baseline_links = links;
      baseline_total = result.stats.total_seconds;
      baseline_resolution = result.stats.resolution_seconds;
    } else {
      identical = result.rows == baseline_rows && links == baseline_links;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION at %zu threads: rows or link counts "
                   "differ from the 1-thread run\n",
                   threads);
      return 1;
    }

    double resolution_speedup =
        result.stats.resolution_seconds > 0
            ? baseline_resolution / result.stats.resolution_seconds
            : 0;
    double total_speedup = result.stats.total_seconds > 0
                               ? baseline_total / result.stats.total_seconds
                               : 0;
    std::printf(
        "threads=%zu TT=%8ss resolution=%8ss speedup(resolution)=%5sx "
        "speedup(TT)=%5sx links=%zu rows=%zu identical=%s\n",
        threads, queryer::FormatDouble(result.stats.total_seconds, 3).c_str(),
        queryer::FormatDouble(result.stats.resolution_seconds, 3).c_str(),
        queryer::FormatDouble(resolution_speedup, 2).c_str(),
        queryer::FormatDouble(total_speedup, 2).c_str(), links,
        result.rows.size(), identical ? "yes" : "no");
    JsonLine("parallel_scaling",
             {{"rows", std::to_string(rows)},
              {"result_rows", std::to_string(result.rows.size())},
              {"links", std::to_string(links)},
              {"total_seconds",
               queryer::FormatDouble(result.stats.total_seconds, 4)},
              {"resolution_seconds",
               queryer::FormatDouble(result.stats.resolution_seconds, 4)},
              {"resolution_speedup",
               queryer::FormatDouble(resolution_speedup, 3)},
              {"identical", identical ? "true" : "false"}});
  }

  std::printf(
      "\nShape to verify: resolution speedup approaches the machine's core "
      "count; rows and links identical at every point.\n");
  return 0;
}
