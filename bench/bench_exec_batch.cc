// Execution-pipeline microbench: raw rows/sec of the relational operators
// (scan, filter at several selectivities, scan+project, hash join) over the
// OAGP/OAGV tables, without any ER work — this is the interpretation
// overhead the batch execution engine attacks.
//
// Queries are plain (non-DEDUP) SELECTs, so the measured time is pure
// pipeline cost: TableScan -> Filter -> Project / HashJoin -> materialize.
// Each query runs `kReps` times and the best run is reported (rows/sec =
// input rows of the scan side / seconds).
//
// Honors the shared bench flags: --threads=N (morsel-parallel scans) and
// --batch-size=N (RowBatch capacity; 0 = engine default).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace {

constexpr int kReps = 5;

struct QuerySpec {
  const char* name;
  std::string sql;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Execution pipeline: batch scan/filter/join throughput");

  const std::size_t paper_rows = Scaled(kSize1M);
  auto oagp = Oagp(paper_rows);
  auto oagv = Oagv(Scaled(kOagvRows));
  const std::size_t scan_rows = oagp.table->num_rows();

  queryer::EngineOptions options;
  options.num_threads = Threads();
  if (BatchSize() != 0) options.batch_size = BatchSize();
  const std::size_t effective_batch = options.batch_size;
  queryer::QueryEngine engine(options);
  for (const auto& table : {oagp.table, oagv.table}) {
    queryer::Status status = engine.RegisterTable(table);
    if (!status.ok()) {
      std::fprintf(stderr, "RegisterTable failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  const std::vector<QuerySpec> queries = {
      {"scan", "SELECT * FROM oagp"},
      {"filter5", "SELECT * FROM oagp WHERE MOD(id, 100) < 5"},
      {"filter50", "SELECT * FROM oagp WHERE MOD(id, 100) < 50"},
      {"project5", "SELECT title, venue FROM oagp WHERE MOD(id, 100) < 5"},
      {"join", "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = "
               "oagv.title"},
  };

  std::printf("%-10s %10s %10s %12s %14s\n", "query", "rows_in", "rows_out",
              "seconds", "rows/sec");
  for (const QuerySpec& query : queries) {
    double best_seconds = 0;
    std::size_t rows_out = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      queryer::Stopwatch watch;
      queryer::QueryResult result = MustExecute(&engine, query.sql);
      double seconds = watch.ElapsedSeconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      rows_out = result.rows.size();
    }
    double rows_per_sec =
        best_seconds > 0 ? static_cast<double>(scan_rows) / best_seconds : 0;
    std::printf("%-10s %10zu %10zu %12s %14.0f\n", query.name, scan_rows,
                rows_out, queryer::FormatDouble(best_seconds, 4).c_str(),
                rows_per_sec);
    CsvLine("exec_batch",
            {query.name, std::to_string(scan_rows), std::to_string(rows_out),
             queryer::FormatDouble(best_seconds, 5),
             queryer::FormatDouble(rows_per_sec, 0)});
    JsonLine("exec_batch",
             {{"query", query.name},
              {"batch_size", std::to_string(effective_batch)},
              {"rows_in", std::to_string(scan_rows)},
              {"rows_out", std::to_string(rows_out)},
              {"seconds", queryer::FormatDouble(best_seconds, 5)},
              {"rows_per_sec", queryer::FormatDouble(rows_per_sec, 0)}});
  }
  return 0;
}
