// Parallel join-probe and group-aggregation sweep: the two operators PR 4
// moved onto the morsel machinery, measured at 1/2/4 worker threads.
//
// Point A is a plain (non-DEDUP) hash join whose probe side spans many
// probe morsels — pure pipeline cost, so the probe parallelism is the only
// thing that can move the needle. Point B is a DEDUP query whose
// Group-Entities input spans many aggregation chunks (the ER resolution
// inside it also parallelizes, so its total time mixes both effects; the
// reported group_seconds isolates the aggregation).
//
// Per point the harness asserts the operators' determinism contract —
// identical result rows (and link counts for B) at every thread count —
// and exits 1 on a violation, so CI smoke runs double as a regression
// check. Honors --threads=N only as the *maximum* sweep point and
// --batch-size=N for the RowBatch capacity.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "datagen/scholarly.h"

namespace {

constexpr int kReps = 3;

struct SweepPoint {
  std::size_t threads = 0;
  double join_seconds = 0;
  double dedup_seconds = 0;
  double group_seconds = 0;
  std::size_t probe_morsels = 0;
  std::size_t partial_groups_merged = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Parallel join probe & entity-group aggregation: 1/2/4 threads");

  // A joinier OAGP/OAGV pair than the paper's 5% default, so the probe
  // actually emits rows, plus a DSD selection wide enough that the
  // Group-Entities input spans several aggregation chunks.
  auto universe = queryer::datagen::MakeVenueUniverse(400, 7);
  queryer::datagen::OagpOptions oagp_options;
  oagp_options.venue_join_fraction = 0.5;
  auto oagp = queryer::datagen::MakeOagpLike(Scaled(kSize1M), universe, 11,
                                             oagp_options);
  auto oagv = queryer::datagen::MakeOagvLike(Scaled(kOagvRows), universe, 13);
  auto dsd = queryer::datagen::MakeDsdLike(Scaled(kDsdRows), 4242);

  const std::string join_sql =
      "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title";
  const std::string dedup_sql =
      SelectivityQuery(dsd.table->name(), 80, "title, venue");

  std::printf("|oagp|=%zu |oagv|=%zu |dsd|=%zu\n\n", oagp.table->num_rows(),
              oagv.table->num_rows(), dsd.table->num_rows());

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (ThreadsExplicit()) {
    // An explicit --threads=N caps the sweep — including N = 1, which
    // yields a sequential-only run (the 1-thread point always stays).
    while (thread_counts.size() > 1 && thread_counts.back() > Threads()) {
      thread_counts.pop_back();
    }
  }

  std::vector<std::vector<std::string>> join_baseline;
  std::vector<std::vector<std::string>> dedup_baseline;
  std::size_t links_baseline = 0;
  std::vector<SweepPoint> points;

  for (std::size_t threads : thread_counts) {
    SetThreads(threads);
    SweepPoint point;
    point.threads = threads;

    // Point A: plain join, best of kReps (fresh engine per rep is not
    // needed — no ER state is involved).
    {
      queryer::EngineOptions options;
      options.num_threads = threads;
      if (BatchSize() != 0) options.batch_size = BatchSize();
      queryer::QueryEngine engine(options);
      if (!engine.RegisterTable(oagp.table).ok() ||
          !engine.RegisterTable(oagv.table).ok()) {
        return 1;
      }
      for (int rep = 0; rep < kReps; ++rep) {
        queryer::QueryResult result = MustExecute(&engine, join_sql);
        if (rep == 0 || result.stats.total_seconds < point.join_seconds) {
          point.join_seconds = result.stats.total_seconds;
        }
        point.probe_morsels = result.stats.probe_morsels;
        if (threads == thread_counts.front() && rep == 0) {
          join_baseline = result.rows;
        } else if (result.rows != join_baseline) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: join rows differ at %zu "
                       "threads\n",
                       threads);
          return 1;
        }
      }
    }

    // Point B: DEDUP + Group-Entities. A fresh engine per point: the Link
    // Index must start cold each time or later points get cheaper.
    {
      queryer::EngineOptions options;
      options.num_threads = threads;
      if (BatchSize() != 0) options.batch_size = BatchSize();
      queryer::QueryEngine engine(options);
      if (!engine.RegisterTable(dsd.table).ok()) return 1;
      queryer::QueryResult result = MustExecute(&engine, dedup_sql);
      std::size_t links =
          engine.GetRuntime(dsd.table->name())->get()->link_index().num_links();
      point.dedup_seconds = result.stats.total_seconds;
      point.group_seconds = result.stats.group_seconds;
      point.partial_groups_merged = result.stats.partial_groups_merged;
      if (threads == thread_counts.front()) {
        dedup_baseline = result.rows;
        links_baseline = links;
      } else if (result.rows != dedup_baseline || links != links_baseline) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: DEDUP rows or links differ at "
                     "%zu threads\n",
                     threads);
        return 1;
      }
    }

    points.push_back(point);
  }

  std::printf("%8s %12s %14s %12s %14s %14s\n", "threads", "join(s)",
              "probe_morsels", "dedup(s)", "group(s)", "partials_merged");
  for (const SweepPoint& point : points) {
    std::printf("%8zu %12s %14zu %12s %14s %14zu\n", point.threads,
                queryer::FormatDouble(point.join_seconds, 4).c_str(),
                point.probe_morsels,
                queryer::FormatDouble(point.dedup_seconds, 4).c_str(),
                queryer::FormatDouble(point.group_seconds, 4).c_str(),
                point.partial_groups_merged);
    CsvLine("parallel_join",
            {std::to_string(point.threads),
             queryer::FormatDouble(point.join_seconds, 5),
             std::to_string(point.probe_morsels),
             queryer::FormatDouble(point.dedup_seconds, 5),
             queryer::FormatDouble(point.group_seconds, 5),
             std::to_string(point.partial_groups_merged)});
    SetThreads(point.threads);  // JsonLine reports the sweep point's count.
    JsonLine("parallel_join",
             {{"join_seconds", queryer::FormatDouble(point.join_seconds, 5)},
              {"probe_morsels", std::to_string(point.probe_morsels)},
              {"dedup_seconds", queryer::FormatDouble(point.dedup_seconds, 5)},
              {"group_seconds", queryer::FormatDouble(point.group_seconds, 5)},
              {"partial_groups_merged",
               std::to_string(point.partial_groups_merged)}});
  }

  std::printf(
      "\nShape to verify: rows and links identical at every thread count; "
      "join/group seconds shrink toward the core count on multi-core "
      "hardware.\n");
  return 0;
}
