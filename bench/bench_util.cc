#include "bench_util.h"

#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace queryer::bench {

namespace {

// 1 = sequential, matching EngineOptions::num_threads's default; SIZE_MAX
// marks "not set yet" so the env variable is read once on first use.
std::size_t g_threads = SIZE_MAX;

// 0 = engine-default RowBatch capacity; SIZE_MAX = env not read yet.
std::size_t g_batch_size = SIZE_MAX;

// True once the count came from --threads, QUERYER_BENCH_THREADS or
// SetThreads — as opposed to the silent default of 1. Sweep harnesses use
// this to tell an explicit --threads=1 apart from "no preference".
bool g_threads_explicit = false;

// Set by --trace-out: every MakeEngine engine records into this sink, and
// its destructor (static destruction at process exit) writes the JSON file.
std::shared_ptr<TraceSink> g_trace_sink;

// Set by --metrics-out: the registered atexit hook dumps the registry here.
std::string g_metrics_out;

void WriteMetricsAtExit() {
  std::FILE* out = std::fopen(g_metrics_out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write metrics to %s\n", g_metrics_out.c_str());
    return;
  }
  std::string json = MetricsRegistry::Global().ExportJson();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
}

}  // namespace

std::shared_ptr<TraceSink> BenchTraceSink() { return g_trace_sink; }

std::size_t Threads() {
  if (g_threads == SIZE_MAX) {
    const char* env = std::getenv("QUERYER_BENCH_THREADS");
    std::size_t threads = 1;
    if (env != nullptr) {
      threads = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
      g_threads_explicit = true;
    }
    // Resolve 0 (= hardware concurrency) eagerly so CSV/JSON lines always
    // report the actual worker count, matching the --threads flag path.
    g_threads = threads == 0 ? ThreadPool::HardwareConcurrency() : threads;
  }
  return g_threads;
}

bool ThreadsExplicit() {
  Threads();  // Force the env-variable read.
  return g_threads_explicit;
}

void SetThreads(std::size_t threads) {
  g_threads = threads;
  g_threads_explicit = true;
}

std::size_t BatchSize() {
  if (g_batch_size == SIZE_MAX) {
    const char* env = std::getenv("QUERYER_BENCH_BATCH_SIZE");
    if (env == nullptr) {
      g_batch_size = 0;
    } else {
      char* end = nullptr;
      std::size_t batch_size =
          static_cast<std::size_t>(std::strtoull(env, &end, 10));
      if (end == env || *end != '\0') {
        std::fprintf(stderr,
                     "invalid QUERYER_BENCH_BATCH_SIZE: '%s' (want a number)\n",
                     env);
        std::exit(2);
      }
      g_batch_size = batch_size;
    }
  }
  return g_batch_size;
}

void SetBatchSize(std::size_t batch_size) { g_batch_size = batch_size; }

void InitBenchArgs(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const char* value = argv[i] + 10;
      char* end = nullptr;
      std::size_t threads =
          static_cast<std::size_t>(std::strtoull(value, &end, 10));
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "invalid --threads value: '%s' (want a number)\n",
                     value);
        std::exit(2);
      }
      // Resolve 0 (= hardware concurrency, as in EngineOptions) right here
      // so every CSV/JSON line reports the actual worker count.
      SetThreads(threads == 0 ? ThreadPool::HardwareConcurrency() : threads);
    } else if (std::strncmp(argv[i], "--batch-size=", 13) == 0) {
      const char* value = argv[i] + 13;
      char* end = nullptr;
      std::size_t batch_size =
          static_cast<std::size_t>(std::strtoull(value, &end, 10));
      if (end == value || *end != '\0') {
        std::fprintf(stderr,
                     "invalid --batch-size value: '%s' (want a number)\n",
                     value);
        std::exit(2);
      }
      SetBatchSize(batch_size);
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      const char* value = argv[i] + 12;
      if (*value == '\0') {
        std::fprintf(stderr, "empty --trace-out value (want a file path)\n");
        std::exit(2);
      }
      g_trace_sink = std::make_shared<TraceSink>(std::string(value));
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      const char* value = argv[i] + 14;
      if (*value == '\0') {
        std::fprintf(stderr, "empty --metrics-out value (want a file path)\n");
        std::exit(2);
      }
      g_metrics_out = value;
      std::atexit(WriteMetricsAtExit);
    } else {
      argv[out++] = argv[i];
    }
  }
  // Re-terminate: downstream parsers may walk argv to its NULL sentinel.
  argv[out] = nullptr;
  *argc = out;
}

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("QUERYER_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double value = std::strtod(env, nullptr);
    return value > 0 ? value : 1.0;
  }();
  return scale;
}

std::size_t Scaled(std::size_t base) {
  auto scaled = static_cast<std::size_t>(static_cast<double>(base) * Scale());
  return scaled < 100 ? 100 : scaled;
}

const std::vector<datagen::VenueUniverseEntry>& Universe() {
  static const auto* universe =
      new std::vector<datagen::VenueUniverseEntry>(
          datagen::MakeVenueUniverse(400, 0xBEEF));
  return *universe;
}

datagen::GeneratedDataset Dsd(std::size_t rows) {
  return datagen::MakeDsdLike(rows, 0xD5D);
}

datagen::GeneratedDataset Oao(std::size_t rows) {
  return datagen::MakeOrganisations(rows, 0x0A0);
}

datagen::GeneratedDataset Oap(std::size_t rows,
                              const std::vector<std::string>& org_pool) {
  return datagen::MakeProjects(rows, org_pool, 0x0AF);
}

datagen::GeneratedDataset Ppl(std::size_t rows,
                              const std::vector<std::string>& org_pool) {
  return datagen::MakePeople(rows, org_pool, 0xFF1);
}

datagen::GeneratedDataset Oagp(std::size_t rows) {
  return datagen::MakeOagpLike(rows, Universe(), 0xA6F);
}

datagen::GeneratedDataset Oagv(std::size_t rows) {
  return datagen::MakeOagvLike(rows, Universe(), 0xA61);
}

QueryEngine MakeEngine(const std::vector<TablePtr>& tables,
                       ExecutionMode mode,
                       const MetaBlockingConfig& meta_blocking,
                       bool collect_comparisons) {
  EngineOptions options;
  options.meta_blocking = meta_blocking;
  options.mode = mode;
  options.collect_comparisons = collect_comparisons;
  options.num_threads = Threads();
  if (BatchSize() != 0) options.batch_size = BatchSize();
  options.trace_sink = g_trace_sink;  // Null unless --trace-out was given.
  QueryEngine engine(options);
  for (const TablePtr& table : tables) {
    Status status = engine.RegisterTable(table);
    if (!status.ok()) {
      std::fprintf(stderr, "RegisterTable failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    // Indices are built once-off at load time (paper Sec. 3); keep that
    // cost out of the measured query times.
    status = engine.WarmIndices(table->name());
    if (!status.ok()) {
      std::fprintf(stderr, "WarmIndices failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  return engine;
}

std::string SelectivityQuery(const std::string& table, int percent,
                             const std::string& projection) {
  return "SELECT DEDUP " + projection + " FROM " + table +
         " WHERE MOD(id, 100) < " + std::to_string(percent);
}

std::vector<EntityId> SelectedIds(const Table& table, int percent) {
  std::vector<EntityId> ids;
  for (EntityId e = 0; e < table.num_rows(); ++e) {
    if (e % 100 < static_cast<EntityId>(percent)) ids.push_back(e);
  }
  return ids;
}

QueryResult MustExecute(QueryEngine* engine, const std::string& sql) {
  auto result = engine->Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", sql.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

void CsvLine(const std::string& bench, const std::vector<std::string>& fields) {
  std::string line = "CSV," + bench;
  for (const std::string& field : fields) {
    line += ",";
    line += field;
  }
  std::printf("%s\n", line.c_str());
}

void JsonLine(const std::string& bench,
              const std::vector<std::pair<std::string, std::string>>& fields) {
  auto is_number = [](const std::string& value) {
    if (value.empty()) return false;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    return end != nullptr && *end == '\0';
  };
  std::string line = "{\"bench\":\"" + bench +
                     "\",\"threads\":" + std::to_string(Threads());
  for (const auto& [key, value] : fields) {
    line += ",\"" + key + "\":";
    line += is_number(value) ? value : "\"" + value + "\"";
  }
  line += "}";
  std::printf("%s\n", line.c_str());
}

void Banner(const std::string& title) {
  std::printf("\n=== %s (scale %.2f) ===\n", title.c_str(), Scale());
}

}  // namespace queryer::bench
