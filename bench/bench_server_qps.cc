// Multi-tenant server throughput bench: hundreds of concurrent paginating
// wire clients against one in-process QueryServer.
//
// Each client loops until the deadline: OPEN a selective scan, page it to
// the end with NEXT, and every 8th operation issue a one-shot EXECUTE of
// the same hot DEDUP statement (the first miss fills the result cache;
// every later EXECUTE is an epoch-checked cache hit with zero engine
// work). Per-operation wall latency is recorded client-side; the report is
// sustained QPS plus p50/p95/p99, and the run FAILS (exit 1) if any client
// saw a protocol error — shedding, dropped frames or malformed responses
// all count.
//
//   bench_server_qps [--clients=N] [--duration=S] [--threads=N]
//
// Defaults: 200 clients, 10 seconds. The engine is configured with one
// admission slot per client (this bench measures the wire + cache layers,
// not admission shedding — bench_concurrent_sessions covers contention).
//
// Output: human table + "CSV,server_qps,..." + JSON lines (BENCH_exec.json).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "server/client.h"
#include "server/query_server.h"

namespace {

struct WorkerStats {
  std::uint64_t queries = 0;
  std::uint64_t pages = 0;
  std::uint64_t rows = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t protocol_errors = 0;
  std::vector<double> latencies;
};

constexpr char kScanSql[] =
    "SELECT id, title FROM dsd WHERE MOD(id, 100) < 5";
constexpr char kHotDedupSql[] =
    "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 10";
constexpr std::size_t kPageRows = 64;

void Worker(int id, std::uint16_t port, const std::atomic<bool>& stop,
            WorkerStats* out) {
  // Eight tenant ids spread across the fleet: multi-tenant bookkeeping is
  // on the hot path without any tenant ever hitting a quota (quotas are
  // unlimited here; shedding is bench_concurrent_sessions' subject).
  auto connected = queryer::Client::Connect(
      "127.0.0.1", port, "bench-tenant-" + std::to_string(id % 8));
  if (!connected.ok()) {
    out->protocol_errors++;
    return;
  }
  queryer::Client client = std::move(connected).MoveValueUnsafe();

  std::uint64_t op = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    queryer::Stopwatch watch;
    if (op % 8 == 7) {
      auto result = client.Execute(kHotDedupSql);
      if (!result.ok()) {
        out->protocol_errors++;
        break;
      }
      if (result->cached) out->cache_hits++;
      out->rows += result->rows.size();
    } else {
      auto open = client.Open(kScanSql);
      if (!open.ok()) {
        out->protocol_errors++;
        break;
      }
      bool done = false;
      while (!done) {
        auto page = client.Next(open->cursor, kPageRows);
        if (!page.ok()) {
          out->protocol_errors++;
          return;
        }
        out->rows += page->rows.size();
        out->pages++;
        done = page->done;  // The final page releases the cursor server-side.
      }
    }
    out->latencies.push_back(watch.ElapsedSeconds());
    out->queries++;
    op++;
  }
}

double PercentileMs(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)] * 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);

  std::size_t clients = 200;
  double duration = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      duration = std::atof(argv[i] + 11);
    } else {
      std::fprintf(stderr, "usage: %s [--clients=N] [--duration=S]\n",
                   argv[0]);
      return 2;
    }
  }
  if (clients == 0) clients = 1;

  Banner("Server QPS: " + std::to_string(clients) +
         " concurrent paginating wire clients");

  auto dsd = Dsd(Scaled(kDsdRows));
  queryer::EngineOptions engine_options;
  engine_options.num_threads = Threads();
  if (BatchSize() != 0) engine_options.batch_size = BatchSize();
  // One admission slot per client: every paginating cursor can be in
  // flight at once, so the wire/cache layers are what is measured.
  engine_options.max_concurrent_queries = clients;
  engine_options.admission_timeout = 60;
  queryer::QueryEngine engine(engine_options);
  {
    queryer::Status status = engine.RegisterTable(dsd.table);
    if (!status.ok()) {
      std::fprintf(stderr, "RegisterTable: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  queryer::ServerOptions server_options;
  server_options.port = 0;  // Ephemeral.
  server_options.max_connections = clients + 8;
  queryer::QueryServer server(&engine, server_options);
  {
    queryer::Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "Start: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerStats> stats(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  queryer::Stopwatch wall;
  for (std::size_t i = 0; i < clients; ++i) {
    workers.emplace_back(Worker, static_cast<int>(i), server.port(),
                         std::cref(stop), &stats[i]);
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration * 1000)));
  stop.store(true);
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.ElapsedSeconds();
  server.Stop();

  std::uint64_t queries = 0, pages = 0, rows = 0, cache_hits = 0, errors = 0;
  std::vector<double> latencies;
  for (const WorkerStats& ws : stats) {
    queries += ws.queries;
    pages += ws.pages;
    rows += ws.rows;
    cache_hits += ws.cache_hits;
    errors += ws.protocol_errors;
    latencies.insert(latencies.end(), ws.latencies.begin(),
                     ws.latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());

  const double qps = elapsed > 0 ? static_cast<double>(queries) / elapsed : 0;
  const double p50 = PercentileMs(latencies, 0.50);
  const double p95 = PercentileMs(latencies, 0.95);
  const double p99 = PercentileMs(latencies, 0.99);

  std::printf("%-8s %10s %10s %10s %10s %10s %10s %8s\n", "clients",
              "queries", "qps", "p50(ms)", "p95(ms)", "p99(ms)",
              "cache_hit", "errors");
  std::printf("%-8zu %10llu %10s %10s %10s %10s %10llu %8llu\n", clients,
              static_cast<unsigned long long>(queries),
              queryer::FormatDouble(qps, 1).c_str(),
              queryer::FormatDouble(p50, 2).c_str(),
              queryer::FormatDouble(p95, 2).c_str(),
              queryer::FormatDouble(p99, 2).c_str(),
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(errors));
  std::printf("(%llu pages, %llu rows over the wire in %s s)\n",
              static_cast<unsigned long long>(pages),
              static_cast<unsigned long long>(rows),
              queryer::FormatDouble(elapsed, 2).c_str());

  CsvLine("server_qps",
          {std::to_string(clients), queryer::FormatDouble(elapsed, 3),
           std::to_string(queries), queryer::FormatDouble(qps, 2),
           queryer::FormatDouble(p50, 3), queryer::FormatDouble(p95, 3),
           queryer::FormatDouble(p99, 3), std::to_string(cache_hits),
           std::to_string(errors)});
  JsonLine("server_qps",
           {{"clients", std::to_string(clients)},
            {"duration_seconds", queryer::FormatDouble(elapsed, 3)},
            {"queries", std::to_string(queries)},
            {"qps", queryer::FormatDouble(qps, 2)},
            {"p50_ms", queryer::FormatDouble(p50, 3)},
            {"p95_ms", queryer::FormatDouble(p95, 3)},
            {"p99_ms", queryer::FormatDouble(p99, 3)},
            {"pages", std::to_string(pages)},
            {"rows", std::to_string(rows)},
            {"result_cache_hits", std::to_string(cache_hits)},
            {"protocol_errors", std::to_string(errors)}});

  if (errors != 0) {
    std::fprintf(stderr, "PROTOCOL ERRORS: %llu (want 0)\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  return 0;
}
