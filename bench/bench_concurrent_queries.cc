// Concurrent-session throughput: a fixed workload of DEDUP queries over one
// dirty people table, executed by 1/2/4 client threads against a shared
// engine (EngineOptions::max_concurrent_queries = clients). Reported per
// point: wall time, queries/second, speedup relative to the single-client
// run, and the determinism invariant — the final LinkIndex::num_links()
// must be identical at every client count.
//
// The workload is a round of disjoint MOD-selectivity windows, repeated, so
// later repetitions of a window are served from the Link Index while other
// windows still resolve — the mixed warm/cold traffic the reader/writer
// protocol is built for. Windows are disjoint, so every serial order of the
// resolutions produces the same link set and the determinism check is exact
// even with Edge Pruning enabled.
//
// On a single-core machine the client threads time-share and the interest
// is contention overhead (speedup ~1x, not less); with real cores the
// resolution work of distinct windows overlaps and throughput scales.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace {

struct Point {
  std::size_t clients = 0;
  double seconds = 0;
  double qps = 0;
  std::size_t links = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Concurrent query sessions: throughput at 1/2/4 client threads");

  const std::size_t rows = Scaled(kSize200K);
  auto dataset = Ppl(rows, {});
  const std::string table = dataset.table->name();
  const std::string projection = dataset.table->schema().name(1);

  // 8 disjoint ~12.5% windows, two rounds each: 16 queries per run.
  std::vector<std::string> queries;
  for (int round = 0; round < 2; ++round) {
    for (int w = 0; w < 8; ++w) {
      queries.push_back("SELECT DEDUP " + projection + " FROM " + table +
                        " WHERE MOD(id, 8) = " + std::to_string(w));
    }
  }
  std::printf("|E|=%zu  workload: %zu queries (8 disjoint windows x 2)\n\n",
              rows, queries.size());

  const std::size_t client_counts[] = {1, 2, 4};
  double baseline_seconds = 0;
  std::size_t baseline_links = 0;

  for (std::size_t clients : client_counts) {
    // A fresh engine per point: the Link Index must start empty each time,
    // otherwise later points would be served from resolved links.
    queryer::EngineOptions options;
    options.mode = queryer::ExecutionMode::kAdvanced;
    options.num_threads = Threads();
    options.max_concurrent_queries = clients;
    options.trace_sink = BenchTraceSink();
    queryer::QueryEngine engine(options);
    if (!engine.RegisterTable(dataset.table).ok() ||
        !engine.WarmIndices(table).ok()) {
      std::fprintf(stderr, "engine setup failed\n");
      return 1;
    }

    // The admission-wait histogram is process-wide and cumulative; the
    // snapshot delta isolates this point's sessions.
    const queryer::LatencyHistogram& admission_wait =
        *queryer::GlobalEngineMetrics().admission_wait;
    const queryer::HistogramSnapshot wait_before = admission_wait.Snapshot();

    queryer::Stopwatch watch;
    std::vector<std::thread> threads;
    std::vector<int> failures(clients, 0);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t i = c; i < queries.size(); i += clients) {
          auto result = engine.Execute(queries[i]);
          if (!result.ok()) ++failures[c];
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double seconds = watch.ElapsedSeconds();
    for (int f : failures) {
      if (f != 0) {
        std::fprintf(stderr, "query failures under concurrency\n");
        return 1;
      }
    }

    Point point;
    point.clients = clients;
    point.seconds = seconds;
    point.qps = seconds > 0 ? static_cast<double>(queries.size()) / seconds : 0;
    point.links = engine.GetRuntime(table)->get()->link_index().num_links();

    bool identical = true;
    if (clients == 1) {
      baseline_seconds = point.seconds;
      baseline_links = point.links;
    } else {
      identical = point.links == baseline_links;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION at %zu clients: links=%zu, "
                   "1-client run had %zu\n",
                   clients, point.links, baseline_links);
      return 1;
    }

    const queryer::HistogramSnapshot wait =
        admission_wait.Snapshot().Since(wait_before);
    const double wait_p50 = wait.Quantile(0.50);
    const double wait_p95 = wait.Quantile(0.95);
    const double wait_p99 = wait.Quantile(0.99);

    double speedup =
        point.seconds > 0 ? baseline_seconds / point.seconds : 0;
    std::printf(
        "clients=%zu  wall=%8ss  qps=%8s  speedup=%5sx  links=%zu  "
        "identical=%s\n",
        point.clients, queryer::FormatDouble(point.seconds, 3).c_str(),
        queryer::FormatDouble(point.qps, 2).c_str(),
        queryer::FormatDouble(speedup, 2).c_str(), point.links,
        identical ? "yes" : "no");
    std::printf(
        "           admission-wait: p50=%ss  p95=%ss  p99=%ss  (n=%llu)\n",
        queryer::FormatDouble(wait_p50, 6).c_str(),
        queryer::FormatDouble(wait_p95, 6).c_str(),
        queryer::FormatDouble(wait_p99, 6).c_str(),
        static_cast<unsigned long long>(wait.count));
    CsvLine("concurrent_queries",
            {std::to_string(point.clients),
             queryer::FormatDouble(point.seconds, 6),
             queryer::FormatDouble(point.qps, 3), std::to_string(point.links),
             queryer::FormatDouble(speedup, 3),
             queryer::FormatDouble(wait_p50, 6),
             queryer::FormatDouble(wait_p95, 6),
             queryer::FormatDouble(wait_p99, 6)});
    JsonLine("concurrent_queries",
             {{"clients", std::to_string(point.clients)},
              {"wall_seconds", queryer::FormatDouble(point.seconds, 6)},
              {"qps", queryer::FormatDouble(point.qps, 3)},
              {"links", std::to_string(point.links)},
              {"speedup", queryer::FormatDouble(speedup, 3)},
              {"admission_wait_p50", queryer::FormatDouble(wait_p50, 6)},
              {"admission_wait_p95", queryer::FormatDouble(wait_p95, 6)},
              {"admission_wait_p99", queryer::FormatDouble(wait_p99, 6)}});
  }
  return 0;
}
