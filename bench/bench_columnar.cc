// Columnar storage microbench: what the dictionary-encoded column layout
// buys at each level of the stack.
//
// Three groups of datapoints over the OAGP table:
//  - storage:  TableBuilder ingest rate, raw ValueAt sweeps (string_view
//    materialization) and code-only column sweeps (the compare-by-code
//    currency of filters and joins).
//  - queries:  end-to-end SELECTs through the engine — full scan, the
//    truth-table filter ladder, and the equi-join — row-major results.
//  - layouts:  the same full scan delivered row-major vs column-major, the
//    late-materialization emit boundary both ways.
//
// Each measurement runs `kReps` times and reports the best. Honors the
// shared bench flags: --threads=N and --batch-size=N (0 = engine default).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "storage/table.h"

namespace {

constexpr int kReps = 5;

using queryer::bench::CsvLine;
using queryer::bench::JsonLine;

// Best-of-kReps wall time of `fn`, which returns a size_t checksum-ish
// value (kept to defeat dead-code elimination and sanity-check runs).
template <typename Fn>
double BestSeconds(Fn&& fn, std::size_t* out_value) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    queryer::Stopwatch watch;
    *out_value = fn();
    const double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

void Report(const char* name, std::size_t units, std::size_t out_value,
            double seconds, const char* unit_label) {
  const double per_sec = seconds > 0 ? static_cast<double>(units) / seconds : 0;
  std::printf("%-16s %12zu %12zu %12s %14.0f %s\n", name, units, out_value,
              queryer::FormatDouble(seconds, 4).c_str(), per_sec, unit_label);
  CsvLine("columnar", {name, std::to_string(units), std::to_string(out_value),
                       queryer::FormatDouble(seconds, 5),
                       queryer::FormatDouble(per_sec, 0)});
  JsonLine("columnar", {{"case", name},
                        {"units", std::to_string(units)},
                        {"out", std::to_string(out_value)},
                        {"seconds", queryer::FormatDouble(seconds, 5)},
                        {"per_sec", queryer::FormatDouble(per_sec, 0)}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Columnar storage: dictionary encoding and late materialization");

  auto oagp = Oagp(Scaled(kSize1M));
  auto oagv = Oagv(Scaled(kOagvRows));
  const queryer::Table& table = *oagp.table;
  const std::size_t rows = table.num_rows();
  const std::size_t width = table.num_attributes();

  std::printf("%-16s %12s %12s %12s %14s\n", "case", "units", "out", "seconds",
              "per_sec");

  // -- Storage layer ------------------------------------------------------

  // Ingest: re-encode every row through fresh per-column dictionaries.
  {
    std::size_t built = 0;
    const double seconds = BestSeconds(
        [&]() {
          queryer::TableBuilder builder("copy", table.schema());
          builder.Reserve(rows);
          std::vector<std::string> row;
          for (queryer::EntityId e = 0; e < rows; ++e) {
            table.MaterializeRow(e, &row);
            if (!builder.AddRow(row).ok()) return std::size_t{0};
          }
          return builder.Build()->num_rows();
        },
        &built);
    Report("build", rows, built, seconds, "rows/s");
  }

  // Full-table ValueAt sweep: every cell materialized as a string_view.
  {
    std::size_t bytes = 0;
    const double seconds = BestSeconds(
        [&]() {
          std::size_t total = 0;
          for (std::size_t col = 0; col < width; ++col) {
            const queryer::ColumnView view = table.column(col);
            for (queryer::EntityId e = 0; e < rows; ++e) {
              total += view.value(e).size();
            }
          }
          return total;
        },
        &bytes);
    Report("value_sweep", rows * width, bytes, seconds, "cells/s");
  }

  // Code-only sweep of the same cells: the filter/join comparison currency.
  {
    std::size_t checksum = 0;
    const double seconds = BestSeconds(
        [&]() {
          std::size_t total = 0;
          for (std::size_t col = 0; col < width; ++col) {
            for (const queryer::DictCode code : table.column(col).codes()) {
              total += code;
            }
          }
          return total;
        },
        &checksum);
    Report("code_sweep", rows * width, checksum, seconds, "cells/s");
  }

  // -- Engine queries (row-major results) ---------------------------------

  queryer::EngineOptions options;
  options.num_threads = Threads();
  if (BatchSize() != 0) options.batch_size = BatchSize();
  const std::size_t effective_batch = options.batch_size;

  struct QuerySpec {
    const char* name;
    std::string sql;
    queryer::ResultLayout layout;
  };
  const std::vector<QuerySpec> queries = {
      {"scan_rows", "SELECT * FROM oagp", queryer::ResultLayout::kRowMajor},
      {"scan_cols", "SELECT * FROM oagp", queryer::ResultLayout::kColumnMajor},
      {"filter5", "SELECT * FROM oagp WHERE MOD(id, 100) < 5",
       queryer::ResultLayout::kRowMajor},
      {"filter50", "SELECT * FROM oagp WHERE MOD(id, 100) < 50",
       queryer::ResultLayout::kRowMajor},
      {"join", "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title",
       queryer::ResultLayout::kRowMajor},
  };
  for (const QuerySpec& query : queries) {
    options.result_layout = query.layout;
    queryer::QueryEngine engine(options);
    for (const auto& t : {oagp.table, oagv.table}) {
      queryer::Status status = engine.RegisterTable(t);
      if (!status.ok()) {
        std::fprintf(stderr, "RegisterTable failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    std::size_t rows_out = 0;
    const double seconds = BestSeconds(
        [&]() { return MustExecute(&engine, query.sql).num_rows(); },
        &rows_out);
    Report(query.name, rows, rows_out, seconds, "rows/s");
  }

  std::printf("(batch_size=%zu threads=%zu rows=%zu width=%zu)\n",
              effective_batch, Threads(), rows, width);
  return 0;
}
