// Paper Fig. 13 (a-d): NES vs AES scaling for SPJ joins over a growing left
// table — Q8a = PPL200K..2M ⋈ OAO and Q8b = OAGP200K..2M ⋈ OAGV, with 15%
// selectivity on the left side and 100% on the right.
//
// Expected shape: AES below NES at every size; both scale sub-linearly
// (comparisons stay within one order of magnitude over the 10x size range).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"

namespace {

void RunFamily(const std::string& name, bool people,
               const queryer::TablePtr& right_table,
               const std::string& left_key, const std::string& right_key,
               const std::vector<std::string>& org_pool) {
  using namespace queryer::bench;
  const std::size_t sizes[] = {kSize200K, kSize500K, kSize1M, kSize1500K,
                               kSize2M};
  const char* labels[] = {"200K", "500K", "1M", "1.5M", "2M"};
  for (int i = 0; i < 5; ++i) {
    std::size_t rows = Scaled(sizes[i]) / 2;
    auto left = people ? Ppl(rows, org_pool) : Oagp(rows);
    std::string sql = "SELECT DEDUP " + left.table->name() + ".id FROM " +
                      left.table->name() + " INNER JOIN " +
                      right_table->name() + " ON " + left.table->name() + "." +
                      left_key + " = " + right_table->name() + "." +
                      right_key + " WHERE MOD(" + left.table->name() +
                      ".id, 100) < 15";
    for (queryer::ExecutionMode mode :
         {queryer::ExecutionMode::kNaive, queryer::ExecutionMode::kAdvanced}) {
      queryer::QueryEngine engine = MakeEngine({left.table, right_table}, mode);
      queryer::QueryResult result = MustExecute(&engine, sql);
      std::printf("%s%-5s %-4s TT=%9ss comparisons=%zu\n", name.c_str(),
                  labels[i], std::string(ExecutionModeToString(mode)).c_str(),
                  queryer::FormatDouble(result.stats.total_seconds, 3).c_str(),
                  result.stats.comparisons_executed);
      CsvLine("fig13", {name, labels[i],
                        std::string(ExecutionModeToString(mode)),
                        queryer::FormatDouble(result.stats.total_seconds, 4),
                        std::to_string(result.stats.comparisons_executed)});
    }
  }
}

}  // namespace

int main() {
  using namespace queryer::bench;
  Banner("Fig. 13: NES vs AES join scaling (15% selectivity)");

  auto oao = Oao(Scaled(kOaoRows));
  auto pool = queryer::datagen::OrganisationNamePool(oao);
  RunFamily("PPL", /*people=*/true, oao.table, "org", "name", pool);

  auto oagv = Oagv(Scaled(kOagvRows));
  RunFamily("OAGP", /*people=*/false, oagv.table, "venue", "title", {});

  std::printf(
      "\nShape to verify: AES < NES at every size; sub-linear growth of "
      "comparisons over the 10x size sweep (paper Fig. 13).\n");
  return 0;
}
