// Paper Table 6: total-time breakdown of the highest-selectivity SP query
// (Q5, ~80%) on DSD and OAP into Block-Join / Meta-Blocking / Resolution /
// Group / Other. The paper reports Resolution dominating (82-83%).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"

namespace {

void RunBreakdown(const std::string& name, queryer::TablePtr table) {
  using namespace queryer::bench;
  queryer::QueryEngine engine =
      MakeEngine({table}, queryer::ExecutionMode::kAdvanced);
  queryer::QueryResult result = MustExecute(
      &engine, SelectivityQuery(table->name(), 80, table->schema().name(1)));
  const queryer::ExecStats& stats = result.stats;
  double total = stats.total_seconds;
  auto pct = [&](double seconds) {
    return total > 0 ? 100.0 * seconds / total : 0.0;
  };
  // Query Blocking (QBI build) is part of the pipeline ahead of Block-Join;
  // the paper folds it into "Other", so we do the same for comparability.
  double other = stats.other_seconds() + stats.blocking_seconds;
  std::printf("%-8s %9s %9.1f%% %12.1f%% %11.1f%% %7.1f%% %7.1f%%\n",
              name.c_str(), queryer::FormatDouble(total, 4).c_str(),
              pct(stats.block_join_seconds),
              pct(stats.meta_blocking_seconds()),
              pct(stats.resolution_seconds), pct(stats.group_seconds),
              pct(other));
  CsvLine("table6",
          {name, queryer::FormatDouble(total, 5),
           queryer::FormatDouble(pct(stats.block_join_seconds), 2),
           queryer::FormatDouble(pct(stats.meta_blocking_seconds()), 2),
           queryer::FormatDouble(pct(stats.resolution_seconds), 2),
           queryer::FormatDouble(pct(stats.group_seconds), 2),
           queryer::FormatDouble(pct(other), 2)});
}

}  // namespace

int main() {
  using namespace queryer::bench;
  Banner("Table 6: TT breakdown on DSD and OAP for Q5 (~80% selectivity)");
  std::printf("%-8s %9s %10s %13s %12s %8s %8s\n", "E", "TT(s)", "BlockJoin",
              "MetaBlocking", "Resolution", "Group", "Other");

  auto dsd = Dsd(Scaled(kDsdRows));
  RunBreakdown("DSD", dsd.table);

  auto oao = Oao(Scaled(kOaoRows));
  auto pool = queryer::datagen::OrganisationNamePool(oao);
  auto oap = Oap(Scaled(kOapRows), pool);
  RunBreakdown("OAP", oap.table);

  std::printf(
      "\nPaper (Table 6): DSD 7%%/5%%/82%%/3%%/3%%, OAP 5%%/7%%/83%%/1%%/4%% "
      "— Resolution (Comparison-Execution) dominates at high selectivity.\n");
  return 0;
}
