// Paper Table 8: effect of the Meta-Blocking configuration (ALL vs BP+BF vs
// BP+EP) on time and Pair Completeness, for the lowest- and highest-
// selectivity SP queries (Q1 ~5%, Q5 ~80%) on PPL1M and OAGP1M (scaled).
//
// Expected shape: ALL is fastest; BP+BF has the best PC (it never prunes a
// co-occurring pair); BP+EP is the slowest (Edge Pruning over an unfiltered
// graph).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"

namespace {

struct Config {
  const char* name;
  queryer::MetaBlockingConfig config;
};

void RunDataset(const std::string& name,
                const queryer::datagen::GeneratedDataset& ds) {
  using namespace queryer::bench;
  const Config configs[] = {
      {"ALL", queryer::MetaBlockingConfig::All()},
      {"BP+BF", queryer::MetaBlockingConfig::BpBf()},
      {"BP+EP", queryer::MetaBlockingConfig::BpEp()},
  };
  for (int percent : {5, 80}) {
    const char* query_name = percent == 5 ? "Q1" : "Q5";
    for (const Config& config : configs) {
      queryer::QueryEngine engine =
          MakeEngine({ds.table}, queryer::ExecutionMode::kAdvanced,
                     config.config, /*collect_comparisons=*/true);
      queryer::QueryResult result = MustExecute(
          &engine,
          SelectivityQuery(ds.table->name(), percent,
                           ds.table->schema().name(1)));
      double pc = ds.ground_truth.PairCompleteness(
          result.stats.collected_comparisons,
          SelectedIds(*ds.table, percent));
      std::printf("%-8s %-4s %-7s %10ss %12zu  PC=%s\n", name.c_str(),
                  query_name, config.name,
                  queryer::FormatDouble(result.stats.total_seconds, 3).c_str(),
                  result.stats.comparisons_executed,
                  queryer::FormatDouble(pc, 3).c_str());
      CsvLine("table8",
              {name, query_name, config.name,
               queryer::FormatDouble(result.stats.total_seconds, 4),
               std::to_string(result.stats.comparisons_executed),
               queryer::FormatDouble(pc, 4)});
    }
  }
}

}  // namespace

int main() {
  using namespace queryer::bench;
  Banner("Table 8: Meta-Blocking configurations (time and PC)");
  std::printf("(datasets at 1/5 of the usual bench scale: the BP+EP cell is the\n configuration the paper aborted after 30 minutes)\n");
  std::printf("%-8s %-4s %-7s %11s %12s\n", "E", "Q", "config", "TT", "comp.");

  auto ppl = Ppl(Scaled(kSize1M) / 5, {});
  RunDataset("PPL1M", ppl);
  auto oagp = Oagp(Scaled(kSize1M) / 5);
  RunDataset("OAGP1M", oagp);

  std::printf(
      "\nPaper (Table 8): ALL fastest (PC 0.82-0.92), BP+BF best PC "
      "(0.987-0.996) but 6-9x slower, BP+EP did not finish in 30 min.\n");
  return 0;
}
