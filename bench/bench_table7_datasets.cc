// Paper Table 7: dataset characteristics — |E| (rows), |L_E| (duplicate
// records), |A| (attributes) and |TBI| (distinct blocking keys) — for every
// dataset of the evaluation, at bench scale.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "blocking/token_blocking.h"

namespace {

void Report(const std::string& name, const queryer::datagen::GeneratedDataset& ds,
            const std::string& paper_row) {
  using namespace queryer::bench;
  queryer::BlockingOptions blocking;
  if (auto id = ds.table->schema().IndexOf("id"); id.has_value()) {
    blocking.excluded_attributes = {*id};
  }
  auto tbi = queryer::TableBlockIndex::Build(*ds.table, blocking);
  std::printf("%-10s %10zu %10zu %6zu %10zu   paper: %s\n", name.c_str(),
              ds.table->num_rows(), ds.ground_truth.NumDuplicateRecords(),
              ds.table->num_attributes(), tbi->num_blocks(),
              paper_row.c_str());
  CsvLine("table7", {name, std::to_string(ds.table->num_rows()),
                     std::to_string(ds.ground_truth.NumDuplicateRecords()),
                     std::to_string(ds.table->num_attributes()),
                     std::to_string(tbi->num_blocks())});
}

}  // namespace

int main() {
  using namespace queryer::bench;
  Banner("Table 7: dataset characteristics");
  std::printf("%-10s %10s %10s %6s %10s\n", "E", "|E|", "|LE|", "|A|", "|TBI|");

  Report("DSD", Dsd(Scaled(kDsdRows)), "|E|=66879 |LE|=5347 |A|=4 |TBI|=88K");

  auto oao = Oao(Scaled(kOaoRows));
  Report("OAO", oao, "|E|=55464 |LE|=5464 |A|=3 |TBI|=22K");
  auto pool = queryer::datagen::OrganisationNamePool(oao);
  Report("OAP", Oap(Scaled(kOapRows), pool),
         "|E|=500K |LE|=58074 |A|=8 |TBI|=170K");

  const std::size_t ppl_sizes[] = {kSize200K, kSize500K, kSize1M, kSize1500K,
                                   kSize2M};
  const char* ppl_names[] = {"PPL200K", "PPL500K", "PPL1M", "PPL1.5M",
                             "PPL2M"};
  const char* ppl_paper[] = {
      "|E|=200K |LE|=64762 |A|=12", "|E|=500K |LE|=161443 |A|=12",
      "|E|=1M |LE|=322722 |A|=12", "|E|=1.5M |LE|=403417 |A|=12",
      "|E|=2M |LE|=645489 |A|=12"};
  for (int i = 0; i < 5; ++i) {
    Report(ppl_names[i], Ppl(Scaled(ppl_sizes[i]), pool), ppl_paper[i]);
  }

  const char* oagp_names[] = {"OAGP200K", "OAGP500K", "OAGP1M", "OAGP1.5M",
                              "OAGP2M"};
  const char* oagp_paper[] = {
      "|E|=200K |LE|=5679 |A|=18", "|E|=500K |LE|=54132 |A|=18",
      "|E|=1M |LE|=78341 |A|=18", "|E|=1.5M |LE|=135313 |A|=18",
      "|E|=2M |LE|=267843 |A|=18"};
  for (int i = 0; i < 5; ++i) {
    Report(oagp_names[i], Oagp(Scaled(ppl_sizes[i])), oagp_paper[i]);
  }

  Report("OAGV", Oagv(Scaled(kOagvRows)),
         "|E|=130K |LE|=29841 |A|=5 |TBI|=55K");
  return 0;
}
