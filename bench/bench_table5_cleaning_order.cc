// Paper Table 5: executed comparisons of the motivating-example SPJ query
// under the two possible cleaning orders ("clean V first" = Fig. 8 plan vs
// "clean P first" = Fig. 7 plan). The paper reports 15 vs 18; our ER stack
// counts its own comparisons, so the absolute numbers differ, but the
// ordering (V-first cheaper) must reproduce.

#include <cstdio>
#include <set>
#include <string>
#include <unordered_set>

#include "bench_util.h"
#include "common/string_util.h"
#include "datagen/scholarly.h"
#include "exec/deduplicator.h"
#include "exec/hash_join.h"

namespace queryer::bench {
namespace {

// Runs Alg. 1 by hand for the motivating query with the given cleaning
// order and returns (comparisons to clean first table, comparisons for the
// dirty side, total).
struct OrderCost {
  std::size_t clean_first = 0;
  std::size_t dirty_side = 0;
  std::size_t total() const { return clean_first + dirty_side; }
};

OrderCost RunOrder(bool clean_v_first) {
  auto p = datagen::MakeMotivatingPublications();
  auto v = datagen::MakeMotivatingVenues();
  BlockingOptions blocking;
  blocking.excluded_attributes = {0};
  MatchingConfig matching;
  matching.excluded_attributes = {0};
  MetaBlockingConfig meta = MetaBlockingConfig::None();
  TableRuntime p_rt(p.table, blocking, meta, matching);
  TableRuntime v_rt(v.table, blocking, meta, matching);

  auto venue_idx = *p.table->schema().IndexOf("venue");
  auto title_idx = *v.table->schema().IndexOf("title");

  // QE_P = publications with venue = 'EDBT' (the query's filter).
  std::vector<EntityId> qe_p;
  for (EntityId e = 0; e < p.table->num_rows(); ++e) {
    if (EqualsIgnoreCase(p.table->ValueAt(e, venue_idx), "EDBT")) {
      qe_p.push_back(e);
    }
  }

  OrderCost cost;
  ExecStats stats;
  if (clean_v_first) {
    // Fig. 8: clean all of V, then resolve the P selection that joins.
    Deduplicator v_dedup(&v_rt, &stats);
    std::vector<EntityId> all_v;
    for (EntityId e = 0; e < v.table->num_rows(); ++e) all_v.push_back(e);
    std::vector<EntityId> v_dr = *v_dedup.Resolve(all_v);
    cost.clean_first = stats.comparisons_executed;

    std::unordered_set<std::string> v_keys;
    for (EntityId e : v_dr) {
      v_keys.insert(CanonicalJoinKey(v.table->ValueAt(e, title_idx)));
    }
    std::vector<EntityId> joining_p;
    for (EntityId e : qe_p) {
      if (v_keys.count(CanonicalJoinKey(p.table->ValueAt(e, venue_idx))) > 0) {
        joining_p.push_back(e);
      }
    }
    ExecStats p_stats;
    Deduplicator p_dedup(&p_rt, &p_stats);
    (void)p_dedup.Resolve(joining_p);
    cost.dirty_side = p_stats.comparisons_executed;
  } else {
    // Fig. 7: clean the P selection first, then the joining V side.
    Deduplicator p_dedup(&p_rt, &stats);
    std::vector<EntityId> p_dr = *p_dedup.Resolve(qe_p);
    cost.clean_first = stats.comparisons_executed;

    std::unordered_set<std::string> p_keys;
    for (EntityId e : p_dr) {
      p_keys.insert(CanonicalJoinKey(p.table->ValueAt(e, venue_idx)));
    }
    std::vector<EntityId> joining_v;
    for (EntityId e = 0; e < v.table->num_rows(); ++e) {
      if (p_keys.count(CanonicalJoinKey(v.table->ValueAt(e, title_idx))) > 0) {
        joining_v.push_back(e);
      }
    }
    ExecStats v_stats;
    Deduplicator v_dedup(&v_rt, &v_stats);
    (void)v_dedup.Resolve(joining_v);
    cost.dirty_side = v_stats.comparisons_executed;
  }
  return cost;
}

}  // namespace
}  // namespace queryer::bench

int main() {
  using namespace queryer::bench;
  Banner("Table 5: executed comparisons by cleaning order");

  OrderCost v_first = RunOrder(/*clean_v_first=*/true);
  OrderCost p_first = RunOrder(/*clean_v_first=*/false);

  std::printf("%-12s %10s %10s %10s   %s\n", "Clean first", "V", "P", "Total",
              "(paper)");
  std::printf("%-12s %10zu %10zu %10zu   %s\n", "V", v_first.clean_first,
              v_first.dirty_side, v_first.total(), "12 + 3 = 15");
  std::printf("%-12s %10zu %10zu %10zu   %s\n", "P", p_first.dirty_side,
              p_first.clean_first, p_first.total(), "1 + 17 = 18");
  CsvLine("table5", {"V-first", std::to_string(v_first.total())});
  CsvLine("table5", {"P-first", std::to_string(p_first.total())});

  // The table's point is that the cleaning order changes the executed
  // comparisons and the planner must pick the cheaper one from estimates.
  // (Our full-V cleaning cost matches the paper's V column exactly; the
  // dirty-side accounting differs — see EXPERIMENTS.md.)
  std::printf("\nOrder-dependent cost reproduced: totals differ by %zu "
              "comparisons (%zu vs %zu).\n",
              v_first.total() > p_first.total()
                  ? v_first.total() - p_first.total()
                  : p_first.total() - v_first.total(),
              v_first.total(), p_first.total());
  return 0;
}
