// Paper Fig. 9 (a-f): QueryER vs the Batch Approach — total time and
// executed comparisons for the SP selectivity ladder Q1..Q5 (~5%..80%) on
// DSD, OAP and OAGP2M (scaled).
//
// Expected shape: QueryER's cost grows with selectivity while BA's is flat
// (it always cleans everything); QueryER wins everywhere, with the gap
// narrowing as the selection approaches the whole table.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"

namespace {

void RunDataset(const std::string& name, queryer::TablePtr table) {
  using namespace queryer::bench;

  // Batch Approach: clean the whole table once (a query that selects
  // nothing still triggers the offline ER), then pay only lookup cost per
  // query. BA's per-query totals = batch time + query time.
  queryer::QueryEngine ba_engine =
      MakeEngine({table}, queryer::ExecutionMode::kBatch);
  queryer::QueryResult warmup = MustExecute(
      &ba_engine, SelectivityQuery(table->name(), 0, table->schema().name(1)));
  double batch_seconds = warmup.stats.total_seconds;
  std::size_t batch_comparisons = warmup.stats.comparisons_executed;

  for (std::size_t i = 0; i < 5; ++i) {
    int percent = kSelectivities[i];
    std::string query =
        SelectivityQuery(table->name(), percent, table->schema().name(1));

    // Fresh engine per query: each point is an independent first query.
    queryer::QueryEngine engine =
        MakeEngine({table}, queryer::ExecutionMode::kAdvanced);
    queryer::QueryResult result = MustExecute(&engine, query);

    queryer::QueryResult ba_query = MustExecute(&ba_engine, query);
    double ba_total = batch_seconds + ba_query.stats.total_seconds;

    std::printf("%-8s Q%zu(%2d%%) QueryER %8ss %10zu | BA %8ss %10zu\n",
                name.c_str(), i + 1, percent,
                queryer::FormatDouble(result.stats.total_seconds, 3).c_str(),
                result.stats.comparisons_executed,
                queryer::FormatDouble(ba_total, 3).c_str(),
                batch_comparisons);
    CsvLine("fig9", {name, "Q" + std::to_string(i + 1),
                     std::to_string(percent),
                     queryer::FormatDouble(result.stats.total_seconds, 4),
                     std::to_string(result.stats.comparisons_executed),
                     queryer::FormatDouble(ba_total, 4),
                     std::to_string(batch_comparisons)});
  }
}

}  // namespace

int main() {
  using namespace queryer::bench;
  Banner("Fig. 9: QueryER vs Batch Approach (TT and comparisons, Q1-Q5)");

  RunDataset("DSD", Dsd(Scaled(kDsdRows)).table);

  auto oao = Oao(Scaled(kOaoRows));
  auto pool = queryer::datagen::OrganisationNamePool(oao);
  RunDataset("OAP", Oap(Scaled(kOapRows) / 2, pool).table);

  RunDataset("OAGP2M", Oagp(Scaled(kSize2M) / 4).table);

  std::printf(
      "\nShape to verify: QueryER < BA at every selectivity; the gap "
      "narrows as selectivity grows (paper Fig. 9).\n");
  return 0;
}
