// Micro-benchmarks over the ER kernels (google-benchmark): similarity
// functions, tokenization, blocking-index construction, meta-blocking
// stages and the Link Index.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "blocking/block_join.h"
#include "blocking/token_blocking.h"
#include "common/string_util.h"
#include "datagen/scholarly.h"
#include "matching/comparison_execution.h"
#include "matching/link_index.h"
#include "matching/profile_matcher.h"
#include "matching/similarity.h"
#include "metablocking/meta_blocking.h"
#include "parallel/thread_pool.h"

namespace queryer {
namespace {

const char kLeft[] = "entity resolution over dirty scholarly data";
const char kRight[] = "enitty resolution over dirty schollarly data";

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinklerSimilarity(kLeft, kRight));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(kLeft, kRight));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaccardTokens(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardTokenSimilarity(kLeft, kRight));
  }
}
BENCHMARK(BM_JaccardTokens);

void BM_TokenizeAlnum(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenizeAlnum(kLeft));
  }
}
BENCHMARK(BM_TokenizeAlnum);

void BM_ValueSimilarity(benchmark::State& state) {
  MatchingConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueSimilarity(kLeft, kRight, config));
  }
}
BENCHMARK(BM_ValueSimilarity);

void BM_ProfileSimilarity(benchmark::State& state) {
  auto dsd = datagen::MakeDsdLike(100, 3);
  MatchingConfig config;
  config.excluded_attributes = {0};
  AttributeWeights weights = AttributeWeights::Compute(*dsd.table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ProfileSimilarity(*dsd.table, 0, 1, config, &weights));
  }
}
BENCHMARK(BM_ProfileSimilarity);

void BM_TableBlockIndexBuild(benchmark::State& state) {
  auto dsd = datagen::MakeDsdLike(static_cast<std::size_t>(state.range(0)), 5);
  BlockingOptions options;
  options.excluded_attributes = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(TableBlockIndex::Build(*dsd.table, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableBlockIndexBuild)->Arg(1000)->Arg(5000);

void BM_QueryBlockingAndJoin(benchmark::State& state) {
  auto dsd = datagen::MakeDsdLike(5000, 7);
  BlockingOptions options;
  options.excluded_attributes = {0};
  auto tbi = TableBlockIndex::Build(*dsd.table, options);
  std::vector<EntityId> selection;
  for (EntityId e = 0; e < 200; ++e) selection.push_back(e * 7 % 5000);
  for (auto _ : state) {
    QueryBlockIndex qbi = QueryBlockIndex::Build(*dsd.table, selection, options);
    benchmark::DoNotOptimize(BlockJoin(qbi, *tbi));
  }
}
BENCHMARK(BM_QueryBlockingAndJoin);

void BM_MetaBlocking(benchmark::State& state) {
  auto dsd = datagen::MakeDsdLike(5000, 9);
  BlockingOptions options;
  options.excluded_attributes = {0};
  auto tbi = TableBlockIndex::Build(*dsd.table, options);
  std::vector<EntityId> selection;
  for (EntityId e = 0; e < 500; ++e) selection.push_back(e * 3 % 5000);
  QueryBlockIndex qbi = QueryBlockIndex::Build(*dsd.table, selection, options);
  BlockCollection enriched = BlockJoin(qbi, *tbi);
  for (auto _ : state) {
    BlockCollection copy = enriched;
    benchmark::DoNotOptimize(
        RunMetaBlocking(std::move(copy), MetaBlockingConfig::All()));
  }
}
BENCHMARK(BM_MetaBlocking);

void BM_LinkIndexAddFind(benchmark::State& state) {
  for (auto _ : state) {
    LinkIndex li(10000);
    for (EntityId e = 0; e + 1 < 10000; e += 2) li.AddLink(e, e + 1);
    benchmark::DoNotOptimize(li.Cluster(5000));
  }
}
BENCHMARK(BM_LinkIndexAddFind);

// Engine-wide worker pool for the parallel micro benchmarks, sized by the
// --threads flag (null = sequential path).
ThreadPool* BenchPool() {
  static ThreadPool* pool = bench::Threads() == 1
                                ? nullptr
                                : new ThreadPool(bench::Threads() == 0
                                                     ? ThreadPool::
                                                           HardwareConcurrency()
                                                     : bench::Threads());
  return pool;
}

void BM_ComparisonExecution(benchmark::State& state) {
  auto dsd = datagen::MakeDsdLike(static_cast<std::size_t>(state.range(0)), 9);
  BlockingOptions options;
  options.excluded_attributes = {0};
  auto tbi = TableBlockIndex::Build(*dsd.table, options);
  BlockCollection blocks;
  for (std::size_t b = 0; b < tbi->num_blocks(); ++b) {
    Block block;
    block.key = tbi->block_key(b);
    block.entities = tbi->block_entities(b);
    block.query_entities = block.entities;
    blocks.push_back(std::move(block));
  }
  MetaBlockingResult refined =
      RunMetaBlocking(std::move(blocks), MetaBlockingConfig::All());
  MatchingConfig config;
  config.excluded_attributes = {0};
  AttributeWeights weights = AttributeWeights::Compute(*dsd.table);
  for (auto _ : state) {
    LinkIndex li(dsd.table->num_rows());
    ComparisonExecStats stats =
        *ExecuteComparisons(*dsd.table, refined.comparisons, config, &li,
                            &weights, BenchPool());
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(refined.comparisons.size()));
}
// Wall time, not CPU time: with a pool the bench thread mostly sleeps while
// the workers burn the cycles.
BENCHMARK(BM_ComparisonExecution)->Arg(2000)->Arg(5000)->UseRealTime();

void BM_TableBlockIndexBuildPooled(benchmark::State& state) {
  auto dsd = datagen::MakeDsdLike(static_cast<std::size_t>(state.range(0)), 5);
  BlockingOptions options;
  options.excluded_attributes = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TableBlockIndex::Build(*dsd.table, options, BenchPool()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableBlockIndexBuildPooled)->Arg(1000)->Arg(5000)->UseRealTime();

}  // namespace
}  // namespace queryer

int main(int argc, char** argv) {
  // Shared bench flags (--threads=N) come out first; google-benchmark then
  // parses its own and the thread count lands in the JSON context block
  // (--benchmark_format=json).
  queryer::bench::InitBenchArgs(&argc, argv);
  benchmark::AddCustomContext("threads",
                              std::to_string(queryer::bench::Threads()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
