// Paper Fig. 12 (a-d): Batch Approach vs Naive ER Solution vs Advanced ER
// Solution on SPJ joins — Q6a/Q7a = PPL2M/OAP ⋈ OAO and Q6b/Q7b =
// OAGP2M ⋈ OAGV, with selectivity 7% (Q6) or 75% (Q7) on the left side and
// 100% on the right.
//
// Expected shape: AES <= NES <= BA in both time and executed comparisons,
// with AES's advantage largest at low selectivity / low join-percentage.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"

namespace {

struct JoinCase {
  std::string name;
  queryer::TablePtr left;
  queryer::TablePtr right;
  std::string left_key;
  std::string right_key;
  int percent;
};

void RunCase(const JoinCase& join_case) {
  using namespace queryer::bench;
  std::string sql = "SELECT DEDUP " + join_case.left->name() + ".id, " +
                    join_case.right->name() + ".id FROM " +
                    join_case.left->name() + " INNER JOIN " +
                    join_case.right->name() + " ON " + join_case.left->name() +
                    "." + join_case.left_key + " = " +
                    join_case.right->name() + "." + join_case.right_key +
                    " WHERE MOD(" + join_case.left->name() + ".id, 100) < " +
                    std::to_string(join_case.percent);

  const queryer::ExecutionMode modes[] = {queryer::ExecutionMode::kBatch,
                                          queryer::ExecutionMode::kNaive,
                                          queryer::ExecutionMode::kAdvanced};
  for (queryer::ExecutionMode mode : modes) {
    queryer::QueryEngine engine =
        MakeEngine({join_case.left, join_case.right}, mode);
    queryer::QueryResult result = MustExecute(&engine, sql);
    std::printf("%-4s %-4s TT=%9ss comparisons=%-10zu rows=%zu\n",
                join_case.name.c_str(),
                std::string(ExecutionModeToString(mode)).c_str(),
                queryer::FormatDouble(result.stats.total_seconds, 3).c_str(),
                result.stats.comparisons_executed, result.rows.size());
    CsvLine("fig12", {join_case.name,
                      std::string(ExecutionModeToString(mode)),
                      queryer::FormatDouble(result.stats.total_seconds, 4),
                      std::to_string(result.stats.comparisons_executed)});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace queryer::bench;
  Banner("Fig. 12: BA vs NES vs AES on SPJ queries");

  auto oao = Oao(Scaled(kOaoRows));
  auto pool = queryer::datagen::OrganisationNamePool(oao);
  auto ppl = Ppl(Scaled(kSize2M) / 4, pool);  // Reduced: NES/BA fully clean it.
  auto oap = Oap(Scaled(kOapRows) / 2, pool);
  auto oagp = Oagp(Scaled(kSize2M) / 4);
  auto oagv = Oagv(Scaled(kOagvRows) / 2);

  RunCase({"Q6a", ppl.table, oao.table, "org", "name", 7});
  RunCase({"Q7a", oap.table, oao.table, "org", "name", 75});
  RunCase({"Q6b", oagp.table, oagv.table, "venue", "title", 7});
  RunCase({"Q7b", oagp.table, oagv.table, "venue", "title", 75});

  std::printf(
      "Shape to verify: AES <= NES <= BA; the NES/BA gap shrinks at 75%% "
      "selectivity while AES stays ahead (paper Fig. 12).\n");
  return 0;
}
