// Paper Fig. 11: effect of the Link Index on consecutive overlapping
// queries. Four range queries Q10..Q13 over OAGP2M, each containing the
// previous query's selection plus ~30% more entities, run (a) with the LI
// persisting across queries, (b) with the LI reset before each query, and
// (c) against the Batch Approach.
//
// Expected shape: the two arms diverge query by query — with the LI the
// time falls toward zero (only the new entities are resolved), without it
// the time grows toward the BA line.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace queryer::bench;
  Banner("Fig. 11: consecutive overlapping queries with / without the LI");

  auto oagp = Oagp(Scaled(kSize2M) / 4);
  // Paper: Q10 selects 38% of the table, each following query +30%.
  const int percents[] = {38, 49, 64, 83};

  // Batch Approach reference (cleans everything once).
  queryer::QueryEngine ba =
      MakeEngine({oagp.table}, queryer::ExecutionMode::kBatch);
  queryer::QueryResult warmup =
      MustExecute(&ba, SelectivityQuery("oagp", 0, "title"));
  double ba_seconds = warmup.stats.total_seconds;
  std::printf("BA (clean everything once): %ss\n\n",
              queryer::FormatDouble(ba_seconds, 3).c_str());

  for (bool use_li : {true, false}) {
    queryer::QueryEngine engine =
        MakeEngine({oagp.table}, queryer::ExecutionMode::kAdvanced);
    engine.set_use_link_index(use_li);
    std::printf("== %s LI ==\n", use_li ? "With" : "Without");
    std::printf("%-5s %6s %12s %12s %12s %10s\n", "query", "sel%", "|QE|",
                "from-LI", "comparisons", "TT(s)");
    for (int i = 0; i < 4; ++i) {
      queryer::QueryResult result = MustExecute(
          &engine, SelectivityQuery("oagp", percents[i], "title"));
      std::printf("Q%-4d %6d %12zu %12zu %12zu %10s\n", 10 + i, percents[i],
                  result.stats.query_entities,
                  result.stats.entities_already_resolved,
                  result.stats.comparisons_executed,
                  queryer::FormatDouble(result.stats.total_seconds, 3).c_str());
      CsvLine("fig11",
              {use_li ? "with-li" : "without-li", "Q" + std::to_string(10 + i),
               std::to_string(percents[i]),
               std::to_string(result.stats.entities_already_resolved),
               std::to_string(result.stats.comparisons_executed),
               queryer::FormatDouble(result.stats.total_seconds, 4)});
    }
    std::printf("\n");
  }
  CsvLine("fig11", {"ba", "-", "-", "-", "-",
                    queryer::FormatDouble(ba_seconds, 4)});
  std::printf(
      "Shape to verify: with the LI the per-query TT decreases (approaching "
      "0); without it the TT increases toward the BA line (paper Fig. 11).\n");
  return 0;
}
