// Ablation of the cost-based planner's design choices (DESIGN.md Sec. 4):
//
//  (a) Estimation fidelity: the estimator stops at the Block-Filtering
//      approximation (paper Sec. 7.2.1); how close is the estimate to the
//      comparisons actually executed across the selectivity ladder?
//  (b) LI-awareness: after a warm-up query resolves part of the table, the
//      estimate must drop accordingly (resolved entities cost nothing).
//  (c) Decision quality: for the Fig. 12 joins, does the cheaper-branch
//      decision based on the estimates match the a-posteriori better order?

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"
#include "planner/planner.h"
#include "planner/statistics.h"

int main() {
  using namespace queryer::bench;
  Banner("Planner ablation: estimate vs executed comparisons");

  auto dsd = Dsd(Scaled(kDsdRows) * 2);
  std::printf("(a) estimation fidelity on DSD\n");
  std::printf("%6s %14s %14s %8s\n", "sel%", "estimated", "executed", "ratio");
  for (int percent : {5, 20, 35, 50, 80}) {
    queryer::QueryEngine engine =
        MakeEngine({dsd.table}, queryer::ExecutionMode::kAdvanced);
    auto runtime = engine.GetRuntime("dsd");
    if (!runtime.ok()) return 1;
    auto selected = SelectedIds(*dsd.table, percent);
    double estimate = queryer::ApproximateComparisonsAfterMetaBlocking(
        runtime->get(), selected);
    queryer::QueryResult result = MustExecute(
        &engine, SelectivityQuery("dsd", percent, "title"));
    double ratio = result.stats.comparisons_executed > 0
                       ? estimate / static_cast<double>(
                                        result.stats.comparisons_executed)
                       : 0.0;
    std::printf("%6d %14s %14zu %8s\n", percent,
                queryer::FormatDouble(estimate, 0).c_str(),
                result.stats.comparisons_executed,
                queryer::FormatDouble(ratio, 2).c_str());
    CsvLine("ablation-estimate",
            {std::to_string(percent), queryer::FormatDouble(estimate, 1),
             std::to_string(result.stats.comparisons_executed)});
  }
  std::printf(
      "(estimates overshoot by design: they stop before Edge Pruning and "
      "before cross-block deduplication)\n");

  std::printf("\n(b) LI-aware estimation\n");
  {
    queryer::QueryEngine engine =
        MakeEngine({dsd.table}, queryer::ExecutionMode::kAdvanced);
    auto runtime = engine.GetRuntime("dsd");
    if (!runtime.ok()) return 1;
    auto selected = SelectedIds(*dsd.table, 35);
    double cold = queryer::ApproximateComparisonsAfterMetaBlocking(
        runtime->get(), selected);
    MustExecute(&engine, SelectivityQuery("dsd", 35, "title"));  // Warm up.
    double warm = queryer::ApproximateComparisonsAfterMetaBlocking(
        runtime->get(), selected);
    std::printf("cold estimate %s -> warm estimate %s (resolved entities "
                "cost nothing)\n",
                queryer::FormatDouble(cold, 0).c_str(),
                queryer::FormatDouble(warm, 0).c_str());
    CsvLine("ablation-li", {queryer::FormatDouble(cold, 1),
                            queryer::FormatDouble(warm, 1)});
  }

  std::printf("\n(c) dirty-side decision vs a-posteriori best order\n");
  auto oao = Oao(Scaled(kOaoRows));
  auto pool = queryer::datagen::OrganisationNamePool(oao);
  auto oap = Oap(Scaled(kOapRows) / 2, pool);
  for (int percent : {7, 75}) {
    std::string sql =
        "SELECT DEDUP oap.id FROM oap INNER JOIN oao ON oap.org = oao.name "
        "WHERE MOD(oap.id, 100) < " +
        std::to_string(percent);
    // The planner's decision.
    queryer::QueryEngine engine =
        MakeEngine({oap.table, oao.table}, queryer::ExecutionMode::kAdvanced);
    auto plan = engine.Explain(sql);
    if (!plan.ok()) return 1;
    bool chose_dirty_right = plan->find("Dirty-Right") != std::string::npos;
    queryer::QueryResult chosen = MustExecute(&engine, sql);
    std::printf("S=%2d%%: planner chose %s (%zu comparisons, %ss)\n", percent,
                chose_dirty_right ? "clean OAP first (Dirty-Right)"
                                  : "clean OAO first (Dirty-Left)",
                chosen.stats.comparisons_executed,
                queryer::FormatDouble(chosen.stats.total_seconds, 3).c_str());
    CsvLine("ablation-decision",
            {std::to_string(percent),
             chose_dirty_right ? "dirty-right" : "dirty-left",
             std::to_string(chosen.stats.comparisons_executed)});
  }
  return 0;
}
