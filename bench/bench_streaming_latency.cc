// Streaming-session latency bench: time-to-first-batch (TTFB) vs
// time-to-last-batch (TTLB) of the Prepare/Open/Next cursor API, against
// the materializing Execute wrapper, plus the cost of abandoning a session
// after the first `kAbandonRows` rows (the pagination / early-LIMIT client
// the streaming API exists for).
//
// Pipeline shapes covered: a full table scan (pure streaming — TTFB is one
// batch), a selective fused-filter scan, a hash join (build at Open, probe
// streamed) and a DEDUP selection (resolution happens at Open, grouping
// materializes — TTFB ~ TTLB by design; the number quantifies exactly how
// much of the answer the session must pay for before the first row).
//
// The clock starts BEFORE PreparedQuery::Open, so Open-time work (build
// side drain, ER resolution) is charged to TTFB. Best of `kReps` runs per
// metric; DEDUP runs are cold (fresh engine per rep — the Link Index would
// otherwise turn later reps into lookups).
//
// A final "restart" section times the persistence tier: cold CSV register
// + first DEDUP resolution + SaveSnapshots, against a warm restart from
// the snapshot files (RegisterTableFromSnapshots + the same query, which
// must execute zero comparisons).
//
// Exits 1 if the streamed row count ever disagrees with Execute's answer.
// Honors --threads=N / --batch-size=N (see docs/BENCHMARKS.md).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "server/client.h"
#include "server/query_server.h"
#include "storage/csv.h"

namespace {

constexpr int kReps = 3;
constexpr std::size_t kAbandonRows = 100;

struct QuerySpec {
  const char* name;
  std::string sql;
  bool dedup;
};

struct Timings {
  double execute_seconds = 0;   // Materializing Execute wrapper.
  double ttfb_seconds = 0;      // Open -> first non-empty batch.
  double ttlb_seconds = 0;      // Open -> end of stream.
  double abandon_seconds = 0;   // Open -> kAbandonRows rows -> Close.
  std::size_t rows = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Streaming sessions: time-to-first-batch vs time-to-last-batch");

  auto dsd = Dsd(Scaled(kDsdRows));
  auto oagp = Oagp(Scaled(kSize500K));
  auto oagv = Oagv(Scaled(kOagvRows));

  const std::vector<QuerySpec> queries = {
      {"scan", "SELECT * FROM oagp", false},
      {"filter5", "SELECT * FROM oagp WHERE MOD(id, 100) < 5", false},
      {"join",
       "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title",
       false},
      {"dedup_q2", "SELECT DEDUP title, venue FROM dsd "
                   "WHERE MOD(id, 100) < 20", true},
  };

  auto make_engine = [&]() {
    queryer::EngineOptions options;
    options.num_threads = Threads();
    if (BatchSize() != 0) options.batch_size = BatchSize();
    options.trace_sink = BenchTraceSink();
    auto engine = std::make_unique<queryer::QueryEngine>(options);
    for (const auto& table : {dsd.table, oagp.table, oagv.table}) {
      queryer::Status status = engine->RegisterTable(table);
      if (!status.ok()) {
        std::fprintf(stderr, "RegisterTable failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
    return engine;
  };

  std::printf("%-10s %10s %12s %12s %12s %12s\n", "query", "rows",
              "execute(s)", "ttfb(s)", "ttlb(s)", "abandon(s)");
  bool mismatch = false;
  std::vector<std::pair<std::string, double>> inproc_ttfb;
  for (const QuerySpec& query : queries) {
    Timings best;
    for (int rep = 0; rep < kReps; ++rep) {
      Timings t;

      // Materializing wrapper (its own engine when DEDUP, so every arm of
      // this rep starts from an equally cold Link Index).
      auto execute_engine = make_engine();
      {
        queryer::Stopwatch watch;
        queryer::QueryResult result = MustExecute(execute_engine.get(),
                                                  query.sql);
        t.execute_seconds = watch.ElapsedSeconds();
        t.rows = result.rows.size();
      }

      // Streaming drain: TTFB + TTLB in one pass.
      auto stream_engine = query.dedup ? make_engine()
                                       : std::move(execute_engine);
      {
        queryer::Stopwatch watch;
        auto cursor = stream_engine->ExecuteStream(query.sql);
        if (!cursor.ok()) {
          std::fprintf(stderr, "ExecuteStream failed: %s\n",
                       cursor.status().ToString().c_str());
          return 1;
        }
        std::size_t rows = 0;
        double first = -1;
        queryer::RowBatch batch((*cursor)->batch_size());
        while (true) {
          auto has = (*cursor)->Next(&batch);
          if (!has.ok()) {
            std::fprintf(stderr, "Next failed: %s\n",
                         has.status().ToString().c_str());
            return 1;
          }
          if (!*has) break;
          if (!batch.empty() && first < 0) first = watch.ElapsedSeconds();
          rows += batch.size();
        }
        t.ttlb_seconds = watch.ElapsedSeconds();
        t.ttfb_seconds = first < 0 ? t.ttlb_seconds : first;
        if (rows != t.rows) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: %s streamed %zu rows, "
                       "Execute returned %zu\n",
                       query.name, rows, t.rows);
          mismatch = true;
        }
      }

      // Early abandonment: first kAbandonRows rows, then Close.
      auto abandon_engine = query.dedup ? make_engine()
                                        : std::move(stream_engine);
      {
        queryer::Stopwatch watch;
        auto cursor = abandon_engine->ExecuteStream(query.sql);
        if (!cursor.ok()) {
          std::fprintf(stderr, "ExecuteStream failed: %s\n",
                       cursor.status().ToString().c_str());
          return 1;
        }
        auto page = (*cursor)->Fetch(kAbandonRows);
        if (!page.ok()) {
          std::fprintf(stderr, "Fetch failed: %s\n",
                       page.status().ToString().c_str());
          return 1;
        }
        (*cursor)->Close();
        t.abandon_seconds = watch.ElapsedSeconds();
      }

      if (rep == 0 || t.execute_seconds < best.execute_seconds) {
        best.execute_seconds = t.execute_seconds;
      }
      if (rep == 0 || t.ttfb_seconds < best.ttfb_seconds) {
        best.ttfb_seconds = t.ttfb_seconds;
      }
      if (rep == 0 || t.ttlb_seconds < best.ttlb_seconds) {
        best.ttlb_seconds = t.ttlb_seconds;
      }
      if (rep == 0 || t.abandon_seconds < best.abandon_seconds) {
        best.abandon_seconds = t.abandon_seconds;
      }
      best.rows = t.rows;
    }

    std::printf("%-10s %10zu %12s %12s %12s %12s\n", query.name, best.rows,
                queryer::FormatDouble(best.execute_seconds, 4).c_str(),
                queryer::FormatDouble(best.ttfb_seconds, 4).c_str(),
                queryer::FormatDouble(best.ttlb_seconds, 4).c_str(),
                queryer::FormatDouble(best.abandon_seconds, 4).c_str());
    CsvLine("streaming_latency",
            {query.name, std::to_string(best.rows),
             queryer::FormatDouble(best.execute_seconds, 5),
             queryer::FormatDouble(best.ttfb_seconds, 5),
             queryer::FormatDouble(best.ttlb_seconds, 5),
             queryer::FormatDouble(best.abandon_seconds, 5)});
    JsonLine("streaming_latency",
             {{"query", query.name},
              {"rows", std::to_string(best.rows)},
              {"execute_seconds",
               queryer::FormatDouble(best.execute_seconds, 5)},
              {"ttfb_seconds", queryer::FormatDouble(best.ttfb_seconds, 5)},
              {"ttlb_seconds", queryer::FormatDouble(best.ttlb_seconds, 5)},
              {"abandon_seconds",
               queryer::FormatDouble(best.abandon_seconds, 5)},
              {"abandon_rows", std::to_string(kAbandonRows)}});
    inproc_ttfb.emplace_back(query.name, best.ttfb_seconds);
  }

  // Server section: the same TTFB measured over the wire — a QueryServer
  // on a loopback ephemeral port, a line-framed JSON client, OPEN + NEXT
  // paging — against the in-process cursor TTFB from the table above. The
  // delta is the full protocol cost: framing, JSON encode/decode of every
  // row, a TCP round-trip per page. Fresh engine + server per rep so DEDUP
  // stays cold, exactly like the in-process arms.
  {
    Banner("Server: in-process cursor TTFB vs over-the-wire TTFB");
    std::printf("%-10s %10s %12s %12s %12s\n", "query", "rows",
                "ttfb(s)", "wire_ttfb(s)", "wire_ttlb(s)");
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const QuerySpec& query = queries[qi];
      double wire_ttfb = 0, wire_ttlb = 0;
      std::size_t rows = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto engine = make_engine();
        queryer::ServerOptions server_options;
        server_options.port = 0;
        queryer::QueryServer server(engine.get(), server_options);
        queryer::Status status = server.Start();
        if (!status.ok()) {
          std::fprintf(stderr, "server Start failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        auto connected = queryer::Client::Connect("127.0.0.1", server.port(),
                                                  "bench");
        if (!connected.ok()) {
          std::fprintf(stderr, "Connect failed: %s\n",
                       connected.status().ToString().c_str());
          return 1;
        }
        queryer::Client client = std::move(connected).MoveValueUnsafe();

        queryer::Stopwatch watch;  // Before OPEN: Open-time work counts.
        auto open = client.Open(query.sql);
        if (!open.ok()) {
          std::fprintf(stderr, "OPEN failed: %s\n",
                       open.status().ToString().c_str());
          return 1;
        }
        double first = -1;
        std::size_t streamed = 0;
        bool done = false;
        while (!done) {
          auto page = client.Next(open->cursor);
          if (!page.ok()) {
            std::fprintf(stderr, "NEXT failed: %s\n",
                         page.status().ToString().c_str());
            return 1;
          }
          if (!page->rows.empty() && first < 0) {
            first = watch.ElapsedSeconds();
          }
          streamed += page->rows.size();
          done = page->done;
        }
        const double ttlb = watch.ElapsedSeconds();
        server.Stop();
        rows = streamed;
        if (rep == 0 || first < wire_ttfb) {
          wire_ttfb = first < 0 ? ttlb : first;
        }
        if (rep == 0 || ttlb < wire_ttlb) wire_ttlb = ttlb;
      }
      const double inproc = inproc_ttfb[qi].second;
      std::printf("%-10s %10zu %12s %12s %12s\n", query.name, rows,
                  queryer::FormatDouble(inproc, 4).c_str(),
                  queryer::FormatDouble(wire_ttfb, 4).c_str(),
                  queryer::FormatDouble(wire_ttlb, 4).c_str());
      CsvLine("streaming_latency",
              {std::string("server_") + query.name, std::to_string(rows),
               queryer::FormatDouble(inproc, 5),
               queryer::FormatDouble(wire_ttfb, 5),
               queryer::FormatDouble(wire_ttlb, 5)});
      JsonLine("streaming_latency",
               {{"query", std::string("server_") + query.name},
                {"rows", std::to_string(rows)},
                {"inproc_ttfb_seconds", queryer::FormatDouble(inproc, 5)},
                {"wire_ttfb_seconds", queryer::FormatDouble(wire_ttfb, 5)},
                {"wire_ttlb_seconds", queryer::FormatDouble(wire_ttlb, 5)}});
    }
  }

  // Cancel pre-emption: how fast Cancel() issued from another thread tears
  // down a session that is deep inside a cold-LI ER resolution, vs paying
  // for the whole resolution (the dedup TTFB above). The consumer drives
  // the first Next into Open-time resolution; the main thread cancels
  // kCancelAfterMs in, and the poll interval of the comparison loops is
  // what bounds the reaction time reported here.
  {
    constexpr int kCancelAfterMs = 30;
    const std::string sql =
        "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 20";
    double best_react = -1;
    const char* outcome = "cancelled";
    for (int rep = 0; rep < kReps; ++rep) {
      auto engine = make_engine();  // Fresh: resolution must be in flight.
      auto cursor = engine->ExecuteStream(sql);
      if (!cursor.ok()) {
        std::fprintf(stderr, "ExecuteStream failed: %s\n",
                     cursor.status().ToString().c_str());
        return 1;
      }
      queryer::Status end_status;
      std::thread consumer([&] {
        queryer::RowBatch batch((*cursor)->batch_size());
        while (true) {
          auto has = (*cursor)->Next(&batch);
          if (!has.ok()) {
            end_status = has.status();
            break;
          }
          if (!*has) break;
        }
      });
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kCancelAfterMs));
      queryer::Stopwatch watch;
      (*cursor)->Cancel();
      consumer.join();
      const double react = watch.ElapsedSeconds();
      (*cursor)->Close();
      if (best_react < 0 || react < best_react) best_react = react;
      // On a machine fast enough to finish resolution inside
      // kCancelAfterMs the session just ends — report that honestly.
      if (end_status.ok()) outcome = "completed";
    }
    std::printf("%-10s %10s %12s %12s %12s %12s  (cancel at %dms -> %s)\n",
                "cancel", "-", "-", "-", "-",
                queryer::FormatDouble(best_react, 4).c_str(), kCancelAfterMs,
                outcome);
    CsvLine("streaming_latency",
            {"cancel_dedup", outcome,
             std::to_string(kCancelAfterMs),
             queryer::FormatDouble(best_react, 5)});
    JsonLine("streaming_latency",
             {{"query", "cancel_dedup"},
              {"outcome", outcome},
              {"cancel_after_ms", std::to_string(kCancelAfterMs)},
              {"cancel_to_termination_seconds",
               queryer::FormatDouble(best_react, 5)}});
  }

  // Cold-CSV vs warm-snapshot restart: the persistence tier's pitch in one
  // row. The cold arm registers from CSV (parse + blocking-index warm-up)
  // and pays the full first DEDUP resolution; SaveSnapshots then persists
  // the columnar table, the token-blocking index and the compacted Link
  // Index, and the warm arm restarts from those files alone. The warm
  // query must execute ZERO comparisons — the acceptance criterion pinned
  // by tests/persist_test.cc, enforced here too (exit 1).
  {
    const std::string sql =
        "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 20";
    const std::string dir = "/tmp/queryer_bench_persist";
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir);
    const std::string csv_path = dir + "/dsd.csv";
    {
      queryer::Status status = queryer::WriteCsvFile(*dsd.table, csv_path);
      if (!status.ok()) {
        std::fprintf(stderr, "WriteCsvFile failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    auto persist_options = [&](const std::string& data_dir) {
      queryer::EngineOptions options;
      options.num_threads = Threads();
      if (BatchSize() != 0) options.batch_size = BatchSize();
      options.data_dir = data_dir;
      return options;
    };
    double cold_register = 0, cold_query = 0, save = 0;
    double warm_register = 0, warm_query = 0;
    std::size_t cold_comparisons = 0, warm_comparisons = 0, rows = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::string data_dir = dir + "/data" + std::to_string(rep);
      std::filesystem::create_directories(data_dir);
      double t_cold_register, t_cold_query, t_save, t_warm_register,
          t_warm_query;
      {
        queryer::QueryEngine cold(persist_options(data_dir));
        queryer::Stopwatch watch;
        queryer::Status status = cold.RegisterCsvFile(csv_path, "dsd");
        t_cold_register = watch.ElapsedSeconds();
        if (!status.ok()) {
          std::fprintf(stderr, "RegisterCsvFile failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        watch.Restart();
        queryer::QueryResult result = MustExecute(&cold, sql);
        t_cold_query = watch.ElapsedSeconds();
        cold_comparisons = result.stats.comparisons_executed;
        rows = result.rows.size();
        watch.Restart();
        status = cold.SaveSnapshots();
        t_save = watch.ElapsedSeconds();
        if (!status.ok()) {
          std::fprintf(stderr, "SaveSnapshots failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
      }  // Cold engine gone; the warm arm sees only the snapshot files.
      {
        queryer::QueryEngine warm(persist_options(data_dir));
        queryer::Stopwatch watch;
        queryer::Status status = warm.RegisterTableFromSnapshots("dsd");
        t_warm_register = watch.ElapsedSeconds();
        if (!status.ok()) {
          std::fprintf(stderr, "RegisterTableFromSnapshots failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        watch.Restart();
        queryer::QueryResult result = MustExecute(&warm, sql);
        t_warm_query = watch.ElapsedSeconds();
        warm_comparisons = result.stats.comparisons_executed;
        if (result.rows.size() != rows) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: warm restart answered %zu "
                       "rows, cold engine %zu\n",
                       result.rows.size(), rows);
          mismatch = true;
        }
        if (warm_comparisons != 0) {
          std::fprintf(stderr,
                       "PERSISTENCE VIOLATION: warm restart re-executed "
                       "%zu comparisons (want 0)\n",
                       warm_comparisons);
          mismatch = true;
        }
      }
      if (rep == 0 || t_cold_register < cold_register) {
        cold_register = t_cold_register;
      }
      if (rep == 0 || t_cold_query < cold_query) cold_query = t_cold_query;
      if (rep == 0 || t_save < save) save = t_save;
      if (rep == 0 || t_warm_register < warm_register) {
        warm_register = t_warm_register;
      }
      if (rep == 0 || t_warm_query < warm_query) warm_query = t_warm_query;
    }
    std::printf(
        "%-10s %10zu %12s %12s %12s %12s  (cold: register+query+save; "
        "warm: register+query, %zu -> %zu comparisons)\n",
        "restart", rows, queryer::FormatDouble(cold_register, 4).c_str(),
        queryer::FormatDouble(cold_query, 4).c_str(),
        queryer::FormatDouble(warm_register, 4).c_str(),
        queryer::FormatDouble(warm_query, 4).c_str(), cold_comparisons,
        warm_comparisons);
    CsvLine("streaming_latency",
            {"restart", std::to_string(rows),
             queryer::FormatDouble(cold_register, 5),
             queryer::FormatDouble(cold_query, 5),
             queryer::FormatDouble(save, 5),
             queryer::FormatDouble(warm_register, 5),
             queryer::FormatDouble(warm_query, 5),
             std::to_string(cold_comparisons),
             std::to_string(warm_comparisons)});
    JsonLine(
        "streaming_latency",
        {{"query", "restart_dedup"},
         {"rows", std::to_string(rows)},
         {"cold_register_seconds", queryer::FormatDouble(cold_register, 5)},
         {"cold_query_seconds", queryer::FormatDouble(cold_query, 5)},
         {"snapshot_save_seconds", queryer::FormatDouble(save, 5)},
         {"warm_register_seconds", queryer::FormatDouble(warm_register, 5)},
         {"warm_query_seconds", queryer::FormatDouble(warm_query, 5)},
         {"cold_comparisons", std::to_string(cold_comparisons)},
         {"warm_comparisons", std::to_string(warm_comparisons)}});
    std::filesystem::remove_all(dir, ec);
  }
  return mismatch ? 1 : 0;
}
