// Streaming-session latency bench: time-to-first-batch (TTFB) vs
// time-to-last-batch (TTLB) of the Prepare/Open/Next cursor API, against
// the materializing Execute wrapper, plus the cost of abandoning a session
// after the first `kAbandonRows` rows (the pagination / early-LIMIT client
// the streaming API exists for).
//
// Pipeline shapes covered: a full table scan (pure streaming — TTFB is one
// batch), a selective fused-filter scan, a hash join (build at Open, probe
// streamed) and a DEDUP selection (resolution happens at Open, grouping
// materializes — TTFB ~ TTLB by design; the number quantifies exactly how
// much of the answer the session must pay for before the first row).
//
// The clock starts BEFORE PreparedQuery::Open, so Open-time work (build
// side drain, ER resolution) is charged to TTFB. Best of `kReps` runs per
// metric; DEDUP runs are cold (fresh engine per rep — the Link Index would
// otherwise turn later reps into lookups).
//
// Exits 1 if the streamed row count ever disagrees with Execute's answer.
// Honors --threads=N / --batch-size=N (see docs/BENCHMARKS.md).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace {

constexpr int kReps = 3;
constexpr std::size_t kAbandonRows = 100;

struct QuerySpec {
  const char* name;
  std::string sql;
  bool dedup;
};

struct Timings {
  double execute_seconds = 0;   // Materializing Execute wrapper.
  double ttfb_seconds = 0;      // Open -> first non-empty batch.
  double ttlb_seconds = 0;      // Open -> end of stream.
  double abandon_seconds = 0;   // Open -> kAbandonRows rows -> Close.
  std::size_t rows = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Streaming sessions: time-to-first-batch vs time-to-last-batch");

  auto dsd = Dsd(Scaled(kDsdRows));
  auto oagp = Oagp(Scaled(kSize500K));
  auto oagv = Oagv(Scaled(kOagvRows));

  const std::vector<QuerySpec> queries = {
      {"scan", "SELECT * FROM oagp", false},
      {"filter5", "SELECT * FROM oagp WHERE MOD(id, 100) < 5", false},
      {"join",
       "SELECT * FROM oagp INNER JOIN oagv ON oagp.venue = oagv.title",
       false},
      {"dedup_q2", "SELECT DEDUP title, venue FROM dsd "
                   "WHERE MOD(id, 100) < 20", true},
  };

  auto make_engine = [&]() {
    queryer::EngineOptions options;
    options.num_threads = Threads();
    if (BatchSize() != 0) options.batch_size = BatchSize();
    options.trace_sink = BenchTraceSink();
    auto engine = std::make_unique<queryer::QueryEngine>(options);
    for (const auto& table : {dsd.table, oagp.table, oagv.table}) {
      queryer::Status status = engine->RegisterTable(table);
      if (!status.ok()) {
        std::fprintf(stderr, "RegisterTable failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
    return engine;
  };

  std::printf("%-10s %10s %12s %12s %12s %12s\n", "query", "rows",
              "execute(s)", "ttfb(s)", "ttlb(s)", "abandon(s)");
  bool mismatch = false;
  for (const QuerySpec& query : queries) {
    Timings best;
    for (int rep = 0; rep < kReps; ++rep) {
      Timings t;

      // Materializing wrapper (its own engine when DEDUP, so every arm of
      // this rep starts from an equally cold Link Index).
      auto execute_engine = make_engine();
      {
        queryer::Stopwatch watch;
        queryer::QueryResult result = MustExecute(execute_engine.get(),
                                                  query.sql);
        t.execute_seconds = watch.ElapsedSeconds();
        t.rows = result.rows.size();
      }

      // Streaming drain: TTFB + TTLB in one pass.
      auto stream_engine = query.dedup ? make_engine()
                                       : std::move(execute_engine);
      {
        queryer::Stopwatch watch;
        auto cursor = stream_engine->ExecuteStream(query.sql);
        if (!cursor.ok()) {
          std::fprintf(stderr, "ExecuteStream failed: %s\n",
                       cursor.status().ToString().c_str());
          return 1;
        }
        std::size_t rows = 0;
        double first = -1;
        queryer::RowBatch batch((*cursor)->batch_size());
        while (true) {
          auto has = (*cursor)->Next(&batch);
          if (!has.ok()) {
            std::fprintf(stderr, "Next failed: %s\n",
                         has.status().ToString().c_str());
            return 1;
          }
          if (!*has) break;
          if (!batch.empty() && first < 0) first = watch.ElapsedSeconds();
          rows += batch.size();
        }
        t.ttlb_seconds = watch.ElapsedSeconds();
        t.ttfb_seconds = first < 0 ? t.ttlb_seconds : first;
        if (rows != t.rows) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: %s streamed %zu rows, "
                       "Execute returned %zu\n",
                       query.name, rows, t.rows);
          mismatch = true;
        }
      }

      // Early abandonment: first kAbandonRows rows, then Close.
      auto abandon_engine = query.dedup ? make_engine()
                                        : std::move(stream_engine);
      {
        queryer::Stopwatch watch;
        auto cursor = abandon_engine->ExecuteStream(query.sql);
        if (!cursor.ok()) {
          std::fprintf(stderr, "ExecuteStream failed: %s\n",
                       cursor.status().ToString().c_str());
          return 1;
        }
        auto page = (*cursor)->Fetch(kAbandonRows);
        if (!page.ok()) {
          std::fprintf(stderr, "Fetch failed: %s\n",
                       page.status().ToString().c_str());
          return 1;
        }
        (*cursor)->Close();
        t.abandon_seconds = watch.ElapsedSeconds();
      }

      if (rep == 0 || t.execute_seconds < best.execute_seconds) {
        best.execute_seconds = t.execute_seconds;
      }
      if (rep == 0 || t.ttfb_seconds < best.ttfb_seconds) {
        best.ttfb_seconds = t.ttfb_seconds;
      }
      if (rep == 0 || t.ttlb_seconds < best.ttlb_seconds) {
        best.ttlb_seconds = t.ttlb_seconds;
      }
      if (rep == 0 || t.abandon_seconds < best.abandon_seconds) {
        best.abandon_seconds = t.abandon_seconds;
      }
      best.rows = t.rows;
    }

    std::printf("%-10s %10zu %12s %12s %12s %12s\n", query.name, best.rows,
                queryer::FormatDouble(best.execute_seconds, 4).c_str(),
                queryer::FormatDouble(best.ttfb_seconds, 4).c_str(),
                queryer::FormatDouble(best.ttlb_seconds, 4).c_str(),
                queryer::FormatDouble(best.abandon_seconds, 4).c_str());
    CsvLine("streaming_latency",
            {query.name, std::to_string(best.rows),
             queryer::FormatDouble(best.execute_seconds, 5),
             queryer::FormatDouble(best.ttfb_seconds, 5),
             queryer::FormatDouble(best.ttlb_seconds, 5),
             queryer::FormatDouble(best.abandon_seconds, 5)});
    JsonLine("streaming_latency",
             {{"query", query.name},
              {"rows", std::to_string(best.rows)},
              {"execute_seconds",
               queryer::FormatDouble(best.execute_seconds, 5)},
              {"ttfb_seconds", queryer::FormatDouble(best.ttfb_seconds, 5)},
              {"ttlb_seconds", queryer::FormatDouble(best.ttlb_seconds, 5)},
              {"abandon_seconds",
               queryer::FormatDouble(best.abandon_seconds, 5)},
              {"abandon_rows", std::to_string(kAbandonRows)}});
  }

  // Cancel pre-emption: how fast Cancel() issued from another thread tears
  // down a session that is deep inside a cold-LI ER resolution, vs paying
  // for the whole resolution (the dedup TTFB above). The consumer drives
  // the first Next into Open-time resolution; the main thread cancels
  // kCancelAfterMs in, and the poll interval of the comparison loops is
  // what bounds the reaction time reported here.
  {
    constexpr int kCancelAfterMs = 30;
    const std::string sql =
        "SELECT DEDUP title, venue FROM dsd WHERE MOD(id, 100) < 20";
    double best_react = -1;
    const char* outcome = "cancelled";
    for (int rep = 0; rep < kReps; ++rep) {
      auto engine = make_engine();  // Fresh: resolution must be in flight.
      auto cursor = engine->ExecuteStream(sql);
      if (!cursor.ok()) {
        std::fprintf(stderr, "ExecuteStream failed: %s\n",
                     cursor.status().ToString().c_str());
        return 1;
      }
      queryer::Status end_status;
      std::thread consumer([&] {
        queryer::RowBatch batch((*cursor)->batch_size());
        while (true) {
          auto has = (*cursor)->Next(&batch);
          if (!has.ok()) {
            end_status = has.status();
            break;
          }
          if (!*has) break;
        }
      });
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kCancelAfterMs));
      queryer::Stopwatch watch;
      (*cursor)->Cancel();
      consumer.join();
      const double react = watch.ElapsedSeconds();
      (*cursor)->Close();
      if (best_react < 0 || react < best_react) best_react = react;
      // On a machine fast enough to finish resolution inside
      // kCancelAfterMs the session just ends — report that honestly.
      if (end_status.ok()) outcome = "completed";
    }
    std::printf("%-10s %10s %12s %12s %12s %12s  (cancel at %dms -> %s)\n",
                "cancel", "-", "-", "-", "-",
                queryer::FormatDouble(best_react, 4).c_str(), kCancelAfterMs,
                outcome);
    CsvLine("streaming_latency",
            {"cancel_dedup", outcome,
             std::to_string(kCancelAfterMs),
             queryer::FormatDouble(best_react, 5)});
    JsonLine("streaming_latency",
             {{"query", "cancel_dedup"},
              {"outcome", outcome},
              {"cancel_after_ms", std::to_string(kCancelAfterMs)},
              {"cancel_to_termination_seconds",
               queryer::FormatDouble(best_react, 5)}});
  }
  return mismatch ? 1 : 0;
}
