// Paper Fig. 10: scalability over dataset size with a fixed-size random
// selection. The paper uses Q9 = MOD(id, 10) < 1 on 200K..2M rows; to keep
// |QE| fixed while |E| grows (the figure's stated setup) we widen the
// modulus with the table: MOD(id, n / fixed_qe) < 1.
//
// Expected shape: sub-linear growth of both TT and executed comparisons in
// |E| (the comparisons stay within one order of magnitude across a 10x
// size range).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"

namespace {

void RunFamily(const std::string& family, bool people) {
  using namespace queryer::bench;
  const std::size_t sizes[] = {kSize200K, kSize500K, kSize1M, kSize1500K,
                               kSize2M};
  const char* labels[] = {"200K", "500K", "1M", "1.5M", "2M"};
  const std::size_t fixed_qe = Scaled(kSize200K) / 20;  // |QE| of the
                                                        // smallest size.
  for (int i = 0; i < 5; ++i) {
    std::size_t rows = Scaled(sizes[i]) / 2;
    auto dataset = people ? Ppl(rows, {}) : Oagp(rows);
    std::size_t modulus = rows / fixed_qe;
    if (modulus == 0) modulus = 1;
    std::string sql = "SELECT DEDUP " + dataset.table->schema().name(1) +
                      " FROM " + dataset.table->name() + " WHERE MOD(id, " +
                      std::to_string(modulus) + ") < 1";

    queryer::QueryEngine engine =
        MakeEngine({dataset.table}, queryer::ExecutionMode::kAdvanced);
    queryer::QueryResult result = MustExecute(&engine, sql);

    std::printf("%-6s |E|=%-7zu |QE|=%-6zu TT=%8ss comparisons=%zu\n",
                (family + labels[i]).c_str(), rows,
                result.stats.query_entities,
                queryer::FormatDouble(result.stats.total_seconds, 3).c_str(),
                result.stats.comparisons_executed);
    CsvLine("fig10",
            {family, labels[i], std::to_string(rows),
             std::to_string(result.stats.query_entities),
             queryer::FormatDouble(result.stats.total_seconds, 4),
             std::to_string(result.stats.comparisons_executed),
             std::to_string(Threads())});
    JsonLine("fig10",
             {{"family", family},
              {"size", labels[i]},
              {"rows", std::to_string(rows)},
              {"query_entities", std::to_string(result.stats.query_entities)},
              {"total_seconds",
               queryer::FormatDouble(result.stats.total_seconds, 4)},
              {"comparisons",
               std::to_string(result.stats.comparisons_executed)}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace queryer::bench;
  InitBenchArgs(&argc, argv);
  Banner("Fig. 10: scalability with fixed |QE| over growing |E| (Q9)");
  std::printf("engine threads: %zu\n", Threads());
  RunFamily("PPL", /*people=*/true);
  RunFamily("OAGP", /*people=*/false);
  std::printf(
      "\nShape to verify: comparisons stay in the same order of magnitude "
      "while |E| grows 10x (sub-linear scaling, paper Fig. 10).\n");
  return 0;
}
