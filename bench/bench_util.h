// Shared infrastructure for the experiment harnesses (one binary per paper
// table/figure — see DESIGN.md Sec. 4).
//
// Dataset sizes default to 1/20 of the paper's (DESIGN.md Sec. 5) and scale
// with the QUERYER_BENCH_SCALE environment variable (e.g. 20 reproduces the
// paper's absolute sizes, 0.2 gives a smoke run). Every harness prints
// aligned human-readable tables plus machine-readable "CSV," lines.

#ifndef QUERYER_BENCH_BENCH_UTIL_H_
#define QUERYER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "datagen/orgs.h"
#include "datagen/people.h"
#include "datagen/scholarly.h"
#include "engine/query_engine.h"

namespace queryer::bench {

/// Scale multiplier from QUERYER_BENCH_SCALE (default 1.0).
double Scale();

/// base * Scale(), at least 100.
std::size_t Scaled(std::size_t base);

/// Worker-thread count for engines built by MakeEngine. Set by a
/// `--threads=N` argument (see InitBenchArgs) or the QUERYER_BENCH_THREADS
/// environment variable; defaults to 1 (sequential). A value of 0 is
/// accepted as "hardware concurrency" and resolved to the actual worker
/// count before it is ever returned or reported.
std::size_t Threads();

/// Overrides the thread count programmatically (sweep harnesses).
void SetThreads(std::size_t threads);

/// True when the thread count was set explicitly (--threads,
/// QUERYER_BENCH_THREADS or SetThreads) rather than defaulted to 1.
/// Sweep harnesses use this to honor an explicit --threads=N — including
/// N = 1 — as the maximum sweep point.
bool ThreadsExplicit();

/// RowBatch capacity for engines built by MakeEngine. Set by a
/// `--batch-size=N` argument or the QUERYER_BENCH_BATCH_SIZE environment
/// variable; 0 (the default) keeps the engine's default capacity.
std::size_t BatchSize();

/// Overrides the batch size programmatically (sweep harnesses).
void SetBatchSize(std::size_t batch_size);

/// Session trace sink shared by every engine MakeEngine builds. Non-null
/// only after InitBenchArgs saw a `--trace-out=FILE` argument; the Chrome
/// trace-event JSON is written to FILE at process exit (load it in
/// https://ui.perfetto.dev). Null = tracing off, zero overhead.
std::shared_ptr<TraceSink> BenchTraceSink();

/// Parses the shared bench flags (`--threads=N`, `--batch-size=N`,
/// `--trace-out=FILE`, `--metrics-out=FILE`) out of argv. `--trace-out`
/// records a session trace (see BenchTraceSink); `--metrics-out` dumps the
/// process-wide metrics registry as JSON at exit. Unrecognized arguments
/// are left in place and argc/argv are compacted, so harnesses with their
/// own flag parsing can run this first.
void InitBenchArgs(int* argc, char** argv);

// Baseline (scale = 1.0) dataset sizes: paper size / 20.
inline constexpr std::size_t kDsdRows = 3344;    // Paper: 66,879.
inline constexpr std::size_t kOaoRows = 2773;    // Paper: 55,464.
inline constexpr std::size_t kOapRows = 25000;   // Paper: 500K.
inline constexpr std::size_t kOagvRows = 6500;   // Paper: 130K.
inline constexpr std::size_t kSize200K = 10000;  // Paper: 200K.
inline constexpr std::size_t kSize500K = 25000;  // Paper: 500K.
inline constexpr std::size_t kSize1M = 50000;    // Paper: 1M.
inline constexpr std::size_t kSize1500K = 75000; // Paper: 1.5M.
inline constexpr std::size_t kSize2M = 100000;   // Paper: 2M.

/// Deterministic dataset factories (seeds fixed per dataset family).
datagen::GeneratedDataset Dsd(std::size_t rows);
datagen::GeneratedDataset Oao(std::size_t rows);
datagen::GeneratedDataset Oap(std::size_t rows,
                              const std::vector<std::string>& org_pool);
datagen::GeneratedDataset Ppl(std::size_t rows,
                              const std::vector<std::string>& org_pool);
datagen::GeneratedDataset Oagp(std::size_t rows);
datagen::GeneratedDataset Oagv(std::size_t rows);
const std::vector<datagen::VenueUniverseEntry>& Universe();

/// Engine over the given tables with the engine-default ER configuration.
QueryEngine MakeEngine(const std::vector<TablePtr>& tables,
                       ExecutionMode mode,
                       const MetaBlockingConfig& meta_blocking = {},
                       bool collect_comparisons = false);

/// The Q1..Q5 selectivity ladder of the paper's SP experiments (~5%..80%).
inline constexpr int kSelectivities[] = {5, 20, 35, 50, 80};

/// "SELECT DEDUP <projection> FROM <table> WHERE MOD(id, 100) < <pct>" —
/// a uniformly random selection of ~pct% of the table.
std::string SelectivityQuery(const std::string& table, int percent,
                             const std::string& projection);

/// Entity ids selected by MOD(id, 100) < percent (for PC measurement).
std::vector<EntityId> SelectedIds(const Table& table, int percent);

/// Runs one query, aborting the bench on failure.
QueryResult MustExecute(QueryEngine* engine, const std::string& sql);

/// Machine-readable output line: "CSV,<bench>,<f1>,<f2>,...".
void CsvLine(const std::string& bench, const std::vector<std::string>& fields);

/// Machine-readable JSON line: {"bench":"<bench>","threads":N,...}. The
/// thread count is always included; values that parse as numbers are
/// emitted unquoted.
void JsonLine(const std::string& bench,
              const std::vector<std::pair<std::string, std::string>>& fields);

/// Section banner.
void Banner(const std::string& title);

}  // namespace queryer::bench

#endif  // QUERYER_BENCH_BENCH_UTIL_H_
