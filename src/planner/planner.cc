#include "planner/planner.h"

#include <algorithm>

#include "common/string_util.h"

namespace queryer {

namespace {

// Flattens an AND tree into its conjuncts.
void CollectConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind() == ExprKind::kAnd) {
    CollectConjuncts(*expr.children()[0], out);
    CollectConjuncts(*expr.children()[1], out);
    return;
  }
  out->push_back(&expr);
}

ExprPtr ConjunctionOf(ExprPtr lhs, ExprPtr rhs) {
  if (lhs == nullptr) return rhs;
  if (rhs == nullptr) return lhs;
  return Expr::And(std::move(lhs), std::move(rhs));
}

}  // namespace

std::string_view PlannerModeToString(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kNaive: return "NES";
    case PlannerMode::kNaive2: return "NES2";
    case PlannerMode::kAdvanced: return "AES";
  }
  return "?";
}

Result<std::vector<Planner::BoundTable>> Planner::BindTables(
    const SelectStatement& stmt) {
  std::vector<BoundTable> tables;
  auto add_table = [&](const TableRef& ref) -> Status {
    for (const BoundTable& existing : tables) {
      if (EqualsIgnoreCase(existing.ref.alias, ref.alias)) {
        return Status::PlanError("duplicate table alias: " + ref.alias);
      }
    }
    QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                             FindRuntime(*runtimes_, ref.name));
    tables.push_back({ref, std::move(runtime), nullptr});
    return Status::OK();
  };
  QUERYER_RETURN_NOT_OK(add_table(stmt.from));
  for (const JoinSpec& join : stmt.joins) {
    QUERYER_RETURN_NOT_OK(add_table(join.table));
  }
  return tables;
}

Result<std::string> Planner::ResolveAlias(
    const Expr& column, const std::vector<BoundTable>& tables) {
  if (column.kind() != ExprKind::kColumn) {
    return Status::PlanError("expected column reference, got " +
                             column.ToString());
  }
  if (!column.table().empty()) {
    for (const BoundTable& table : tables) {
      if (EqualsIgnoreCase(table.ref.alias, column.table())) {
        return table.ref.alias;
      }
    }
    return Status::PlanError("unknown table alias: " + column.table());
  }
  std::string found;
  for (const BoundTable& table : tables) {
    if (table.runtime->table().schema().IndexOf(column.column()).has_value()) {
      if (!found.empty()) {
        return Status::PlanError("ambiguous column: " + column.column());
      }
      found = table.ref.alias;
    }
  }
  if (found.empty()) {
    return Status::PlanError("unknown column: " + column.column());
  }
  return found;
}

Status Planner::SplitWhere(const Expr* where, std::vector<BoundTable>* tables,
                           std::vector<JoinSpec>* extra_joins) {
  if (where == nullptr) return Status::OK();
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*where, &conjuncts);

  for (const Expr* conjunct : conjuncts) {
    // An equality between two column refs is a WHERE-style equijoin.
    if (conjunct->kind() == ExprKind::kCompare &&
        conjunct->compare_op() == CompareOp::kEq &&
        conjunct->children()[0]->kind() == ExprKind::kColumn &&
        conjunct->children()[1]->kind() == ExprKind::kColumn) {
      QUERYER_ASSIGN_OR_RETURN(std::string left_alias,
                               ResolveAlias(*conjunct->children()[0], *tables));
      QUERYER_ASSIGN_OR_RETURN(std::string right_alias,
                               ResolveAlias(*conjunct->children()[1], *tables));
      if (!EqualsIgnoreCase(left_alias, right_alias)) {
        JoinSpec join;
        for (const BoundTable& table : *tables) {
          if (EqualsIgnoreCase(table.ref.alias, right_alias)) {
            join.table = table.ref;
          }
        }
        join.left_key = conjunct->children()[0]->Clone();
        join.right_key = conjunct->children()[1]->Clone();
        extra_joins->push_back(std::move(join));
        continue;
      }
      // Same-table column equality is an ordinary per-table predicate.
    }

    // Classify by the set of referenced tables.
    std::vector<const Expr*> columns;
    conjunct->CollectColumns(&columns);
    std::string owner;
    for (const Expr* column : columns) {
      QUERYER_ASSIGN_OR_RETURN(std::string alias,
                               ResolveAlias(*column, *tables));
      if (owner.empty()) {
        owner = alias;
      } else if (!EqualsIgnoreCase(owner, alias)) {
        return Status::NotImplemented(
            "predicate spans multiple tables (not an equijoin): " +
            conjunct->ToString());
      }
    }
    if (owner.empty()) {
      return Status::NotImplemented("constant predicate: " +
                                    conjunct->ToString());
    }
    for (BoundTable& table : *tables) {
      if (EqualsIgnoreCase(table.ref.alias, owner)) {
        table.predicate =
            ConjunctionOf(std::move(table.predicate), conjunct->Clone());
      }
    }
  }
  return Status::OK();
}

Result<PlanPtr> Planner::BuildPlan(const SelectStatement& stmt,
                                   PlannerMode mode) {
  QUERYER_ASSIGN_OR_RETURN(std::vector<BoundTable> tables, BindTables(stmt));
  std::vector<JoinSpec> joins;
  for (const JoinSpec& join : stmt.joins) {
    JoinSpec copy;
    copy.table = join.table;
    copy.left_key = join.left_key->Clone();
    copy.right_key = join.right_key->Clone();
    joins.push_back(std::move(copy));
  }
  QUERYER_RETURN_NOT_OK(SplitWhere(stmt.where.get(), &tables, &joins));

  if (!stmt.dedup) {
    return BuildPlainPlan(stmt, std::move(tables), std::move(joins));
  }
  return BuildDedupPlan(stmt, std::move(tables), std::move(joins), mode);
}

PlanPtr Planner::BuildBranch(const BoundTable& table, PlannerMode mode,
                             bool deduplicate) {
  PlanPtr plan = LogicalPlan::Scan(table.ref.name, table.ref.alias);
  if (!deduplicate) {
    if (table.predicate != nullptr) {
      plan = LogicalPlan::Filter(std::move(plan), table.predicate->Clone());
    }
    return plan;
  }
  if (mode == PlannerMode::kNaive) {
    // Fig. 5: Deduplicate above the scan; predicate applied group-aware.
    plan = LogicalPlan::Deduplicate(std::move(plan), table.ref.name,
                                    table.ref.alias);
    if (table.predicate != nullptr) {
      plan = LogicalPlan::GroupFilter(std::move(plan), table.predicate->Clone());
    }
    return plan;
  }
  // Figs. 6-8: Filter first so only |QE| entities feed the ER pipeline.
  if (table.predicate != nullptr) {
    plan = LogicalPlan::Filter(std::move(plan), table.predicate->Clone());
  }
  return LogicalPlan::Deduplicate(std::move(plan), table.ref.name,
                                  table.ref.alias);
}

Result<PlanPtr> Planner::ApplyProjection(const SelectStatement& stmt,
                                         PlanPtr plan) {
  if (stmt.select_star) return plan;
  // Validate select-list references at plan time, so unknown or ambiguous
  // columns fail before any ER work happens.
  QUERYER_ASSIGN_OR_RETURN(std::vector<BoundTable> tables, BindTables(stmt));
  std::vector<SelectItem> items;
  items.reserve(stmt.items.size());
  for (const SelectItem& item : stmt.items) {
    std::vector<const Expr*> columns;
    item.expr->CollectColumns(&columns);
    for (const Expr* column : columns) {
      QUERYER_RETURN_NOT_OK(ResolveAlias(*column, tables).status());
    }
    items.push_back({item.expr->Clone(), item.alias});
  }
  return LogicalPlan::Project(std::move(plan), std::move(items));
}

Result<PlanPtr> Planner::BuildPlainPlan(const SelectStatement& stmt,
                                        std::vector<BoundTable> tables,
                                        std::vector<JoinSpec> joins) {
  if (joins.size() + 1 < tables.size()) {
    return Status::NotImplemented("cross joins are not supported");
  }
  PlanPtr plan = BuildBranch(tables[0], PlannerMode::kNaive2, false);
  // Left-deep join chain in statement order.
  for (std::size_t i = 1; i < tables.size(); ++i) {
    const BoundTable& table = tables[i];
    // Find the join spec that connects this table.
    JoinSpec* spec = nullptr;
    for (JoinSpec& candidate : joins) {
      if (EqualsIgnoreCase(candidate.table.alias, table.ref.alias)) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      return Status::PlanError("no join condition for table " +
                               table.ref.alias);
    }
    // Orient keys: right key must reference the newly joined table.
    ExprPtr left_key = spec->left_key->Clone();
    ExprPtr right_key = spec->right_key->Clone();
    QUERYER_ASSIGN_OR_RETURN(std::string right_alias,
                             ResolveAlias(*right_key, tables));
    if (!EqualsIgnoreCase(right_alias, table.ref.alias)) {
      std::swap(left_key, right_key);
    }
    PlanPtr branch = BuildBranch(table, PlannerMode::kNaive2, false);
    plan = LogicalPlan::HashJoin(std::move(plan), std::move(branch),
                                 std::move(left_key), std::move(right_key));
  }
  return ApplyProjection(stmt, std::move(plan));
}

Result<PlanPtr> Planner::BuildDedupPlan(const SelectStatement& stmt,
                                        std::vector<BoundTable> tables,
                                        std::vector<JoinSpec> joins,
                                        PlannerMode mode) {
  if (joins.size() + 1 < tables.size()) {
    return Status::NotImplemented("cross joins are not supported");
  }

  PlanPtr plan;
  if (tables.size() == 1) {
    // SP query: straightforward placement (paper Sec. 7.2.1(ii)).
    plan = BuildBranch(tables[0], mode, true);
  } else {
    // SPJ: resolve the first two branches per mode, then fold the remaining
    // tables left-deep (each new table is the dirty side under AES).
    for (std::size_t i = 1; i < tables.size(); ++i) {
      const BoundTable& table = tables[i];
      JoinSpec* spec = nullptr;
      for (JoinSpec& candidate : joins) {
        if (EqualsIgnoreCase(candidate.table.alias, table.ref.alias)) {
          spec = &candidate;
          break;
        }
      }
      if (spec == nullptr) {
        return Status::PlanError("no join condition for table " +
                                 table.ref.alias);
      }
      ExprPtr left_key = spec->left_key->Clone();
      ExprPtr right_key = spec->right_key->Clone();
      QUERYER_ASSIGN_OR_RETURN(std::string right_alias,
                               ResolveAlias(*right_key, tables));
      if (!EqualsIgnoreCase(right_alias, table.ref.alias)) {
        std::swap(left_key, right_key);
      }

      if (mode != PlannerMode::kAdvanced) {
        // NES / NES2: both sides resolved independently, clean join.
        if (plan == nullptr) plan = BuildBranch(tables[0], mode, true);
        PlanPtr branch = BuildBranch(table, mode, true);
        plan = LogicalPlan::DedupJoin(std::move(plan), std::move(branch),
                                      std::move(left_key), std::move(right_key),
                                      DirtySide::kNone, "", "");
        continue;
      }

      // AES: deduplicate the branch with the lower estimated comparison
      // count first; the other side resolves inside the Deduplicate-Join.
      //
      // Safety note (deviation from the paper's Fig. 8, see DESIGN.md): the
      // dirty branch always enters the join *unfiltered*, and its predicate
      // is applied duplicate-group-aware above the join. Filtering the
      // dirty side before the join-discard (as Alg. 1 applied to Fig. 8
      // implies) loses selected entities whose own join value is corrupted
      // and only joins through a not-yet-discovered duplicate.
      if (plan == nullptr) {
        const BoundTable& first = tables[0];
        // Total cost of each plan: cleaning one branch under its predicate,
        // plus resolving the (unfiltered) dirty side restricted by the
        // join — approximated as join-fraction x full-table cost.
        QUERYER_ASSIGN_OR_RETURN(
            double first_sel_cost,
            statistics_->EstimateComparisons(first.runtime.get(),
                                             first.predicate.get(),
                                             first.ref.alias));
        QUERYER_ASSIGN_OR_RETURN(
            double second_sel_cost,
            statistics_->EstimateComparisons(table.runtime.get(),
                                             table.predicate.get(),
                                             table.ref.alias));
        QUERYER_ASSIGN_OR_RETURN(
            double first_full_cost,
            statistics_->EstimateComparisons(first.runtime.get(), nullptr,
                                             first.ref.alias));
        QUERYER_ASSIGN_OR_RETURN(
            double second_full_cost,
            statistics_->EstimateComparisons(table.runtime.get(), nullptr,
                                             table.ref.alias));
        double jf_second_to_first = statistics_->JoinFraction(
            table.runtime.get(), right_key->column(), first.runtime.get(),
            left_key->column());
        double jf_first_to_second = statistics_->JoinFraction(
            first.runtime.get(), left_key->column(), table.runtime.get(),
            right_key->column());
        double dirty_right_cost =
            first_sel_cost + jf_second_to_first * second_full_cost;
        double dirty_left_cost =
            second_sel_cost + jf_first_to_second * first_full_cost;

        const Expr* dirty_predicate = nullptr;
        if (dirty_right_cost <= dirty_left_cost) {
          // Clean the left branch; right is dirty (Fig. 7, Dirty-Right).
          plan = LogicalPlan::DedupJoin(
              BuildBranch(first, mode, true),
              LogicalPlan::Scan(table.ref.name, table.ref.alias),
              std::move(left_key), std::move(right_key), DirtySide::kRight,
              table.ref.name, table.ref.alias);
          dirty_predicate = table.predicate.get();
        } else {
          // Clean the right branch; left is dirty (Fig. 8, Dirty-Left).
          plan = LogicalPlan::DedupJoin(
              LogicalPlan::Scan(first.ref.name, first.ref.alias),
              BuildBranch(table, mode, true), std::move(left_key),
              std::move(right_key), DirtySide::kLeft, first.ref.name,
              first.ref.alias);
          dirty_predicate = first.predicate.get();
        }
        if (dirty_predicate != nullptr) {
          plan = LogicalPlan::GroupFilter(std::move(plan),
                                          dirty_predicate->Clone());
        }
      } else {
        // The composite left side is already resolved; the new table joins
        // as the dirty right side.
        plan = LogicalPlan::DedupJoin(
            std::move(plan), LogicalPlan::Scan(table.ref.name, table.ref.alias),
            std::move(left_key), std::move(right_key), DirtySide::kRight,
            table.ref.name, table.ref.alias);
        if (table.predicate != nullptr) {
          plan = LogicalPlan::GroupFilter(std::move(plan),
                                          table.predicate->Clone());
        }
      }
    }
  }

  // Group duplicate entities into single records before the final Project.
  plan = LogicalPlan::GroupEntities(std::move(plan));
  return ApplyProjection(stmt, std::move(plan));
}

Result<double> Planner::EstimateBranchComparisons(const SelectStatement& stmt,
                                                  const std::string& alias) {
  QUERYER_ASSIGN_OR_RETURN(std::vector<BoundTable> tables, BindTables(stmt));
  std::vector<JoinSpec> joins;
  QUERYER_RETURN_NOT_OK(SplitWhere(stmt.where.get(), &tables, &joins));
  for (const BoundTable& table : tables) {
    if (EqualsIgnoreCase(table.ref.alias, alias)) {
      return statistics_->EstimateComparisons(table.runtime.get(),
                                              table.predicate.get(),
                                              table.ref.alias);
    }
  }
  return Status::PlanError("unknown alias: " + alias);
}

}  // namespace queryer
