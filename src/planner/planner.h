// QueryER's planner (paper Sec. 7): turns a parsed statement into a logical
// plan under one of three strategies.
//
//  * kNaive  (NES, Fig. 5): Deduplicate directly above each Table Scan; the
//    WHERE predicate becomes a duplicate-group-aware filter above it.
//  * kNaive2 (Fig. 6): Deduplicate above the Filter of each branch, so only
//    the selected entities feed the ER pipeline.
//  * kAdvanced (AES, Figs. 7/8): cost-based — for each join, the branch with
//    the *lower* estimated comparison count is deduplicated first, and the
//    other side is resolved inside a Dirty-Left/Dirty-Right Deduplicate-Join
//    restricted to the entities that actually join.
//
// Non-DEDUP statements compile to plain relational plans regardless of mode.

#ifndef QUERYER_PLANNER_PLANNER_H_
#define QUERYER_PLANNER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/table_runtime.h"
#include "plan/logical_plan.h"
#include "planner/statistics.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace queryer {

enum class PlannerMode { kNaive, kNaive2, kAdvanced };

std::string_view PlannerModeToString(PlannerMode mode);

/// \brief Logical planner over a catalog + runtime registry.
class Planner {
 public:
  Planner(const Catalog* catalog, RuntimeRegistry* runtimes,
          StatisticsCache* statistics)
      : catalog_(catalog), runtimes_(runtimes), statistics_(statistics) {}

  /// Builds the logical plan for a parsed statement.
  Result<PlanPtr> BuildPlan(const SelectStatement& stmt, PlannerMode mode);

  /// Exposed for benches/tests: the estimated comparisons of deduplicating
  /// `alias`'s selection under the statement's WHERE clause.
  Result<double> EstimateBranchComparisons(const SelectStatement& stmt,
                                           const std::string& alias);

 private:
  struct BoundTable {
    TableRef ref;
    std::shared_ptr<TableRuntime> runtime;
    ExprPtr predicate;  // Conjunction of this table's WHERE conjuncts.
  };

  Result<std::vector<BoundTable>> BindTables(const SelectStatement& stmt);
  /// Splits WHERE conjuncts into the per-table predicates of `tables` and
  /// appends WHERE-style equijoins to `extra_joins`.
  Status SplitWhere(const Expr* where, std::vector<BoundTable>* tables,
                    std::vector<JoinSpec>* extra_joins);
  /// Alias owning a column ref (resolving bare names through the schemas).
  Result<std::string> ResolveAlias(const Expr& column,
                                   const std::vector<BoundTable>& tables);

  Result<PlanPtr> BuildPlainPlan(const SelectStatement& stmt,
                                 std::vector<BoundTable> tables,
                                 std::vector<JoinSpec> joins);
  Result<PlanPtr> BuildDedupPlan(const SelectStatement& stmt,
                                 std::vector<BoundTable> tables,
                                 std::vector<JoinSpec> joins, PlannerMode mode);

  /// Scan [+ Filter] [+ Deduplicate / GroupFilter] for one branch.
  PlanPtr BuildBranch(const BoundTable& table, PlannerMode mode,
                      bool deduplicate);

  Result<PlanPtr> ApplyProjection(const SelectStatement& stmt, PlanPtr plan);

  const Catalog* catalog_;
  RuntimeRegistry* runtimes_;
  StatisticsCache* statistics_;
};

}  // namespace queryer

#endif  // QUERYER_PLANNER_PLANNER_H_
