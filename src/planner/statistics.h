// ER-specific statistics of the cost-based planner (paper Sec. 7.2.1):
//
//  * Estimated comparisons of deduplicating a query selection: the selected
//    set is approximated from the WHERE clause's literal blocking keys
//    (falling back to an exact in-memory filter scan for predicates without
//    usable literals, e.g. MOD ranges), its blocks are gathered from the
//    ITBI, Block Purging and Block Filtering are *approximated* on those
//    blocks, and the comparison formula is summed. Estimation deliberately
//    stops before Edge Pruning, whose output is too expensive to predict —
//    the paper terminates at the BF step for the same reason.
//
//  * Duplication factor df: |DR|/|sample| measured by eagerly cleaning a
//    sample at load time, used to predict |DR_E| sizes.
//
//  * Join fraction: percentage of one table's entities whose join key
//    appears in another table, used to predict DR sizes after a join.

#ifndef QUERYER_PLANNER_STATISTICS_H_
#define QUERYER_PLANNER_STATISTICS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exec/table_runtime.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Cached statistics over the registered table runtimes.
///
/// Thread-safe: concurrent query sessions plan simultaneously. The two
/// memoized statistics guard their maps with a mutex; the expensive df
/// sample cleaning computes outside the lock (two sessions racing one cold
/// table may both compute the same deterministic value — harmless — while
/// sessions on other tables are never stalled). The estimation entry
/// points only read the runtime's once-built indices and the internally
/// synchronized Link Index.
class StatisticsCache {
 public:
  /// Sample size for the eager offline cleaning that yields df.
  static constexpr std::size_t kDuplicationSampleSize = 400;

  /// \brief Estimated comparisons for resolving the entities of `runtime`
  /// selected by `predicate` (nullptr = whole table). `alias` is the
  /// qualifier under which the predicate's column refs address this table.
  Result<double> EstimateComparisons(TableRuntime* runtime,
                                     const Expr* predicate,
                                     const std::string& alias);

  /// \brief Duplication factor: estimated |DR_E| / |QE_E| (>= 1).
  double DuplicationFactor(TableRuntime* runtime);

  /// \brief Fraction of `left` entities whose `left_column` join key occurs
  /// in `right`'s `right_column` (in [0, 1]).
  double JoinFraction(TableRuntime* left, const std::string& left_column,
                      TableRuntime* right, const std::string& right_column);

  /// \brief Estimated selected-set size for a predicate (|SE| ≈ |QE|).
  Result<std::size_t> EstimateSelectionSize(TableRuntime* runtime,
                                            const Expr* predicate,
                                            const std::string& alias);

 private:
  Result<std::vector<EntityId>> EstimateSelectedEntities(
      TableRuntime* runtime, const Expr* predicate, const std::string& alias);

  std::mutex mutex_;
  std::map<const TableRuntime*, double> duplication_factor_;
  std::map<std::string, double> join_fraction_;
};

/// \brief The comparison approximation core, exposed for tests and the
/// ablation bench: applies approximate BP + BF over the ITBI blocks of
/// `selected` and evaluates Σ |qb|·(|Sb| − (|qb|+1)/2).
double ApproximateComparisonsAfterMetaBlocking(
    TableRuntime* runtime, const std::vector<EntityId>& selected);

}  // namespace queryer

#endif  // QUERYER_PLANNER_STATISTICS_H_
