#include "planner/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "blocking/block_join.h"
#include "common/string_util.h"
#include "exec/hash_join.h"
#include "exec/table_predicate.h"
#include "metablocking/block_purging.h"

namespace queryer {

namespace {

// Intersection of sorted entity lists.
std::vector<EntityId> IntersectSorted(const std::vector<EntityId>& a,
                                      const std::vector<EntityId>& b) {
  std::vector<EntityId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<EntityId> UnionSorted(const std::vector<EntityId>& a,
                                  const std::vector<EntityId>& b) {
  std::vector<EntityId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// Entities whose blocking keys cover all tokens of `literal` (the paper's
// WB interpretation: each literal token is a blocking key in the TBI).
std::optional<std::vector<EntityId>> EntitiesForLiteral(
    const TableBlockIndex& tbi, const std::string& literal,
    std::size_t min_token_length) {
  std::vector<std::string> tokens = TokenizeAlnum(literal, min_token_length);
  if (tokens.empty()) return std::nullopt;
  std::vector<EntityId> result;
  bool first = true;
  for (const std::string& token : tokens) {
    std::int64_t block = tbi.FindBlock(token);
    if (block < 0) return std::vector<EntityId>{};  // Token matches nothing.
    const auto& entities = tbi.block_entities(static_cast<std::size_t>(block));
    if (first) {
      result = entities;  // Already ascending (row order).
      first = false;
    } else {
      result = IntersectSorted(result, entities);
    }
    if (result.empty()) break;
  }
  return result;
}

// Block-based SE estimation per the paper; nullopt = needs fallback scan.
std::optional<std::vector<EntityId>> TryBlockEstimate(
    const Expr& predicate, const TableBlockIndex& tbi,
    std::size_t min_token_length) {
  switch (predicate.kind()) {
    case ExprKind::kCompare: {
      if (predicate.compare_op() != CompareOp::kEq) return std::nullopt;
      const Expr* column = predicate.children()[0].get();
      const Expr* literal = predicate.children()[1].get();
      if (column->kind() != ExprKind::kColumn) std::swap(column, literal);
      if (column->kind() != ExprKind::kColumn ||
          literal->kind() != ExprKind::kLiteral) {
        return std::nullopt;
      }
      return EntitiesForLiteral(tbi, literal->literal().text, min_token_length);
    }
    case ExprKind::kIn: {
      std::vector<EntityId> result;
      for (std::size_t i = 1; i < predicate.children().size(); ++i) {
        if (predicate.children()[i]->kind() != ExprKind::kLiteral) {
          return std::nullopt;
        }
        auto entities =
            EntitiesForLiteral(tbi, predicate.children()[i]->literal().text,
                               min_token_length);
        if (!entities.has_value()) return std::nullopt;
        result = UnionSorted(result, *entities);
      }
      return result;
    }
    case ExprKind::kLike: {
      // Tokens of the pattern without wildcard-adjacent fragments still act
      // as blocking keys; a superset estimate is fine for costing.
      return EntitiesForLiteral(tbi, predicate.children()[1]->literal().text,
                                min_token_length);
    }
    case ExprKind::kAnd: {
      auto lhs = TryBlockEstimate(*predicate.children()[0], tbi, min_token_length);
      auto rhs = TryBlockEstimate(*predicate.children()[1], tbi, min_token_length);
      if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
      return IntersectSorted(*lhs, *rhs);
    }
    case ExprKind::kOr: {
      auto lhs = TryBlockEstimate(*predicate.children()[0], tbi, min_token_length);
      auto rhs = TryBlockEstimate(*predicate.children()[1], tbi, min_token_length);
      if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
      return UnionSorted(*lhs, *rhs);
    }
    default:
      return std::nullopt;  // Ranges, NOT, MOD: no usable blocking keys.
  }
}

}  // namespace

double ApproximateComparisonsAfterMetaBlocking(
    TableRuntime* runtime, const std::vector<EntityId>& selected) {
  const TableBlockIndex& tbi = runtime->tbi();
  const LinkIndex& li = runtime->link_index();
  const MetaBlockingConfig& config = runtime->meta_blocking_config();

  // SE' = selected \ already-resolved (those cost nothing at query time).
  std::vector<EntityId> fresh;
  fresh.reserve(selected.size());
  for (EntityId e : selected) {
    if (!li.IsResolved(e)) fresh.push_back(e);
  }
  if (fresh.empty()) return 0.0;

  // SB = blocks touched by SE' (approximates the EQBI).
  std::unordered_set<std::uint32_t> touched;
  for (EntityId e : fresh) {
    for (std::uint32_t b : tbi.entity_blocks(e)) touched.insert(b);
  }

  // Approximate Block Purging over SB using full block sizes.
  std::unordered_set<std::uint32_t> purged;
  if (config.block_purging) {
    std::vector<std::size_t> sizes;
    sizes.reserve(touched.size());
    for (std::uint32_t b : touched) sizes.push_back(tbi.block_size(b));
    double threshold = ComputePurgingThresholdFromSizes(
        sizes, config.purging_outlier_factor);
    for (std::uint32_t b : touched) {
      auto n = static_cast<double>(tbi.block_size(b));
      if (n * (n - 1) / 2.0 > threshold) purged.insert(b);
    }
  }

  // Approximate Block Filtering: each entity stays in the first
  // ceil(p * #blocks) of its (ascending pre-sorted) surviving block list.
  std::unordered_map<std::uint32_t, double> qb;
  for (EntityId e : fresh) {
    std::vector<std::uint32_t> surviving;
    for (std::uint32_t b : tbi.entity_blocks(e)) {
      if (purged.count(b) == 0) surviving.push_back(b);
    }
    std::size_t keep = surviving.size();
    if (config.block_filtering && keep > 0) {
      keep = static_cast<std::size_t>(std::ceil(
          config.filtering_ratio * static_cast<double>(surviving.size())));
      keep = std::max<std::size_t>(1, std::min(keep, surviving.size()));
    }
    for (std::size_t i = 0; i < keep; ++i) qb[surviving[i]] += 1.0;
  }

  // C = Σ |qb| * (|Sb| - (|qb| + 1) / 2) over the retained blocks.
  double comparisons = 0;
  for (const auto& [block, q] : qb) {
    auto size = static_cast<double>(tbi.block_size(block));
    double c = q * (size - (q + 1) / 2.0);
    if (c > 0) comparisons += c;
  }
  return comparisons;
}

Result<std::vector<EntityId>> StatisticsCache::EstimateSelectedEntities(
    TableRuntime* runtime, const Expr* predicate, const std::string& alias) {
  const Table& table = runtime->table();
  if (predicate == nullptr) {
    std::vector<EntityId> all(table.num_rows());
    for (EntityId e = 0; e < table.num_rows(); ++e) all[e] = e;
    return all;
  }

  auto block_based =
      TryBlockEstimate(*predicate, runtime->tbi(),
                       runtime->blocking_options().min_token_length);
  if (block_based.has_value()) return std::move(*block_based);

  // Fallback: exact in-memory filter scan (cheap relative to resolution).
  ExprPtr bound = predicate->Clone();
  std::vector<std::string> columns;
  columns.reserve(table.num_attributes());
  for (const std::string& name : table.schema().names()) {
    columns.push_back(alias + "." + name);
  }
  QUERYER_RETURN_NOT_OK(bound->Bind(columns));
  // Single-column predicates compile to a per-dictionary-code truth table
  // (same machinery as the scan's fused filter); everything else evaluates
  // against a zero-copy table reference per row.
  TablePredicate compiled(bound.get(), &table);
  std::vector<EntityId> selected;
  for (EntityId e = 0; e < table.num_rows(); ++e) {
    if (compiled.Matches(e)) selected.push_back(e);
  }
  return selected;
}

Result<double> StatisticsCache::EstimateComparisons(TableRuntime* runtime,
                                                    const Expr* predicate,
                                                    const std::string& alias) {
  QUERYER_ASSIGN_OR_RETURN(std::vector<EntityId> selected,
                           EstimateSelectedEntities(runtime, predicate, alias));
  return ApproximateComparisonsAfterMetaBlocking(runtime, selected);
}

Result<std::size_t> StatisticsCache::EstimateSelectionSize(
    TableRuntime* runtime, const Expr* predicate, const std::string& alias) {
  QUERYER_ASSIGN_OR_RETURN(std::vector<EntityId> selected,
                           EstimateSelectedEntities(runtime, predicate, alias));
  return selected.size();
}

double StatisticsCache::DuplicationFactor(TableRuntime* runtime) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = duplication_factor_.find(runtime);
    if (it != duplication_factor_.end()) return it->second;
  }
  // Compute outside the lock: the sample cleaning is a whole ER run, and
  // holding the cache mutex across it would stall sessions planning
  // against other (disjoint) tables. Two sessions racing the same cold
  // table may both compute; the value is deterministic, so the double
  // work is harmless and the second insert is a no-op.

  const Table& table = runtime->table();
  const std::size_t n = table.num_rows();
  if (n == 0) return 1.0;
  std::size_t sample_size = std::min(kDuplicationSampleSize, n);
  std::size_t stride = std::max<std::size_t>(1, n / sample_size);
  std::vector<EntityId> sample;
  for (std::size_t i = 0; i < n && sample.size() < sample_size; i += stride) {
    sample.push_back(static_cast<EntityId>(i));
  }

  // Eagerly clean the sample on a scratch link index (the main LI must not
  // learn these links — df is an offline statistic).
  QueryBlockIndex qbi =
      QueryBlockIndex::Build(table, sample, runtime->blocking_options());
  BlockCollection enriched = BlockJoin(qbi, runtime->tbi());
  MetaBlockingResult refined =
      RunMetaBlocking(std::move(enriched), runtime->meta_blocking_config(),
                      runtime->thread_pool());
  LinkIndex scratch(n);
  // Offline statistic with no cancel context: failure is impossible here
  // outside injected chaos, and an injected one just degrades the sample
  // to whatever was linked before the failure.
  (void)ExecuteComparisons(table, refined.comparisons,
                           runtime->matching_config(), &scratch,
                           &runtime->attribute_weights());
  std::set<EntityId> dr;
  for (EntityId e : sample) {
    for (EntityId member : scratch.Cluster(e)) dr.insert(member);
  }
  double df = static_cast<double>(dr.size()) /
              static_cast<double>(sample.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    duplication_factor_[runtime] = df;
  }
  return df;
}

double StatisticsCache::JoinFraction(TableRuntime* left,
                                     const std::string& left_column,
                                     TableRuntime* right,
                                     const std::string& right_column) {
  std::string cache_key = left->table().name() + "." + ToLower(left_column) +
                          "|" + right->table().name() + "." +
                          ToLower(right_column);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = join_fraction_.find(cache_key);
  if (it != join_fraction_.end()) return it->second;

  auto left_idx = left->table().schema().IndexOf(left_column);
  auto right_idx = right->table().schema().IndexOf(right_column);
  if (!left_idx.has_value() || !right_idx.has_value() ||
      left->table().num_rows() == 0) {
    join_fraction_[cache_key] = 0.0;
    return 0.0;
  }

  // Canonicalize once per distinct dictionary value, then count per-row
  // membership by code — every dictionary entry occurs in at least one row,
  // so the key sets match the old per-row loops exactly.
  const ColumnView right_col = right->table().column(*right_idx);
  const Dictionary& right_dict = right_col.dictionary();
  std::unordered_set<std::string> right_keys;
  right_keys.reserve(right_dict.size());
  for (DictCode c = 0; c < right_dict.size(); ++c) {
    const std::string_view value = right_dict.value(c);
    if (!value.empty()) right_keys.insert(CanonicalJoinKey(value));
  }
  const ColumnView left_col = left->table().column(*left_idx);
  const Dictionary& left_dict = left_col.dictionary();
  std::vector<std::uint8_t> code_joins(left_dict.size(), 0);
  for (DictCode c = 0; c < left_dict.size(); ++c) {
    const std::string_view value = left_dict.value(c);
    code_joins[c] =
        !value.empty() && right_keys.count(CanonicalJoinKey(value)) > 0;
  }
  std::size_t joining = 0;
  for (const DictCode code : left_col.codes()) joining += code_joins[code];
  double fraction = static_cast<double>(joining) /
                    static_cast<double>(left->table().num_rows());
  join_fraction_[cache_key] = fraction;
  return fraction;
}

}  // namespace queryer
