// Filter: forwards child rows satisfying a bound predicate.

#ifndef QUERYER_EXEC_FILTER_H_
#define QUERYER_EXEC_FILTER_H_

#include "exec/operator.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Relational selection. The predicate must already be bound against
/// the child's output columns.
class FilterOp final : public PhysicalOperator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_FILTER_H_
