// Filter: shrinks each child batch's selection to the rows satisfying a
// bound predicate.

#ifndef QUERYER_EXEC_FILTER_H_
#define QUERYER_EXEC_FILTER_H_

#include "exec/operator.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Relational selection. The predicate must already be bound against
/// the child's output columns.
///
/// Survivors are marked in the batch's selection vector — no row is copied
/// or moved. A batch the predicate empties is forwarded empty (the caller
/// keeps pulling), so one Next call does bounded work. Filters directly
/// above a TableScan are fused into the scan by the executor and never
/// reach this operator.
class FilterOp final : public PhysicalOperator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_FILTER_H_
