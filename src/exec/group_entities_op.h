// The Group-Entities operator (paper Sec. 6.3): groups the rows of a DR
// stream into one record per duplicate group, concatenating the distinct
// attribute variants with " | " (the paper's hyper-entity presentation;
// nulls map to the empty value and are skipped).

#ifndef QUERYER_EXEC_GROUP_ENTITIES_OP_H_
#define QUERYER_EXEC_GROUP_ENTITIES_OP_H_

#include "exec/exec_stats.h"
#include "exec/operator.h"

namespace queryer {

/// \brief Physical Group-Entities operator. Groups child rows by group key
/// (first-appearance order) and emits one fused row per group.
/// `batch_size` sizes the batches draining the child.
class GroupEntitiesOp final : public PhysicalOperator {
 public:
  GroupEntitiesOp(OperatorPtr child, ExecStats* stats,
                  std::size_t batch_size = kDefaultBatchSize);

  Status Open() override;
  Result<bool> Next(RowBatch* batch) override;
  void Close() override;

  /// Separator between grouped value variants.
  static constexpr const char* kVariantSeparator = " | ";

 private:
  OperatorPtr child_;
  ExecStats* stats_;
  std::size_t batch_size_;
  std::vector<Row> output_;
  std::size_t position_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_GROUP_ENTITIES_OP_H_
