// The Group-Entities operator (paper Sec. 6.3): groups the rows of a DR
// stream into one record per duplicate group, concatenating the distinct
// attribute variants with " | " (the paper's hyper-entity presentation;
// nulls map to the empty value and are skipped).

#ifndef QUERYER_EXEC_GROUP_ENTITIES_OP_H_
#define QUERYER_EXEC_GROUP_ENTITIES_OP_H_

#include "exec/exec_stats.h"
#include "exec/operator.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace queryer {

/// \brief Physical Group-Entities operator. Groups child rows by group key
/// (first-appearance order) and emits one fused row per group.
/// `batch_size` sizes the batches draining the child.
///
/// With a multi-worker pool the aggregation runs over morsels: the drained
/// input is cut into fixed-size chunks (kMinMorselRows rows), each
/// aggregated on the pool into a per-worker partial group table that keeps
/// its groups — and each group's attribute variants — in chunk-local
/// first-seen order. The partials are then merged on the coordinator in
/// worker-chunk order, which reproduces the global first-seen order
/// exactly: the output is bit-identical to the sequential aggregation at
/// every thread count (the chunking is fixed-size, so it does not even
/// depend on the pool width).
class GroupEntitiesOp final : public PhysicalOperator {
 public:
  /// `pool` with more than one worker enables the parallel aggregation
  /// (null = sequential); `stats` receives the group timing and the
  /// partial-groups-merged counter; `trace` (may be null) receives the
  /// "group" span.
  GroupEntitiesOp(OperatorPtr child, ExecStats* stats,
                  std::size_t batch_size = kDefaultBatchSize,
                  ThreadPool* pool = nullptr,
                  std::shared_ptr<TraceSink> trace = nullptr);

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

  /// Separator between grouped value variants.
  static constexpr const char* kVariantSeparator = " | ";

 private:
  OperatorPtr child_;
  ExecStats* stats_;
  std::size_t batch_size_;
  ThreadPool* pool_;
  std::shared_ptr<TraceSink> trace_;
  std::vector<Row> output_;
  std::size_t position_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_GROUP_ENTITIES_OP_H_
