// The Deduplicate pipeline (paper Sec. 6.1) as a reusable component:
// Query Blocking -> Block-Join -> Meta-Blocking -> Comparison-Execution,
// consulting and amending the table's Link Index.
//
// Both the Deduplicate operator and the Deduplicate-Join operator (which
// runs the pipeline on its dirty input, Alg. 1 line 5) use this class.

#ifndef QUERYER_EXEC_DEDUPLICATOR_H_
#define QUERYER_EXEC_DEDUPLICATOR_H_

#include <vector>

#include "exec/exec_stats.h"
#include "exec/table_runtime.h"

namespace queryer {

/// \brief Runs the ER pipeline over query selections of one table.
class Deduplicator {
 public:
  /// `pool` parallelizes the comparison-execution stage (null = sequential;
  /// the operators pass the engine's pool through).
  Deduplicator(TableRuntime* runtime, ExecStats* stats,
               ThreadPool* pool = nullptr)
      : runtime_(runtime), stats_(stats), pool_(pool) {}

  /// \brief Resolves `query_entities` against the whole table.
  ///
  /// Entities already resolved by earlier queries are served from the Link
  /// Index; the rest go through the full pipeline, after which they are
  /// marked resolved. Returns DR_E's entity set: the query entities plus
  /// all their discovered duplicates, ascending and distinct.
  std::vector<EntityId> Resolve(const std::vector<EntityId>& query_entities);

 private:
  TableRuntime* runtime_;
  ExecStats* stats_;
  ThreadPool* pool_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_DEDUPLICATOR_H_
