// The Deduplicate pipeline (paper Sec. 6.1) as a reusable component:
// Query Blocking -> Block-Join -> Meta-Blocking -> Comparison-Execution,
// consulting and amending the table's Link Index.
//
// Both the Deduplicate operator and the Deduplicate-Join operator (which
// runs the pipeline on its dirty input, Alg. 1 line 5) use this class.
//
// Two resolution modes:
//
//  * Serial (default): the single-session path — comparisons are checked
//    and links written one by one, exactly the paper's loop.
//
//  * Concurrent (`concurrent_sessions` = true, used by engines whose
//    max_concurrent_queries admits parallel Execute calls): the resolution
//    becomes a transaction against the table's ResolutionCoordinator.
//    Unresolved entities are claimed (entities a concurrent session is
//    already resolving are awaited, not re-resolved), the surviving
//    comparisons are claimed in the comparison-dedup table, evaluated
//    read-only against a shared Link Index snapshot, and the staged links
//    are published in one short exclusive section before the claims are
//    released. See resolution_coordinator.h for the protocol and its
//    deadlock-freedom argument.

#ifndef QUERYER_EXEC_DEDUPLICATOR_H_
#define QUERYER_EXEC_DEDUPLICATOR_H_

#include <vector>

#include "common/cancel_context.h"
#include "common/status.h"
#include "exec/exec_stats.h"
#include "exec/table_runtime.h"
#include "obs/trace.h"

namespace queryer {

/// \brief Runs the ER pipeline over query selections of one table.
class Deduplicator {
 public:
  /// `pool` parallelizes the comparison-execution stage (null = sequential;
  /// the operators pass the engine's pool through). `concurrent_sessions`
  /// selects the transaction protocol above. `trace` (may be null) receives
  /// one span per ER stage; the Deduplicator is used synchronously from one
  /// operator call, so a raw pointer suffices (no straggler tasks hold it).
  /// `cancel` (may be null) is the session's cancellation context, polled
  /// inside comparison execution and between claim-loop iterations so
  /// Cancel() / deadlines pre-empt a long resolution.
  Deduplicator(TableRuntime* runtime, ExecStats* stats,
               ThreadPool* pool = nullptr, bool concurrent_sessions = false,
               TraceSink* trace = nullptr,
               const CancelContext* cancel = nullptr)
      : runtime_(runtime),
        stats_(stats),
        pool_(pool),
        concurrent_sessions_(concurrent_sessions),
        trace_(trace),
        cancel_(cancel) {}

  /// \brief Resolves `query_entities` against the whole table.
  ///
  /// Entities already resolved by earlier queries are served from the Link
  /// Index; the rest go through the full pipeline, after which they are
  /// marked resolved. Returns DR_E's entity set: the query entities plus
  /// all their discovered duplicates, ascending and distinct.
  ///
  /// When `group_keys` is non-null it receives the cluster representative
  /// of every returned entity, captured under the same Link Index snapshot
  /// that determined the membership — an operator must never mix the
  /// returned entity set with representatives read later, or a concurrent
  /// publish between the two reads shears the answer.
  ///
  /// Failure (Cancelled / DeadlineExceeded from the cancel context, or an
  /// injected/internal error) leaves the runtime consistent: every entity
  /// and comparison claim this call took is released or abandoned before
  /// the error returns, and the entities stay unmarked-resolved. The
  /// concurrent path stages its evaluation, so a failed transaction
  /// publishes nothing; the serial path writes links as it matches, so
  /// links found before the failure remain — each is a genuine match, and
  /// the unresolved marks make a later session finish the remainder.
  Result<std::vector<EntityId>> Resolve(
      const std::vector<EntityId>& query_entities,
      std::vector<EntityId>* group_keys = nullptr);

 private:
  Result<std::vector<EntityId>> ResolveSerial(
      const std::vector<EntityId>& query_entities,
      std::vector<EntityId>* group_keys);
  Result<std::vector<EntityId>> ResolveConcurrent(
      const std::vector<EntityId>& query_entities,
      std::vector<EntityId>* group_keys);
  /// Runs the pipeline over this session's claimed entities and publishes
  /// the outcome (the body of one resolution transaction). On failure —
  /// error Status or exception — the entity claims are released WITHOUT
  /// resolved marks, so a waiter adopts and re-resolves them.
  Status ResolveClaimed(const std::vector<EntityId>& claimed);
  /// Staged evaluation + publish + release of comparison pairs this
  /// session owns; abandons them (for waiter adoption) on failure.
  Status EvaluateAndPublishOwned(const std::vector<Comparison>& owned);

  /// Query Blocking -> Block-Join -> Meta-Blocking over `unresolved`,
  /// recording the per-stage timings. Read-only on the runtime.
  std::vector<Comparison> BuildComparisons(
      const std::vector<EntityId>& unresolved);

  TableRuntime* runtime_;
  ExecStats* stats_;
  ThreadPool* pool_;
  bool concurrent_sessions_;
  TraceSink* trace_;
  const CancelContext* cancel_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_DEDUPLICATOR_H_
