// Per-query execution statistics: the measures the paper's evaluation
// reports (executed comparisons, per-stage time breakdown) are collected
// here by the ER operators.

#ifndef QUERYER_EXEC_EXEC_STATS_H_
#define QUERYER_EXEC_EXEC_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metablocking/edge_pruning.h"

namespace queryer {

/// \brief Counters and stage timings of one query execution.
struct ExecStats {
  // Comparison-Execution counters.
  std::size_t comparisons_executed = 0;
  std::size_t comparisons_skipped_linked = 0;
  /// Comparisons left to a concurrent session that had already claimed them
  /// (only non-zero with max_concurrent_queries > 1).
  std::size_t comparisons_skipped_inflight = 0;
  std::size_t matches_found = 0;

  // ER pipeline counters.
  std::size_t query_entities = 0;        // |QE| fed into Deduplicate.
  std::size_t entities_already_resolved = 0;  // Served from the Link Index.
  /// Entities a concurrent session was resolving when this query claimed
  /// its selection (this query waited for them instead of re-resolving).
  std::size_t entities_claimed_elsewhere = 0;
  std::size_t blocks_after_join = 0;     // |EQBI|.
  std::size_t comparisons_after_metablocking = 0;

  // Batch pipeline counters.
  /// Morsels consumed by this session's parallel table scans (0 when every
  /// scan ran sequentially).
  std::size_t morsels_scanned = 0;
  /// Probe morsels consumed by this session's parallel hash-join probes
  /// (0 when every probe ran sequentially).
  std::size_t probe_morsels = 0;
  /// Partial groups merged by parallel Group-Entities aggregations: the
  /// summed group counts of the per-worker partial tables (0 when every
  /// aggregation ran sequentially).
  std::size_t partial_groups_merged = 0;

  // Stage timings (seconds), cumulative over all ER operators of the query.
  double blocking_seconds = 0;      // QBI construction.
  double block_join_seconds = 0;
  double purging_seconds = 0;
  double filtering_seconds = 0;
  double edge_pruning_seconds = 0;
  double resolution_seconds = 0;    // Comparison-Execution.
  double group_seconds = 0;         // Group-Entities.
  double total_seconds = 0;         // Whole query, set by the engine.

  // Relational operator self-times (seconds), folded in from the session's
  // OperatorProfile tree when one was attached (cursor sessions always
  // attach one). Dedup-ish operators are NOT included: their self time is
  // already covered by the ER stage seconds above.
  double scan_seconds = 0;     // TableScan (incl. fused filters).
  double filter_seconds = 0;   // Standalone Filter + GroupFilter.
  double join_seconds = 0;     // HashJoin build + probe.
  double project_seconds = 0;  // Project.

  /// When set, ER operators append every surviving comparison here so the
  /// benches can measure Pair Completeness against ground truth.
  bool collect_comparisons = false;
  std::vector<Comparison> collected_comparisons;

  double meta_blocking_seconds() const {
    return purging_seconds + filtering_seconds + edge_pruning_seconds;
  }
  /// Total of the relational self-times above.
  double relational_seconds() const {
    return scan_seconds + filter_seconds + join_seconds + project_seconds;
  }
  /// Time attributed neither to an ER stage nor to a relational operator
  /// (result materialization, batch bookkeeping, ...). Before the operator
  /// profiles existed this bucket silently swallowed all scan/filter/join/
  /// project time; now those are reported explicitly.
  double other_seconds() const;

  /// Merges another stats object into this one (BA = batch ER + query run).
  void Accumulate(const ExecStats& other);

  std::string ToString() const;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_EXEC_STATS_H_
