#include "exec/table_runtime.h"

#include "common/string_util.h"

namespace queryer {

TableRuntime::TableRuntime(TablePtr table, BlockingOptions blocking,
                           MetaBlockingConfig meta_blocking,
                           MatchingConfig matching)
    : table_(std::move(table)),
      blocking_(std::move(blocking)),
      meta_blocking_(meta_blocking),
      matching_(matching),
      link_index_(table_->num_rows()) {}

const TableBlockIndex& TableRuntime::tbi() {
  if (tbi_ == nullptr) {
    tbi_ = TableBlockIndex::Build(*table_, blocking_, pool_.get());
  }
  return *tbi_;
}

Status TableRuntime::WarmIndices() {
  tbi();
  attribute_weights();
  return Status::OK();
}

const AttributeWeights& TableRuntime::attribute_weights() {
  if (attribute_weights_ == nullptr) {
    attribute_weights_ =
        std::make_unique<AttributeWeights>(AttributeWeights::Compute(*table_));
  }
  return *attribute_weights_;
}

Result<std::shared_ptr<TableRuntime>> FindRuntime(
    const RuntimeRegistry& registry, const std::string& table_name) {
  auto it = registry.find(ToLower(table_name));
  if (it == registry.end()) {
    return Status::NotFound("no runtime for table: " + table_name);
  }
  return it->second;
}

}  // namespace queryer
