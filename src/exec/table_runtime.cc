#include "exec/table_runtime.h"

#include "common/string_util.h"

namespace queryer {

TableRuntime::TableRuntime(TablePtr table, BlockingOptions blocking,
                           MetaBlockingConfig meta_blocking,
                           MatchingConfig matching)
    : table_(std::move(table)),
      blocking_(std::move(blocking)),
      meta_blocking_(meta_blocking),
      matching_(matching),
      link_index_(table_->num_rows()) {}

const TableBlockIndex& TableRuntime::tbi() {
  // Once-guarded cold start: concurrent sessions racing the first DEDUP
  // query (or WarmIndices) all block here while one of them builds.
  std::call_once(tbi_once_, [this] {
    tbi_ = TableBlockIndex::Build(*table_, blocking_, pool_.get());
    tbi_built_.store(true, std::memory_order_release);
  });
  return *tbi_;
}

Status TableRuntime::WarmIndices() {
  tbi();
  attribute_weights();
  return Status::OK();
}

const AttributeWeights& TableRuntime::attribute_weights() {
  std::call_once(weights_once_, [this] {
    attribute_weights_ =
        std::make_unique<AttributeWeights>(AttributeWeights::Compute(*table_));
  });
  return *attribute_weights_;
}

bool TableRuntime::InstallBlockIndex(std::shared_ptr<TableBlockIndex> index) {
  bool installed = false;
  std::call_once(tbi_once_, [&] {
    tbi_ = std::move(index);
    tbi_built_.store(true, std::memory_order_release);
    installed = true;
  });
  return installed;
}

bool TableRuntime::InstallAttributeWeights(AttributeWeights weights) {
  bool installed = false;
  std::call_once(weights_once_, [&] {
    attribute_weights_ =
        std::make_unique<AttributeWeights>(std::move(weights));
    installed = true;
  });
  return installed;
}

Result<std::shared_ptr<TableRuntime>> FindRuntime(
    const RuntimeRegistry& registry, const std::string& table_name) {
  auto it = registry.find(ToLower(table_name));
  if (it == registry.end()) {
    return Status::NotFound("no runtime for table: " + table_name);
  }
  return it->second;
}

}  // namespace queryer
