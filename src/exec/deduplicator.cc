#include "exec/deduplicator.h"

#include <algorithm>

#include "blocking/block_join.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace queryer {


std::vector<Comparison> Deduplicator::BuildComparisons(
    const std::vector<EntityId>& unresolved) {
  // (i) Query Blocking: build the QBI with the table's blocking function.
  Stopwatch watch;
  QueryBlockIndex qbi;
  {
    TraceSpan span(trace_, "blocking", "er");
    qbi = QueryBlockIndex::Build(runtime_->table(), unresolved,
                                 runtime_->blocking_options());
  }
  stats_->blocking_seconds += watch.ElapsedSeconds();

  // (ii) Block-Join against the TBI (built once per table).
  const TableBlockIndex& tbi = runtime_->tbi();
  watch.Restart();
  BlockCollection enriched;
  {
    TraceSpan span(trace_, "block-join", "er");
    enriched = BlockJoin(qbi, tbi);
  }
  stats_->block_join_seconds += watch.ElapsedSeconds();
  stats_->blocks_after_join += enriched.size();

  // (iii) Meta-Blocking: BP -> BF -> EP per the table's configuration. The
  // pool parallelizes the size statistics and the edge weighting; answers
  // are identical at every thread count.
  const MetaBlockingConfig& config = runtime_->meta_blocking_config();
  BlockCollection refined = std::move(enriched);
  if (config.block_purging) {
    watch.Restart();
    TraceSpan span(trace_, "purging", "er");
    refined = BlockPurging(std::move(refined), config.purging_outlier_factor,
                           pool_);
    stats_->purging_seconds += watch.ElapsedSeconds();
  }
  if (config.block_filtering) {
    watch.Restart();
    TraceSpan span(trace_, "filtering", "er");
    refined = BlockFiltering(refined, config.filtering_ratio, pool_);
    stats_->filtering_seconds += watch.ElapsedSeconds();
  }
  std::vector<Comparison> comparisons;
  {
    TraceSpan span(trace_, "edge-pruning", "er");
    watch.Restart();
    if (config.edge_pruning) {
      comparisons = EdgePruning(refined, config.edge_weighting, pool_);
    } else {
      comparisons = DistinctComparisons(refined);
    }
    stats_->edge_pruning_seconds += watch.ElapsedSeconds();
  }
  stats_->comparisons_after_metablocking += comparisons.size();
  if (stats_->collect_comparisons) {
    stats_->collected_comparisons.insert(stats_->collected_comparisons.end(),
                                         comparisons.begin(),
                                         comparisons.end());
  }
  return comparisons;
}

Result<std::vector<EntityId>> Deduplicator::Resolve(
    const std::vector<EntityId>& query_entities,
    std::vector<EntityId>* group_keys) {
  Result<std::vector<EntityId>> result =
      concurrent_sessions_ ? ResolveConcurrent(query_entities, group_keys)
                           : ResolveSerial(query_entities, group_keys);
  if (!result.ok()) {
    const Status status = result.status();
    if (status.IsCancelled() || status.IsDeadlineExceeded()) {
      GlobalEngineMetrics().cancelled_in_resolution->Increment();
    }
    return result;
  }
  // A resolution just appended to the durable link log (if one is
  // attached); compact it when it outgrew the threshold. Outside the Link
  // Index lock by construction, and a compaction failure only defers
  // truncation — the query's answer is unaffected.
  (void)runtime_->MaybeCompactLinkLog();
  return result;
}

Result<std::vector<EntityId>> Deduplicator::ResolveSerial(
    const std::vector<EntityId>& query_entities,
    std::vector<EntityId>* group_keys) {
  LinkIndex& li = runtime_->link_index();
  stats_->query_entities += query_entities.size();

  // Split QE into already-resolved (link-set known) and fresh entities.
  std::vector<EntityId> unresolved;
  unresolved.reserve(query_entities.size());
  for (EntityId e : query_entities) {
    if (li.IsResolved(e)) {
      ++stats_->entities_already_resolved;
    } else {
      unresolved.push_back(e);
    }
  }

  const EngineMetrics& metrics = GlobalEngineMetrics();
  metrics.link_index_hits->Increment(query_entities.size() -
                                     unresolved.size());
  metrics.link_index_misses->Increment(unresolved.size());

  if (!unresolved.empty()) {
    std::vector<Comparison> comparisons = BuildComparisons(unresolved);

    // (iv) Comparison-Execution; amends the Link Index with new links.
    Stopwatch watch;
    TraceSpan span(trace_, "resolution", "er");
    QUERYER_ASSIGN_OR_RETURN(
        ComparisonExecStats exec_stats,
        ExecuteComparisons(runtime_->table(), comparisons,
                           runtime_->matching_config(), &li,
                           &runtime_->attribute_weights(), pool_, cancel_));
    stats_->resolution_seconds += watch.ElapsedSeconds();
    stats_->comparisons_executed += exec_stats.executed;
    stats_->comparisons_skipped_linked += exec_stats.skipped_linked;
    stats_->matches_found += exec_stats.matches_found;
    metrics.comparisons_executed->Increment(exec_stats.executed);
    metrics.comparisons_skipped_linked->Increment(exec_stats.skipped_linked);
    metrics.matches_found->Increment(exec_stats.matches_found);
    span.set_args("\"comparisons\":" + std::to_string(exec_stats.executed) +
                  ",\"matches\":" + std::to_string(exec_stats.matches_found));

    li.MarkResolvedBatch(unresolved);
  }

  // DR_E = QE ∪ duplicates(QE), ascending and distinct.
  std::vector<EntityId> result;
  result.reserve(query_entities.size());  // |DR| >= |QE|; avoids early regrowth.
  for (EntityId e : query_entities) {
    for (EntityId member : li.Cluster(e)) result.push_back(member);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  if (group_keys != nullptr) {
    group_keys->clear();
    group_keys->reserve(result.size());
    for (EntityId e : result) group_keys->push_back(li.Representative(e));
  }
  return result;
}

Status Deduplicator::EvaluateAndPublishOwned(
    const std::vector<Comparison>& owned) {
  LinkIndex& li = runtime_->link_index();
  ResolutionCoordinator& coordinator = runtime_->coordinator();
  // Failures arrive two ways: error Statuses from the evaluation (cancel
  // poll, injected chunk errors) and exceptions (injected publish throws,
  // bad_alloc). Both take the abandon path below.
  Status status;
  try {
    Stopwatch watch;
    TraceSpan span(trace_, "resolution", "er");
    Result<StagedComparisons> staged_result = EvaluateComparisons(
        runtime_->table(), owned, runtime_->matching_config(), li,
        &runtime_->attribute_weights(), pool_, cancel_);
    if (staged_result.ok()) {
      StagedComparisons staged = staged_result.MoveValueUnsafe();
      const std::uint64_t published = li.PublishLinks(staged.matched);
      stats_->comparisons_executed += staged.executed;
      stats_->comparisons_skipped_linked += staged.skipped_linked;
      stats_->matches_found += published;
      stats_->resolution_seconds += watch.ElapsedSeconds();
      const EngineMetrics& metrics = GlobalEngineMetrics();
      metrics.comparisons_executed->Increment(staged.executed);
      metrics.comparisons_skipped_linked->Increment(staged.skipped_linked);
      metrics.matches_found->Increment(published);
      span.set_args("\"comparisons\":" + std::to_string(staged.executed) +
                    ",\"matches\":" + std::to_string(published));
      coordinator.ReleaseComparisons(owned);
      return Status::OK();
    }
    status = staged_result.status();
  } catch (const std::exception& e) {
    status = Status::Internal(e.what());
  } catch (...) {
    status = Status::Internal("non-std exception during comparison publish");
  }
  // Could not publish: park the pairs for a waiter to adopt — a normal
  // release would let that waiter mark its entities resolved on the
  // strength of comparisons nobody ran.
  coordinator.AbandonComparisons(owned);
  return status;
}

Status Deduplicator::ResolveClaimed(const std::vector<EntityId>& claimed) {
  LinkIndex& li = runtime_->link_index();
  ResolutionCoordinator& coordinator = runtime_->coordinator();
  Status status;
  try {
    status = [&]() -> Status {
      std::vector<Comparison> comparisons = BuildComparisons(claimed);

      // (iv) staged: claim the pairs, evaluate them read-only, publish the
      // matches in one exclusive section, then release the pair claims.
      ResolutionCoordinator::ComparisonClaim pairs =
          coordinator.ClaimComparisons(comparisons);
      stats_->comparisons_skipped_inflight += pairs.foreign.size();
      QUERYER_RETURN_NOT_OK(EvaluateAndPublishOwned(pairs.owned));

      // An entity's link-set is complete only once every in-flight
      // comparison that could still link it has been published. Ours just
      // were; the foreign ones are awaited. Pairs whose owner failed before
      // publishing come back adopted and are evaluated right here, so a
      // resolved mark never rests on a comparison that silently vanished.
      std::vector<Comparison> orphans =
          coordinator.AwaitComparisons(pairs.foreign);
      if (!orphans.empty()) {
        stats_->comparisons_skipped_inflight -= orphans.size();
        QUERYER_RETURN_NOT_OK(EvaluateAndPublishOwned(orphans));
      }
      // Monotonic counter: count only the pairs that stayed skipped (adopted
      // orphans were executed after all).
      GlobalEngineMetrics().comparisons_skipped_inflight->Increment(
          pairs.foreign.size() - orphans.size());
      li.MarkResolvedBatch(claimed);
      coordinator.ReleaseEntities(claimed);
      return Status::OK();
    }();
  } catch (const std::exception& e) {
    status = Status::Internal(e.what());
  } catch (...) {
    status = Status::Internal("non-std exception during claimed resolution");
  }
  if (!status.ok()) {
    // Failure path: free the entity claims WITHOUT resolved marks. The
    // entities stay unresolved, so the next session that waits on them
    // re-claims and resolves them itself.
    coordinator.ReleaseEntities(claimed);
  }
  return status;
}

Result<std::vector<EntityId>> Deduplicator::ResolveConcurrent(
    const std::vector<EntityId>& query_entities,
    std::vector<EntityId>* group_keys) {
  LinkIndex& li = runtime_->link_index();
  ResolutionCoordinator& coordinator = runtime_->coordinator();
  stats_->query_entities += query_entities.size();

  // One atomic step: count resolved entities, claim the unresolved ones
  // nobody else is resolving, note the rest as foreign.
  ResolutionCoordinator::EntityClaim claim =
      coordinator.ClaimEntities(query_entities, li);
  stats_->entities_already_resolved += claim.already_resolved;
  stats_->entities_claimed_elsewhere += claim.foreign.size();
  {
    const EngineMetrics& metrics = GlobalEngineMetrics();
    metrics.link_index_hits->Increment(claim.already_resolved);
    metrics.link_index_misses->Increment(query_entities.size() -
                                         claim.already_resolved);
  }

  // Claim loop: resolve what we own, wait for what others own, then
  // re-claim the leftovers — a waited-on entity is only guaranteed
  // *released*, not resolved (its owner may have failed), in which case
  // this session adopts it on the next iteration. Each iteration either
  // finishes every pending entity or adopts from a failed session, so the
  // loop terminates with all query entities resolved (or throws).
  while (!claim.claimed.empty() || !claim.foreign.empty()) {
    // Poll between iterations too: an adopt-and-retry loop must not outlive
    // its session's cancellation. The poll fires while this session may
    // hold entity claims (the initial ClaimEntities or the post-Await
    // re-claim below), and a stranded claim blocks every later
    // AwaitEntities on those entities forever — release before returning.
    if (cancel_ != nullptr) {
      Status poll = cancel_->Check();
      if (!poll.ok()) {
        coordinator.ReleaseEntities(claim.claimed);
        return poll;
      }
    }
    if (!claim.claimed.empty()) {
      QUERYER_RETURN_NOT_OK(ResolveClaimed(claim.claimed));
    }
    if (claim.foreign.empty()) break;
    coordinator.AwaitEntities(claim.foreign);
    claim = coordinator.ClaimEntities(claim.foreign, li);
  }

  // DR_E = QE ∪ duplicates(QE), ascending and distinct. Membership and
  // group keys come from ONE consistent snapshot: reading them separately
  // would let a concurrent publish shear the answer.
  std::vector<EntityId> result;
  result.reserve(query_entities.size());
  {
    LinkIndex::ReadView view = li.SharedSnapshot();
    for (EntityId e : query_entities) {
      for (EntityId member : view.Cluster(e)) result.push_back(member);
    }
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    if (group_keys != nullptr) {
      group_keys->clear();
      group_keys->reserve(result.size());
      for (EntityId e : result) group_keys->push_back(view.Representative(e));
    }
  }
  return result;
}

}  // namespace queryer
