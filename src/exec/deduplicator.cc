#include "exec/deduplicator.h"

#include <algorithm>

#include "blocking/block_join.h"
#include "common/stopwatch.h"

namespace queryer {

std::vector<EntityId> Deduplicator::Resolve(
    const std::vector<EntityId>& query_entities) {
  LinkIndex& li = runtime_->link_index();
  stats_->query_entities += query_entities.size();

  // Split QE into already-resolved (link-set known) and fresh entities.
  std::vector<EntityId> unresolved;
  unresolved.reserve(query_entities.size());
  for (EntityId e : query_entities) {
    if (li.IsResolved(e)) {
      ++stats_->entities_already_resolved;
    } else {
      unresolved.push_back(e);
    }
  }

  if (!unresolved.empty()) {
    // (i) Query Blocking: build the QBI with the table's blocking function.
    Stopwatch watch;
    QueryBlockIndex qbi = QueryBlockIndex::Build(
        runtime_->table(), unresolved, runtime_->blocking_options());
    stats_->blocking_seconds += watch.ElapsedSeconds();

    // (ii) Block-Join against the TBI (built once per table).
    const TableBlockIndex& tbi = runtime_->tbi();
    watch.Restart();
    BlockCollection enriched = BlockJoin(qbi, tbi);
    stats_->block_join_seconds += watch.ElapsedSeconds();
    stats_->blocks_after_join += enriched.size();

    // (iii) Meta-Blocking: BP -> BF -> EP per the table's configuration.
    const MetaBlockingConfig& config = runtime_->meta_blocking_config();
    BlockCollection refined = std::move(enriched);
    if (config.block_purging) {
      watch.Restart();
      refined = BlockPurging(std::move(refined), config.purging_outlier_factor);
      stats_->purging_seconds += watch.ElapsedSeconds();
    }
    if (config.block_filtering) {
      watch.Restart();
      refined = BlockFiltering(refined, config.filtering_ratio);
      stats_->filtering_seconds += watch.ElapsedSeconds();
    }
    std::vector<Comparison> comparisons;
    if (config.edge_pruning) {
      watch.Restart();
      comparisons = EdgePruning(refined, config.edge_weighting);
      stats_->edge_pruning_seconds += watch.ElapsedSeconds();
    } else {
      watch.Restart();
      comparisons = DistinctComparisons(refined);
      stats_->edge_pruning_seconds += watch.ElapsedSeconds();
    }
    stats_->comparisons_after_metablocking += comparisons.size();
    if (stats_->collect_comparisons) {
      stats_->collected_comparisons.insert(stats_->collected_comparisons.end(),
                                           comparisons.begin(),
                                           comparisons.end());
    }

    // (iv) Comparison-Execution; amends the Link Index with new links.
    watch.Restart();
    ComparisonExecStats exec_stats = ExecuteComparisons(
        runtime_->table(), comparisons, runtime_->matching_config(), &li,
        &runtime_->attribute_weights(), pool_);
    stats_->resolution_seconds += watch.ElapsedSeconds();
    stats_->comparisons_executed += exec_stats.executed;
    stats_->comparisons_skipped_linked += exec_stats.skipped_linked;
    stats_->matches_found += exec_stats.matches_found;

    for (EntityId e : unresolved) li.MarkResolved(e);
  }

  // DR_E = QE ∪ duplicates(QE), ascending and distinct.
  std::vector<EntityId> result;
  for (EntityId e : query_entities) {
    for (EntityId member : li.Cluster(e)) result.push_back(member);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace queryer
