// The unit of flow of the batch execution engine: a reusable block of rows
// plus a selection vector, in one of two storage modes.
//
// Batch-at-a-time execution (MonetDB/X100-style vectorization) replaces the
// row-at-a-time Volcano protocol: one virtual Next(RowBatch*) call moves up
// to `capacity` tuples, so the per-tuple interpretation overhead (virtual
// dispatch, Result<bool> unwrapping) is amortized over the whole batch. The
// selection vector lets Filter/GroupFilter mark survivors instead of
// copying them.
//
// Storage modes:
//  - OWNED: rows are materialized `Row`s (vector<string>). Operators that
//    construct new tuples (joins, projections, group fusion) fill these;
//    Row slots — including every string's heap buffer — are reused batch
//    after batch.
//  - REFERENCE: rows are (EntityId, group_key) pairs viewing into one
//    columnar Table. Scans and DEDUP emit these: no string is touched
//    until a consumer actually reads a value, and the final emit boundary
//    (QueryResult / cursor Fetch) materializes each value exactly once
//    straight out of the table's dictionaries — late materialization.
// Consumers that only read use the mode-agnostic accessors (value(),
// group_key(), entity_id(), RowRefAt(), MoveRowInto()); row() remains the
// owned-mode producer/consumer surface.

#ifndef QUERYER_EXEC_ROW_BATCH_H_
#define QUERYER_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "exec/row.h"
#include "storage/table.h"

namespace queryer {

/// Default RowBatch capacity (EngineOptions::batch_size): large enough to
/// amortize per-batch costs, small enough to stay cache-resident.
inline constexpr std::size_t kDefaultBatchSize = 1024;

/// \brief A batch of rows with a selection vector.
///
/// Producers append into reused Row slots via AppendRow(), or — after
/// BeginReference(table) — append (entity, group_key) references via
/// AppendReference(). A filter shrinks the selection
/// (Keep/TruncateSelection) without touching the row storage. Clear()
/// resets the batch for refilling but keeps owned Row storage alive, so
/// steady-state batches allocate nothing.
class RowBatch {
 public:
  explicit RowBatch(std::size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {
    selection_.reserve(capacity_);
  }

  std::size_t capacity() const { return capacity_; }
  bool full() const { return filled_ == capacity_; }

  /// Number of selected (live) rows.
  std::size_t size() const { return selection_.size(); }
  bool empty() const { return selection_.empty(); }

  // ---- Owned mode ------------------------------------------------------

  /// The i-th selected row. Owned mode only.
  Row& row(std::size_t i) {
    QUERYER_DCHECK(table_ == nullptr);
    return rows_[selection_[i]];
  }
  const Row& row(std::size_t i) const {
    QUERYER_DCHECK(table_ == nullptr);
    return rows_[selection_[i]];
  }

  /// Next free Row slot, selected and ready to be filled. The slot's
  /// previous contents (vector/string capacity) are intact for reuse; the
  /// producer overwrites values/group_key/entity_id. Must not be called on
  /// a full batch or a reference-mode batch.
  Row* AppendRow() {
    QUERYER_DCHECK(filled_ < capacity_ && table_ == nullptr);
    if (filled_ == rows_.size()) rows_.emplace_back();
    Row* slot = &rows_[filled_];
    selection_.push_back(static_cast<std::uint32_t>(filled_));
    ++filled_;
    return slot;
  }

  // ---- Reference mode --------------------------------------------------

  /// Switches an empty batch into reference mode over `table`, which must
  /// outlive every read of this batch (operators hold their TableRuntime —
  /// and thus the table — for the cursor's lifetime).
  void BeginReference(const Table* table) {
    QUERYER_DCHECK(filled_ == 0 && selection_.empty());
    table_ = table;
  }

  /// Appends a reference to `table`'s row `id`, selected. Reference mode.
  void AppendReference(EntityId id, std::uint64_t group_key) {
    QUERYER_DCHECK(filled_ < capacity_ && table_ != nullptr);
    if (filled_ == ref_ids_.size()) {
      ref_ids_.push_back(id);
      ref_groups_.push_back(group_key);
    } else {
      ref_ids_[filled_] = id;
      ref_groups_[filled_] = group_key;
    }
    selection_.push_back(static_cast<std::uint32_t>(filled_));
    ++filled_;
  }

  bool reference_mode() const { return table_ != nullptr; }
  const Table* reference_table() const { return table_; }

  // ---- Mode-agnostic read access ---------------------------------------

  /// Arity of the i-th selected row.
  std::size_t width(std::size_t i) const {
    if (table_ != nullptr) return table_->num_attributes();
    return rows_[selection_[i]].values.size();
  }

  /// One value of the i-th selected row, without materializing. The view
  /// borrows from the batch (owned) or the table (reference); it is
  /// invalidated by Clear().
  std::string_view value(std::size_t i, std::size_t column) const {
    const std::uint32_t slot = selection_[i];
    if (table_ != nullptr) return table_->ValueAt(ref_ids_[slot], column);
    return rows_[slot].values[column];
  }

  std::uint64_t group_key(std::size_t i) const {
    const std::uint32_t slot = selection_[i];
    return table_ != nullptr ? ref_groups_[slot] : rows_[slot].group_key;
  }

  /// Base-table entity of the i-th selected row, or kInvalidEntityId for
  /// constructed tuples (join/projection outputs).
  EntityId entity_id(std::size_t i) const {
    const std::uint32_t slot = selection_[i];
    return table_ != nullptr ? ref_ids_[slot] : rows_[slot].entity_id;
  }

  /// Expression-evaluation view of the i-th selected row.
  RowRef RowRefAt(std::size_t i) const {
    const std::uint32_t slot = selection_[i];
    if (table_ != nullptr) return RowRef(*table_, ref_ids_[slot]);
    return RowRef(rows_[slot].values);
  }

  /// Materializes the i-th selected row into `out`: moves the Row in owned
  /// mode, copies values out of the table's dictionaries in reference mode
  /// (reusing `out`'s string capacity). The batch slot is dead afterwards
  /// in owned mode; callers Clear() before refilling either way.
  void MoveRowInto(std::size_t i, Row* out) {
    const std::uint32_t slot = selection_[i];
    if (table_ != nullptr) {
      table_->MaterializeRow(ref_ids_[slot], &out->values);
      out->group_key = ref_groups_[slot];
      out->entity_id = ref_ids_[slot];
      return;
    }
    *out = std::move(rows_[slot]);
  }

  /// Materializes the i-th selected row's values as an owned vector: moved
  /// out in owned mode, copied from the table in reference mode. The final
  /// emit boundary (QueryResult rows, cursor Fetch) uses this.
  std::vector<std::string> TakeValues(std::size_t i) {
    const std::uint32_t slot = selection_[i];
    if (table_ != nullptr) {
      std::vector<std::string> values;
      table_->MaterializeRow(ref_ids_[slot], &values);
      return values;
    }
    return std::move(rows_[slot].values);
  }

  // ---- Selection / reuse ----------------------------------------------

  /// Filter support: keep the i-th selected row (i ascending across calls),
  /// compacting the selection in place. Call TruncateSelection(n) with the
  /// number of kept rows afterwards.
  void Keep(std::size_t out, std::size_t i) { selection_[out] = selection_[i]; }
  void TruncateSelection(std::size_t n) { selection_.resize(n); }

  /// Empties the batch for refilling and drops reference mode; owned Row
  /// storage (and each Row's string buffers) stays allocated for reuse.
  void Clear() {
    filled_ = 0;
    selection_.clear();
    table_ = nullptr;
  }

 private:
  std::size_t capacity_;
  std::size_t filled_ = 0;  // Slots in use; selection_ indexes these.
  // Owned-mode storage.
  std::vector<Row> rows_;
  // Reference-mode storage (parallel vectors, indexed like rows_).
  const Table* table_ = nullptr;
  std::vector<EntityId> ref_ids_;
  std::vector<std::uint64_t> ref_groups_;
  std::vector<std::uint32_t> selection_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_ROW_BATCH_H_
