// The unit of flow of the batch execution engine: a reusable block of Rows
// plus a selection vector.
//
// Batch-at-a-time execution (MonetDB/X100-style vectorization) replaces the
// row-at-a-time Volcano protocol: one virtual Next(RowBatch*) call moves up
// to `capacity` tuples, so the per-tuple interpretation overhead (virtual
// dispatch, Result<bool> unwrapping, Row copies) is amortized over the whole
// batch. The selection vector lets Filter/GroupFilter mark survivors instead
// of copying them: downstream operators iterate the selected rows only,
// while the underlying Row storage — including every std::string's heap
// buffer — is reused batch after batch, which removes the per-tuple
// allocation churn of the row pipeline.

#ifndef QUERYER_EXEC_ROW_BATCH_H_
#define QUERYER_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "exec/row.h"

namespace queryer {

/// Default RowBatch capacity (EngineOptions::batch_size): large enough to
/// amortize per-batch costs, small enough to stay cache-resident.
inline constexpr std::size_t kDefaultBatchSize = 1024;

/// \brief A batch of rows with a selection vector.
///
/// Producers append into reused Row slots via AppendRow(); consumers see
/// only the selected rows through size()/row(i). A filter shrinks the
/// selection (Keep/TruncateSelection) without touching the Row storage.
/// Clear() resets the batch for refilling but keeps every Row's allocated
/// storage alive, so steady-state batches allocate nothing.
class RowBatch {
 public:
  explicit RowBatch(std::size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {
    selection_.reserve(capacity_);
  }

  std::size_t capacity() const { return capacity_; }
  bool full() const { return filled_ == capacity_; }

  /// Number of selected (live) rows.
  std::size_t size() const { return selection_.size(); }
  bool empty() const { return selection_.empty(); }

  /// The i-th selected row.
  Row& row(std::size_t i) { return rows_[selection_[i]]; }
  const Row& row(std::size_t i) const { return rows_[selection_[i]]; }

  /// Next free Row slot, selected and ready to be filled. The slot's
  /// previous contents (vector/string capacity) are intact for reuse; the
  /// producer overwrites values/group_key/entity_id. Must not be called on
  /// a full batch.
  Row* AppendRow() {
    QUERYER_DCHECK(filled_ < capacity_);
    if (filled_ == rows_.size()) rows_.emplace_back();
    Row* slot = &rows_[filled_];
    selection_.push_back(static_cast<std::uint32_t>(filled_));
    ++filled_;
    return slot;
  }

  /// Filter support: keep the i-th selected row (i ascending across calls),
  /// compacting the selection in place. Call TruncateSelection(n) with the
  /// number of kept rows afterwards.
  void Keep(std::size_t out, std::size_t i) { selection_[out] = selection_[i]; }
  void TruncateSelection(std::size_t n) { selection_.resize(n); }

  /// Empties the batch for refilling; Row storage (and each Row's string
  /// buffers) stays allocated for reuse.
  void Clear() {
    filled_ = 0;
    selection_.clear();
  }

 private:
  std::size_t capacity_;
  std::size_t filled_ = 0;  // Row slots in use; selection_ indexes these.
  std::vector<Row> rows_;
  std::vector<std::uint32_t> selection_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_ROW_BATCH_H_
