// TableScan: emits every row of a base table with its entity id.

#ifndef QUERYER_EXEC_TABLE_SCAN_H_
#define QUERYER_EXEC_TABLE_SCAN_H_

#include <string>

#include "exec/operator.h"
#include "storage/table.h"

namespace queryer {

/// \brief Full scan of one base table. Each emitted row carries its
/// EntityId and a singleton group key (its own id), so an unresolved row is
/// its own duplicate group.
class TableScanOp final : public PhysicalOperator {
 public:
  TableScanOp(TablePtr table, std::string alias);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;

 private:
  TablePtr table_;
  EntityId position_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_TABLE_SCAN_H_
