// TableScan: the batch source of the pipeline, with an optional fused
// filter predicate and a morsel-driven parallel mode.

#ifndef QUERYER_EXEC_TABLE_SCAN_H_
#define QUERYER_EXEC_TABLE_SCAN_H_

#include <atomic>
#include <memory>
#include <string>

#include "exec/exec_stats.h"
#include "exec/operator.h"
#include "exec/table_predicate.h"
#include "obs/trace.h"
#include "parallel/reorder_window.h"
#include "parallel/thread_pool.h"
#include "plan/expr.h"
#include "storage/table.h"

namespace queryer {

/// \brief Scan of one base table, optionally evaluating a fused filter
/// predicate. Each emitted row carries its EntityId and a singleton group
/// key (its own id), so an unresolved row is its own duplicate group.
///
/// The scan emits REFERENCE batches: (entity, group_key) pairs viewing into
/// the columnar table, not materialized rows. No string is copied — or even
/// read — by the scan itself; consumers pull values lazily through the
/// table's dictionaries and the final emit boundary materializes survivors
/// exactly once (late materialization).
///
/// The fused predicate (a Filter lowered into its Scan) runs through
/// TablePredicate: single-column predicates are evaluated once per distinct
/// dictionary value into a truth table, so each stored row costs one code
/// load and one byte lookup; multi-column predicates evaluate over
/// string_views straight out of the dictionaries. Either way, rejected
/// tuples cost zero materialization — the selection-vector idea applied at
/// the source.
///
/// With a multi-worker pool the scan is a morsel-driven parallel source:
/// the table is cut into morsels (max(batch capacity, kMinMorselRows) rows)
/// dispatched as one pool task each. One task = one morsel, so the shared
/// FIFO pool interleaves concurrent sessions' scans fairly — a long scan
/// cannot starve another session's morsels — and every task carries its
/// session tag. Finished morsels are handed back through a bounded
/// ReorderWindow (see parallel/reorder_window.h; HashJoinOp's parallel
/// probe shares the same machinery) and emitted strictly in table order,
/// which keeps query answers bit-identical to the sequential scan at every
/// thread count.
class TableScanOp final : public PhysicalOperator {
 public:
  /// `pool` with more than one worker enables the morsel-parallel mode.
  /// `batch_size` sizes the morsels; `stats` (may be null) receives the
  /// morsel counters; `session_id` tags this scan's morsel tasks;
  /// `session_cancel` (may be null) is the session-level cancellation flag
  /// the morsel window observes (QueryCursor::Cancel); `trace` (may be
  /// null) receives one "scan-morsel" instant event per morsel, emitted on
  /// the worker thread that evaluated it.
  TableScanOp(TablePtr table, std::string alias, ThreadPool* pool = nullptr,
              std::size_t batch_size = kDefaultBatchSize,
              ExecStats* stats = nullptr, std::uint64_t session_id = 0,
              std::shared_ptr<const std::atomic<bool>> session_cancel =
                  nullptr,
              std::shared_ptr<TraceSink> trace = nullptr);

  /// Cancels any in-flight morsels: a query that dies in ANOTHER operator
  /// destroys this scan without Close() (DrainOperator's error path), and
  /// the window-queued tasks must not keep materializing for a dead query.
  ~TableScanOp() override { CancelMorsels(); }

  /// Fuses a filter into the scan. `predicate` must be bound against this
  /// scan's output_columns(). Call before Open().
  void FusePredicate(ExprPtr predicate) { predicate_ = std::move(predicate); }

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  struct MorselScan;

  bool UseMorsels() const;
  Result<bool> NextSequential(RowBatch* batch);
  Result<bool> NextMorsel(RowBatch* batch);
  /// Dispatches the next undispatched morsel if the reorder window has
  /// capacity; returns false when the table is fully dispatched or the
  /// window is full.
  bool SubmitMorselTask();
  void CancelMorsels();

  TablePtr table_;
  // Shared with in-flight morsel tasks, which may outlive a Close().
  std::shared_ptr<const Expr> predicate_;
  ThreadPool* pool_;
  std::size_t batch_size_;
  ExecStats* stats_;
  std::uint64_t session_id_;
  std::shared_ptr<const std::atomic<bool>> session_cancel_;
  // shared_ptr: straggler morsel tasks may outlive this operator.
  std::shared_ptr<TraceSink> trace_;

  // Compiled form of predicate_ against table_ (built at Open).
  TablePredicate table_predicate_;

  // Sequential cursor.
  EntityId position_ = 0;

  // Morsel mode state (created at Open).
  std::shared_ptr<MorselScan> morsels_;
  std::vector<EntityId> buffer_;  // Survivors of the morsel being emitted.
  std::size_t buffer_pos_ = 0;
  std::size_t submitted_ = 0;     // Tasks handed to the pool so far.
};

}  // namespace queryer

#endif  // QUERYER_EXEC_TABLE_SCAN_H_
