// GroupFilter: duplicate-aware selection used when a Filter sits above a
// Deduplicate operator (the Naive ER plan of paper Fig. 5). A plain filter
// would drop recovered duplicates whose own attribute variant does not
// satisfy the predicate (e.g. P2's full venue name under venue='EDBT');
// group semantics keep every member of a duplicate group as long as at
// least one member passes — mirroring how the Batch Approach evaluates
// predicates over grouped hyper-entities.

#ifndef QUERYER_EXEC_GROUP_FILTER_H_
#define QUERYER_EXEC_GROUP_FILTER_H_

#include <vector>

#include "exec/operator.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Blocking duplicate-group filter (materializes its input).
/// `batch_size` sizes the batches draining the child.
class GroupFilterOp final : public PhysicalOperator {
 public:
  GroupFilterOp(OperatorPtr child, ExprPtr predicate,
                std::size_t batch_size = kDefaultBatchSize);

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  std::size_t batch_size_;
  std::vector<Row> output_;
  std::size_t position_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_GROUP_FILTER_H_
