// The Deduplicate-Join operator (paper Sec. 6.2, Algorithms 1 and 2).
//
// One input arrives resolved (a DR_E stream with duplicate-group keys), the
// other may still be dirty (rows of a base table). For the Dirty-Right /
// Dirty-Left variants the operator first discards dirty rows that do not
// join with any variant of the resolved side (Alg. 1 line 4), resolves the
// survivors with the Deduplicate pipeline (line 5), and then runs the
// Deduplicate-Join operation (Alg. 2): two duplicate groups join if any of
// their member pairs join, and the output is the Cartesian product of the
// joined groups' members — so every value variant reaches Group-Entities.

#ifndef QUERYER_EXEC_DEDUP_JOIN_OP_H_
#define QUERYER_EXEC_DEDUP_JOIN_OP_H_

#include <map>
#include <memory>

#include "exec/deduplicator.h"
#include "exec/operator.h"
#include "plan/expr.h"
#include "plan/logical_plan.h"

namespace queryer {

/// \brief Physical Deduplicate-Join.
///
/// `dirty_side` selects the variant; the dirty child's rows must come from
/// `dirty_runtime`'s base table with all columns intact (same contract as
/// DeduplicateOp). With DirtySide::kNone both inputs are already resolved
/// and only Alg. 2 runs. Key expressions must be bound to the respective
/// child's columns. Output: left columns ++ right columns; group keys
/// identify (left group, right group) pairs.
class DedupJoinOp final : public PhysicalOperator {
 public:
  /// `pool` parallelizes the dirty side's comparison execution (null =
  /// sequential); `concurrent_sessions` selects the Deduplicator's
  /// transaction protocol for engines that admit concurrent Execute calls;
  /// `batch_size` sizes the batches draining both children; `trace` (may
  /// be null) receives the dirty side's ER-stage spans.
  DedupJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
              ExprPtr right_key, DirtySide dirty_side,
              std::shared_ptr<TableRuntime> dirty_runtime, ExecStats* stats,
              ThreadPool* pool = nullptr, bool concurrent_sessions = false,
              std::size_t batch_size = kDefaultBatchSize,
              std::shared_ptr<TraceSink> trace = nullptr,
              std::shared_ptr<const CancelContext> cancel = nullptr);

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  Status BuildOutput();

  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr left_key_;
  ExprPtr right_key_;
  DirtySide dirty_side_;
  std::shared_ptr<TableRuntime> dirty_runtime_;
  ExecStats* stats_;
  ThreadPool* pool_;
  bool concurrent_sessions_;
  std::size_t batch_size_;
  std::shared_ptr<TraceSink> trace_;
  std::shared_ptr<const CancelContext> cancel_;

  std::vector<Row> output_;
  std::size_t position_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_DEDUP_JOIN_OP_H_
