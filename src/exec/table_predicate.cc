#include "exec/table_predicate.h"

namespace queryer {

TablePredicate::TablePredicate(const Expr* expr, const Table* table)
    : expr_(expr), table_(table) {
  if (expr_ == nullptr) return;
  std::vector<const Expr*> columns;
  expr_->CollectColumns(&columns);
  if (columns.empty()) return;  // Constant predicate: per-row eval is cheap.
  const std::size_t attribute = columns[0]->bound_index();
  for (const Expr* column : columns) {
    if (column->bound_index() != attribute) return;  // Multi-column.
  }
  if (attribute >= table_->num_attributes()) return;
  const ColumnView column = table_->column(attribute);
  const Dictionary& dictionary = column.dictionary();
  codes_ = column.codes().data();
  dictionary_ = &dictionary;
  attribute_ = attribute;
  // The truth table trades O(distinct) up-front evaluations for one-byte
  // per-row lookups — a win only when values repeat. Near-unique columns
  // (ids, titles) would pay the build and the extra pass for nothing; they
  // keep per-row evaluation over the hoisted column instead.
  if (2 * dictionary.size() > table_->num_rows()) return;
  auto truth = std::make_shared<std::vector<std::uint8_t>>(dictionary.size());
  for (DictCode code = 0; code < dictionary.size(); ++code) {
    (*truth)[code] = expr_->EvalBoolFast(
                         RowRef::SingleColumn(attribute, dictionary.value(code)))
                         ? 1
                         : 0;
  }
  truth_ = std::move(truth);
}

}  // namespace queryer
