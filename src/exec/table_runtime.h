// Per-table ER runtime: the once-off indices (TBI/ITBI via TableBlockIndex,
// Link Index) plus the blocking / meta-blocking / matching configuration a
// table was registered with. Owned by the engine, shared by the operators.
//
// Concurrency: the lazy once-off indices are built under a once-flag, so
// any number of query sessions may race the cold start — one builds, the
// rest block and share the result. The Link Index is internally
// synchronized, and the ResolutionCoordinator arbitrates which session
// resolves which entity. The configuration setters are registration-time
// only: call them before the first concurrent Execute.

#ifndef QUERYER_EXEC_TABLE_RUNTIME_H_
#define QUERYER_EXEC_TABLE_RUNTIME_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "blocking/token_blocking.h"
#include "common/status.h"
#include "matching/comparison_execution.h"
#include "matching/link_index.h"
#include "matching/resolution_coordinator.h"
#include "metablocking/meta_blocking.h"
#include "parallel/thread_pool.h"
#include "storage/table.h"

namespace queryer {

/// \brief ER state of one registered table.
class TableRuntime {
 public:
  TableRuntime(TablePtr table, BlockingOptions blocking,
               MetaBlockingConfig meta_blocking, MatchingConfig matching);

  const Table& table() const { return *table_; }
  TablePtr table_ptr() const { return table_; }
  const BlockingOptions& blocking_options() const { return blocking_; }
  const MetaBlockingConfig& meta_blocking_config() const {
    return meta_blocking_;
  }
  void set_meta_blocking_config(const MetaBlockingConfig& config) {
    meta_blocking_ = config;
  }
  const MatchingConfig& matching_config() const { return matching_; }
  void set_matching_config(const MatchingConfig& config) { matching_ = config; }

  /// Pool for the table's data-parallel phases (index construction,
  /// comparison execution). Null means sequential; the engine wires its
  /// pool in at registration time. Shared ownership, because runtime
  /// handles obtained from QueryEngine::GetRuntime may outlive the engine.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) {
    pool_ = std::move(pool);
  }
  ThreadPool* thread_pool() const { return pool_.get(); }

  /// Builds the TBI on first access (once-off initialization, paper Sec. 3),
  /// sharded over the thread pool when one is set. Safe to race from many
  /// sessions: the first builds, the rest block on the once-flag.
  const TableBlockIndex& tbi();
  bool tbi_built() const { return tbi_built_.load(std::memory_order_acquire); }

  /// Eagerly builds every once-off index (TBI/ITBI and the attribute
  /// weights), using the thread pool for the TBI shards when one is set.
  Status WarmIndices();

  /// Attribute-distinctiveness weights for matching (computed once; safe to
  /// race like tbi()).
  const AttributeWeights& attribute_weights();

  /// Installs a pre-built block index (loaded from a snapshot) through the
  /// same once-flag as the lazy build, so later tbi() calls share it and
  /// WarmIndices becomes a no-op for the TBI. Returns false when the lazy
  /// build already ran (the loaded index is discarded — the built one is
  /// just as correct).
  bool InstallBlockIndex(std::shared_ptr<TableBlockIndex> index);

  /// Same for the attribute weights.
  bool InstallAttributeWeights(AttributeWeights weights);

  /// Durability sidecar of this table's Link Index (see persist/
  /// durable_link_index.h). The runtime owns it so teardown ordering is
  /// right: the holder detaches from the Link Index before either dies.
  /// `sidecar` must already be attached to link_index(); registration-time
  /// only, like the configuration setters.
  void set_link_index_durability(std::shared_ptr<void> sidecar,
                                 std::function<Status()> maybe_compact) {
    li_durability_ = std::move(sidecar);
    li_maybe_compact_ = std::move(maybe_compact);
  }

  /// Compacts the durable link log iff it outgrew the configured
  /// threshold. Called by the deduplicator at the end of a resolution,
  /// OUTSIDE the Link Index lock. No-op without a durability sidecar.
  Status MaybeCompactLinkLog() {
    return li_maybe_compact_ ? li_maybe_compact_() : Status::OK();
  }

  LinkIndex& link_index() { return link_index_; }
  const LinkIndex& link_index() const { return link_index_; }

  /// Claim tables arbitrating concurrent resolution transactions on this
  /// table (see ResolutionCoordinator).
  ResolutionCoordinator& coordinator() { return coordinator_; }

  /// Serializes whole-table batch cleaning (ExecutionMode::kBatch) across
  /// concurrent sessions: the first cleans, the rest wait and reuse.
  std::mutex& batch_er_mutex() { return batch_er_mutex_; }

  /// Forgets all resolved links (used by the without-LI experiment arm and
  /// to reset state between benchmark runs).
  void ResetLinkIndex() { link_index_.Reset(); }

 private:
  TablePtr table_;
  BlockingOptions blocking_;
  MetaBlockingConfig meta_blocking_;
  MatchingConfig matching_;
  std::shared_ptr<ThreadPool> pool_;
  std::once_flag tbi_once_;
  std::shared_ptr<TableBlockIndex> tbi_;
  std::atomic<bool> tbi_built_{false};
  std::once_flag weights_once_;
  std::unique_ptr<AttributeWeights> attribute_weights_;
  LinkIndex link_index_;
  ResolutionCoordinator coordinator_;
  std::mutex batch_er_mutex_;
  // Type-erased DurableLinkIndex (keeps exec/ independent of persist/).
  // Destroyed before link_index_ by member order — the sidecar's dtor
  // detaches itself from the index first.
  std::shared_ptr<void> li_durability_;
  std::function<Status()> li_maybe_compact_;
};

/// \brief name -> runtime registry handed to the executor.
using RuntimeRegistry = std::map<std::string, std::shared_ptr<TableRuntime>>;

/// \brief Case-insensitive lookup helper.
Result<std::shared_ptr<TableRuntime>> FindRuntime(
    const RuntimeRegistry& registry, const std::string& table_name);

}  // namespace queryer

#endif  // QUERYER_EXEC_TABLE_RUNTIME_H_
