#include "exec/operator.h"

namespace queryer {

Result<std::vector<Row>> DrainOperator(PhysicalOperator* op,
                                       std::size_t batch_size) {
  QUERYER_RETURN_NOT_OK(op->Open());
  std::vector<Row> rows;
  RowBatch batch(batch_size);
  while (true) {
    QUERYER_ASSIGN_OR_RETURN(bool has, op->Next(&batch));
    if (!has) break;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Moves owned rows; materializes reference rows from their table.
      rows.emplace_back();
      batch.MoveRowInto(i, &rows.back());
    }
  }
  op->Close();
  return rows;
}

bool EmitMaterialized(std::vector<Row>* rows, std::size_t* position,
                      RowBatch* batch) {
  batch->Clear();
  while (*position < rows->size() && !batch->full()) {
    *batch->AppendRow() = std::move((*rows)[(*position)++]);
  }
  return !batch->empty();
}

}  // namespace queryer
