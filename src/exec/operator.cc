#include "exec/operator.h"

namespace queryer {

Result<std::vector<Row>> DrainOperator(PhysicalOperator* op) {
  QUERYER_RETURN_NOT_OK(op->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    QUERYER_ASSIGN_OR_RETURN(bool has, op->Next(&row));
    if (!has) break;
    rows.push_back(std::move(row));
    row = Row();
  }
  op->Close();
  return rows;
}

}  // namespace queryer
