#include "exec/group_entities_op.h"

#include <unordered_map>

#include "common/stopwatch.h"

namespace queryer {

GroupEntitiesOp::GroupEntitiesOp(OperatorPtr child, ExecStats* stats,
                                 std::size_t batch_size)
    : child_(std::move(child)), stats_(stats), batch_size_(batch_size) {
  output_columns_ = child_->output_columns();
}

Status GroupEntitiesOp::Open() {
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> input,
                           DrainOperator(child_.get(), batch_size_));
  Stopwatch watch;

  const std::size_t width = output_columns_.size();
  struct Group {
    // Per attribute: distinct non-empty variants in first-seen order.
    std::vector<std::vector<std::string>> variants;
  };
  std::vector<std::uint64_t> group_order;
  std::unordered_map<std::uint64_t, Group> groups;
  for (Row& row : input) {
    auto [it, inserted] = groups.try_emplace(row.group_key);
    if (inserted) {
      it->second.variants.resize(width);
      group_order.push_back(row.group_key);
    }
    Group& group = it->second;
    for (std::size_t a = 0; a < width && a < row.values.size(); ++a) {
      const std::string& value = row.values[a];
      if (value.empty()) continue;  // Nulls map to the empty variant.
      auto& seen = group.variants[a];
      bool duplicate = false;
      for (const std::string& existing : seen) {
        if (existing == value) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) seen.push_back(value);
    }
  }

  output_.clear();
  output_.reserve(group_order.size());
  for (std::uint64_t key : group_order) {
    const Group& group = groups[key];
    Row row;
    row.group_key = key;
    row.values.reserve(width);
    for (const auto& variants : group.variants) {
      std::string fused;
      for (std::size_t i = 0; i < variants.size(); ++i) {
        if (i > 0) fused += kVariantSeparator;
        fused += variants[i];
      }
      row.values.push_back(std::move(fused));
    }
    output_.push_back(std::move(row));
  }

  stats_->group_seconds += watch.ElapsedSeconds();
  position_ = 0;
  return Status::OK();
}

Result<bool> GroupEntitiesOp::Next(RowBatch* batch) {
  return EmitMaterialized(&output_, &position_, batch);
}

void GroupEntitiesOp::Close() { output_.clear(); }

}  // namespace queryer
