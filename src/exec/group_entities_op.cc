#include "exec/group_entities_op.h"

#include <unordered_map>

#include "common/stopwatch.h"
#include "parallel/reorder_window.h"

namespace queryer {

namespace {

/// One duplicate group under construction: per attribute, the distinct
/// non-empty variants in first-seen order.
struct Group {
  std::vector<std::vector<std::string>> variants;
};

/// A group table over one contiguous slice of the input: groups (and each
/// group's variants) in slice-local first-seen order. The whole input is
/// one slice on the sequential path; a morsel of it on the parallel path.
struct GroupTable {
  std::vector<std::uint64_t> order;
  std::unordered_map<std::uint64_t, Group> groups;
};

/// Folds one row into the table, preserving first-seen order of groups and
/// variants. Both the sequential path and every parallel worker use this,
/// so the two paths cannot drift apart.
void AccumulateRow(const Row& row, std::size_t width, GroupTable* table) {
  auto [it, inserted] = table->groups.try_emplace(row.group_key);
  if (inserted) {
    it->second.variants.resize(width);
    table->order.push_back(row.group_key);
  }
  Group& group = it->second;
  for (std::size_t a = 0; a < width && a < row.values.size(); ++a) {
    const std::string& value = row.values[a];
    if (value.empty()) continue;  // Nulls map to the empty variant.
    auto& seen = group.variants[a];
    bool duplicate = false;
    for (const std::string& existing : seen) {
      if (existing == value) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) seen.push_back(value);
  }
}

/// Merges `partial` (the table of a later slice) into `merged`, preserving
/// global first-seen order: groups new to `merged` are appended in the
/// partial's order, and each attribute's variant list is extended with the
/// partial's variants that are not yet present, in the partial's order.
/// Merging slices in input order therefore reproduces the sequential
/// accumulation exactly.
void MergeGroupTable(GroupTable&& partial, std::size_t width,
                     GroupTable* merged) {
  for (std::uint64_t key : partial.order) {
    Group& from = partial.groups[key];
    auto [it, inserted] = merged->groups.try_emplace(key);
    if (inserted) {
      merged->order.push_back(key);
      it->second = std::move(from);
      continue;
    }
    Group& into = it->second;
    for (std::size_t a = 0; a < width; ++a) {
      auto& seen = into.variants[a];
      for (std::string& value : from.variants[a]) {
        bool duplicate = false;
        for (const std::string& existing : seen) {
          if (existing == value) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) seen.push_back(std::move(value));
      }
    }
  }
}

}  // namespace

GroupEntitiesOp::GroupEntitiesOp(OperatorPtr child, ExecStats* stats,
                                 std::size_t batch_size, ThreadPool* pool,
                                 std::shared_ptr<TraceSink> trace)
    : child_(std::move(child)),
      stats_(stats),
      batch_size_(batch_size),
      pool_(pool),
      trace_(std::move(trace)) {
  output_columns_ = child_->output_columns();
}

Status GroupEntitiesOp::OpenImpl() {
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> input,
                           DrainOperator(child_.get(), batch_size_));
  Stopwatch watch;
  TraceSpan span(trace_.get(), "group", "er");

  const std::size_t width = output_columns_.size();
  GroupTable table;
  const bool parallel = pool_ != nullptr && pool_->num_threads() > 1 &&
                        input.size() > kMinMorselRows;
  if (parallel) {
    // Aggregate over morsels: per-chunk partial group tables built on the
    // pool, merged deterministically in worker-chunk order. Fixed-size
    // chunks, so the merge order — and thus the output — is independent
    // of the pool width.
    const std::vector<ChunkRange> chunks =
        FixedSizeChunks(input.size(), kMinMorselRows);
    std::vector<GroupTable> partials(chunks.size());
    QUERYER_RETURN_NOT_OK(ParallelFor(
        pool_, chunks,
        [&](std::size_t chunk_index, std::size_t begin, std::size_t end) {
          GroupTable& partial = partials[chunk_index];
          for (std::size_t i = begin; i < end; ++i) {
            AccumulateRow(input[i], width, &partial);
          }
          return Status::OK();
        }));
    for (GroupTable& partial : partials) {
      stats_->partial_groups_merged += partial.order.size();
      MergeGroupTable(std::move(partial), width, &table);
    }
  } else {
    for (const Row& row : input) AccumulateRow(row, width, &table);
  }

  output_.clear();
  output_.reserve(table.order.size());
  for (std::uint64_t key : table.order) {
    const Group& group = table.groups[key];
    Row row;
    row.group_key = key;
    row.values.reserve(width);
    for (const auto& variants : group.variants) {
      std::string fused;
      for (std::size_t i = 0; i < variants.size(); ++i) {
        if (i > 0) fused += kVariantSeparator;
        fused += variants[i];
      }
      row.values.push_back(std::move(fused));
    }
    output_.push_back(std::move(row));
  }

  stats_->group_seconds += watch.ElapsedSeconds();
  span.set_args("\"rows_in\":" + std::to_string(input.size()) +
                ",\"groups\":" + std::to_string(output_.size()));
  position_ = 0;
  return Status::OK();
}

Result<bool> GroupEntitiesOp::NextImpl(RowBatch* batch) {
  return EmitMaterialized(&output_, &position_, batch);
}

void GroupEntitiesOp::CloseImpl() { output_.clear(); }

}  // namespace queryer
