// The Volcano iterator interface all physical operators implement
// (paper Sec. 7.2.2: "QueryER utilizes the established database pipelining
// architecture where the output of an operator is passed to its parent by
// implementing the Iterator Interface").

#ifndef QUERYER_EXEC_OPERATOR_H_
#define QUERYER_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/row.h"

namespace queryer {

/// \brief Pull-based physical operator.
///
/// Protocol: Open() once, Next() until it returns false, Close() once.
/// `output_columns()` is valid after construction and lists qualified
/// column names ("alias.column") of the produced rows.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual Status Open() = 0;
  /// Produces the next row into `row`; returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
  virtual void Close() = 0;

  const std::vector<std::string>& output_columns() const {
    return output_columns_;
  }

 protected:
  std::vector<std::string> output_columns_;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

/// \brief Drains an operator into a vector (Open/Next*/Close).
Result<std::vector<Row>> DrainOperator(PhysicalOperator* op);

}  // namespace queryer

#endif  // QUERYER_EXEC_OPERATOR_H_
