// The batch iterator interface all physical operators implement. The paper's
// pipelining architecture (Sec. 7.2.2) is kept, but the unit of flow between
// operators is a RowBatch instead of a single Row: one virtual call moves up
// to EngineOptions::batch_size tuples (MonetDB/X100-style vectorization), so
// the per-tuple interpretation overhead of the classic Volcano protocol is
// amortized over the batch.

#ifndef QUERYER_EXEC_OPERATOR_H_
#define QUERYER_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/row_batch.h"

namespace queryer {

/// \brief Pull-based physical operator.
///
/// Protocol: Open() once, Next() until it returns false, Close() once.
/// Next() clears and refills the caller's batch with up to
/// `batch->capacity()` rows. A true return with an EMPTY batch is legal mid
/// stream (e.g. a fully filtered morsel) — callers keep pulling until Next
/// returns false, which definitively ends the stream. Callers reuse one
/// RowBatch across all Next calls so the row storage is recycled.
/// `output_columns()` is valid after construction and lists qualified
/// column names ("alias.column") of the produced rows.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual Status Open() = 0;
  /// Refills `batch`; returns false at end of stream.
  virtual Result<bool> Next(RowBatch* batch) = 0;
  virtual void Close() = 0;

  const std::vector<std::string>& output_columns() const {
    return output_columns_;
  }

 protected:
  std::vector<std::string> output_columns_;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

/// \brief Drains an operator into a vector (Open/Next*/Close), moving rows
/// out of the batch. `batch_size` sizes the internal batch; operators that
/// materialize their child pass the executor's configured size through.
Result<std::vector<Row>> DrainOperator(PhysicalOperator* op,
                                       std::size_t batch_size = kDefaultBatchSize);

/// \brief Next() body shared by the materializing operators: moves rows of
/// `rows` starting at *position into the (cleared) batch until it fills,
/// advancing *position. Returns false once the stream is exhausted.
bool EmitMaterialized(std::vector<Row>* rows, std::size_t* position,
                      RowBatch* batch);

}  // namespace queryer

#endif  // QUERYER_EXEC_OPERATOR_H_
