// The batch iterator interface all physical operators implement. The paper's
// pipelining architecture (Sec. 7.2.2) is kept, but the unit of flow between
// operators is a RowBatch instead of a single Row: one virtual call moves up
// to EngineOptions::batch_size tuples (MonetDB/X100-style vectorization), so
// the per-tuple interpretation overhead of the classic Volcano protocol is
// amortized over the batch.

#ifndef QUERYER_EXEC_OPERATOR_H_
#define QUERYER_EXEC_OPERATOR_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/row_batch.h"
#include "obs/operator_profile.h"

namespace queryer {

/// \brief Pull-based physical operator.
///
/// Protocol: Open() once, Next() until it returns false, Close() once.
/// Next() clears and refills the caller's batch with up to
/// `batch->capacity()` rows. A true return with an EMPTY batch is legal mid
/// stream (e.g. a fully filtered morsel) — callers keep pulling until Next
/// returns false, which definitively ends the stream. Callers reuse one
/// RowBatch across all Next calls so the row storage is recycled.
/// `output_columns()` is valid after construction and lists qualified
/// column names ("alias.column") of the produced rows.
///
/// Non-virtual interface: subclasses implement OpenImpl/NextImpl/CloseImpl;
/// the public Open/Next/Close wrappers record rows, batches, and cumulative
/// time into the attached OperatorProfile (one steady_clock read pair per
/// call) and are pass-throughs when no profile is attached. Profiles are
/// written only from the consumer thread that drives the operator tree.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  Status Open() {
    if (profile_ == nullptr) return OpenImpl();
    const auto begin = OperatorProfile::Clock::now();
    if (profile_->opens++ == 0) profile_->first_activity = begin;
    Status status = OpenImpl();
    const auto end = OperatorProfile::Clock::now();
    const double dt = std::chrono::duration<double>(end - begin).count();
    profile_->open_seconds += dt;
    profile_->total_seconds += dt;
    profile_->last_activity = end;
    return status;
  }

  /// Refills `batch`; returns false at end of stream.
  Result<bool> Next(RowBatch* batch) {
    if (profile_ == nullptr) return NextImpl(batch);
    const auto begin = OperatorProfile::Clock::now();
    Result<bool> result = NextImpl(batch);
    const auto end = OperatorProfile::Clock::now();
    profile_->total_seconds += std::chrono::duration<double>(end - begin).count();
    if (result.ok() && *result) {
      ++profile_->batches;
      profile_->rows += batch->size();
    }
    profile_->last_activity = end;
    return result;
  }

  void Close() {
    if (profile_ == nullptr) {
      CloseImpl();
      return;
    }
    const auto begin = OperatorProfile::Clock::now();
    CloseImpl();
    const auto end = OperatorProfile::Clock::now();
    profile_->total_seconds += std::chrono::duration<double>(end - begin).count();
    profile_->last_activity = end;
  }

  /// Attaches the profile node this operator reports into (set by the
  /// executor at lowering time; null = no profiling, zero overhead).
  void set_profile(OperatorProfile* profile) { profile_ = profile; }
  OperatorProfile* profile() const { return profile_; }

  const std::vector<std::string>& output_columns() const {
    return output_columns_;
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(RowBatch* batch) = 0;
  virtual void CloseImpl() = 0;

  std::vector<std::string> output_columns_;

 private:
  OperatorProfile* profile_ = nullptr;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

/// \brief Drains an operator into a vector (Open/Next*/Close), moving rows
/// out of the batch. `batch_size` sizes the internal batch; operators that
/// materialize their child pass the executor's configured size through.
Result<std::vector<Row>> DrainOperator(PhysicalOperator* op,
                                       std::size_t batch_size = kDefaultBatchSize);

/// \brief Next() body shared by the materializing operators: moves rows of
/// `rows` starting at *position into the (cleared) batch until it fills,
/// advancing *position. Returns false once the stream is exhausted.
bool EmitMaterialized(std::vector<Row>* rows, std::size_t* position,
                      RowBatch* batch);

}  // namespace queryer

#endif  // QUERYER_EXEC_OPERATOR_H_
