// Executor: lowers a logical plan to physical operators and runs it.
//
// Lowering is where the plan meets the engine's execution machinery: every
// expression is cloned and bound against its child's output columns, a
// Filter directly above a TableScan is fused into the scan, and the
// engine's thread pool, batch size, per-query ExecStats and session id are
// plumbed into the operators that use them (morsel-parallel scans, the
// parallel join probe, parallel Group-Entities aggregation, the ER
// operators' comparison execution). One Executor = one query session; see
// docs/ARCHITECTURE.md for the full pipeline walkthrough.

#ifndef QUERYER_EXEC_EXECUTOR_H_
#define QUERYER_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "exec/exec_stats.h"
#include "exec/operator.h"
#include "exec/table_runtime.h"
#include "parallel/thread_pool.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"

namespace queryer {

/// \brief Materialized result of one query.
struct QueryOutput {
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

/// \brief Plan lowering + execution against a catalog and the per-table ER
/// runtimes. Stateless across queries apart from what the runtimes carry
/// (notably the Link Index), so one executor per query is cheap and many
/// executors may run side by side over the same registry.
class Executor {
 public:
  /// `pool` is handed to the ER operators for their data-parallel phases
  /// and to TableScan for morsel-parallel scans (null = sequential
  /// execution, the default for direct construction).
  /// `concurrent_sessions` makes the ER operators resolve through the
  /// claim/publish transaction protocol; set it whenever other executors
  /// may run against the same runtimes concurrently. `batch_size` is the
  /// RowBatch capacity of the whole pipeline (EngineOptions::batch_size).
  Executor(const Catalog* catalog, RuntimeRegistry* runtimes, ExecStats* stats,
           ThreadPool* pool = nullptr, bool concurrent_sessions = false,
           std::size_t batch_size = kDefaultBatchSize);

  /// Builds the physical operator tree (binding all expressions).
  Result<OperatorPtr> Lower(const LogicalPlan& plan);

  /// Lowers and drains the plan.
  Result<QueryOutput> Run(const LogicalPlan& plan);

 private:
  Result<OperatorPtr> LowerScan(const LogicalPlan& plan);

  const Catalog* catalog_;
  RuntimeRegistry* runtimes_;
  ExecStats* stats_;
  ThreadPool* pool_;
  bool concurrent_sessions_;
  std::size_t batch_size_;
  /// Tags this executor's morsel tasks so concurrent sessions sharing the
  /// process-wide pool are distinguishable (fair FIFO interleaving is per
  /// morsel; the tag identifies the session a morsel belongs to).
  std::uint64_t session_id_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_EXECUTOR_H_
