// Executor: lowers a logical plan to physical operators.
//
// Lowering is where the plan meets the engine's execution machinery: every
// expression is cloned and bound against its child's output columns, a
// Filter directly above a TableScan is fused into the scan, and the
// engine's thread pool, batch size, per-query ExecStats and session id are
// plumbed into the operators that use them (morsel-parallel scans, the
// parallel join probe, parallel Group-Entities aggregation, the ER
// operators' comparison execution). One Executor = one query session; see
// docs/ARCHITECTURE.md for the full pipeline walkthrough.

#ifndef QUERYER_EXEC_EXECUTOR_H_
#define QUERYER_EXEC_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel_context.h"
#include "exec/exec_stats.h"
#include "exec/operator.h"
#include "exec/table_runtime.h"
#include "obs/operator_profile.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"

namespace queryer {

/// \brief Plan lowering against a catalog and the per-table ER runtimes.
/// Stateless across queries apart from what the runtimes carry (notably
/// the Link Index), so one executor per query is cheap and many executors
/// may run side by side over the same registry.
class Executor {
 public:
  /// `pool` is handed to the ER operators for their data-parallel phases
  /// and to TableScan for morsel-parallel scans (null = sequential
  /// execution, the default for direct construction).
  /// `concurrent_sessions` makes the ER operators resolve through the
  /// claim/publish transaction protocol; set it whenever other executors
  /// may run against the same runtimes concurrently. `batch_size` is the
  /// RowBatch capacity of the whole pipeline (EngineOptions::batch_size).
  /// `session_cancel` (may be null) is the session-level cancellation flag
  /// linked into every morsel-driven operator's reorder window
  /// (QueryCursor::Cancel raises it). `profile` (may be null) receives one
  /// OperatorProfile node per lowered operator, mirroring the plan tree —
  /// the substrate of EXPLAIN ANALYZE. `trace` (may be null) is this
  /// session's trace sink, plumbed into the operators that emit spans and
  /// morsel events. `cancel` (may be null) is the session's CancelContext
  /// — cancel flag + deadline — handed to the ER operators, whose
  /// comparison loops poll it so Cancel() / deadlines pre-empt resolution.
  Executor(const Catalog* catalog, RuntimeRegistry* runtimes, ExecStats* stats,
           ThreadPool* pool = nullptr, bool concurrent_sessions = false,
           std::size_t batch_size = kDefaultBatchSize,
           std::shared_ptr<const std::atomic<bool>> session_cancel = nullptr,
           PlanProfile* profile = nullptr,
           std::shared_ptr<TraceSink> trace = nullptr,
           std::shared_ptr<const CancelContext> cancel = nullptr);

  /// Builds the physical operator tree (binding all expressions). The tree
  /// may outlive the Executor — operators capture the catalog tables, the
  /// runtimes, `stats`, the pool and the session id, not the Executor
  /// itself — which is how QueryCursor keeps an open tree streaming after
  /// the lowering Executor is gone. Callers drive the tree themselves
  /// (Open / Next* / Close); the cursor drain is the engine's ONLY drain
  /// implementation (DrainOperator serves operators draining their own
  /// children).
  Result<OperatorPtr> Lower(const LogicalPlan& plan);

  /// The session id tagging this executor's morsel tasks and trace events;
  /// the engine stamps it into the cursor so failure messages name the
  /// session they came from.
  std::uint64_t session_id() const { return session_id_; }

 private:
  /// Recursive lowering; `parent` is the profile node of the operator
  /// being built above this subtree (null at the root or when profiling
  /// is off).
  Result<OperatorPtr> LowerNode(const LogicalPlan& plan,
                                OperatorProfile* parent);
  Result<OperatorPtr> LowerScan(const LogicalPlan& plan,
                                OperatorProfile* parent);
  /// Creates `plan`'s profile node under `parent`; null when profiling is
  /// off.
  OperatorProfile* MakeNode(const LogicalPlan& plan, OperatorProfile* parent);

  const Catalog* catalog_;
  RuntimeRegistry* runtimes_;
  ExecStats* stats_;
  ThreadPool* pool_;
  bool concurrent_sessions_;
  std::size_t batch_size_;
  std::shared_ptr<const std::atomic<bool>> session_cancel_;
  PlanProfile* profile_;
  std::shared_ptr<TraceSink> trace_;
  std::shared_ptr<const CancelContext> cancel_;
  /// Tags this executor's morsel tasks so concurrent sessions sharing the
  /// process-wide pool are distinguishable (fair FIFO interleaving is per
  /// morsel; the tag identifies the session a morsel belongs to).
  std::uint64_t session_id_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_EXECUTOR_H_
