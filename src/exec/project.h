// Project: evaluates the SELECT list over child rows.

#ifndef QUERYER_EXEC_PROJECT_H_
#define QUERYER_EXEC_PROJECT_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Projection. Item expressions must be bound against the child.
/// Output column names come from aliases, or the expressions otherwise.
class ProjectOp final : public PhysicalOperator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_PROJECT_H_
