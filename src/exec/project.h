// Project: evaluates the SELECT list over child batches. Unlike Filter, a
// projection changes row shape, so it cannot just shrink the child's
// selection vector: it pulls the child into an input batch it owns and
// materializes the item expressions' values into the caller's batch (both
// batches' row storage is recycled across calls).

#ifndef QUERYER_EXEC_PROJECT_H_
#define QUERYER_EXEC_PROJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Projection. Item expressions must be bound against the child.
/// Output column names come from aliases, or the expressions otherwise.
/// The input batch is owned by the operator and recycled, so the child's
/// rows are materialized into reused storage.
class ProjectOp final : public PhysicalOperator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names);

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::unique_ptr<RowBatch> input_;  // Sized lazily from the output batch.
};

}  // namespace queryer

#endif  // QUERYER_EXEC_PROJECT_H_
