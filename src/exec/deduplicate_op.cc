#include "exec/deduplicate_op.h"

#include "common/logging.h"

namespace queryer {

DeduplicateOp::DeduplicateOp(OperatorPtr child,
                             std::shared_ptr<TableRuntime> runtime,
                             ExecStats* stats, ThreadPool* pool,
                             bool concurrent_sessions, std::size_t batch_size,
                             std::shared_ptr<TraceSink> trace)
    : child_(std::move(child)),
      runtime_(std::move(runtime)),
      stats_(stats),
      pool_(pool),
      concurrent_sessions_(concurrent_sessions),
      batch_size_(batch_size),
      trace_(std::move(trace)) {
  // DR_E rows come from the base table, so the child must expose all of its
  // columns (same arity).
  QUERYER_CHECK(child_->output_columns().size() ==
                runtime_->table().num_attributes());
  output_columns_ = child_->output_columns();
}

Status DeduplicateOp::OpenImpl() {
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> input,
                           DrainOperator(child_.get(), batch_size_));
  std::vector<EntityId> query_entities;
  query_entities.reserve(input.size());
  for (const Row& row : input) {
    if (row.entity_id == kInvalidEntityId) {
      return Status::ExecutionError(
          "Deduplicate input rows must come from a base table");
    }
    query_entities.push_back(row.entity_id);
  }
  // Resolve fills the group keys under the same Link Index snapshot that
  // determined the membership: a concurrent session publishing links while
  // this operator streams must not change the groups mid-answer.
  Deduplicator deduplicator(runtime_.get(), stats_, pool_,
                            concurrent_sessions_, trace_.get());
  result_entities_ = deduplicator.Resolve(query_entities, &group_keys_);
  position_ = 0;
  return Status::OK();
}

Result<bool> DeduplicateOp::NextImpl(RowBatch* batch) {
  batch->Clear();
  const Table& table = runtime_->table();
  while (position_ < result_entities_.size() && !batch->full()) {
    EntityId e = result_entities_[position_];
    Row* row = batch->AppendRow();
    row->values = table.row(e);  // Copy-assign into reused string storage.
    row->entity_id = e;
    row->group_key = group_keys_[position_];
    ++position_;
  }
  return !batch->empty();
}

void DeduplicateOp::CloseImpl() {
  result_entities_.clear();
  group_keys_.clear();
}

}  // namespace queryer
