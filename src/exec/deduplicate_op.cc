#include "exec/deduplicate_op.h"

#include "common/logging.h"

namespace queryer {

DeduplicateOp::DeduplicateOp(OperatorPtr child,
                             std::shared_ptr<TableRuntime> runtime,
                             ExecStats* stats, ThreadPool* pool,
                             bool concurrent_sessions, std::size_t batch_size,
                             std::shared_ptr<TraceSink> trace,
                             std::shared_ptr<const CancelContext> cancel)
    : child_(std::move(child)),
      runtime_(std::move(runtime)),
      stats_(stats),
      pool_(pool),
      concurrent_sessions_(concurrent_sessions),
      batch_size_(batch_size),
      trace_(std::move(trace)),
      cancel_(std::move(cancel)) {
  // DR_E rows come from the base table, so the child must expose all of its
  // columns (same arity).
  QUERYER_CHECK(child_->output_columns().size() ==
                runtime_->table().num_attributes());
  output_columns_ = child_->output_columns();
}

Status DeduplicateOp::OpenImpl() {
  // Drain the child for entity ids only — the child is a scan (or fused
  // filter+scan) emitting reference batches, so no row is materialized to
  // determine DR_E membership.
  QUERYER_RETURN_NOT_OK(child_->Open());
  std::vector<EntityId> query_entities;
  {
    RowBatch batch(batch_size_ == 0 ? 1 : batch_size_);
    while (true) {
      QUERYER_ASSIGN_OR_RETURN(bool has, child_->Next(&batch));
      if (!has) break;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const EntityId e = batch.entity_id(i);
        if (e == kInvalidEntityId) {
          return Status::ExecutionError(
              "Deduplicate input rows must come from a base table");
        }
        query_entities.push_back(e);
      }
    }
  }
  child_->Close();
  // Resolve fills the group keys under the same Link Index snapshot that
  // determined the membership: a concurrent session publishing links while
  // this operator streams must not change the groups mid-answer.
  Deduplicator deduplicator(runtime_.get(), stats_, pool_,
                            concurrent_sessions_, trace_.get(),
                            cancel_.get());
  QUERYER_ASSIGN_OR_RETURN(result_entities_,
                           deduplicator.Resolve(query_entities, &group_keys_));
  position_ = 0;
  return Status::OK();
}

Result<bool> DeduplicateOp::NextImpl(RowBatch* batch) {
  batch->Clear();
  // Emit references into the base table: resolved representatives flow
  // downstream (to GroupEntities or the emit boundary) without copying a
  // single string here.
  batch->BeginReference(&runtime_->table());
  while (position_ < result_entities_.size() && !batch->full()) {
    batch->AppendReference(result_entities_[position_],
                           group_keys_[position_]);
    ++position_;
  }
  return !batch->empty();
}

void DeduplicateOp::CloseImpl() {
  result_entities_.clear();
  group_keys_.clear();
}

}  // namespace queryer
