#include "exec/executor.h"

#include <atomic>

#include "exec/dedup_join_op.h"
#include "exec/deduplicate_op.h"
#include "exec/filter.h"
#include "exec/group_entities_op.h"
#include "exec/group_filter.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/table_scan.h"

namespace queryer {

namespace {

// Binds the pair of join keys to the children, swapping them when the plan
// stored them in the opposite orientation (ON a.x = b.y vs ON b.y = a.x).
Status BindJoinKeys(const std::vector<std::string>& left_columns,
                    const std::vector<std::string>& right_columns,
                    ExprPtr* left_key, ExprPtr* right_key) {
  Status left_status = (*left_key)->Bind(left_columns);
  if (left_status.ok()) {
    return (*right_key)->Bind(right_columns);
  }
  // Try the swapped orientation.
  Status swapped_left = (*right_key)->Bind(left_columns);
  if (!swapped_left.ok()) return left_status;
  QUERYER_RETURN_NOT_OK((*left_key)->Bind(right_columns));
  std::swap(*left_key, *right_key);
  return Status::OK();
}

std::uint64_t NextSessionId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

OperatorCategory CategoryOf(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan: return OperatorCategory::kScan;
    case PlanKind::kFilter: return OperatorCategory::kFilter;
    case PlanKind::kGroupFilter: return OperatorCategory::kGroupFilter;
    case PlanKind::kProject: return OperatorCategory::kProject;
    case PlanKind::kHashJoin: return OperatorCategory::kJoin;
    case PlanKind::kDeduplicate: return OperatorCategory::kDedup;
    case PlanKind::kDedupJoin: return OperatorCategory::kDedupJoin;
    case PlanKind::kGroupEntities: return OperatorCategory::kGroup;
  }
  return OperatorCategory::kOther;
}

}  // namespace

Executor::Executor(const Catalog* catalog, RuntimeRegistry* runtimes,
                   ExecStats* stats, ThreadPool* pool,
                   bool concurrent_sessions, std::size_t batch_size,
                   std::shared_ptr<const std::atomic<bool>> session_cancel,
                   PlanProfile* profile, std::shared_ptr<TraceSink> trace,
                   std::shared_ptr<const CancelContext> cancel)
    : catalog_(catalog),
      runtimes_(runtimes),
      stats_(stats),
      pool_(pool),
      concurrent_sessions_(concurrent_sessions),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      session_cancel_(std::move(session_cancel)),
      profile_(profile),
      trace_(std::move(trace)),
      cancel_(std::move(cancel)),
      session_id_(NextSessionId()) {}

OperatorProfile* Executor::MakeNode(const LogicalPlan& plan,
                                    OperatorProfile* parent) {
  if (profile_ == nullptr) return nullptr;
  return profile_->NewNode(parent, plan.NodeLabel(), CategoryOf(plan.kind));
}

Result<OperatorPtr> Executor::LowerScan(const LogicalPlan& plan,
                                        OperatorProfile* parent) {
  QUERYER_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(plan.table_name));
  OperatorProfile* node = MakeNode(plan, parent);
  OperatorPtr op(new TableScanOp(std::move(table), plan.table_alias, pool_,
                                 batch_size_, stats_, session_id_,
                                 session_cancel_, trace_));
  op->set_profile(node);
  return op;
}

Result<OperatorPtr> Executor::Lower(const LogicalPlan& plan) {
  return LowerNode(plan, nullptr);
}

Result<OperatorPtr> Executor::LowerNode(const LogicalPlan& plan,
                                        OperatorProfile* parent) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return LowerScan(plan, parent);
    case PlanKind::kFilter: {
      // Filter over Scan fuses into the scan: the predicate runs against
      // the table's stored rows, so rejected tuples are never copied —
      // and a morsel-parallel scan evaluates it on the workers. The fused
      // pair shares ONE profile node (there is one physical operator), with
      // a label that shows both halves.
      if (plan.children[0]->kind == PlanKind::kScan) {
        QUERYER_ASSIGN_OR_RETURN(OperatorPtr child,
                                 LowerNode(*plan.children[0], parent));
        ExprPtr predicate = plan.predicate->Clone();
        QUERYER_RETURN_NOT_OK(predicate->Bind(child->output_columns()));
        static_cast<TableScanOp*>(child.get())
            ->FusePredicate(std::move(predicate));
        if (child->profile() != nullptr) {
          child->profile()->label =
              plan.children[0]->NodeLabel() + " + " + plan.NodeLabel();
        }
        return child;
      }
      OperatorProfile* node = MakeNode(plan, parent);
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child,
                               LowerNode(*plan.children[0], node));
      ExprPtr predicate = plan.predicate->Clone();
      QUERYER_RETURN_NOT_OK(predicate->Bind(child->output_columns()));
      OperatorPtr op(new FilterOp(std::move(child), std::move(predicate)));
      op->set_profile(node);
      return op;
    }
    case PlanKind::kGroupFilter: {
      OperatorProfile* node = MakeNode(plan, parent);
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child,
                               LowerNode(*plan.children[0], node));
      ExprPtr predicate = plan.predicate->Clone();
      QUERYER_RETURN_NOT_OK(predicate->Bind(child->output_columns()));
      OperatorPtr op(new GroupFilterOp(std::move(child), std::move(predicate),
                                       batch_size_));
      op->set_profile(node);
      return op;
    }
    case PlanKind::kProject: {
      OperatorProfile* node = MakeNode(plan, parent);
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child,
                               LowerNode(*plan.children[0], node));
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (const SelectItem& item : plan.items) {
        ExprPtr expr = item.expr->Clone();
        QUERYER_RETURN_NOT_OK(expr->Bind(child->output_columns()));
        names.push_back(item.alias.empty() ? item.expr->ToString()
                                           : item.alias);
        exprs.push_back(std::move(expr));
      }
      OperatorPtr op(
          new ProjectOp(std::move(child), std::move(exprs), std::move(names)));
      op->set_profile(node);
      return op;
    }
    case PlanKind::kHashJoin: {
      OperatorProfile* node = MakeNode(plan, parent);
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr left,
                               LowerNode(*plan.children[0], node));
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr right,
                               LowerNode(*plan.children[1], node));
      ExprPtr left_key = plan.left_key->Clone();
      ExprPtr right_key = plan.right_key->Clone();
      QUERYER_RETURN_NOT_OK(BindJoinKeys(left->output_columns(),
                                         right->output_columns(), &left_key,
                                         &right_key));
      OperatorPtr op(new HashJoinOp(
          std::move(left), std::move(right), std::move(left_key),
          std::move(right_key), batch_size_, pool_, stats_, session_id_,
          session_cancel_, trace_));
      op->set_profile(node);
      return op;
    }
    case PlanKind::kDeduplicate: {
      OperatorProfile* node = MakeNode(plan, parent);
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child,
                               LowerNode(*plan.children[0], node));
      QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                               FindRuntime(*runtimes_, plan.table_name));
      OperatorPtr op(new DeduplicateOp(std::move(child), std::move(runtime),
                                       stats_, pool_, concurrent_sessions_,
                                       batch_size_, trace_, cancel_));
      op->set_profile(node);
      return op;
    }
    case PlanKind::kDedupJoin: {
      OperatorProfile* node = MakeNode(plan, parent);
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr left,
                               LowerNode(*plan.children[0], node));
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr right,
                               LowerNode(*plan.children[1], node));
      ExprPtr left_key = plan.left_key->Clone();
      ExprPtr right_key = plan.right_key->Clone();
      QUERYER_RETURN_NOT_OK(BindJoinKeys(left->output_columns(),
                                         right->output_columns(), &left_key,
                                         &right_key));
      std::shared_ptr<TableRuntime> runtime;
      if (plan.dirty_side != DirtySide::kNone) {
        QUERYER_ASSIGN_OR_RETURN(runtime,
                                 FindRuntime(*runtimes_, plan.table_name));
      }
      OperatorPtr op(new DedupJoinOp(
          std::move(left), std::move(right), std::move(left_key),
          std::move(right_key), plan.dirty_side, std::move(runtime), stats_,
          pool_, concurrent_sessions_, batch_size_, trace_, cancel_));
      op->set_profile(node);
      return op;
    }
    case PlanKind::kGroupEntities: {
      OperatorProfile* node = MakeNode(plan, parent);
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child,
                               LowerNode(*plan.children[0], node));
      OperatorPtr op(new GroupEntitiesOp(std::move(child), stats_, batch_size_,
                                         pool_, trace_));
      op->set_profile(node);
      return op;
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace queryer
