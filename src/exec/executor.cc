#include "exec/executor.h"

#include <atomic>

#include "exec/dedup_join_op.h"
#include "exec/deduplicate_op.h"
#include "exec/filter.h"
#include "exec/group_entities_op.h"
#include "exec/group_filter.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/table_scan.h"

namespace queryer {

namespace {

// Binds the pair of join keys to the children, swapping them when the plan
// stored them in the opposite orientation (ON a.x = b.y vs ON b.y = a.x).
Status BindJoinKeys(const std::vector<std::string>& left_columns,
                    const std::vector<std::string>& right_columns,
                    ExprPtr* left_key, ExprPtr* right_key) {
  Status left_status = (*left_key)->Bind(left_columns);
  if (left_status.ok()) {
    return (*right_key)->Bind(right_columns);
  }
  // Try the swapped orientation.
  Status swapped_left = (*right_key)->Bind(left_columns);
  if (!swapped_left.ok()) return left_status;
  QUERYER_RETURN_NOT_OK((*left_key)->Bind(right_columns));
  std::swap(*left_key, *right_key);
  return Status::OK();
}

std::uint64_t NextSessionId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Executor::Executor(const Catalog* catalog, RuntimeRegistry* runtimes,
                   ExecStats* stats, ThreadPool* pool,
                   bool concurrent_sessions, std::size_t batch_size,
                   std::shared_ptr<const std::atomic<bool>> session_cancel)
    : catalog_(catalog),
      runtimes_(runtimes),
      stats_(stats),
      pool_(pool),
      concurrent_sessions_(concurrent_sessions),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      session_cancel_(std::move(session_cancel)),
      session_id_(NextSessionId()) {}

Result<OperatorPtr> Executor::LowerScan(const LogicalPlan& plan) {
  QUERYER_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(plan.table_name));
  return OperatorPtr(new TableScanOp(std::move(table), plan.table_alias, pool_,
                                     batch_size_, stats_, session_id_,
                                     session_cancel_));
}

Result<OperatorPtr> Executor::Lower(const LogicalPlan& plan) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return LowerScan(plan);
    case PlanKind::kFilter: {
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child, Lower(*plan.children[0]));
      ExprPtr predicate = plan.predicate->Clone();
      QUERYER_RETURN_NOT_OK(predicate->Bind(child->output_columns()));
      // Filter over Scan fuses into the scan: the predicate runs against
      // the table's stored rows, so rejected tuples are never copied —
      // and a morsel-parallel scan evaluates it on the workers.
      if (plan.children[0]->kind == PlanKind::kScan) {
        static_cast<TableScanOp*>(child.get())
            ->FusePredicate(std::move(predicate));
        return child;
      }
      return OperatorPtr(new FilterOp(std::move(child), std::move(predicate)));
    }
    case PlanKind::kGroupFilter: {
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child, Lower(*plan.children[0]));
      ExprPtr predicate = plan.predicate->Clone();
      QUERYER_RETURN_NOT_OK(predicate->Bind(child->output_columns()));
      return OperatorPtr(new GroupFilterOp(std::move(child),
                                           std::move(predicate), batch_size_));
    }
    case PlanKind::kProject: {
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child, Lower(*plan.children[0]));
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (const SelectItem& item : plan.items) {
        ExprPtr expr = item.expr->Clone();
        QUERYER_RETURN_NOT_OK(expr->Bind(child->output_columns()));
        names.push_back(item.alias.empty() ? item.expr->ToString()
                                           : item.alias);
        exprs.push_back(std::move(expr));
      }
      return OperatorPtr(
          new ProjectOp(std::move(child), std::move(exprs), std::move(names)));
    }
    case PlanKind::kHashJoin: {
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr left, Lower(*plan.children[0]));
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr right, Lower(*plan.children[1]));
      ExprPtr left_key = plan.left_key->Clone();
      ExprPtr right_key = plan.right_key->Clone();
      QUERYER_RETURN_NOT_OK(BindJoinKeys(left->output_columns(),
                                         right->output_columns(), &left_key,
                                         &right_key));
      return OperatorPtr(new HashJoinOp(
          std::move(left), std::move(right), std::move(left_key),
          std::move(right_key), batch_size_, pool_, stats_, session_id_,
          session_cancel_));
    }
    case PlanKind::kDeduplicate: {
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child, Lower(*plan.children[0]));
      QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<TableRuntime> runtime,
                               FindRuntime(*runtimes_, plan.table_name));
      return OperatorPtr(new DeduplicateOp(std::move(child), std::move(runtime),
                                           stats_, pool_, concurrent_sessions_,
                                           batch_size_));
    }
    case PlanKind::kDedupJoin: {
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr left, Lower(*plan.children[0]));
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr right, Lower(*plan.children[1]));
      ExprPtr left_key = plan.left_key->Clone();
      ExprPtr right_key = plan.right_key->Clone();
      QUERYER_RETURN_NOT_OK(BindJoinKeys(left->output_columns(),
                                         right->output_columns(), &left_key,
                                         &right_key));
      std::shared_ptr<TableRuntime> runtime;
      if (plan.dirty_side != DirtySide::kNone) {
        QUERYER_ASSIGN_OR_RETURN(runtime,
                                 FindRuntime(*runtimes_, plan.table_name));
      }
      return OperatorPtr(new DedupJoinOp(
          std::move(left), std::move(right), std::move(left_key),
          std::move(right_key), plan.dirty_side, std::move(runtime), stats_,
          pool_, concurrent_sessions_, batch_size_));
    }
    case PlanKind::kGroupEntities: {
      QUERYER_ASSIGN_OR_RETURN(OperatorPtr child, Lower(*plan.children[0]));
      return OperatorPtr(
          new GroupEntitiesOp(std::move(child), stats_, batch_size_, pool_));
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace queryer
