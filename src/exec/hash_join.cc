#include "exec/hash_join.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace queryer {

std::string CanonicalJoinKey(const std::string& value) {
  std::optional<double> number = ParseNumber(value);
  if (number.has_value()) {
    // Canonical numeric form so "7", "7.0" and " 7" join.
    if (*number == static_cast<double>(static_cast<long long>(*number))) {
      return "#" + std::to_string(static_cast<long long>(*number));
    }
    return "#" + std::to_string(*number);
  }
  return ToLower(value);
}

std::string JoinKeyOf(const Expr& key_expr, const std::vector<std::string>& row) {
  return CanonicalJoinKey(key_expr.EvalValue(row).text);
}

namespace {

// Concatenates left ++ right into `out`, element-wise so the out row's
// string buffers are reused across batches.
void ConcatInto(const Row& left, const Row& right, Row* out) {
  const std::size_t ln = left.values.size();
  const std::size_t rn = right.values.size();
  out->values.resize(ln + rn);
  for (std::size_t i = 0; i < ln; ++i) out->values[i] = left.values[i];
  for (std::size_t i = 0; i < rn; ++i) out->values[ln + i] = right.values[i];
}

}  // namespace

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
                       ExprPtr right_key, std::size_t batch_size)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      batch_size_(batch_size == 0 ? 1 : batch_size) {
  QUERYER_CHECK(left_key_->IsBound());
  QUERYER_CHECK(right_key_->IsBound());
  output_columns_ = left_->output_columns();
  for (const std::string& column : right_->output_columns()) {
    output_columns_.push_back(column);
  }
}

Status HashJoinOp::Open() {
  QUERYER_RETURN_NOT_OK(left_->Open());
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           DrainOperator(right_.get(), batch_size_));
  build_side_.clear();
  // Sizing the table for one row per bucket up front avoids the rehash
  // cascade the per-tuple inserts used to pay.
  build_side_.reserve(rows.size());
  for (Row& row : rows) {
    std::string key = JoinKeyOf(*right_key_, row.values);
    if (key.empty()) continue;  // NULL keys never join.
    build_side_[std::move(key)].push_back(std::move(row));
  }
  probe_live_ = false;
  probe_pos_ = 0;
  current_matches_ = nullptr;
  match_index_ = 0;
  done_ = false;
  output_counter_ = 0;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(RowBatch* batch) {
  batch->Clear();
  if (done_) return false;
  if (probe_ == nullptr) {
    probe_ = std::make_unique<RowBatch>(batch->capacity());
  }
  while (!batch->full()) {
    if (current_matches_ != nullptr) {
      if (match_index_ < current_matches_->size()) {
        const Row& left = probe_->row(probe_pos_);
        const Row& right = (*current_matches_)[match_index_++];
        Row* out = batch->AppendRow();
        ConcatInto(left, right, out);
        // A plain join output is its own group; dedup plans use DedupJoinOp
        // which assigns real group keys.
        out->group_key = output_counter_++;
        out->entity_id = kInvalidEntityId;
        continue;
      }
      current_matches_ = nullptr;
      ++probe_pos_;
    }
    if (!probe_live_ || probe_pos_ >= probe_->size()) {
      QUERYER_ASSIGN_OR_RETURN(bool has, left_->Next(probe_.get()));
      if (!has) {
        done_ = true;
        break;
      }
      probe_live_ = true;
      probe_pos_ = 0;
      continue;  // The new batch may itself be empty.
    }
    std::string key = JoinKeyOf(*left_key_, probe_->row(probe_pos_).values);
    auto it = key.empty() ? build_side_.end() : build_side_.find(key);
    if (it == build_side_.end()) {
      ++probe_pos_;
      continue;
    }
    current_matches_ = &it->second;
    match_index_ = 0;
  }
  return !batch->empty() || !done_;
}

void HashJoinOp::Close() {
  left_->Close();
  // Right child already closed by DrainOperator in Open().
  build_side_.clear();
}

}  // namespace queryer
