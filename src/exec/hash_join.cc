#include "exec/hash_join.h"

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "parallel/reorder_window.h"

namespace queryer {

std::string CanonicalJoinKey(std::string_view value) {
  std::optional<double> number = ParseNumber(value);
  if (number.has_value()) {
    // Canonical numeric form so "7", "7.0" and " 7" join.
    if (*number == static_cast<double>(static_cast<long long>(*number))) {
      return "#" + std::to_string(static_cast<long long>(*number));
    }
    return "#" + std::to_string(*number);
  }
  return ToLower(value);
}

std::string JoinKeyOf(const Expr& key_expr, const RowRef& row) {
  return CanonicalJoinKey(key_expr.EvalValue(row).text);
}

namespace {

// Concatenates left ++ right into `out`, element-wise so the out row's
// string buffers are reused across batches.
void ConcatInto(const Row& left, const Row& right, Row* out) {
  const std::size_t ln = left.values.size();
  const std::size_t rn = right.values.size();
  out->values.resize(ln + rn);
  for (std::size_t i = 0; i < ln; ++i) out->values[i] = left.values[i];
  for (std::size_t i = 0; i < rn; ++i) out->values[ln + i] = right.values[i];
}

// Same, with the left side read out of a batch (owned or reference mode):
// a reference-mode probe row materializes here, only on a match — the
// join's late-materialization point.
void ConcatInto(const RowBatch& left_batch, std::size_t i, const Row& right,
                Row* out) {
  const std::size_t ln = left_batch.width(i);
  const std::size_t rn = right.values.size();
  out->values.resize(ln + rn);
  for (std::size_t c = 0; c < ln; ++c) {
    const std::string_view v = left_batch.value(i, c);
    out->values[c].assign(v.data(), v.size());
  }
  for (std::size_t c = 0; c < rn; ++c) out->values[ln + c] = right.values[c];
}

}  // namespace

/// Shared between the consuming operator and its probe tasks. Tasks hold
/// the shared_ptr (plus the build table and key expression), so a join
/// abandoned mid-stream stays memory-safe: straggler tasks finish against
/// this state and the last reference frees it.
struct HashJoinOp::ProbeState {
  std::shared_ptr<const BuildTable> build;
  std::shared_ptr<const Expr> key;
  std::uint64_t session_id = 0;
  std::shared_ptr<TraceSink> trace;  // May be null; held for stragglers.

  /// In-order emission + bounded in-flight probe morsels (backpressure).
  ReorderWindow<std::vector<Row>> window;

  explicit ProbeState(std::size_t window_size) : window(window_size) {}

  /// Pool task body: probes one morsel of left rows against the immutable
  /// build table into a per-worker output buffer. Output rows carry no
  /// group key yet — the coordinator assigns group keys at emission, in
  /// output order, so they match the sequential probe exactly.
  void RunMorsel(std::size_t slot, std::vector<Row> rows) {
    std::vector<Row> out;
    if (!window.cancelled()) {
      try {
        QUERYER_FAILPOINT_THROW("join.probe_morsel");
        for (const Row& left : rows) {
          std::string k = JoinKeyOf(*key, left.values);
          if (k.empty()) continue;  // NULL keys never join.
          auto it = build->find(k);
          if (it == build->end()) continue;
          for (const Row& right : it->second) {
            Row joined;
            ConcatInto(left, right, &joined);
            joined.entity_id = kInvalidEntityId;
            out.push_back(std::move(joined));
          }
        }
      } catch (const std::exception& e) {
        window.Fail(slot, e.what());
        return;
      }
      if (trace != nullptr) {
        trace->Instant("probe-morsel", "morsel",
                       "\"session\":" + std::to_string(session_id) +
                           ",\"morsel\":" + std::to_string(slot) +
                           ",\"rows_in\":" + std::to_string(rows.size()) +
                           ",\"rows_out\":" + std::to_string(out.size()));
      }
    }
    window.Complete(slot, std::move(out));
  }
};

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
                       ExprPtr right_key, std::size_t batch_size,
                       ThreadPool* pool, ExecStats* stats,
                       std::uint64_t session_id,
                       std::shared_ptr<const std::atomic<bool>> session_cancel,
                       std::shared_ptr<TraceSink> trace)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      pool_(pool),
      stats_(stats),
      session_id_(session_id),
      session_cancel_(std::move(session_cancel)),
      trace_(std::move(trace)) {
  QUERYER_CHECK(left_key_->IsBound());
  QUERYER_CHECK(right_key_->IsBound());
  output_columns_ = left_->output_columns();
  for (const std::string& column : right_->output_columns()) {
    output_columns_.push_back(column);
  }
}

bool HashJoinOp::UseParallelProbe() const {
  // A parallel probe needs a pool with real parallelism and a non-empty
  // build table (an empty one joins nothing — draining the left child
  // sequentially is strictly cheaper).
  return pool_ != nullptr && pool_->num_threads() > 1 &&
         !build_side_->empty();
}

Status HashJoinOp::OpenImpl() {
  QUERYER_RETURN_NOT_OK(left_->Open());
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           DrainOperator(right_.get(), batch_size_));
  BuildTable build;
  // Sizing the table for one row per bucket up front avoids the rehash
  // cascade the per-tuple inserts used to pay.
  build.reserve(rows.size());
  for (Row& row : rows) {
    std::string key = JoinKeyOf(*right_key_, row.values);
    if (key.empty()) continue;  // NULL keys never join.
    build[std::move(key)].push_back(std::move(row));
  }
  build_side_ = std::make_shared<const BuildTable>(std::move(build));
  probe_live_ = false;
  probe_pos_ = 0;
  current_matches_ = nullptr;
  match_index_ = 0;
  done_ = false;
  output_counter_ = 0;
  left_done_ = false;
  out_buffer_.clear();
  out_pos_ = 0;
  probe_state_.reset();
  if (UseParallelProbe()) {
    // Same window sizing as the parallel scan: each consumed morsel funds
    // one replacement task, bounding the buffered output.
    probe_state_ = std::make_shared<ProbeState>(2 * pool_->num_threads());
    // Link BEFORE the first dispatch: a cursor's Cancel() must reach
    // probe morsels that are already queued on the pool.
    probe_state_->window.LinkSessionCancel(session_cancel_);
    probe_state_->build = build_side_;
    probe_state_->key = left_key_;
    probe_state_->session_id = session_id_;
    probe_state_->trace = trace_;
  }
  return Status::OK();
}

Status HashJoinOp::DispatchProbeMorsels() {
  ProbeState& state = *probe_state_;
  const std::size_t morsel_rows = MorselRowsFor(batch_size_);
  while (!left_done_ && state.window.HasCapacity()) {
    // Accumulate one probe morsel's worth of left rows. The left child may
    // legally return empty batches mid-stream, so pull until the morsel is
    // full or the stream definitively ends.
    std::vector<Row> morsel;
    morsel.reserve(morsel_rows);
    while (morsel.size() < morsel_rows) {
      QUERYER_ASSIGN_OR_RETURN(bool has, left_->Next(probe_.get()));
      if (!has) {
        left_done_ = true;
        break;
      }
      for (std::size_t i = 0; i < probe_->size(); ++i) {
        // Owned rows move; reference rows (a scan feeding the probe)
        // materialize here so the task can probe without the batch.
        morsel.emplace_back();
        probe_->MoveRowInto(i, &morsel.back());
      }
    }
    if (morsel.empty()) break;
    std::size_t slot;
    if (!state.window.TryAcquire(&slot)) break;  // Unreachable: capacity held.
    std::shared_ptr<ProbeState> shared = probe_state_;
    pool_->Submit([shared, slot, m = std::move(morsel)]() mutable {
      shared->RunMorsel(slot, std::move(m));
    });
  }
  return Status::OK();
}

Result<bool> HashJoinOp::NextParallel(RowBatch* batch) {
  ProbeState& state = *probe_state_;
  while (!batch->full()) {
    if (out_pos_ < out_buffer_.size()) {
      // Rows leave the probed buffer by move; group keys are assigned
      // here, in emission order, matching the sequential probe.
      while (out_pos_ < out_buffer_.size() && !batch->full()) {
        Row* out = batch->AppendRow();
        *out = std::move(out_buffer_[out_pos_++]);
        out->group_key = output_counter_++;
      }
      continue;
    }
    QUERYER_RETURN_NOT_OK(DispatchProbeMorsels());
    if (!state.window.HasPending()) break;  // Left drained, all emitted.
    Result<std::vector<Row>> probed = state.window.AwaitNext();
    if (!probed.ok()) {
      // AwaitNext already cancelled the window; queued tasks drain fast.
      return Status::ExecutionError(
          "parallel join probe failed (session " +
          std::to_string(state.session_id) +
          "): " + probed.status().message());
    }
    out_buffer_ = std::move(*probed);
    out_pos_ = 0;
    if (stats_ != nullptr) ++stats_->probe_morsels;
    GlobalEngineMetrics().probe_morsels->Increment();
  }
  return !batch->empty() || out_pos_ < out_buffer_.size() ||
         state.window.HasPending() || !left_done_;
}

Result<bool> HashJoinOp::NextSequential(RowBatch* batch) {
  if (done_) return false;
  while (!batch->full()) {
    if (current_matches_ != nullptr) {
      if (match_index_ < current_matches_->size()) {
        const Row& right = (*current_matches_)[match_index_++];
        Row* out = batch->AppendRow();
        ConcatInto(*probe_, probe_pos_, right, out);
        // A plain join output is its own group; dedup plans use DedupJoinOp
        // which assigns real group keys.
        out->group_key = output_counter_++;
        out->entity_id = kInvalidEntityId;
        continue;
      }
      current_matches_ = nullptr;
      ++probe_pos_;
    }
    if (!probe_live_ || probe_pos_ >= probe_->size()) {
      QUERYER_ASSIGN_OR_RETURN(bool has, left_->Next(probe_.get()));
      if (!has) {
        done_ = true;
        break;
      }
      probe_live_ = true;
      probe_pos_ = 0;
      continue;  // The new batch may itself be empty.
    }
    std::string key = JoinKeyOf(*left_key_, probe_->RowRefAt(probe_pos_));
    auto it = key.empty() ? build_side_->end() : build_side_->find(key);
    if (it == build_side_->end()) {
      ++probe_pos_;
      continue;
    }
    current_matches_ = &it->second;
    match_index_ = 0;
  }
  return !batch->empty() || !done_;
}

Result<bool> HashJoinOp::NextImpl(RowBatch* batch) {
  batch->Clear();
  if (probe_ == nullptr) {
    probe_ = std::make_unique<RowBatch>(batch->capacity());
  }
  if (probe_state_ != nullptr) return NextParallel(batch);
  return NextSequential(batch);
}

void HashJoinOp::CancelProbe() {
  if (probe_state_ != nullptr) {
    // Stragglers deposit empty results and exit; the shared state keeps
    // them (and the build table) safe after this operator is gone.
    probe_state_->window.Cancel();
    probe_state_.reset();
  }
}

void HashJoinOp::CloseImpl() {
  left_->Close();
  // Right child already closed by DrainOperator in Open().
  CancelProbe();
  build_side_.reset();
  out_buffer_.clear();
}

}  // namespace queryer
