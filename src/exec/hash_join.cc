#include "exec/hash_join.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace queryer {

std::string CanonicalJoinKey(const std::string& value) {
  std::optional<double> number = ParseNumber(value);
  if (number.has_value()) {
    // Canonical numeric form so "7", "7.0" and " 7" join.
    if (*number == static_cast<double>(static_cast<long long>(*number))) {
      return "#" + std::to_string(static_cast<long long>(*number));
    }
    return "#" + std::to_string(*number);
  }
  return ToLower(value);
}

std::string JoinKeyOf(const Expr& key_expr, const std::vector<std::string>& row) {
  return CanonicalJoinKey(key_expr.EvalValue(row).text);
}

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
                       ExprPtr right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)) {
  QUERYER_CHECK(left_key_->IsBound());
  QUERYER_CHECK(right_key_->IsBound());
  output_columns_ = left_->output_columns();
  for (const std::string& column : right_->output_columns()) {
    output_columns_.push_back(column);
  }
}

Status HashJoinOp::Open() {
  QUERYER_RETURN_NOT_OK(left_->Open());
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> rows, DrainOperator(right_.get()));
  build_side_.clear();
  for (Row& row : rows) {
    std::string key = JoinKeyOf(*right_key_, row.values);
    if (key.empty()) continue;  // NULL keys never join.
    build_side_[std::move(key)].push_back(std::move(row));
  }
  current_matches_ = nullptr;
  match_index_ = 0;
  output_counter_ = 0;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Row* row) {
  while (true) {
    if (current_matches_ != nullptr && match_index_ < current_matches_->size()) {
      const Row& right = (*current_matches_)[match_index_++];
      row->values = current_left_.values;
      row->values.insert(row->values.end(), right.values.begin(),
                         right.values.end());
      // A plain join output is its own group; dedup plans use DedupJoinOp
      // which assigns real group keys.
      row->group_key = output_counter_++;
      row->entity_id = kInvalidEntityId;
      return true;
    }
    QUERYER_ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
    if (!has) return false;
    std::string key = JoinKeyOf(*left_key_, current_left_.values);
    if (key.empty()) continue;
    auto it = build_side_.find(key);
    current_matches_ = it == build_side_.end() ? nullptr : &it->second;
    match_index_ = 0;
  }
}

void HashJoinOp::Close() {
  left_->Close();
  // Right child already closed by DrainOperator in Open().
  build_side_.clear();
}

}  // namespace queryer
