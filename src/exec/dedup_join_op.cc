#include "exec/dedup_join_op.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "exec/hash_join.h"

namespace queryer {

DedupJoinOp::DedupJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
                         ExprPtr right_key, DirtySide dirty_side,
                         std::shared_ptr<TableRuntime> dirty_runtime,
                         ExecStats* stats, ThreadPool* pool,
                         bool concurrent_sessions, std::size_t batch_size,
                         std::shared_ptr<TraceSink> trace,
                         std::shared_ptr<const CancelContext> cancel)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      dirty_side_(dirty_side),
      dirty_runtime_(std::move(dirty_runtime)),
      stats_(stats),
      pool_(pool),
      concurrent_sessions_(concurrent_sessions),
      batch_size_(batch_size),
      trace_(std::move(trace)),
      cancel_(std::move(cancel)) {
  QUERYER_CHECK(left_key_->IsBound());
  QUERYER_CHECK(right_key_->IsBound());
  if (dirty_side_ != DirtySide::kNone) {
    QUERYER_CHECK(dirty_runtime_ != nullptr);
  }
  output_columns_ = left_->output_columns();
  for (const std::string& column : right_->output_columns()) {
    output_columns_.push_back(column);
  }
}

Status DedupJoinOp::OpenImpl() {
  QUERYER_RETURN_NOT_OK(BuildOutput());
  position_ = 0;
  return Status::OK();
}

Status DedupJoinOp::BuildOutput() {
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> left_rows,
                           DrainOperator(left_.get(), batch_size_));
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> right_rows,
                           DrainOperator(right_.get(), batch_size_));

  // Resolve the dirty input, if any (Alg. 1 lines 1-10).
  if (dirty_side_ != DirtySide::kNone) {
    const bool dirty_is_right = dirty_side_ == DirtySide::kRight;
    std::vector<Row>& dirty_rows = dirty_is_right ? right_rows : left_rows;
    const std::vector<Row>& clean_rows = dirty_is_right ? left_rows : right_rows;
    const Expr& clean_key = dirty_is_right ? *left_key_ : *right_key_;
    const Expr& dirty_key = dirty_is_right ? *right_key_ : *left_key_;

    // Join keys of every variant on the resolved side.
    std::unordered_set<std::string> clean_keys;
    clean_keys.reserve(clean_rows.size());
    for (const Row& row : clean_rows) {
      std::string key = JoinKeyOf(clean_key, row.values);
      if (!key.empty()) clean_keys.insert(std::move(key));
    }

    // QE' = dirty rows that join with the resolved side (Alg. 1 line 4).
    std::vector<EntityId> query_entities;
    for (const Row& row : dirty_rows) {
      if (row.entity_id == kInvalidEntityId) {
        return Status::ExecutionError(
            "dirty input of Deduplicate-Join must come from a base table");
      }
      std::string key = JoinKeyOf(dirty_key, row.values);
      if (!key.empty() && clean_keys.count(key) > 0) {
        query_entities.push_back(row.entity_id);
      }
    }

    // Resolve QE' (Alg. 1 line 5) and materialize its DR from the table.
    // Resolve returns the group keys from the same Link Index snapshot
    // that determined the membership, so concurrent publishes cannot shear
    // the groups mid-materialization.
    Deduplicator deduplicator(dirty_runtime_.get(), stats_, pool_,
                              concurrent_sessions_, trace_.get(),
                              cancel_.get());
    std::vector<EntityId> group_keys;
    QUERYER_ASSIGN_OR_RETURN(std::vector<EntityId> resolved,
                             deduplicator.Resolve(query_entities, &group_keys));
    const Table& table = dirty_runtime_->table();
    dirty_rows.clear();
    dirty_rows.reserve(resolved.size());
    for (std::size_t i = 0; i < resolved.size(); ++i) {
      Row row;
      table.MaterializeRow(resolved[i], &row.values);
      row.entity_id = resolved[i];
      row.group_key = group_keys[i];
      dirty_rows.push_back(std::move(row));
    }
  }

  // Deduplicate-Join operation (Alg. 2) over two resolved inputs: find the
  // (left group, right group) pairs with at least one joining member pair,
  // then emit the Cartesian product of each joined pair's members.
  std::unordered_map<std::string, std::set<std::uint64_t>> right_groups_by_key;
  std::map<std::uint64_t, std::vector<const Row*>> right_members;
  for (const Row& row : right_rows) {
    right_members[row.group_key].push_back(&row);
    std::string key = JoinKeyOf(*right_key_, row.values);
    if (!key.empty()) right_groups_by_key[std::move(key)].insert(row.group_key);
  }

  std::map<std::uint64_t, std::vector<const Row*>> left_members;
  std::set<std::pair<std::uint64_t, std::uint64_t>> joined_pairs;
  for (const Row& row : left_rows) {
    left_members[row.group_key].push_back(&row);
    std::string key = JoinKeyOf(*left_key_, row.values);
    if (key.empty()) continue;
    auto it = right_groups_by_key.find(key);
    if (it == right_groups_by_key.end()) continue;
    for (std::uint64_t right_group : it->second) {
      joined_pairs.emplace(row.group_key, right_group);
    }
  }

  output_.clear();
  // Size the output up front: the emission loop below would otherwise
  // regrow through every Cartesian block.
  std::size_t total_rows = 0;
  for (const auto& [left_group, right_group] : joined_pairs) {
    total_rows +=
        left_members[left_group].size() * right_members[right_group].size();
  }
  output_.reserve(total_rows);
  std::uint64_t next_group = 0;
  for (const auto& [left_group, right_group] : joined_pairs) {
    std::uint64_t group = next_group++;
    for (const Row* l : left_members[left_group]) {
      for (const Row* r : right_members[right_group]) {
        Row out;
        out.values = l->values;
        out.values.insert(out.values.end(), r->values.begin(),
                          r->values.end());
        out.group_key = group;
        out.entity_id = kInvalidEntityId;
        output_.push_back(std::move(out));
      }
    }
  }
  return Status::OK();
}

Result<bool> DedupJoinOp::NextImpl(RowBatch* batch) {
  return EmitMaterialized(&output_, &position_, batch);
}

void DedupJoinOp::CloseImpl() { output_.clear(); }

}  // namespace queryer
