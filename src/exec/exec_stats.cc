#include "exec/exec_stats.h"

#include <algorithm>

#include "common/string_util.h"

namespace queryer {

double ExecStats::other_seconds() const {
  double er = blocking_seconds + block_join_seconds + meta_blocking_seconds() +
              resolution_seconds + group_seconds;
  return std::max(0.0, total_seconds - er - relational_seconds());
}

void ExecStats::Accumulate(const ExecStats& other) {
  comparisons_executed += other.comparisons_executed;
  comparisons_skipped_linked += other.comparisons_skipped_linked;
  comparisons_skipped_inflight += other.comparisons_skipped_inflight;
  matches_found += other.matches_found;
  query_entities += other.query_entities;
  entities_already_resolved += other.entities_already_resolved;
  entities_claimed_elsewhere += other.entities_claimed_elsewhere;
  blocks_after_join += other.blocks_after_join;
  comparisons_after_metablocking += other.comparisons_after_metablocking;
  morsels_scanned += other.morsels_scanned;
  probe_morsels += other.probe_morsels;
  partial_groups_merged += other.partial_groups_merged;
  blocking_seconds += other.blocking_seconds;
  block_join_seconds += other.block_join_seconds;
  purging_seconds += other.purging_seconds;
  filtering_seconds += other.filtering_seconds;
  edge_pruning_seconds += other.edge_pruning_seconds;
  resolution_seconds += other.resolution_seconds;
  group_seconds += other.group_seconds;
  total_seconds += other.total_seconds;
  scan_seconds += other.scan_seconds;
  filter_seconds += other.filter_seconds;
  join_seconds += other.join_seconds;
  project_seconds += other.project_seconds;
  collected_comparisons.insert(collected_comparisons.end(),
                               other.collected_comparisons.begin(),
                               other.collected_comparisons.end());
}

std::string ExecStats::ToString() const {
  std::string out;
  out += "total=" + FormatDouble(total_seconds, 4) + "s";
  out += " comparisons=" + std::to_string(comparisons_executed);
  out += " matches=" + std::to_string(matches_found);
  out += " |QE|=" + std::to_string(query_entities);
  out += " breakdown[block-join=" + FormatDouble(block_join_seconds, 4);
  out += " meta-blocking=" + FormatDouble(meta_blocking_seconds(), 4);
  out += " resolution=" + FormatDouble(resolution_seconds, 4);
  out += " group=" + FormatDouble(group_seconds, 4);
  // New relational buckets go BEFORE the existing trailing "other=" token
  // so scripts that parse the historical fields keep working.
  out += " scan=" + FormatDouble(scan_seconds, 4);
  out += " filter=" + FormatDouble(filter_seconds, 4);
  out += " join=" + FormatDouble(join_seconds, 4);
  out += " project=" + FormatDouble(project_seconds, 4);
  out += " other=" + FormatDouble(other_seconds(), 4) + "]";
  return out;
}

}  // namespace queryer
