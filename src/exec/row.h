// The tuple flowing between physical operators.

#ifndef QUERYER_EXEC_ROW_H_
#define QUERYER_EXEC_ROW_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "storage/table.h"

namespace queryer {

/// Sentinel for rows that no longer map to a single base-table entity
/// (e.g. join outputs).
inline constexpr EntityId kInvalidEntityId =
    std::numeric_limits<EntityId>::max();

/// \brief One tuple.
///
/// `group_key` identifies the duplicate group the row belongs to: rows that
/// are manifestations of the same real-world entity (or, after a join, of
/// the same pair of real-world entities) share a group key, which is what
/// the Group-Entities operator groups on. `entity_id` is the base-table row
/// the tuple came from, needed by the ER operators; it is invalid for
/// composite rows.
struct Row {
  std::vector<std::string> values;
  std::uint64_t group_key = 0;
  EntityId entity_id = kInvalidEntityId;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_ROW_H_
