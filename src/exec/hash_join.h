// HashJoin: classic equi hash join (build right, probe left). Used for
// plain (non-DEDUP) queries and as the relational sub-join inside the
// Deduplicate-Join operator.

#ifndef QUERYER_EXEC_HASH_JOIN_H_
#define QUERYER_EXEC_HASH_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Join-key canonicalization under the engine's value semantics:
/// numeric values normalized, strings lower-cased (joins are
/// case-insensitive, consistent with predicate evaluation).
std::string CanonicalJoinKey(const std::string& value);

/// \brief Evaluates a key expression on a row and canonicalizes it.
std::string JoinKeyOf(const Expr& key_expr, const std::vector<std::string>& row);

/// \brief Inner equi hash join. Key expressions must be bound against the
/// respective child's columns. Output: left columns ++ right columns.
///
/// The build side is drained once at Open (with the hash table sized up
/// front); probing pulls left batches and emits the concatenated rows into
/// the output batch, suspending mid-match-list when it fills. `batch_size`
/// sizes the build-side drain batches.
class HashJoinOp final : public PhysicalOperator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
             ExprPtr right_key, std::size_t batch_size = kDefaultBatchSize);

  Status Open() override;
  Result<bool> Next(RowBatch* batch) override;
  void Close() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr left_key_;
  ExprPtr right_key_;
  std::size_t batch_size_;

  std::unordered_map<std::string, std::vector<Row>> build_side_;

  // Probe state, persisted across Next calls: the current probe batch, the
  // probing row within it, and the position in that row's match list.
  std::unique_ptr<RowBatch> probe_;
  bool probe_live_ = false;     // probe_ holds an undrained batch.
  std::size_t probe_pos_ = 0;
  const std::vector<Row>* current_matches_ = nullptr;
  std::size_t match_index_ = 0;
  bool done_ = false;
  std::uint64_t output_counter_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_HASH_JOIN_H_
