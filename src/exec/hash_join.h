// HashJoin: classic equi hash join (build right, probe left), with a
// morsel-driven parallel probe. Used for plain (non-DEDUP) queries and as
// the relational sub-join inside the Deduplicate-Join operator.

#ifndef QUERYER_EXEC_HASH_JOIN_H_
#define QUERYER_EXEC_HASH_JOIN_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/exec_stats.h"
#include "exec/operator.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "plan/expr.h"

namespace queryer {

/// \brief Join-key canonicalization under the engine's value semantics:
/// numeric values normalized, strings lower-cased (joins are
/// case-insensitive, consistent with predicate evaluation).
std::string CanonicalJoinKey(std::string_view value);

/// \brief Evaluates a key expression on a row and canonicalizes it.
std::string JoinKeyOf(const Expr& key_expr, const RowRef& row);

/// \brief Inner equi hash join. Key expressions must be bound against the
/// respective child's columns. Output: left columns ++ right columns.
///
/// The build side is drained once at Open (with the hash table sized up
/// front). Sequentially, probing pulls left batches and emits the
/// concatenated rows into the output batch, suspending mid-match-list when
/// it fills. `batch_size` sizes the build-side drain batches.
///
/// With a multi-worker pool the probe side runs in parallel: left batches
/// are accumulated into probe morsels (max(batch capacity, kMinMorselRows)
/// rows) and dispatched as one session-tagged pool task each, which probes
/// the immutable build table into a per-worker output buffer. Finished
/// buffers come back through the same bounded ReorderWindow the parallel
/// table scan uses (parallel/reorder_window.h) and are emitted strictly in
/// probe order, with output group keys assigned at emission — so the join's
/// output is bit-identical to the sequential probe at every thread count ×
/// batch size.
class HashJoinOp final : public PhysicalOperator {
 public:
  /// `pool` with more than one worker enables the parallel probe; `stats`
  /// (may be null) receives the probe-morsel counter; `session_id` tags
  /// this join's probe tasks; `session_cancel` (may be null) is the
  /// session-level cancellation flag the probe window observes
  /// (QueryCursor::Cancel); `trace` (may be null) receives one
  /// "probe-morsel" instant event per morsel on the worker that probed it.
  HashJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr left_key,
             ExprPtr right_key, std::size_t batch_size = kDefaultBatchSize,
             ThreadPool* pool = nullptr, ExecStats* stats = nullptr,
             std::uint64_t session_id = 0,
             std::shared_ptr<const std::atomic<bool>> session_cancel =
                 nullptr,
             std::shared_ptr<TraceSink> trace = nullptr);

  /// Cancels any in-flight probe morsels: a query that dies in ANOTHER
  /// operator destroys this join without Close() (DrainOperator's error
  /// path), and window-queued tasks must not keep probing for a dead query.
  ~HashJoinOp() override { CancelProbe(); }

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  struct ProbeState;
  /// Join key -> build-side rows. Immutable once built, so probe tasks
  /// share it without synchronization.
  using BuildTable = std::unordered_map<std::string, std::vector<Row>>;

  bool UseParallelProbe() const;
  Result<bool> NextSequential(RowBatch* batch);
  Result<bool> NextParallel(RowBatch* batch);
  /// Pulls left batches into probe morsels and dispatches them until the
  /// reorder window is full or the left child is exhausted.
  Status DispatchProbeMorsels();
  void CancelProbe();

  OperatorPtr left_;
  OperatorPtr right_;
  // Shared with in-flight probe tasks, which may outlive a Close().
  std::shared_ptr<const Expr> left_key_;
  ExprPtr right_key_;
  std::size_t batch_size_;
  ThreadPool* pool_;
  ExecStats* stats_;
  std::uint64_t session_id_;
  std::shared_ptr<const std::atomic<bool>> session_cancel_;
  // shared_ptr: straggler probe tasks may outlive this operator.
  std::shared_ptr<TraceSink> trace_;

  // Shared with in-flight probe tasks (read-only after Open).
  std::shared_ptr<const BuildTable> build_side_;

  // Probe state shared by both modes: the current probe batch and, for the
  // sequential path, the probing row within it and the position in that
  // row's match list.
  std::unique_ptr<RowBatch> probe_;
  bool probe_live_ = false;     // probe_ holds an undrained batch.
  std::size_t probe_pos_ = 0;
  const std::vector<Row>* current_matches_ = nullptr;
  std::size_t match_index_ = 0;
  bool done_ = false;
  std::uint64_t output_counter_ = 0;

  // Parallel probe state (created at Open when the pool qualifies).
  std::shared_ptr<ProbeState> probe_state_;
  bool left_done_ = false;       // Left child exhausted.
  std::vector<Row> out_buffer_;  // Probed morsel being emitted.
  std::size_t out_pos_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_HASH_JOIN_H_
