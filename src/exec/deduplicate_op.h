// The Deduplicate operator (paper Sec. 6.1): consumes a selection QE_E of
// one base table and produces DR_E — the selection plus all its duplicates
// in the table — by running Query Blocking, Block-Join, Meta-Blocking and
// Comparison-Execution, consulting the Link Index throughout.

#ifndef QUERYER_EXEC_DEDUPLICATE_OP_H_
#define QUERYER_EXEC_DEDUPLICATE_OP_H_

#include "exec/deduplicator.h"
#include "exec/operator.h"

namespace queryer {

/// \brief Physical Deduplicate operator.
///
/// The child must stream rows of `runtime`'s base table (TableScan or
/// Filter over it), with all base columns intact — duplicates that did not
/// pass the child's filter are emitted from the base table directly, which
/// is exactly the semantics that extends the query's answer. Output rows
/// carry their cluster representative as group key.
class DeduplicateOp final : public PhysicalOperator {
 public:
  /// `pool` parallelizes comparison execution (null = sequential);
  /// `concurrent_sessions` selects the Deduplicator's transaction protocol
  /// for engines that admit concurrent Execute calls; `batch_size` sizes
  /// the batches draining the child; `trace` (may be null) receives the
  /// ER-stage spans; `cancel` (may be null) lets the session's Cancel() /
  /// deadline pre-empt the Open-time resolution.
  DeduplicateOp(OperatorPtr child, std::shared_ptr<TableRuntime> runtime,
                ExecStats* stats, ThreadPool* pool = nullptr,
                bool concurrent_sessions = false,
                std::size_t batch_size = kDefaultBatchSize,
                std::shared_ptr<TraceSink> trace = nullptr,
                std::shared_ptr<const CancelContext> cancel = nullptr);

  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::shared_ptr<TableRuntime> runtime_;
  ExecStats* stats_;
  ThreadPool* pool_;
  bool concurrent_sessions_;
  std::size_t batch_size_;
  std::shared_ptr<TraceSink> trace_;
  std::shared_ptr<const CancelContext> cancel_;

  // DR_E materialized at Open time: entity ids plus their cluster keys,
  // captured under one Link Index snapshot so concurrent publishes between
  // Open and the Next calls cannot shear a query's group keys.
  std::vector<EntityId> result_entities_;
  std::vector<EntityId> group_keys_;
  std::size_t position_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_DEDUPLICATE_OP_H_
