// Predicate evaluation against a columnar table, specialized per query.
//
// The engine's comparison semantics are case-insensitive and numeric-aware,
// so two distinct dictionary codes can still compare equal ("EDBT" vs
// "edbt", "1" vs "1.0") — code inequality proves nothing. What a dictionary
// does make cheap is evaluating a predicate once per DISTINCT value: for a
// predicate that touches exactly one column whose values actually repeat
// (dictionary at most half the row count), TablePredicate precomputes a
// truth table indexed by dictionary code (O(distinct) evaluations), after
// which each row costs one code load and one byte lookup — no string
// access at all. Multi-column predicates and near-unique columns (ids,
// titles — where the build would cost as much as the scan) fall back to
// per-row evaluation over RowRef, which still reads string_views straight
// out of the column dictionaries without materializing.
//
// Either path returns bit-identical answers to Expr::EvalBool on the
// materialized row; the truth table is just the same evaluation hoisted
// out of the per-row loop.

#ifndef QUERYER_EXEC_TABLE_PREDICATE_H_
#define QUERYER_EXEC_TABLE_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "plan/expr.h"
#include "storage/table.h"

namespace queryer {

/// \brief A bound predicate compiled against one table's storage. Cheap to
/// copy (morsel tasks carry one by value; the truth table is shared).
class TablePredicate {
 public:
  /// Matches every row (a scan with no fused predicate).
  TablePredicate() = default;

  /// `expr` must be bound such that every column's bound_index equals its
  /// attribute position in `table` — true for fused scan predicates (bound
  /// against the scan's full attribute list) and for statistics probes
  /// bound against the table schema. Both must outlive this object.
  TablePredicate(const Expr* expr, const Table* table);

  bool has_predicate() const { return expr_ != nullptr; }

  /// True when the single-column truth table path is active (exposed for
  /// tests and EXPLAIN).
  bool uses_truth_table() const { return truth_ != nullptr; }

  bool Matches(EntityId id) const {
    if (codes_ != nullptr) {
      const DictCode code = codes_[id];
      if (truth_ != nullptr) return (*truth_)[code] != 0;
      // Single near-unique column: evaluate per row, but feed the value
      // through the hoisted codes/dictionary pointers instead of a full
      // table row lookup.
      return expr_->EvalBoolFast(
          RowRef::SingleColumn(attribute_, dictionary_->value(code)));
    }
    if (expr_ == nullptr) return true;
    return expr_->EvalBoolFast(RowRef(*table_, id));
  }

 private:
  const Expr* expr_ = nullptr;
  const Table* table_ = nullptr;
  // Single-column fast path: the column's codes and dictionary, hoisted.
  // With `truth_` set each row is one byte lookup; without it (near-unique
  // column) each row is one evaluation of the hoisted column value.
  const DictCode* codes_ = nullptr;
  const Dictionary* dictionary_ = nullptr;
  std::size_t attribute_ = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> truth_;
};

}  // namespace queryer

#endif  // QUERYER_EXEC_TABLE_PREDICATE_H_
