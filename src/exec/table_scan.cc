#include "exec/table_scan.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>

namespace queryer {

namespace {

std::size_t MorselRows(std::size_t batch_size) {
  return batch_size < kMinMorselRows ? kMinMorselRows : batch_size;
}

}  // namespace

/// Shared between the consuming operator and its pool tasks. Tasks hold the
/// shared_ptr (plus the table), so a scan abandoned mid-stream (Close with
/// morsels still in flight) stays memory-safe: the straggler tasks finish
/// against this state and the last reference frees it.
struct TableScanOp::MorselScan {
  TablePtr table;
  std::shared_ptr<const Expr> predicate;
  std::size_t morsel_rows = 0;
  std::size_t num_morsels = 0;
  std::uint64_t session_id = 0;

  /// Hands morsels to tasks; every submitted task claims exactly one.
  std::atomic<std::size_t> cursor{0};
  /// Set by Close: unclaimed morsels deposit empty results and quit early.
  std::atomic<bool> cancelled{false};

  std::mutex mutex;
  std::condition_variable ready;
  /// Finished morsels waiting for in-order emission (reorder window).
  std::map<std::size_t, std::vector<Row>> done;
  bool failed = false;
  std::string error;

  void RunOne() {
    std::size_t m = cursor.fetch_add(1, std::memory_order_relaxed);
    if (m >= num_morsels) return;
    std::vector<Row> out;
    if (!cancelled.load(std::memory_order_acquire)) {
      try {
        const std::size_t begin = m * morsel_rows;
        const std::size_t end =
            std::min(begin + morsel_rows, table->num_rows());
        out.reserve(end - begin);
        for (std::size_t pos = begin; pos < end; ++pos) {
          const std::vector<std::string>& values =
              table->row(static_cast<EntityId>(pos));
          if (predicate != nullptr && !predicate->EvalBoolFast(values)) {
            continue;
          }
          Row row;
          row.values = values;
          row.entity_id = static_cast<EntityId>(pos);
          row.group_key = pos;
          out.push_back(std::move(row));
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mutex);
        failed = true;
        if (error.empty()) error = e.what();
        done[m];
        ready.notify_all();
        return;
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    done[m] = std::move(out);
    ready.notify_all();
  }
};

TableScanOp::TableScanOp(TablePtr table, std::string alias, ThreadPool* pool,
                         std::size_t batch_size, ExecStats* stats,
                         std::uint64_t session_id)
    : table_(std::move(table)),
      pool_(pool),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      stats_(stats),
      session_id_(session_id) {
  output_columns_.reserve(table_->num_attributes());
  for (const std::string& name : table_->schema().names()) {
    output_columns_.push_back(alias + "." + name);
  }
}

bool TableScanOp::UseMorsels() const {
  // A parallel scan needs at least two morsels' worth of rows and a pool
  // with real parallelism; otherwise the sequential path is strictly
  // cheaper and, by construction, produces the same row order.
  return pool_ != nullptr && pool_->num_threads() > 1 &&
         table_->num_rows() > MorselRows(batch_size_);
}

Status TableScanOp::Open() {
  position_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  next_emit_ = 0;
  submitted_ = 0;
  morsels_.reset();
  if (UseMorsels()) {
    morsels_ = std::make_shared<MorselScan>();
    morsels_->table = table_;
    morsels_->predicate = predicate_;
    morsels_->morsel_rows = MorselRows(batch_size_);
    morsels_->num_morsels =
        (table_->num_rows() + morsels_->morsel_rows - 1) /
        morsels_->morsel_rows;
    morsels_->session_id = session_id_;
    // Prime the window: enough in-flight morsels to keep every worker fed,
    // few enough to bound the reorder buffer. Each consumed morsel funds
    // one replacement task, so at most `window` buffers ever coexist.
    const std::size_t window =
        std::min(morsels_->num_morsels, 2 * pool_->num_threads());
    for (std::size_t i = 0; i < window; ++i) SubmitMorselTask();
  }
  return Status::OK();
}

void TableScanOp::SubmitMorselTask() {
  if (submitted_ >= morsels_->num_morsels) return;
  ++submitted_;
  std::shared_ptr<MorselScan> state = morsels_;
  pool_->Submit([state] { state->RunOne(); });
}

Result<bool> TableScanOp::NextSequential(RowBatch* batch) {
  const std::size_t n = table_->num_rows();
  while (position_ < n && !batch->full()) {
    const std::vector<std::string>& values = table_->row(position_);
    if (predicate_ == nullptr || predicate_->EvalBoolFast(values)) {
      Row* row = batch->AppendRow();
      row->values = values;
      row->entity_id = position_;
      row->group_key = position_;
    }
    ++position_;
  }
  return position_ < n || !batch->empty();
}

Result<bool> TableScanOp::NextMorsel(RowBatch* batch) {
  MorselScan& state = *morsels_;
  while (!batch->full()) {
    if (buffer_pos_ < buffer_.size()) {
      // Rows leave the morsel buffer by move: the buffer dies with the
      // morsel, so there is nothing to preserve.
      while (buffer_pos_ < buffer_.size() && !batch->full()) {
        *batch->AppendRow() = std::move(buffer_[buffer_pos_++]);
      }
      continue;
    }
    if (next_emit_ >= state.num_morsels) break;
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.ready.wait(lock, [&] { return state.done.count(next_emit_) > 0; });
      if (state.failed) {
        // Abandon the scan: window-queued tasks must not keep materializing
        // morsels for a dead query on the shared pool.
        state.cancelled.store(true, std::memory_order_release);
        return Status::ExecutionError(
            "parallel scan failed (session " +
            std::to_string(state.session_id) + "): " + state.error);
      }
      auto it = state.done.find(next_emit_);
      buffer_ = std::move(it->second);
      state.done.erase(it);
    }
    buffer_pos_ = 0;
    ++next_emit_;
    if (stats_ != nullptr) ++stats_->morsels_scanned;
    SubmitMorselTask();
  }
  return !batch->empty() || next_emit_ < state.num_morsels ||
         buffer_pos_ < buffer_.size();
}

Result<bool> TableScanOp::Next(RowBatch* batch) {
  batch->Clear();
  if (morsels_ != nullptr) return NextMorsel(batch);
  return NextSequential(batch);
}

void TableScanOp::CancelMorsels() {
  if (morsels_ != nullptr) {
    // Stragglers deposit empty results and exit; the shared state keeps
    // them safe after this operator is gone.
    morsels_->cancelled.store(true, std::memory_order_release);
    morsels_.reset();
  }
}

void TableScanOp::Close() {
  CancelMorsels();
  buffer_.clear();
}

}  // namespace queryer
