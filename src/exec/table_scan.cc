#include "exec/table_scan.h"

#include <algorithm>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace queryer {

/// Shared between the consuming operator and its pool tasks. Tasks hold the
/// shared_ptr (plus the table), so a scan abandoned mid-stream (Close with
/// morsels still in flight) stays memory-safe: the straggler tasks finish
/// against this state and the last reference frees it.
struct TableScanOp::MorselScan {
  TablePtr table;
  // Keeps the Expr behind `predicate` alive for straggler tasks.
  std::shared_ptr<const Expr> predicate_expr;
  TablePredicate predicate;
  std::size_t morsel_rows = 0;
  std::size_t num_morsels = 0;
  std::uint64_t session_id = 0;
  std::shared_ptr<TraceSink> trace;  // May be null; held for stragglers.

  /// In-order emission + bounded in-flight morsels (backpressure).
  ReorderWindow<std::vector<EntityId>> window;

  explicit MorselScan(std::size_t window_size) : window(window_size) {}

  /// Pool task body: evaluates the predicate over morsel `m` and deposits
  /// the surviving entity ids — no strings are touched. A cancelled scan
  /// deposits an empty result so the window's accounting stays whole.
  void RunMorsel(std::size_t m) {
    std::vector<EntityId> out;
    if (!window.cancelled()) {
      try {
        // Inside the try: an injected throw takes the window.Fail path,
        // exactly like a real predicate failure.
        QUERYER_FAILPOINT_THROW("scan.morsel");
        const std::size_t begin = m * morsel_rows;
        const std::size_t end =
            std::min(begin + morsel_rows, table->num_rows());
        out.reserve(end - begin);
        for (std::size_t pos = begin; pos < end; ++pos) {
          const EntityId id = static_cast<EntityId>(pos);
          if (predicate.Matches(id)) out.push_back(id);
        }
      } catch (const std::exception& e) {
        window.Fail(m, e.what());
        return;
      }
      if (trace != nullptr) {
        trace->Instant("scan-morsel", "morsel",
                       "\"session\":" + std::to_string(session_id) +
                           ",\"morsel\":" + std::to_string(m) +
                           ",\"rows\":" + std::to_string(out.size()));
      }
    }
    window.Complete(m, std::move(out));
  }
};

TableScanOp::TableScanOp(TablePtr table, std::string alias, ThreadPool* pool,
                         std::size_t batch_size, ExecStats* stats,
                         std::uint64_t session_id,
                         std::shared_ptr<const std::atomic<bool>> session_cancel,
                         std::shared_ptr<TraceSink> trace)
    : table_(std::move(table)),
      pool_(pool),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      stats_(stats),
      session_id_(session_id),
      session_cancel_(std::move(session_cancel)),
      trace_(std::move(trace)) {
  output_columns_.reserve(table_->num_attributes());
  for (const std::string& name : table_->schema().names()) {
    output_columns_.push_back(alias + "." + name);
  }
}

bool TableScanOp::UseMorsels() const {
  // A parallel scan needs at least two morsels' worth of rows and a pool
  // with real parallelism; otherwise the sequential path is strictly
  // cheaper and, by construction, produces the same row order.
  return pool_ != nullptr && pool_->num_threads() > 1 &&
         table_->num_rows() > MorselRowsFor(batch_size_);
}

Status TableScanOp::OpenImpl() {
  position_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
  submitted_ = 0;
  morsels_.reset();
  table_predicate_ = predicate_ != nullptr
                         ? TablePredicate(predicate_.get(), table_.get())
                         : TablePredicate();
  if (UseMorsels()) {
    // Window size: enough in-flight morsels to keep every worker fed, few
    // enough to bound the reorder buffer. Each consumed morsel funds one
    // replacement task, so at most `window` result buffers ever coexist.
    morsels_ = std::make_shared<MorselScan>(2 * pool_->num_threads());
    // Link BEFORE the first dispatch: a cursor's Cancel() must reach
    // morsels that are already queued on the pool.
    morsels_->window.LinkSessionCancel(session_cancel_);
    morsels_->table = table_;
    morsels_->predicate_expr = predicate_;
    morsels_->predicate = table_predicate_;
    morsels_->morsel_rows = MorselRowsFor(batch_size_);
    morsels_->num_morsels =
        (table_->num_rows() + morsels_->morsel_rows - 1) /
        morsels_->morsel_rows;
    morsels_->session_id = session_id_;
    morsels_->trace = trace_;
    // Prime the window up to its capacity (or the whole table).
    while (SubmitMorselTask()) {
    }
  }
  return Status::OK();
}

bool TableScanOp::SubmitMorselTask() {
  MorselScan& state = *morsels_;
  if (submitted_ >= state.num_morsels) return false;  // Table dispatched.
  std::size_t slot;
  if (!state.window.TryAcquire(&slot)) return false;  // Window full.
  ++submitted_;  // == slot + 1: the single coordinator acquires in order.
  std::shared_ptr<MorselScan> shared = morsels_;
  pool_->Submit([shared, slot] { shared->RunMorsel(slot); });
  return true;
}

Result<bool> TableScanOp::NextSequential(RowBatch* batch) {
  const std::size_t n = table_->num_rows();
  batch->BeginReference(table_.get());
  while (position_ < n && !batch->full()) {
    if (table_predicate_.Matches(position_)) {
      batch->AppendReference(position_, position_);
    }
    ++position_;
  }
  return position_ < n || !batch->empty();
}

Result<bool> TableScanOp::NextMorsel(RowBatch* batch) {
  MorselScan& state = *morsels_;
  batch->BeginReference(table_.get());
  while (!batch->full()) {
    if (buffer_pos_ < buffer_.size()) {
      while (buffer_pos_ < buffer_.size() && !batch->full()) {
        const EntityId id = buffer_[buffer_pos_++];
        batch->AppendReference(id, id);
      }
      continue;
    }
    if (state.window.emitted() >= state.num_morsels) break;
    Result<std::vector<EntityId>> morsel = state.window.AwaitNext();
    if (!morsel.ok()) {
      // Abandon the scan: window-queued tasks must not keep materializing
      // morsels for a dead query on the shared pool (AwaitNext already
      // cancelled the window).
      return Status::ExecutionError(
          "parallel scan failed (session " + std::to_string(state.session_id) +
          "): " + morsel.status().message());
    }
    buffer_ = std::move(*morsel);
    buffer_pos_ = 0;
    if (stats_ != nullptr) ++stats_->morsels_scanned;
    GlobalEngineMetrics().scan_morsels->Increment();
    SubmitMorselTask();
  }
  return !batch->empty() || state.window.emitted() < state.num_morsels ||
         buffer_pos_ < buffer_.size();
}

Result<bool> TableScanOp::NextImpl(RowBatch* batch) {
  batch->Clear();
  if (morsels_ != nullptr) return NextMorsel(batch);
  return NextSequential(batch);
}

void TableScanOp::CancelMorsels() {
  if (morsels_ != nullptr) {
    // Stragglers deposit empty results and exit; the shared state keeps
    // them safe after this operator is gone.
    morsels_->window.Cancel();
    morsels_.reset();
  }
}

void TableScanOp::CloseImpl() {
  CancelMorsels();
  buffer_.clear();
}

}  // namespace queryer
