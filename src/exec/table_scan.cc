#include "exec/table_scan.h"

namespace queryer {

TableScanOp::TableScanOp(TablePtr table, std::string alias)
    : table_(std::move(table)) {
  output_columns_.reserve(table_->num_attributes());
  for (const std::string& name : table_->schema().names()) {
    output_columns_.push_back(alias + "." + name);
  }
}

Status TableScanOp::Open() {
  position_ = 0;
  return Status::OK();
}

Result<bool> TableScanOp::Next(Row* row) {
  if (position_ >= table_->num_rows()) return false;
  row->values = table_->row(position_);
  row->entity_id = position_;
  row->group_key = position_;
  ++position_;
  return true;
}

void TableScanOp::Close() {}

}  // namespace queryer
