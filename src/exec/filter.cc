#include "exec/filter.h"

#include "common/logging.h"

namespace queryer {

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  output_columns_ = child_->output_columns();
  QUERYER_CHECK(predicate_->IsBound());
}

Status FilterOp::OpenImpl() { return child_->Open(); }

Result<bool> FilterOp::NextImpl(RowBatch* batch) {
  QUERYER_ASSIGN_OR_RETURN(bool has, child_->Next(batch));
  if (!has) return false;
  predicate_->FilterBatch(batch);
  return true;
}

void FilterOp::CloseImpl() { child_->Close(); }

}  // namespace queryer
