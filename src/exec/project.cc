#include "exec/project.h"

#include "common/logging.h"

namespace queryer {

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  QUERYER_CHECK(exprs_.size() == names.size());
  for (const auto& expr : exprs_) QUERYER_CHECK(expr->IsBound());
  output_columns_ = std::move(names);
}

Status ProjectOp::Open() { return child_->Open(); }

Result<bool> ProjectOp::Next(Row* row) {
  Row input;
  QUERYER_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
  if (!has) return false;
  row->values.clear();
  row->values.reserve(exprs_.size());
  for (const auto& expr : exprs_) {
    row->values.push_back(expr->EvalValue(input.values).text);
  }
  row->group_key = input.group_key;
  row->entity_id = input.entity_id;
  return true;
}

void ProjectOp::Close() { child_->Close(); }

}  // namespace queryer
