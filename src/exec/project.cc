#include "exec/project.h"

#include "common/logging.h"

namespace queryer {

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  QUERYER_CHECK(exprs_.size() == names.size());
  for (const auto& expr : exprs_) QUERYER_CHECK(expr->IsBound());
  output_columns_ = std::move(names);
}

Status ProjectOp::OpenImpl() { return child_->Open(); }

Result<bool> ProjectOp::NextImpl(RowBatch* batch) {
  batch->Clear();
  if (input_ == nullptr) {
    input_ = std::make_unique<RowBatch>(batch->capacity());
  }
  QUERYER_ASSIGN_OR_RETURN(bool has, child_->Next(input_.get()));
  if (!has) return false;
  // Same capacity on both batches: every selected input row fits.
  for (std::size_t i = 0; i < input_->size(); ++i) {
    const RowRef in = input_->RowRefAt(i);
    Row* out = batch->AppendRow();
    out->values.resize(exprs_.size());
    for (std::size_t e = 0; e < exprs_.size(); ++e) {
      out->values[e] = exprs_[e]->EvalValue(in).text;
    }
    out->group_key = input_->group_key(i);
    out->entity_id = input_->entity_id(i);
  }
  return true;
}

void ProjectOp::CloseImpl() { child_->Close(); }

}  // namespace queryer
