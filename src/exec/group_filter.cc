#include "exec/group_filter.h"

#include <unordered_set>

#include "common/logging.h"

namespace queryer {

GroupFilterOp::GroupFilterOp(OperatorPtr child, ExprPtr predicate,
                             std::size_t batch_size)
    : child_(std::move(child)),
      predicate_(std::move(predicate)),
      batch_size_(batch_size) {
  output_columns_ = child_->output_columns();
  QUERYER_CHECK(predicate_->IsBound());
}

Status GroupFilterOp::OpenImpl() {
  QUERYER_ASSIGN_OR_RETURN(std::vector<Row> input,
                           DrainOperator(child_.get(), batch_size_));
  std::unordered_set<std::uint64_t> passing_groups;
  for (const Row& row : input) {
    if (predicate_->EvalBool(row.values)) passing_groups.insert(row.group_key);
  }
  output_.clear();
  for (Row& row : input) {
    if (passing_groups.count(row.group_key) > 0) {
      output_.push_back(std::move(row));
    }
  }
  position_ = 0;
  return Status::OK();
}

Result<bool> GroupFilterOp::NextImpl(RowBatch* batch) {
  return EmitMaterialized(&output_, &position_, batch);
}

void GroupFilterOp::CloseImpl() { output_.clear(); }

}  // namespace queryer
