// Logical query plans. The planner builds these trees from a parsed
// statement; the executor lowers each node to a physical operator.
//
// The tree mirrors the plans in the paper's figures: Scan, Filter, Project
// and HashJoin are the classic relational operators; Deduplicate,
// DedupJoin (with a Dirty-Left/Dirty-Right side) and GroupEntities are the
// three QueryER operators of Sec. 6.

#ifndef QUERYER_PLAN_LOGICAL_PLAN_H_
#define QUERYER_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/expr.h"

namespace queryer {

enum class PlanKind {
  kScan,
  kFilter,
  kGroupFilter,  // Duplicate-group-aware filter (for Filter above Dedup).
  kProject,
  kHashJoin,
  kDeduplicate,
  kDedupJoin,
  kGroupEntities,
};

/// Which input of a DedupJoin is still dirty and must be resolved inside
/// the operator (paper Alg. 1). kNone means both inputs arrive resolved and
/// only the Deduplicate-Join *operation* (Alg. 2) runs.
enum class DirtySide { kNone, kLeft, kRight };

struct LogicalPlan;
using PlanPtr = std::unique_ptr<LogicalPlan>;

/// \brief One item of the SELECT list.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // Empty: derive from the expression.
};

/// \brief A logical plan node; the meaning of the fields depends on `kind`.
struct LogicalPlan {
  PlanKind kind;
  std::vector<PlanPtr> children;

  // kScan / kDeduplicate: the base table involved.
  std::string table_name;
  std::string table_alias;  // Qualifier used in column names; defaults to name.

  // kFilter.
  ExprPtr predicate;

  // kProject.
  std::vector<SelectItem> items;

  // kHashJoin / kDedupJoin: equi-join keys (column refs).
  ExprPtr left_key;
  ExprPtr right_key;
  DirtySide dirty_side = DirtySide::kNone;

  static PlanPtr Scan(std::string table, std::string alias);
  static PlanPtr Filter(PlanPtr child, ExprPtr predicate);
  static PlanPtr GroupFilter(PlanPtr child, ExprPtr predicate);
  static PlanPtr Project(PlanPtr child, std::vector<SelectItem> items);
  static PlanPtr HashJoin(PlanPtr left, PlanPtr right, ExprPtr left_key,
                          ExprPtr right_key);
  static PlanPtr Deduplicate(PlanPtr child, std::string table,
                             std::string alias);
  static PlanPtr DedupJoin(PlanPtr left, PlanPtr right, ExprPtr left_key,
                           ExprPtr right_key, DirtySide dirty_side,
                           std::string dirty_table, std::string dirty_alias);
  static PlanPtr GroupEntities(PlanPtr child);

  /// One-line label of this node alone, e.g. "TableScan(p)" — the EXPLAIN
  /// rendering uses it per line and EXPLAIN ANALYZE's profile tree reuses
  /// it so the two outputs line up.
  std::string NodeLabel() const;

  /// Indented EXPLAIN-style rendering of the subtree.
  std::string ToString(int indent = 0) const;
};

}  // namespace queryer

#endif  // QUERYER_PLAN_LOGICAL_PLAN_H_
