#include "plan/expr.h"

#include <cctype>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/row_batch.h"

namespace queryer {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

int CompareValues(const Expr::Value& a, const Expr::Value& b) {
  if (a.number.has_value() && b.number.has_value()) {
    if (*a.number < *b.number) return -1;
    if (*a.number > *b.number) return 1;
    return 0;
  }
  std::string la = ToLower(a.text);
  std::string lb = ToLower(b.text);
  return la.compare(lb) < 0 ? -1 : (la == lb ? 0 : 1);
}

ExprPtr Expr::Column(std::string table, std::string column) {
  auto e = ExprPtr(new Expr(ExprKind::kColumn));
  e->table_ = std::move(table);
  e->column_ = std::move(column);
  return e;
}

ExprPtr Expr::Literal(std::string text) {
  auto e = ExprPtr(new Expr(ExprKind::kLiteral));
  e->literal_.number = ParseNumber(text);
  e->literal_.text = std::move(text);
  return e;
}

ExprPtr Expr::NumberLiteral(double value) {
  auto e = ExprPtr(new Expr(ExprKind::kLiteral));
  // Integral doubles print without a trailing ".000000".
  if (value == static_cast<double>(static_cast<long long>(value))) {
    e->literal_.text = std::to_string(static_cast<long long>(value));
  } else {
    e->literal_.text = std::to_string(value);
  }
  e->literal_.number = value;
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(ExprKind::kCompare));
  e->compare_op_ = op;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(ExprKind::kAnd));
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(ExprKind::kOr));
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = ExprPtr(new Expr(ExprKind::kNot));
  e->children_.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::In(ExprPtr operand, std::vector<ExprPtr> list) {
  auto e = ExprPtr(new Expr(ExprKind::kIn));
  e->children_.push_back(std::move(operand));
  for (auto& item : list) e->children_.push_back(std::move(item));
  return e;
}

ExprPtr Expr::Like(ExprPtr operand, std::string pattern) {
  auto e = ExprPtr(new Expr(ExprKind::kLike));
  e->children_.push_back(std::move(operand));
  e->children_.push_back(Expr::Literal(std::move(pattern)));
  return e;
}

ExprPtr Expr::Between(ExprPtr operand, ExprPtr low, ExprPtr high) {
  auto e = ExprPtr(new Expr(ExprKind::kBetween));
  e->children_.push_back(std::move(operand));
  e->children_.push_back(std::move(low));
  e->children_.push_back(std::move(high));
  return e;
}

ExprPtr Expr::Mod(ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(ExprKind::kMod));
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = ExprPtr(new Expr(kind_));
  e->compare_op_ = compare_op_;
  e->table_ = table_;
  e->column_ = column_;
  e->bound_index_ = bound_index_;
  e->literal_ = literal_;
  e->children_.reserve(children_.size());
  for (const auto& child : children_) e->children_.push_back(child->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return table_.empty() ? column_ : table_ + "." + column_;
    case ExprKind::kLiteral:
      return literal_.number.has_value() ? literal_.text
                                         : "'" + literal_.text + "'";
    case ExprKind::kCompare:
      return children_[0]->ToString() + " " +
             std::string(CompareOpToString(compare_op_)) + " " +
             children_[1]->ToString();
    case ExprKind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children_[0]->ToString() + " OR " +
             children_[1]->ToString() + ")";
    case ExprKind::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    case ExprKind::kIn: {
      std::string out = children_[0]->ToString() + " IN (";
      for (std::size_t i = 1; i < children_.size(); ++i) {
        if (i > 1) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kLike:
      return children_[0]->ToString() + " LIKE " + children_[1]->ToString();
    case ExprKind::kBetween:
      return children_[0]->ToString() + " BETWEEN " +
             children_[1]->ToString() + " AND " + children_[2]->ToString();
    case ExprKind::kMod:
      return "MOD(" + children_[0]->ToString() + ", " +
             children_[1]->ToString() + ")";
  }
  return "?";
}

Status Expr::Bind(const std::vector<std::string>& columns) {
  if (kind_ == ExprKind::kColumn) {
    const std::string wanted_qualified =
        table_.empty() ? "" : ToLower(table_) + "." + ToLower(column_);
    const std::string wanted_bare = ToLower(column_);
    std::size_t match = kUnbound;
    for (std::size_t i = 0; i < columns.size(); ++i) {
      const std::string col = ToLower(columns[i]);
      bool hit;
      if (!table_.empty()) {
        hit = col == wanted_qualified;
      } else {
        // Bare reference: match the suffix after the qualifier dot, or the
        // whole name when unqualified.
        std::size_t dot = col.rfind('.');
        hit = (dot == std::string::npos ? col : col.substr(dot + 1)) ==
              wanted_bare;
      }
      if (hit) {
        if (match != kUnbound) {
          return Status::PlanError("ambiguous column reference: " + ToString());
        }
        match = i;
      }
    }
    if (match == kUnbound) {
      return Status::PlanError("unknown column: " + ToString());
    }
    bound_index_ = match;
    return Status::OK();
  }
  for (auto& child : children_) QUERYER_RETURN_NOT_OK(child->Bind(columns));
  return Status::OK();
}

bool Expr::IsBound() const {
  if (kind_ == ExprKind::kColumn) return bound_index_ != kUnbound;
  for (const auto& child : children_) {
    if (!child->IsBound()) return false;
  }
  return true;
}

Expr::Value Expr::EvalValue(const RowRef& row) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      QUERYER_DCHECK(bound_index_ != kUnbound);
      Value v;
      const std::string_view text = row.Get(bound_index_);
      v.text.assign(text.data(), text.size());
      v.number = ParseNumber(v.text);
      return v;
    }
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kMod: {
      Value lhs = children_[0]->EvalValue(row);
      Value rhs = children_[1]->EvalValue(row);
      Value v;
      if (lhs.number.has_value() && rhs.number.has_value() && *rhs.number != 0) {
        auto result = static_cast<double>(
            static_cast<long long>(*lhs.number) %
            static_cast<long long>(*rhs.number));
        v.number = result;
        v.text = std::to_string(static_cast<long long>(result));
      }
      return v;  // Non-numeric inputs yield an empty (non-numeric) value.
    }
    default:
      // Predicates used in value position evaluate to "1"/"0".
      return EvalBool(row) ? Value{"1", 1.0} : Value{"0", 0.0};
  }
}

bool Expr::EvalBool(const RowRef& row) const {
  switch (kind_) {
    case ExprKind::kCompare: {
      Value lhs = children_[0]->EvalValue(row);
      Value rhs = children_[1]->EvalValue(row);
      int cmp = CompareValues(lhs, rhs);
      switch (compare_op_) {
        case CompareOp::kEq: return cmp == 0;
        case CompareOp::kNe: return cmp != 0;
        case CompareOp::kLt: return cmp < 0;
        case CompareOp::kLe: return cmp <= 0;
        case CompareOp::kGt: return cmp > 0;
        case CompareOp::kGe: return cmp >= 0;
      }
      return false;
    }
    case ExprKind::kAnd:
      return children_[0]->EvalBool(row) && children_[1]->EvalBool(row);
    case ExprKind::kOr:
      return children_[0]->EvalBool(row) || children_[1]->EvalBool(row);
    case ExprKind::kNot:
      return !children_[0]->EvalBool(row);
    case ExprKind::kIn: {
      Value operand = children_[0]->EvalValue(row);
      for (std::size_t i = 1; i < children_.size(); ++i) {
        if (CompareValues(operand, children_[i]->EvalValue(row)) == 0) {
          return true;
        }
      }
      return false;
    }
    case ExprKind::kLike: {
      Value operand = children_[0]->EvalValue(row);
      return LikeMatch(operand.text, children_[1]->literal().text);
    }
    case ExprKind::kBetween: {
      Value operand = children_[0]->EvalValue(row);
      return CompareValues(operand, children_[1]->EvalValue(row)) >= 0 &&
             CompareValues(operand, children_[2]->EvalValue(row)) <= 0;
    }
    default:
      // A bare value in predicate position is true when numerically nonzero.
      Value v = EvalValue(row);
      return v.number.has_value() && *v.number != 0;
  }
}

namespace {

// Case-insensitive three-way compare without the lowercased copies
// CompareValues makes; byte-wise identical to
// ToLower(a).compare(ToLower(b)) clamped to {-1, 0, 1}.
int CompareTextCI(std::string_view a, std::string_view b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned char ca =
        static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(a[i])));
    unsigned char cb =
        static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(b[i])));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool ApplyCompare(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

// Numeric evaluation of a column/literal/MOD subtree without building a
// Value (no string copies). Mirrors EvalValue's numeric semantics exactly:
// a column is numeric iff its text parses fully, MOD is numeric iff both
// operands are and the divisor is nonzero.
bool TryEvalNumber(const Expr& e, const RowRef& row, double* out) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      std::optional<double> v = ParseNumber(row.Get(e.bound_index()));
      if (!v.has_value()) return false;
      *out = *v;
      return true;
    }
    case ExprKind::kLiteral: {
      if (!e.literal().number.has_value()) return false;
      *out = *e.literal().number;
      return true;
    }
    case ExprKind::kMod: {
      double lhs = 0, rhs = 0;
      if (!TryEvalNumber(*e.children()[0], row, &lhs) ||
          !TryEvalNumber(*e.children()[1], row, &rhs) || rhs == 0) {
        return false;
      }
      *out = static_cast<double>(static_cast<long long>(lhs) %
                                 static_cast<long long>(rhs));
      return true;
    }
    default:
      return false;
  }
}

// Fast-path operand shapes: only these reach the allocation-free compare.
bool IsLeafOperand(const Expr& e) {
  return e.kind() == ExprKind::kColumn || e.kind() == ExprKind::kLiteral ||
         e.kind() == ExprKind::kMod;
}

// Raw text of a column/literal operand (no copy). MOD is excluded: its
// text form needs formatting, so mixed MOD-vs-string comparisons fall back
// to the generic path.
bool RawText(const Expr& e, const RowRef& row, std::string_view* out) {
  if (e.kind() == ExprKind::kColumn) {
    *out = row.Get(e.bound_index());
    return true;
  }
  if (e.kind() == ExprKind::kLiteral) {
    *out = e.literal().text;
    return true;
  }
  return false;
}

}  // namespace

bool Expr::EvalBoolFast(const RowRef& row) const {
  // The comparison fast path: both operands leaf-shaped, so the row is
  // decided without constructing Values. Falls back to EvalBool when the
  // operand mix (e.g. MOD against a non-numeric string) needs the generic
  // semantics.
  if (kind_ == ExprKind::kCompare && IsLeafOperand(*children_[0]) &&
      IsLeafOperand(*children_[1])) {
    const Expr& lhs = *children_[0];
    const Expr& rhs = *children_[1];
    double ln = 0, rn = 0;
    if (TryEvalNumber(lhs, row, &ln) && TryEvalNumber(rhs, row, &rn)) {
      return ApplyCompare(compare_op_, ln < rn ? -1 : (ln > rn ? 1 : 0));
    }
    std::string_view lt, rt;
    if (RawText(lhs, row, &lt) && RawText(rhs, row, &rt)) {
      return ApplyCompare(compare_op_, CompareTextCI(lt, rt));
    }
  }
  return EvalBool(row);
}

std::size_t Expr::FilterBatch(RowBatch* batch) const {
  const std::size_t n = batch->size();
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (EvalBoolFast(batch->RowRefAt(i))) batch->Keep(out++, i);
  }
  batch->TruncateSelection(out);
  return out;
}

void Expr::CollectColumns(std::vector<const Expr*>* out) const {
  if (kind_ == ExprKind::kColumn) {
    out->push_back(this);
    return;
  }
  for (const auto& child : children_) child->CollectColumns(out);
}

}  // namespace queryer
