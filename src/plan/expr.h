// Scalar and predicate expressions of QueryER's query layer.
//
// One Expr tree serves both the AST (produced by the SQL parser) and the
// executable form: before execution an expression is bound against the
// column list of the operator it runs over (resolving column references to
// positions), after which evaluation is allocation-light and Status-free.
//
// Value semantics: all stored values are strings. A comparison is numeric
// when both sides parse fully as doubles, string-wise (case-insensitive)
// otherwise — matching the engine's schema-agnostic treatment of raw CSV
// data.

#ifndef QUERYER_PLAN_EXPR_H_
#define QUERYER_PLAN_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace queryer {

class Expr;
class RowBatch;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kColumn,   // [table.]column reference.
  kLiteral,  // String or numeric literal.
  kCompare,  // lhs op rhs.
  kAnd,
  kOr,
  kNot,
  kIn,       // children[0] IN children[1..].
  kLike,     // children[0] LIKE pattern (payload literal in children[1]).
  kBetween,  // children[0] BETWEEN children[1] AND children[2].
  kMod,      // MOD(children[0], children[1]) — numeric.
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// \brief Expression tree node. Construct via the static factories.
class Expr {
 public:
  /// Runtime value: the raw text plus its numeric interpretation if any.
  struct Value {
    std::string text;
    std::optional<double> number;
  };

  static ExprPtr Column(std::string table, std::string column);
  static ExprPtr Literal(std::string text);
  static ExprPtr NumberLiteral(double value);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr In(ExprPtr operand, std::vector<ExprPtr> list);
  static ExprPtr Like(ExprPtr operand, std::string pattern);
  static ExprPtr Between(ExprPtr operand, ExprPtr low, ExprPtr high);
  static ExprPtr Mod(ExprPtr lhs, ExprPtr rhs);

  ExprKind kind() const { return kind_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  CompareOp compare_op() const { return compare_op_; }

  // kColumn accessors.
  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }
  /// Position in the bound column list; valid after Bind().
  std::size_t bound_index() const { return bound_index_; }

  // kLiteral accessor.
  const Value& literal() const { return literal_; }

  ExprPtr Clone() const;
  std::string ToString() const;

  /// \brief Resolves all column references against `columns`.
  ///
  /// `columns` holds qualified names of the operator's output ("p.title").
  /// A reference may be qualified ("p.title") or bare ("title"); bare
  /// references must be unambiguous. Fails on unknown/ambiguous names.
  Status Bind(const std::vector<std::string>& columns);

  /// True if every column reference in the tree is bound.
  bool IsBound() const;

  /// Evaluates a value expression (kColumn/kLiteral/kMod) on a row. RowRef
  /// converts implicitly from a materialized row's value vector and also
  /// wraps a columnar (Table, EntityId) pair — evaluation never copies the
  /// underlying strings either way.
  Value EvalValue(const RowRef& row) const;

  /// Evaluates a predicate on a row. Must be bound first.
  bool EvalBool(const RowRef& row) const;

  /// \brief EvalBool with the hot-loop fast path: comparisons of
  /// column/literal/MOD operands are decided allocation-free (no Value
  /// copies, no lowercased temporaries), everything else falls back to
  /// EvalBool. Same result for every input; callers evaluating a predicate
  /// per row in bulk (fused scans, FilterBatch) use this.
  bool EvalBoolFast(const RowRef& row) const;

  /// \brief Evaluates this predicate over a whole batch via EvalBoolFast,
  /// compacting the batch's selection vector to the surviving rows.
  /// Returns the survivor count. Must be bound first.
  std::size_t FilterBatch(RowBatch* batch) const;

  /// Collects pointers to all kColumn nodes in the tree.
  void CollectColumns(std::vector<const Expr*>* out) const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  std::vector<ExprPtr> children_;
  CompareOp compare_op_ = CompareOp::kEq;
  std::string table_;
  std::string column_;
  std::size_t bound_index_ = kUnbound;
  Value literal_;

  static constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);
};

/// \brief Three-way comparison under the engine's value semantics:
/// numeric when both sides are numbers, case-insensitive lexicographic
/// otherwise. Returns <0, 0 or >0.
int CompareValues(const Expr::Value& a, const Expr::Value& b);

}  // namespace queryer

#endif  // QUERYER_PLAN_EXPR_H_
