#include "plan/logical_plan.h"

namespace queryer {

PlanPtr LogicalPlan::Scan(std::string table, std::string alias) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kScan;
  plan->table_name = std::move(table);
  plan->table_alias = alias.empty() ? plan->table_name : std::move(alias);
  return plan;
}

PlanPtr LogicalPlan::Filter(PlanPtr child, ExprPtr predicate) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kFilter;
  plan->children.push_back(std::move(child));
  plan->predicate = std::move(predicate);
  return plan;
}

PlanPtr LogicalPlan::GroupFilter(PlanPtr child, ExprPtr predicate) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kGroupFilter;
  plan->children.push_back(std::move(child));
  plan->predicate = std::move(predicate);
  return plan;
}

PlanPtr LogicalPlan::Project(PlanPtr child, std::vector<SelectItem> items) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kProject;
  plan->children.push_back(std::move(child));
  plan->items = std::move(items);
  return plan;
}

PlanPtr LogicalPlan::HashJoin(PlanPtr left, PlanPtr right, ExprPtr left_key,
                              ExprPtr right_key) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kHashJoin;
  plan->children.push_back(std::move(left));
  plan->children.push_back(std::move(right));
  plan->left_key = std::move(left_key);
  plan->right_key = std::move(right_key);
  return plan;
}

PlanPtr LogicalPlan::Deduplicate(PlanPtr child, std::string table,
                                 std::string alias) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kDeduplicate;
  plan->children.push_back(std::move(child));
  plan->table_name = std::move(table);
  plan->table_alias = alias.empty() ? plan->table_name : std::move(alias);
  return plan;
}

PlanPtr LogicalPlan::DedupJoin(PlanPtr left, PlanPtr right, ExprPtr left_key,
                               ExprPtr right_key, DirtySide dirty_side,
                               std::string dirty_table,
                               std::string dirty_alias) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kDedupJoin;
  plan->children.push_back(std::move(left));
  plan->children.push_back(std::move(right));
  plan->left_key = std::move(left_key);
  plan->right_key = std::move(right_key);
  plan->dirty_side = dirty_side;
  plan->table_name = std::move(dirty_table);
  plan->table_alias = dirty_alias.empty() ? plan->table_name : std::move(dirty_alias);
  return plan;
}

PlanPtr LogicalPlan::GroupEntities(PlanPtr child) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kGroupEntities;
  plan->children.push_back(std::move(child));
  return plan;
}

std::string LogicalPlan::ToString(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + NodeLabel() + "\n";
  for (const auto& child : children) out += child->ToString(indent + 1);
  return out;
}

std::string LogicalPlan::NodeLabel() const {
  std::string out;
  switch (kind) {
    case PlanKind::kScan:
      out += "TableScan(" + table_name +
             (table_alias != table_name ? " AS " + table_alias : "") + ")";
      break;
    case PlanKind::kFilter:
      out += "Filter(" + predicate->ToString() + ")";
      break;
    case PlanKind::kGroupFilter:
      out += "GroupFilter(" + predicate->ToString() + ")";
      break;
    case PlanKind::kProject: {
      out += "Project(";
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].expr->ToString();
        if (!items[i].alias.empty()) out += " AS " + items[i].alias;
      }
      out += ")";
      break;
    }
    case PlanKind::kHashJoin:
      out += "HashJoin(" + left_key->ToString() + " = " +
             right_key->ToString() + ")";
      break;
    case PlanKind::kDeduplicate:
      out += "Deduplicate(" + table_alias + ")";
      break;
    case PlanKind::kDedupJoin: {
      const char* side = dirty_side == DirtySide::kLeft    ? "Dirty-Left"
                         : dirty_side == DirtySide::kRight ? "Dirty-Right"
                                                           : "Clean";
      out += std::string("DedupJoin[") + side + "](" + left_key->ToString() +
             " = " + right_key->ToString() + ")";
      break;
    }
    case PlanKind::kGroupEntities:
      out += "GroupEntities";
      break;
  }
  return out;
}

}  // namespace queryer
