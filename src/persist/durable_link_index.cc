#include "persist/durable_link_index.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "persist/crc32.h"
#include "persist/snapshot.h"

namespace queryer {

namespace {

// "QERLILG1" read as a little-endian u64.
constexpr std::uint64_t kLogMagic = 0x31474C494C524551ull;
constexpr std::uint32_t kLogVersion = 1;
constexpr std::size_t kLogHeaderBytes = 16;
// Record: u32 crc | u32 payload_len | u64 lsn | u8 type | payload.
// The crc covers everything after itself.
constexpr std::size_t kRecordHeaderBytes = 17;

enum RecordType : std::uint8_t {
  kLinks = 1,
  kMarks = 2,
  kMarkAll = 3,
  kReset = 4,
};

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status PwriteAll(int fd, const void* data, std::size_t size,
                 std::uint64_t offset, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("pwrite", path));
    }
    p += n;
    offset += static_cast<std::uint64_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Open / recovery
// ---------------------------------------------------------------------------

Result<std::unique_ptr<DurableLinkIndex>> DurableLinkIndex::Open(
    std::string snapshot_path, std::string log_path, LinkIndex* index,
    const Options& options) {
  std::unique_ptr<DurableLinkIndex> dli(new DurableLinkIndex(
      std::move(snapshot_path), std::move(log_path), index, options));
  QUERYER_RETURN_NOT_OK(dli->LoadSnapshot());
  QUERYER_RETURN_NOT_OK(dli->RecoverLog());
  index->set_wal(dli.get());
  return dli;
}

DurableLinkIndex::~DurableLinkIndex() {
  if (index_ != nullptr) index_->set_wal(nullptr);
  if (fd_ >= 0) ::close(fd_);
}

Status DurableLinkIndex::LoadSnapshot() {
  if (!FileExists(snapshot_path_)) return Status::OK();
  QUERYER_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(snapshot_path_, SnapshotKind::kLinkIndex));
  if (reader.num_sections() != 3) {
    return Status::Corruption("link snapshot " + snapshot_path_ +
                              ": expected 3 sections");
  }
  ByteReader meta(reader.section(0));
  const std::uint64_t last_lsn = meta.U64();
  const std::uint64_t num_entities = meta.U64();
  if (!meta.AtEnd() || num_entities != index_->num_entities()) {
    return Status::Corruption(
        "link snapshot " + snapshot_path_ + ": built over " +
        std::to_string(num_entities) + " entities, table has " +
        std::to_string(index_->num_entities()));
  }
  const std::string_view reps = reader.section(1);
  const std::string_view resolved = reader.section(2);
  if (reps.size() != num_entities * sizeof(EntityId) ||
      resolved.size() != num_entities) {
    return Status::Corruption("link snapshot " + snapshot_path_ +
                              ": section sizes do not match entity count");
  }

  const auto* rep = reinterpret_cast<const EntityId*>(reps.data());
  std::vector<LinkIndex::Link> links;
  std::vector<EntityId> marks;
  for (std::uint64_t e = 0; e < num_entities; ++e) {
    if (rep[e] >= num_entities) {
      return Status::Corruption("link snapshot " + snapshot_path_ +
                                ": out-of-range representative");
    }
    // (rep, e) order: union-by-size ties keep the first argument, so the
    // snapshot's representative is re-elected as the root of its cluster
    // and recovery preserves representative ids, not just the partition.
    if (rep[e] != e) links.emplace_back(rep[e], static_cast<EntityId>(e));
    if (resolved[e] != 0) marks.push_back(static_cast<EntityId>(e));
  }
  index_->RestoreLinks(links);
  index_->RestoreMarks(marks);
  recovery_.snapshot_lsn = last_lsn;
  recovery_.recovered_links += links.size();
  lsn_ = last_lsn;
  return Status::OK();
}

Status DurableLinkIndex::RecoverLog() {
  fd_ = ::open(log_path_.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd_ < 0) return Status::IoError(ErrnoMessage("open", log_path_));
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoError(ErrnoMessage("fstat", log_path_));
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  if (size == 0) {
    // Fresh log: write the header.
    ByteWriter header;
    header.U64(kLogMagic);
    header.U32(kLogVersion);
    header.U32(0);
    const std::string bytes = header.Take();
    QUERYER_RETURN_NOT_OK(PwriteAll(fd_, bytes.data(), bytes.size(), 0,
                                    log_path_));
    offset_.store(kLogHeaderBytes, std::memory_order_relaxed);
    return Status::OK();
  }

  std::string buffer(size, '\0');
  std::uint64_t read_off = 0;
  while (read_off < size) {
    const ssize_t n = ::pread(fd_, &buffer[read_off], size - read_off,
                              static_cast<off_t>(read_off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("pread", log_path_));
    }
    if (n == 0) break;  // Racing truncation; treat the rest as torn.
    read_off += static_cast<std::uint64_t>(n);
  }

  if (size < kLogHeaderBytes) {
    return Status::Corruption("link log " + log_path_ + " truncated: " +
                              std::to_string(size) + " bytes");
  }
  ByteReader header(std::string_view(buffer.data(), kLogHeaderBytes));
  const std::uint64_t magic = header.U64();
  const std::uint32_t version = header.U32();
  if (magic != kLogMagic) {
    return Status::Corruption("link log " + log_path_ + ": bad magic");
  }
  if (version > kLogVersion) {
    return Status::NotImplemented("link log " + log_path_ +
                                  " has format version " +
                                  std::to_string(version));
  }

  const EngineMetrics& metrics = GlobalEngineMetrics();
  const std::uint64_t num_entities = index_->num_entities();
  std::uint64_t pos = kLogHeaderBytes;
  while (pos < read_off) {
    // A record that does not fully parse and checksum is the torn tail:
    // everything from here on is discarded.
    if (read_off - pos < kRecordHeaderBytes) break;
    ByteReader head(std::string_view(buffer.data() + pos, kRecordHeaderBytes));
    const std::uint32_t crc = head.U32();
    const std::uint32_t payload_len = head.U32();
    const std::uint64_t lsn = head.U64();
    const std::uint8_t type = head.U8();
    if (payload_len > read_off - pos - kRecordHeaderBytes) break;
    const char* covered = buffer.data() + pos + sizeof(std::uint32_t);
    const std::size_t covered_len =
        kRecordHeaderBytes - sizeof(std::uint32_t) + payload_len;
    if (Crc32(covered, covered_len) != crc) break;

    // The record is checksum-clean; a structural problem now means the
    // table changed under the log (or a writer bug), not a torn write.
    const std::string_view payload(buffer.data() + pos + kRecordHeaderBytes,
                                   payload_len);
    std::vector<LinkIndex::Link> links;
    std::vector<EntityId> marks;
    switch (type) {
      case kLinks: {
        if (payload_len % (2 * sizeof(EntityId)) != 0) {
          return Status::Corruption("link log " + log_path_ +
                                    ": bad links record size");
        }
        ByteReader body(payload);
        for (std::size_t i = 0; i < payload_len / (2 * sizeof(EntityId));
             ++i) {
          const EntityId a = body.U32();
          const EntityId b = body.U32();
          if (a >= num_entities || b >= num_entities) {
            return Status::Corruption("link log " + log_path_ +
                                      ": out-of-range entity id");
          }
          links.emplace_back(a, b);
        }
        break;
      }
      case kMarks: {
        if (payload_len % sizeof(EntityId) != 0) {
          return Status::Corruption("link log " + log_path_ +
                                    ": bad marks record size");
        }
        ByteReader body(payload);
        for (std::size_t i = 0; i < payload_len / sizeof(EntityId); ++i) {
          const EntityId e = body.U32();
          if (e >= num_entities) {
            return Status::Corruption("link log " + log_path_ +
                                      ": out-of-range entity id");
          }
          marks.push_back(e);
        }
        break;
      }
      case kMarkAll:
      case kReset:
        if (payload_len != 0) {
          return Status::Corruption("link log " + log_path_ +
                                    ": non-empty control record");
        }
        break;
      default:
        return Status::Corruption("link log " + log_path_ +
                                  ": unknown record type " +
                                  std::to_string(type));
    }

    // Records already covered by the snapshot are skipped — the crash
    // window between snapshot rename and log truncation leaves them
    // behind harmlessly.
    if (lsn > recovery_.snapshot_lsn) {
      switch (type) {
        case kLinks:
          index_->RestoreLinks(links);
          recovery_.recovered_links += links.size();
          break;
        case kMarks:
          index_->RestoreMarks(marks);
          break;
        case kMarkAll:
          index_->RestoreMarkAll();
          break;
        case kReset:
          index_->Reset();
          break;
      }
      ++recovery_.replayed_records;
      metrics.recovery_replayed_records->Increment();
    }
    if (lsn > lsn_) lsn_ = lsn;
    pos += kRecordHeaderBytes + payload_len;
  }

  if (pos < size) {
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      return Status::IoError(ErrnoMessage("ftruncate", log_path_));
    }
    recovery_.torn_tail_truncated = true;
    metrics.recovery_torn_tails->Increment();
  }
  offset_.store(pos, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Append path
// ---------------------------------------------------------------------------

Status DurableLinkIndex::AppendRecord(std::uint8_t type,
                                      const std::string& payload) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t lsn = lsn_ + 1;
  ByteWriter body;
  body.U32(static_cast<std::uint32_t>(payload.size()));
  body.U64(lsn);
  body.U8(type);
  body.Bytes(payload.data(), payload.size());
  const std::string covered = body.Take();
  ByteWriter rec;
  rec.U32(Crc32(covered.data(), covered.size()));
  rec.Bytes(covered.data(), covered.size());
  const std::string record = rec.Take();

  const std::uint64_t offset = offset_.load(std::memory_order_relaxed);
  // Crash-mid-append drill: an injected error leaves half the record on
  // disk and does NOT advance the offset — recovery truncates the torn
  // half, and (if the process lives on) the next successful append simply
  // overwrites it.
  {
    static Failpoint* fp = Failpoints::Global().Get("li.log_append");
    if (fp->armed()) {
      Status injected = fp->Fire();
      if (!injected.ok()) {
        PwriteAll(fd_, record.data(), record.size() / 2, offset, log_path_);
        return injected.WithContext("li.log_append " + log_path_);
      }
    }
  }
  QUERYER_RETURN_NOT_OK(
      PwriteAll(fd_, record.data(), record.size(), offset, log_path_));
  if (options_.fsync && ::fsync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fsync", log_path_));
  }
  lsn_ = lsn;
  offset_.store(offset + record.size(), std::memory_order_relaxed);

  const EngineMetrics& metrics = GlobalEngineMetrics();
  metrics.li_log_appends->Increment();
  metrics.li_log_bytes->Increment(record.size());
  metrics.li_log_append_wait->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return Status::OK();
}

Status DurableLinkIndex::AppendLinks(
    const std::vector<std::pair<EntityId, EntityId>>& links) {
  ByteWriter payload;
  for (const auto& [a, b] : links) {
    payload.U32(a);
    payload.U32(b);
  }
  return AppendRecord(kLinks, payload.Take());
}

Status DurableLinkIndex::AppendMarks(const std::vector<EntityId>& entities) {
  ByteWriter payload;
  for (EntityId e : entities) payload.U32(e);
  return AppendRecord(kMarks, payload.Take());
}

Status DurableLinkIndex::AppendMarkAll() {
  return AppendRecord(kMarkAll, std::string());
}

Status DurableLinkIndex::AppendReset() {
  return AppendRecord(kReset, std::string());
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

Status DurableLinkIndex::Compact() {
  std::lock_guard<std::mutex> guard(compact_mu_);
  Status status;
  {
    // The shared lock blocks every writer, so the captured state, lsn_,
    // and the log position cannot move under us.
    LinkIndex::ReadView view = index_->SharedSnapshot();
    const std::size_t num_entities = index_->num_entities();
    ByteWriter meta;
    meta.U64(lsn_);
    meta.U64(num_entities);
    ByteWriter reps;
    ByteWriter resolved;
    for (std::size_t e = 0; e < num_entities; ++e) {
      reps.U32(view.Representative(static_cast<EntityId>(e)));
      resolved.U8(view.IsResolved(static_cast<EntityId>(e)) ? 1 : 0);
    }
    SnapshotWriter writer(SnapshotKind::kLinkIndex);
    writer.AddSection(meta.Take());
    writer.AddSection(reps.Take());
    writer.AddSection(resolved.Take());
    status = writer.Commit(snapshot_path_, options_.fsync)
                 .WithContext("link snapshot");
    if (status.ok()) {
      // Everything in the log is now covered by the snapshot's LSN;
      // truncating back to the header is safe even if we crash first
      // (stale records replay as no-ops via the LSN skip).
      if (::ftruncate(fd_, static_cast<off_t>(kLogHeaderBytes)) != 0) {
        status = Status::IoError(ErrnoMessage("ftruncate", log_path_));
      } else {
        offset_.store(kLogHeaderBytes, std::memory_order_relaxed);
        GlobalEngineMetrics().li_log_compactions->Increment();
      }
    }
  }
  return status;
}

Status DurableLinkIndex::MaybeCompact() {
  if (options_.compact_bytes == 0 ||
      offset_.load(std::memory_order_relaxed) < options_.compact_bytes) {
    return Status::OK();
  }
  return Compact();
}

}  // namespace queryer
