// CRC-32 (IEEE 802.3, polynomial 0xEDB88320): the checksum guarding every
// snapshot section and every link-log record. Table-driven, byte at a time
// — persistence I/O is not a hot path, and one shared implementation keeps
// the on-disk format independent of any library.

#ifndef QUERYER_PERSIST_CRC32_H_
#define QUERYER_PERSIST_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace queryer {

/// CRC-32 of `size` bytes at `data`. Pass a previous result as `seed` to
/// checksum discontiguous buffers as one stream (seed 0 starts fresh).
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace queryer

#endif  // QUERYER_PERSIST_CRC32_H_
