// The durable Link Index: an append-only log of published link/mark
// batches plus periodically compacted snapshots, so ER work survives
// restarts (the pay-as-you-go premise made cumulative across processes).
//
// Write path — DurableLinkIndex implements LinkIndexWal and is attached to
// the in-memory LinkIndex, whose mutators call Append* INSIDE their
// exclusive section, BEFORE applying. Each record is CRC-guarded and
// stamped with a monotonically increasing LSN (the log's epoch). A failed
// append aborts the mutation (the index stays untouched) and rides the
// engine's existing publish-failure path; the failed record's torn prefix
// is simply overwritten by the next successful append.
//
// Recovery (Open) — load the snapshot if present (cluster representatives
// + resolved marks + the LSN it covers), then replay log records with
// lsn > snapshot LSN. The first record that fails its CRC or bounds check
// marks the torn tail: the log is truncated there and everything after is
// gone — which is exactly the state of entities whose publish never
// completed, so fault-free re-resolution converges to the clean-engine
// reference. Replay is idempotent (re-applied merges are no-ops).
//
// Compaction (Compact) — capture the index under a ReadView (the shared
// lock blocks all writers, freezing the log), write the snapshot
// atomically (.tmp + rename), then truncate the log. A crash between
// rename and truncate is safe: the stale records carry lsn <= the
// snapshot's and are skipped on replay.
//
// Failpoint: `li.log_append` (an armed error writes a torn half-record —
// the crash-mid-append drill); snapshot writes inherit
// `persist.write_section` / `persist.fsync` from the container.

#ifndef QUERYER_PERSIST_DURABLE_LINK_INDEX_H_
#define QUERYER_PERSIST_DURABLE_LINK_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "matching/link_index.h"

namespace queryer {

/// \brief Durability sidecar of one table's LinkIndex. Construction
/// (Open) recovers on-disk state into the index and attaches itself as
/// the index's WAL; destruction detaches.
class DurableLinkIndex : public LinkIndexWal {
 public:
  struct Options {
    /// fsync the log after every append and snapshots before rename.
    /// Default off: tests and benches value speed; servers opt in.
    bool fsync = false;
    /// Log size that makes MaybeCompact() compact. 0 disables automatic
    /// compaction (Compact() still works).
    std::uint64_t compact_bytes = 4u << 20;
  };

  struct RecoveryStats {
    std::uint64_t snapshot_lsn = 0;      // 0 when no snapshot existed.
    std::uint64_t replayed_records = 0;  // Log records applied on open.
    std::uint64_t recovered_links = 0;   // Links from snapshot + log.
    bool torn_tail_truncated = false;
  };

  /// Recovers `snapshot_path` + `log_path` into `index` and attaches as
  /// its WAL. The index must be fresh (sized to the table, no links) and
  /// must outlive the returned object. Corrupt snapshots/log headers fail
  /// with kCorruption; a torn log TAIL is truncated, not an error.
  static Result<std::unique_ptr<DurableLinkIndex>> Open(
      std::string snapshot_path, std::string log_path, LinkIndex* index,
      const Options& options);

  ~DurableLinkIndex() override;

  DurableLinkIndex(const DurableLinkIndex&) = delete;
  DurableLinkIndex& operator=(const DurableLinkIndex&) = delete;

  // LinkIndexWal — called by LinkIndex under its exclusive lock.
  Status AppendLinks(
      const std::vector<std::pair<EntityId, EntityId>>& links) override;
  Status AppendMarks(const std::vector<EntityId>& entities) override;
  Status AppendMarkAll() override;
  Status AppendReset() override;

  /// Writes a compacted snapshot and truncates the log. Safe from any
  /// thread; blocks link publishing for the capture + write.
  Status Compact();

  /// Compact() iff the log has outgrown Options::compact_bytes.
  Status MaybeCompact();

  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// Current log size in bytes (header included).
  std::uint64_t log_bytes() const {
    return offset_.load(std::memory_order_relaxed);
  }

  /// LSN of the last appended (or recovered) record.
  std::uint64_t last_lsn() const { return lsn_; }

 private:
  DurableLinkIndex(std::string snapshot_path, std::string log_path,
                   LinkIndex* index, const Options& options)
      : snapshot_path_(std::move(snapshot_path)),
        log_path_(std::move(log_path)),
        index_(index),
        options_(options) {}

  Status LoadSnapshot();
  Status RecoverLog();
  Status AppendRecord(std::uint8_t type, const std::string& payload);

  const std::string snapshot_path_;
  const std::string log_path_;
  LinkIndex* index_;
  const Options options_;
  RecoveryStats recovery_;

  int fd_ = -1;
  // Last assigned LSN. Mutated under the index's exclusive lock (appends)
  // and read under its shared lock (compaction capture).
  std::uint64_t lsn_ = 0;
  // End of the valid log; appends go here (atomic so MaybeCompact can
  // poll without any lock).
  std::atomic<std::uint64_t> offset_{0};
  // Serializes concurrent compactors.
  std::mutex compact_mu_;
};

}  // namespace queryer

#endif  // QUERYER_PERSIST_DURABLE_LINK_INDEX_H_
