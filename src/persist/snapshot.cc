#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "persist/crc32.h"

namespace queryer {

namespace {

// "QERSNAP1" read as a little-endian u64.
constexpr std::uint64_t kMagic = 0x3150414E53524551ull;
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kDirEntryBytes = 24;
constexpr std::size_t kSectionAlign = 64;
// Snapshots carry a handful of sections (a few per column at most); a
// count beyond this is corruption, not a big file.
constexpr std::uint32_t kMaxSections = 1u << 20;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::size_t AlignUp(std::size_t offset) {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

// Full (not short) write of `size` bytes; returns IoError on failure.
Status WriteAll(int fd, const void* data, std::size_t size,
                const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write", path));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Filesystem helpers
// ---------------------------------------------------------------------------

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError(ErrnoMessage("mkdir", path));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

// ---------------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------------

Result<std::shared_ptr<MappedFile>> MappedFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot file at " + path);
    }
    return Status::IoError(ErrnoMessage("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IoError(ErrnoMessage("fstat", path));
    ::close(fd);
    return status;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  char* data = nullptr;
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      const Status status = Status::IoError(ErrnoMessage("mmap", path));
      ::close(fd);
      return status;
    }
    data = static_cast<char*>(mapping);
  }
  ::close(fd);  // The mapping outlives the descriptor.
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

Status SnapshotWriter::Commit(const std::string& path, bool fsync) {
  const auto start = std::chrono::steady_clock::now();

  // Directory first (section offsets laid out 64-byte aligned after it),
  // then the header, whose CRC covers its own 20 leading bytes plus the
  // whole directory.
  ByteWriter dir;
  std::size_t offset = AlignUp(kHeaderBytes + kDirEntryBytes * sections_.size());
  for (const std::string& payload : sections_) {
    dir.U64(offset);
    dir.U64(payload.size());
    dir.U32(Crc32(payload.data(), payload.size()));
    dir.U32(0);
    offset = AlignUp(offset + payload.size());
  }
  const std::string dir_bytes = dir.Take();

  ByteWriter header;
  header.U64(kMagic);
  header.U32(kSnapshotFormatVersion);
  header.U32(static_cast<std::uint32_t>(kind_));
  header.U32(static_cast<std::uint32_t>(sections_.size()));
  std::string header_bytes = header.Take();
  std::uint32_t crc = Crc32(header_bytes.data(), header_bytes.size());
  crc = Crc32(dir_bytes.data(), dir_bytes.size(), crc);
  ByteWriter crc_writer;
  crc_writer.U32(crc);
  header_bytes += crc_writer.Take();

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));

  Status status = WriteAll(fd, header_bytes.data(), header_bytes.size(), tmp);
  if (status.ok()) {
    status = WriteAll(fd, dir_bytes.data(), dir_bytes.size(), tmp);
  }
  std::size_t written = kHeaderBytes + dir_bytes.size();
  for (std::size_t i = 0; status.ok() && i < sections_.size(); ++i) {
    // The injection point for "crash while writing a section": an armed
    // error leaves a partial .tmp behind, which a recovering process
    // ignores (only the rename publishes a snapshot).
    status = [&]() -> Status {
      QUERYER_FAILPOINT("persist.write_section");
      return Status::OK();
    }();
    if (!status.ok()) {
      status = status.WithContext("persist.write_section " + path);
      break;
    }
    const std::size_t aligned = AlignUp(written);
    if (aligned > written) {
      static const char kZeros[kSectionAlign] = {0};
      status = WriteAll(fd, kZeros, aligned - written, tmp);
      if (!status.ok()) break;
      written = aligned;
    }
    status = WriteAll(fd, sections_[i].data(), sections_[i].size(), tmp);
    written += sections_[i].size();
  }

  if (status.ok()) {
    status = [&]() -> Status {
      QUERYER_FAILPOINT("persist.fsync");
      return Status::OK();
    }();
    if (!status.ok()) status = status.WithContext("persist.fsync " + path);
  }
  if (status.ok() && fsync && ::fsync(fd) != 0) {
    status = Status::IoError(ErrnoMessage("fsync", tmp));
  }
  ::close(fd);
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IoError(ErrnoMessage("rename", tmp));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }

  const EngineMetrics& metrics = GlobalEngineMetrics();
  metrics.snapshots_written->Increment();
  metrics.snapshot_flush_wait->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

Result<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                            SnapshotKind expected_kind) {
  QUERYER_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                           MappedFile::Map(path));
  const std::string_view bytes =
      file->size() > 0 ? std::string_view(file->data(), file->size())
                       : std::string_view();
  if (bytes.size() < kHeaderBytes) {
    return Status::Corruption("snapshot " + path + " truncated: " +
                              std::to_string(bytes.size()) + " bytes");
  }
  ByteReader header(bytes.substr(0, kHeaderBytes));
  const std::uint64_t magic = header.U64();
  const std::uint32_t version = header.U32();
  const std::uint32_t kind = header.U32();
  const std::uint32_t section_count = header.U32();
  const std::uint32_t header_crc = header.U32();
  if (magic != kMagic) {
    return Status::Corruption("snapshot " + path + ": bad magic");
  }
  if (version > kSnapshotFormatVersion) {
    return Status::NotImplemented(
        "snapshot " + path + " has format version " + std::to_string(version) +
        "; this build reads up to " +
        std::to_string(kSnapshotFormatVersion));
  }
  if (kind != static_cast<std::uint32_t>(expected_kind)) {
    return Status::Corruption("snapshot " + path + ": kind " +
                              std::to_string(kind) + ", expected " +
                              std::to_string(static_cast<std::uint32_t>(
                                  expected_kind)));
  }
  if (section_count > kMaxSections) {
    return Status::Corruption("snapshot " + path + ": implausible section count " +
                              std::to_string(section_count));
  }
  const std::size_t dir_bytes = kDirEntryBytes * section_count;
  if (bytes.size() - kHeaderBytes < dir_bytes) {
    return Status::Corruption("snapshot " + path +
                              ": directory past end of file");
  }
  std::uint32_t crc = Crc32(bytes.data(), kHeaderBytes - sizeof(std::uint32_t));
  crc = Crc32(bytes.data() + kHeaderBytes, dir_bytes, crc);
  if (crc != header_crc) {
    return Status::Corruption("snapshot " + path + ": header checksum mismatch");
  }

  ByteReader dir(bytes.substr(kHeaderBytes, dir_bytes));
  std::vector<std::string_view> sections;
  sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint64_t offset = dir.U64();
    const std::uint64_t size = dir.U64();
    const std::uint32_t section_crc = dir.U32();
    dir.U32();  // reserved
    if (offset % kSectionAlign != 0 || offset > bytes.size() ||
        size > bytes.size() - offset) {
      return Status::Corruption("snapshot " + path + ": section " +
                                std::to_string(i) + " out of bounds");
    }
    const std::string_view payload = bytes.substr(offset, size);
    if (Crc32(payload.data(), payload.size()) != section_crc) {
      return Status::Corruption("snapshot " + path + ": section " +
                                std::to_string(i) + " checksum mismatch");
    }
    sections.push_back(payload);
  }
  return SnapshotReader(std::move(file), std::move(sections));
}

}  // namespace queryer
