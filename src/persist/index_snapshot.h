// Index snapshots: the once-off per-table ER indices — the token-blocking
// TableBlockIndex (TBI_E + ITBI_E) and the attribute-distinctiveness
// weights — serialized so a warm start skips WarmIndices entirely.
//
// Unlike table snapshots these deserialize into owned structures (the
// index is pointer-heavy, not flat), so the mapping is released after
// loading.

#ifndef QUERYER_PERSIST_INDEX_SNAPSHOT_H_
#define QUERYER_PERSIST_INDEX_SNAPSHOT_H_

#include <memory>
#include <string>

#include "blocking/token_blocking.h"
#include "common/status.h"
#include "matching/profile_matcher.h"

namespace queryer {

/// The two warm indices of one table, as loaded from a snapshot.
struct LoadedIndexes {
  std::shared_ptr<TableBlockIndex> tbi;
  AttributeWeights weights;
};

/// \brief Writer/loader for index snapshots (SnapshotKind::kIndex).
class IndexSnapshotIO {
 public:
  static Status Write(const TableBlockIndex& tbi,
                      const AttributeWeights& weights,
                      const std::string& path, bool fsync);

  /// `num_entities` is the row count of the owning table; a snapshot built
  /// over different contents fails validation instead of mis-indexing.
  static Result<LoadedIndexes> Load(const std::string& path,
                                    std::size_t num_entities);
};

}  // namespace queryer

#endif  // QUERYER_PERSIST_INDEX_SNAPSHOT_H_
