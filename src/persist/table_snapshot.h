// Table snapshots: the PR 7 columnar layout, on disk and memory-mappable.
//
// Per attribute the snapshot stores the dictionary-code vector and the
// dictionary (string lengths + concatenated bytes with a NUL after every
// string, exactly the StringArena convention ParseNumber's in-place strtod
// relies on) as separate aligned sections. Loading maps the file and
// points Column::codes and the dictionary views straight into it: the
// heavy bytes are never copied, only the O(distinct) view vector and the
// exact-match index are rebuilt. Codes are first-appearance order by
// construction, so a loaded table is bit-identical to the CSV-built one
// for every query.

#ifndef QUERYER_PERSIST_TABLE_SNAPSHOT_H_
#define QUERYER_PERSIST_TABLE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace queryer {

/// \brief Writer/loader for table snapshots (SnapshotKind::kTable).
class TableSnapshotIO {
 public:
  /// Writes `table` to `path` (atomically: .tmp + rename).
  static Status Write(const Table& table, const std::string& path,
                      bool fsync);

  /// Maps `path` and returns a table whose columns alias the mapping; the
  /// returned table pins the mapping for its lifetime. kCorruption /
  /// kNotImplemented on invalid or future-version files.
  static Result<TablePtr> Load(const std::string& path);
};

}  // namespace queryer

#endif  // QUERYER_PERSIST_TABLE_SNAPSHOT_H_
