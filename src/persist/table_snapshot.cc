#include "persist/table_snapshot.h"

#include <cstring>
#include <limits>
#include <vector>

#include "persist/snapshot.h"
#include "storage/dictionary.h"
#include "storage/schema.h"

namespace queryer {

// Sections: [0] meta (name, row count, attribute names); then per
// attribute a: [1+3a] codes (num_rows raw u32), [2+3a] dictionary string
// lengths (count + raw u32s), [3+3a] dictionary bytes (each string
// NUL-terminated).

Status TableSnapshotIO::Write(const Table& table, const std::string& path,
                              bool fsync) {
  SnapshotWriter writer(SnapshotKind::kTable);

  ByteWriter meta;
  meta.String(table.name());
  meta.U64(table.num_rows());
  meta.U32(static_cast<std::uint32_t>(table.num_attributes()));
  for (const std::string& attr : table.schema().names()) meta.String(attr);
  writer.AddSection(meta.Take());

  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    const ColumnView column = table.column(a);
    ByteWriter codes;
    codes.Bytes(column.codes().data(), column.size() * sizeof(DictCode));
    writer.AddSection(codes.Take());

    const Dictionary& dictionary = column.dictionary();
    ByteWriter lens;
    ByteWriter bytes;
    lens.U32(static_cast<std::uint32_t>(dictionary.size()));
    for (DictCode code = 0; code < dictionary.size(); ++code) {
      const std::string_view value = dictionary.value(code);
      lens.U32(static_cast<std::uint32_t>(value.size()));
      bytes.Bytes(value.data(), value.size());
      bytes.U8(0);  // The arena's NUL terminator, preserved on disk.
    }
    writer.AddSection(lens.Take());
    writer.AddSection(bytes.Take());
  }

  return writer.Commit(path, fsync).WithContext("table snapshot " +
                                                table.name());
}

Result<TablePtr> TableSnapshotIO::Load(const std::string& path) {
  QUERYER_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Open(path, SnapshotKind::kTable));

  ByteReader meta(reader.section(0));
  const std::string name(meta.String());
  const std::uint64_t num_rows = meta.U64();
  const std::uint32_t num_attributes = meta.U32();
  if (!meta.ok() || num_rows > std::numeric_limits<EntityId>::max()) {
    return Status::Corruption("table snapshot " + path + ": bad meta section");
  }
  std::vector<std::string> attribute_names;
  attribute_names.reserve(num_attributes);
  for (std::uint32_t a = 0; a < num_attributes; ++a) {
    attribute_names.emplace_back(meta.String());
  }
  if (!meta.AtEnd()) {
    return Status::Corruption("table snapshot " + path + ": bad meta section");
  }
  if (reader.num_sections() != 1 + 3 * static_cast<std::size_t>(num_attributes)) {
    return Status::Corruption("table snapshot " + path + ": expected " +
                              std::to_string(1 + 3 * num_attributes) +
                              " sections, found " +
                              std::to_string(reader.num_sections()));
  }
  Result<Schema> schema = Schema::Make(std::move(attribute_names));
  if (!schema.ok()) {
    return Status::Corruption("table snapshot " + path + ": " +
                              schema.status().message());
  }

  TablePtr table(new Table(name, schema.MoveValueUnsafe()));
  table->num_rows_ = num_rows;
  for (std::uint32_t a = 0; a < num_attributes; ++a) {
    const std::string_view codes = reader.section(1 + 3 * a);
    if (codes.size() != num_rows * sizeof(DictCode)) {
      return Status::Corruption("table snapshot " + path + ": codes of column " +
                                std::to_string(a) + " sized " +
                                std::to_string(codes.size()));
    }

    ByteReader lens(reader.section(2 + 3 * a));
    const std::uint32_t distinct = lens.U32();
    if (!lens.ok() || lens.remaining() != distinct * sizeof(std::uint32_t)) {
      return Status::Corruption("table snapshot " + path +
                                ": bad dictionary lengths of column " +
                                std::to_string(a));
    }
    const std::string_view dict_bytes = reader.section(3 + 3 * a);
    std::vector<std::string_view> views;
    views.reserve(distinct);
    std::size_t pos = 0;
    for (std::uint32_t code = 0; code < distinct; ++code) {
      const std::uint32_t len = lens.U32();
      // Each slot is the string plus its NUL terminator.
      if (dict_bytes.size() - pos < static_cast<std::size_t>(len) + 1 ||
          dict_bytes[pos + len] != '\0') {
        return Status::Corruption("table snapshot " + path +
                                  ": bad dictionary bytes of column " +
                                  std::to_string(a));
      }
      views.push_back(dict_bytes.substr(pos, len));
      pos += static_cast<std::size_t>(len) + 1;
    }
    if (pos != dict_bytes.size()) {
      return Status::Corruption("table snapshot " + path +
                                ": trailing dictionary bytes in column " +
                                std::to_string(a));
    }

    const auto* code_ptr = reinterpret_cast<const DictCode*>(codes.data());
    for (std::uint64_t row = 0; row < num_rows; ++row) {
      if (code_ptr[row] >= distinct) {
        return Status::Corruption("table snapshot " + path +
                                  ": out-of-range code in column " +
                                  std::to_string(a));
      }
    }

    Table::Column& column = table->columns_[a];
    column.codes = code_ptr;
    column.dictionary = Dictionary::FromMapped(std::move(views));
  }
  table->mapping_ = reader.file();
  return table;
}

}  // namespace queryer
