// The snapshot container: a versioned, checksummed, memory-mappable file
// format shared by table, index, and Link Index snapshots.
//
// Layout (fixed-width little-endian integers; QueryER targets LE hosts):
//
//   [0, 24)   header: u64 magic "QERSNAP1" | u32 version | u32 kind
//             | u32 section_count | u32 header_crc
//   [24, ..)  section directory: per section u64 offset | u64 size
//             | u32 crc | u32 reserved(0)
//   sections  each payload starts on a 64-byte file offset (zero padding
//             between), so u32/u64/double arrays inside a mapped section
//             are naturally aligned and can be pointed at in place.
//
// header_crc covers the 20 header bytes before it plus the whole directory;
// each directory entry's crc covers its section payload. SnapshotReader
// validates everything eagerly at Open — magic, version, kind, bounds,
// alignment, and every CRC — and returns kCorruption (or kNotImplemented
// for a future format version) without ever acting on bytes it cannot
// vouch for. Writers build the file beside the target (".tmp") and
// rename(2) it into place, so a crash mid-write never leaves a live
// half-snapshot; failpoints `persist.write_section` and `persist.fsync`
// sit on the two durability boundaries.

#ifndef QUERYER_PERSIST_SNAPSHOT_H_
#define QUERYER_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace queryer {

/// On-disk format version this build reads and writes.
constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Snapshot kinds (the `kind` header field) — a reader opening the wrong
/// file class fails fast instead of misparsing sections.
enum class SnapshotKind : std::uint32_t {
  kTable = 1,
  kIndex = 2,
  kLinkIndex = 3,
};

/// \brief A read-only memory-mapped file. The mapping lives until the last
/// shared_ptr drops, so loaded tables alias sections directly and pin the
/// mapping via their anchor.
class MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Map(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile(char* data, std::size_t size) : data_(data), size_(size) {}

  char* data_;
  std::size_t size_;
};

/// Creates `path` as a directory if it does not exist (one level).
Status EnsureDir(const std::string& path);

/// True when `path` names an existing regular file.
bool FileExists(const std::string& path);

/// \brief Append-only builder for a section payload: fixed-width LE
/// integers and length-prefixed byte runs into a std::string.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(const void* data, std::size_t size) { Raw(data, size); }
  /// u32 length prefix + bytes.
  void String(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  std::string Take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  void Raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

/// \brief Bounds-checked cursor over a section payload. Any read past the
/// end sets the failure flag and returns zero/empty; decoders check ok()
/// (and validate counts against remaining() before looping) and turn a
/// failure into kCorruption — corrupt lengths can never index out of the
/// mapping.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t U8() { return ReadAs<std::uint8_t>(); }
  std::uint32_t U32() { return ReadAs<std::uint32_t>(); }
  std::uint64_t U64() { return ReadAs<std::uint64_t>(); }
  double F64() { return ReadAs<double>(); }

  /// The next `size` bytes as a view into the payload (zero-copy).
  std::string_view Bytes(std::size_t size) {
    if (!Ensure(size)) return {};
    std::string_view out = data_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  /// A u32-length-prefixed byte run.
  std::string_view String() {
    const std::uint32_t len = U32();
    return Bytes(len);
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  /// False once any read overran the payload.
  bool ok() const { return ok_; }
  /// True when the cursor consumed the payload exactly.
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  template <typename T>
  T ReadAs() {
    if (!Ensure(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool Ensure(std::size_t size) {
    if (!ok_ || data_.size() - pos_ < size) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// \brief Assembles a snapshot file: add sections in order, then Commit
/// writes <path>.tmp (header, directory, aligned checksummed sections),
/// optionally fsyncs, and renames into place.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(SnapshotKind kind) : kind_(kind) {}

  /// Appends a section; sections are read back by position.
  void AddSection(std::string payload) {
    sections_.push_back(std::move(payload));
  }

  /// Writes the file. With `fsync` the data is flushed to stable storage
  /// before the rename (and the rename is followed by a directory fsync);
  /// without it the commit is atomic against crashes of this process but
  /// rides the page cache.
  Status Commit(const std::string& path, bool fsync);

 private:
  SnapshotKind kind_;
  std::vector<std::string> sections_;
};

/// \brief Validated view of a snapshot file. Open maps the file and checks
/// every structural invariant and every CRC before returning; section()
/// then hands out zero-copy views into the mapping.
class SnapshotReader {
 public:
  static Result<SnapshotReader> Open(const std::string& path,
                                     SnapshotKind expected_kind);

  std::size_t num_sections() const { return sections_.size(); }
  std::string_view section(std::size_t i) const { return sections_[i]; }

  /// The mapping backing the sections; loaders that alias section bytes
  /// (the table loader) hold onto it.
  const std::shared_ptr<MappedFile>& file() const { return file_; }

 private:
  SnapshotReader(std::shared_ptr<MappedFile> file,
                 std::vector<std::string_view> sections)
      : file_(std::move(file)), sections_(std::move(sections)) {}

  std::shared_ptr<MappedFile> file_;
  std::vector<std::string_view> sections_;
};

}  // namespace queryer

#endif  // QUERYER_PERSIST_SNAPSHOT_H_
