#include "persist/index_snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "persist/snapshot.h"

namespace queryer {

// Sections: [0] blocking options, [1] block keys, [2] block entity lists,
// [3] per-entity block lists (ITBI), [4] attribute weights.

Status IndexSnapshotIO::Write(const TableBlockIndex& tbi,
                              const AttributeWeights& weights,
                              const std::string& path, bool fsync) {
  SnapshotWriter writer(SnapshotKind::kIndex);

  ByteWriter options;
  options.U64(tbi.options().min_token_length);
  options.U32(static_cast<std::uint32_t>(tbi.options().excluded_attributes.size()));
  for (std::size_t attr : tbi.options().excluded_attributes) options.U64(attr);
  writer.AddSection(options.Take());

  ByteWriter keys;
  keys.U32(static_cast<std::uint32_t>(tbi.num_blocks()));
  for (std::size_t b = 0; b < tbi.num_blocks(); ++b) {
    keys.String(tbi.block_key(b));
  }
  writer.AddSection(keys.Take());

  ByteWriter blocks;
  blocks.U32(static_cast<std::uint32_t>(tbi.num_blocks()));
  for (std::size_t b = 0; b < tbi.num_blocks(); ++b) {
    const std::vector<EntityId>& entities = tbi.block_entities(b);
    blocks.U32(static_cast<std::uint32_t>(entities.size()));
    blocks.Bytes(entities.data(), entities.size() * sizeof(EntityId));
  }
  writer.AddSection(blocks.Take());

  ByteWriter itbi;
  itbi.U32(static_cast<std::uint32_t>(tbi.num_entities()));
  for (std::size_t e = 0; e < tbi.num_entities(); ++e) {
    const std::vector<std::uint32_t>& entity_blocks =
        tbi.entity_blocks(static_cast<EntityId>(e));
    itbi.U32(static_cast<std::uint32_t>(entity_blocks.size()));
    itbi.Bytes(entity_blocks.data(),
               entity_blocks.size() * sizeof(std::uint32_t));
  }
  writer.AddSection(itbi.Take());

  ByteWriter weight_bytes;
  weight_bytes.U32(static_cast<std::uint32_t>(weights.size()));
  for (std::size_t a = 0; a < weights.size(); ++a) {
    weight_bytes.F64(weights.weight(a));
  }
  writer.AddSection(weight_bytes.Take());

  return writer.Commit(path, fsync).WithContext("index snapshot");
}

namespace {

// Reads `u32 count` + per item `u32 n` + `n` raw u32s, validating every
// id against `id_limit`. Returns false on any structural problem.
bool ReadIdLists(ByteReader* reader, std::uint32_t id_limit,
                 std::vector<std::vector<std::uint32_t>>* out) {
  const std::uint32_t count = reader->U32();
  if (!reader->ok() ||
      count > reader->remaining() / sizeof(std::uint32_t)) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t n = reader->U32();
    if (!reader->ok() || n > reader->remaining() / sizeof(std::uint32_t)) {
      return false;
    }
    const std::string_view raw = reader->Bytes(n * sizeof(std::uint32_t));
    std::vector<std::uint32_t> ids(n);
    if (n > 0) std::memcpy(ids.data(), raw.data(), raw.size());
    for (std::uint32_t id : ids) {
      if (id >= id_limit) return false;
    }
    out->push_back(std::move(ids));
  }
  return reader->AtEnd();
}

}  // namespace

Result<LoadedIndexes> IndexSnapshotIO::Load(const std::string& path,
                                            std::size_t num_entities) {
  QUERYER_ASSIGN_OR_RETURN(SnapshotReader reader,
                           SnapshotReader::Open(path, SnapshotKind::kIndex));
  if (reader.num_sections() != 5) {
    return Status::Corruption("index snapshot " + path + ": expected 5 sections");
  }

  ByteReader options_reader(reader.section(0));
  BlockingOptions options;
  options.min_token_length =
      static_cast<std::size_t>(options_reader.U64());
  const std::uint32_t num_excluded = options_reader.U32();
  if (!options_reader.ok() ||
      num_excluded > options_reader.remaining() / sizeof(std::uint64_t)) {
    return Status::Corruption("index snapshot " + path + ": bad options");
  }
  for (std::uint32_t i = 0; i < num_excluded; ++i) {
    options.excluded_attributes.push_back(
        static_cast<std::size_t>(options_reader.U64()));
  }
  if (!options_reader.AtEnd()) {
    return Status::Corruption("index snapshot " + path + ": bad options");
  }

  ByteReader keys_reader(reader.section(1));
  const std::uint32_t num_blocks = keys_reader.U32();
  if (!keys_reader.ok() || num_blocks > keys_reader.remaining()) {
    return Status::Corruption("index snapshot " + path + ": bad block keys");
  }
  std::vector<std::string> block_keys;
  block_keys.reserve(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    block_keys.emplace_back(keys_reader.String());
  }
  if (!keys_reader.AtEnd()) {
    return Status::Corruption("index snapshot " + path + ": bad block keys");
  }

  ByteReader blocks_reader(reader.section(2));
  std::vector<std::vector<std::uint32_t>> block_entities;
  if (!ReadIdLists(&blocks_reader, static_cast<std::uint32_t>(num_entities),
                   &block_entities) ||
      block_entities.size() != num_blocks) {
    return Status::Corruption("index snapshot " + path +
                              ": bad block entity lists");
  }

  ByteReader itbi_reader(reader.section(3));
  std::vector<std::vector<std::uint32_t>> entity_blocks;
  if (!ReadIdLists(&itbi_reader, num_blocks, &entity_blocks) ||
      entity_blocks.size() != num_entities) {
    return Status::Corruption("index snapshot " + path +
                              ": bad entity block lists");
  }

  ByteReader weights_reader(reader.section(4));
  const std::uint32_t num_weights = weights_reader.U32();
  if (!weights_reader.ok() ||
      num_weights > weights_reader.remaining() / sizeof(double)) {
    return Status::Corruption("index snapshot " + path + ": bad weights");
  }
  std::vector<double> weights;
  weights.reserve(num_weights);
  for (std::uint32_t a = 0; a < num_weights; ++a) {
    weights.push_back(weights_reader.F64());
  }
  if (!weights_reader.AtEnd()) {
    return Status::Corruption("index snapshot " + path + ": bad weights");
  }

  LoadedIndexes loaded;
  loaded.tbi = TableBlockIndex::FromParts(std::move(options),
                                          std::move(block_keys),
                                          std::move(block_entities),
                                          std::move(entity_blocks));
  loaded.weights = AttributeWeights::FromWeights(std::move(weights));
  return loaded;
}

}  // namespace queryer
