#include "persist/crc32.h"

#include <array>

namespace queryer {

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace queryer
