// Meta-Blocking orchestration: Block Purging -> Block Filtering -> Edge
// Pruning, in the strict order the paper mandates (coarse block-level
// methods first, so the blocking graph Edge Pruning builds is small).

#ifndef QUERYER_METABLOCKING_META_BLOCKING_H_
#define QUERYER_METABLOCKING_META_BLOCKING_H_

#include <vector>

#include "blocking/block.h"
#include "metablocking/block_filtering.h"
#include "metablocking/block_purging.h"
#include "metablocking/edge_pruning.h"

namespace queryer {

/// \brief Which refinement steps run; paper Table 8 evaluates ALL, BP+BF,
/// and BP+EP.
struct MetaBlockingConfig {
  bool block_purging = true;
  bool block_filtering = true;
  bool edge_pruning = true;
  double purging_outlier_factor = kDefaultPurgingOutlierFactor;
  double filtering_ratio = kDefaultBlockFilteringRatio;
  EdgeWeighting edge_weighting = EdgeWeighting::kCbs;

  static MetaBlockingConfig All() { return {}; }
  static MetaBlockingConfig BpBf() {
    MetaBlockingConfig c;
    c.edge_pruning = false;
    return c;
  }
  static MetaBlockingConfig BpEp() {
    MetaBlockingConfig c;
    c.block_filtering = false;
    return c;
  }
  static MetaBlockingConfig None() {
    MetaBlockingConfig c;
    c.block_purging = c.block_filtering = c.edge_pruning = false;
    return c;
  }
};

/// \brief Outcome of a meta-blocking run.
struct MetaBlockingResult {
  /// Comparisons that survived (each pair once, deterministic order).
  std::vector<Comparison> comparisons;
  /// Block counts after each enabled stage, for stats reporting.
  std::size_t blocks_in = 0;
  std::size_t blocks_after_purging = 0;
  std::size_t blocks_after_filtering = 0;
  /// Distinct query-relevant pairs before Edge Pruning.
  std::size_t comparisons_before_pruning = 0;
};

/// \brief Runs the configured refinement steps over an enriched block
/// collection (the EQBI of Block-Join) and returns the surviving
/// comparisons. A multi-worker `pool` parallelizes the edge weighting and
/// the purging/filtering size statistics; results are identical at every
/// thread count (see the per-stage headers).
MetaBlockingResult RunMetaBlocking(BlockCollection blocks,
                                   const MetaBlockingConfig& config,
                                   ThreadPool* pool = nullptr);

}  // namespace queryer

#endif  // QUERYER_METABLOCKING_META_BLOCKING_H_
