#include "metablocking/edge_pruning.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace queryer {

namespace {

inline std::uint64_t PairKey(EntityId a, EntityId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

inline Comparison MakeComparison(EntityId a, EntityId b) {
  return a < b ? Comparison{a, b} : Comparison{b, a};
}

// Enumerates each query-relevant pair of blocks [begin, end) exactly once
// per block, invoking fn(pair, block_index).
template <typename Fn>
void ForEachQueryPairInRange(const BlockCollection& blocks, std::size_t begin,
                             std::size_t end, Fn&& fn) {
  std::unordered_set<EntityId> query_set;
  for (std::size_t bi = begin; bi < end; ++bi) {
    const Block& b = blocks[bi];
    query_set.clear();
    query_set.insert(b.query_entities.begin(), b.query_entities.end());
    // Query entity x everything after it (counts q-q pairs once); plus
    // query entity x preceding non-query entities.
    for (std::size_t i = 0; i < b.entities.size(); ++i) {
      EntityId ei = b.entities[i];
      bool ei_query = query_set.count(ei) > 0;
      for (std::size_t j = i + 1; j < b.entities.size(); ++j) {
        EntityId ej = b.entities[j];
        if (!ei_query && query_set.count(ej) == 0) continue;
        fn(MakeComparison(ei, ej), bi);
      }
    }
  }
}

// Blocks per weighting chunk. Fixed (not derived from the worker count) so
// the chunking — and with it every partial-sum association — is the same
// no matter how many workers run, which keeps ARCS/JS weights bit-identical
// across thread counts.
constexpr std::size_t kWeightingChunkBlocks = 256;

}  // namespace

BlockingGraph BuildBlockingGraph(const BlockCollection& blocks,
                                 EdgeWeighting weighting, ThreadPool* pool) {
  // Per-entity block counts for the JS denominator (linear in the input —
  // not worth a parallel pass next to the quadratic pair enumeration).
  std::unordered_map<EntityId, double> entity_block_count;
  if (weighting == EdgeWeighting::kJs) {
    for (const Block& b : blocks) {
      for (EntityId e : b.entities) entity_block_count[e] += 1;
    }
  }

  // Accumulate per-pair weights (CBS and JS need the shared-block count;
  // ARCS needs Σ 1/||b||) into per-chunk maps — the parallel workers never
  // share an accumulator — then merge in ascending chunk order. With a null
  // pool the chunks run inline in the same order, so both paths execute the
  // identical sequence of floating-point additions.
  const std::vector<ChunkRange> chunks =
      FixedSizeChunks(blocks.size(), kWeightingChunkBlocks);
  std::vector<std::unordered_map<std::uint64_t, double>> partials(
      chunks.size());
  Status status = ParallelFor(
      pool, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& accum = partials[chunk];
        ForEachQueryPairInRange(
            blocks, begin, end, [&](Comparison pair, std::size_t block_index) {
              double increment = 1.0;
              if (weighting == EdgeWeighting::kArcs) {
                double cardinality = blocks[block_index].Cardinality();
                increment = cardinality > 0 ? 1.0 / cardinality : 0.0;
              }
              accum[PairKey(pair.first, pair.second)] += increment;
            });
        return Status::OK();
      });
  // Bodies only fail by throwing; rethrow on the calling thread for parity
  // with the sequential accumulation's error behavior.
  if (!status.ok()) throw std::runtime_error(status.ToString());

  std::unordered_map<std::uint64_t, double> accum;
  for (auto& partial : partials) {
    for (const auto& [key, increment] : partial) accum[key] += increment;
  }

  BlockingGraph graph;
  graph.edges.reserve(accum.size());
  for (const auto& [key, raw_weight] : accum) {
    auto a = static_cast<EntityId>(key >> 32);
    auto b = static_cast<EntityId>(key & 0xffffffffu);
    double weight = raw_weight;
    if (weighting == EdgeWeighting::kJs) {
      double denom = entity_block_count[a] + entity_block_count[b] - raw_weight;
      weight = denom > 0 ? raw_weight / denom : 0.0;
    }
    graph.edges.push_back({{a, b}, weight});
  }
  // Deterministic order for reproducible downstream behaviour; the mean is
  // summed in sorted order so it depends only on the final edge set, not on
  // map iteration order.
  std::sort(graph.edges.begin(), graph.edges.end(),
            [](const WeightedEdge& x, const WeightedEdge& y) {
              return x.pair < y.pair;
            });
  double total_weight = 0;
  for (const WeightedEdge& edge : graph.edges) total_weight += edge.weight;
  graph.mean_weight =
      graph.edges.empty()
          ? 0.0
          : total_weight / static_cast<double>(graph.edges.size());
  return graph;
}

std::vector<Comparison> EdgePruning(const BlockingGraph& graph) {
  std::vector<Comparison> kept;
  kept.reserve(graph.edges.size());
  for (const WeightedEdge& edge : graph.edges) {
    if (edge.weight >= graph.mean_weight) kept.push_back(edge.pair);
  }
  return kept;
}

std::vector<Comparison> EdgePruning(const BlockCollection& blocks,
                                    EdgeWeighting weighting, ThreadPool* pool) {
  return EdgePruning(BuildBlockingGraph(blocks, weighting, pool));
}

std::vector<Comparison> DistinctComparisons(const BlockCollection& blocks) {
  std::unordered_set<std::uint64_t> seen;
  std::vector<Comparison> comparisons;
  ForEachQueryPairInRange(blocks, 0, blocks.size(),
                          [&](Comparison pair, std::size_t) {
    if (seen.insert(PairKey(pair.first, pair.second)).second) {
      comparisons.push_back(pair);
    }
  });
  std::sort(comparisons.begin(), comparisons.end());
  return comparisons;
}

}  // namespace queryer
