#include "metablocking/meta_blocking.h"

namespace queryer {

MetaBlockingResult RunMetaBlocking(BlockCollection blocks,
                                   const MetaBlockingConfig& config,
                                   ThreadPool* pool) {
  MetaBlockingResult result;
  result.blocks_in = blocks.size();

  if (config.block_purging) {
    blocks = BlockPurging(std::move(blocks), config.purging_outlier_factor,
                          pool);
  }
  result.blocks_after_purging = blocks.size();

  if (config.block_filtering) {
    blocks = BlockFiltering(blocks, config.filtering_ratio, pool);
  }
  result.blocks_after_filtering = blocks.size();

  if (config.edge_pruning) {
    BlockingGraph graph =
        BuildBlockingGraph(blocks, config.edge_weighting, pool);
    result.comparisons_before_pruning = graph.edges.size();
    result.comparisons = EdgePruning(graph);
  } else {
    result.comparisons = DistinctComparisons(blocks);
    result.comparisons_before_pruning = result.comparisons.size();
  }
  return result;
}

}  // namespace queryer
