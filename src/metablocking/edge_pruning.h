// Edge Pruning (paper Sec. 4, [27]): comparison-refinement meta-blocking.
//
// The block collection is turned into a blocking graph — a node per entity,
// an edge per pair of co-occurring entities — and every edge is weighted by
// the likelihood its endpoints match. Weighted Edge Pruning then discards
// edges below the mean edge weight, eliminating most superfluous comparisons
// while keeping nearly all matching ones.
//
// In QueryER only edges with at least one query-entity endpoint matter
// (Comparison-Execution never compares two non-query entities), so the graph
// is built restricted to those edges.

#ifndef QUERYER_METABLOCKING_EDGE_PRUNING_H_
#define QUERYER_METABLOCKING_EDGE_PRUNING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "blocking/block.h"
#include "parallel/thread_pool.h"

namespace queryer {

/// A candidate comparison between two entities, canonically ordered
/// (first < second).
using Comparison = std::pair<EntityId, EntityId>;

/// \brief Edge weighting schemes of the meta-blocking literature.
enum class EdgeWeighting {
  /// Common Blocks Scheme: number of blocks both entities share.
  kCbs,
  /// Jaccard Scheme: shared blocks / (blocks(a) + blocks(b) - shared).
  kJs,
  /// Aggregate Reciprocal Comparisons: Σ over shared blocks of 1 / ||b||.
  kArcs,
};

/// \brief One weighted edge of the blocking graph.
struct WeightedEdge {
  Comparison pair;
  double weight = 0;
};

/// \brief Blocking graph restricted to query-relevant edges.
struct BlockingGraph {
  std::vector<WeightedEdge> edges;
  double mean_weight = 0;
};

/// \brief Builds the (query-restricted) blocking graph with edge weights.
///
/// Per-entity block counts for the JS denominator are computed over the
/// input collection itself, i.e. after any block-refinement steps, following
/// the strict BP -> BF -> EP order of the paper.
///
/// Edge weighting is per-pair and embarrassingly parallel: with a
/// multi-worker `pool` the blocks are accumulated into per-chunk weight
/// maps in parallel and merged in chunk order. The chunks are a fixed size
/// (independent of the worker count) and the merge order is fixed, so the
/// resulting weights — including every floating-point rounding — are
/// bit-identical at every thread count, null pool included.
BlockingGraph BuildBlockingGraph(const BlockCollection& blocks,
                                 EdgeWeighting weighting,
                                 ThreadPool* pool = nullptr);

/// \brief Weighted Edge Pruning: keeps edges with weight >= mean weight.
///
/// Returns the surviving comparisons in deterministic order.
std::vector<Comparison> EdgePruning(const BlockingGraph& graph);

/// \brief Convenience: graph construction + pruning.
std::vector<Comparison> EdgePruning(const BlockCollection& blocks,
                                    EdgeWeighting weighting,
                                    ThreadPool* pool = nullptr);

/// \brief All distinct query-relevant comparisons of a block collection,
/// without pruning (the BP+BF configuration of paper Table 8). Each pair is
/// listed once even if it co-occurs in many blocks.
std::vector<Comparison> DistinctComparisons(const BlockCollection& blocks);

}  // namespace queryer

#endif  // QUERYER_METABLOCKING_EDGE_PRUNING_H_
