#include "metablocking/block_filtering.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace queryer {

BlockCollection BlockFiltering(const BlockCollection& blocks, double ratio,
                               ThreadPool* pool) {
  if (ratio >= 1.0) return blocks;
  // entity -> indices of its blocks, to be sorted ascending by block size.
  std::unordered_map<EntityId, std::vector<std::uint32_t>> entity_blocks;
  for (std::uint32_t i = 0; i < blocks.size(); ++i) {
    for (EntityId e : blocks[i].entities) entity_blocks[e].push_back(i);
  }

  // The per-entity size statistics — sort each entity's block list and cut
  // it to the first ceil(p * n) smallest — are independent, so they chunk
  // onto the pool. Each body writes only to its own entities' lists; the
  // shared `retained` sets are filled sequentially afterwards.
  std::vector<std::vector<std::uint32_t>*> entity_lists;
  entity_lists.reserve(entity_blocks.size());
  for (auto& [entity, block_ids] : entity_blocks) {
    (void)entity;
    entity_lists.push_back(&block_ids);
  }
  Status status = ParallelFor(
      pool, entity_lists.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          std::vector<std::uint32_t>& block_ids = *entity_lists[i];
          std::sort(block_ids.begin(), block_ids.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return blocks[a].size() != blocks[b].size()
                                 ? blocks[a].size() < blocks[b].size()
                                 : a < b;
                    });
          auto keep = static_cast<std::size_t>(
              std::ceil(ratio * static_cast<double>(block_ids.size())));
          if (keep == 0) keep = 1;
          if (keep > block_ids.size()) keep = block_ids.size();
          block_ids.resize(keep);
        }
        return Status::OK();
      });
  // Bodies only fail by throwing; rethrow on the calling thread.
  if (!status.ok()) throw std::runtime_error(status.ToString());

  // (entity, block) pairs that survive:
  std::vector<std::unordered_set<EntityId>> retained(blocks.size());
  for (const auto& [entity, block_ids] : entity_blocks) {
    for (std::uint32_t block : block_ids) retained[block].insert(entity);
  }

  BlockCollection filtered;
  filtered.reserve(blocks.size());
  for (std::uint32_t i = 0; i < blocks.size(); ++i) {
    const Block& src = blocks[i];
    Block out;
    out.key = src.key;
    for (EntityId e : src.entities) {
      if (retained[i].count(e) > 0) out.entities.push_back(e);
    }
    for (EntityId e : src.query_entities) {
      if (retained[i].count(e) > 0) out.query_entities.push_back(e);
    }
    if (out.entities.size() < 2 || out.query_entities.empty()) continue;
    filtered.push_back(std::move(out));
  }
  return filtered;
}

}  // namespace queryer
