// Block Filtering (paper Sec. 4, [27]): each block has different importance
// for each of its entities, so every entity is retained only in its `p`
// fraction of smallest blocks. Applied per entity, unlike Block Purging
// which removes whole blocks.

#ifndef QUERYER_METABLOCKING_BLOCK_FILTERING_H_
#define QUERYER_METABLOCKING_BLOCK_FILTERING_H_

#include "blocking/block.h"
#include "parallel/thread_pool.h"

namespace queryer {

/// Default retention ratio; 0.8 is the standard setting in the
/// meta-blocking literature the paper builds on.
inline constexpr double kDefaultBlockFilteringRatio = 0.8;

/// \brief Retains each entity only in its ceil(p * #blocks) smallest blocks.
///
/// Block lists per entity are ordered ascending by block size (ties by block
/// order), matching the pre-sorted ITBI the paper describes. Blocks that end
/// up with fewer than two entities, or with no query entity, are dropped —
/// they can no longer produce a query comparison.
///
/// The per-entity size statistics (sort by block size + retention cut) are
/// independent across entities and run chunked on `pool` when it has more
/// than one worker; each entity's verdict depends only on its own block
/// list, so the result is identical at every thread count.
BlockCollection BlockFiltering(const BlockCollection& blocks, double ratio,
                               ThreadPool* pool = nullptr);

}  // namespace queryer

#endif  // QUERYER_METABLOCKING_BLOCK_FILTERING_H_
