// Block Filtering (paper Sec. 4, [27]): each block has different importance
// for each of its entities, so every entity is retained only in its `p`
// fraction of smallest blocks. Applied per entity, unlike Block Purging
// which removes whole blocks.

#ifndef QUERYER_METABLOCKING_BLOCK_FILTERING_H_
#define QUERYER_METABLOCKING_BLOCK_FILTERING_H_

#include "blocking/block.h"

namespace queryer {

/// Default retention ratio; 0.8 is the standard setting in the
/// meta-blocking literature the paper builds on.
inline constexpr double kDefaultBlockFilteringRatio = 0.8;

/// \brief Retains each entity only in its ceil(p * #blocks) smallest blocks.
///
/// Block lists per entity are ordered ascending by block size (ties by block
/// order), matching the pre-sorted ITBI the paper describes. Blocks that end
/// up with fewer than two entities, or with no query entity, are dropped —
/// they can no longer produce a query comparison.
BlockCollection BlockFiltering(const BlockCollection& blocks, double ratio);

}  // namespace queryer

#endif  // QUERYER_METABLOCKING_BLOCK_FILTERING_H_
