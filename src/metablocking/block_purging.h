// Block Purging (paper Sec. 4, [27]): removes oversized blocks whose keys
// are too common to be discriminative (e.g. the token "entity" in a
// publications table), cleaning the processing list of blocks that induce
// mostly unnecessary comparisons.
//
// Deviation from the paper noted in DESIGN.md: the cited smoothing-factor
// scan over cumulative cardinality levels is only well behaved on very
// large Zipfian block collections (on the query-restricted collections the
// Deduplicate operator produces it degenerates to purging everything above
// the smallest level). We keep the paper's *criterion shape* — a
// dynamically computed maximum block cardinality — but derive the limit
// robustly: a block is oversized when its size exceeds
// `outlier_factor` x the collection's mean block size (never purging blocks
// of size <= kMinKeptBlockSize).

#ifndef QUERYER_METABLOCKING_BLOCK_PURGING_H_
#define QUERYER_METABLOCKING_BLOCK_PURGING_H_

#include "blocking/block.h"
#include "parallel/thread_pool.h"

namespace queryer {

/// Default multiple of the mean block size above which a block is purged.
inline constexpr double kDefaultPurgingOutlierFactor = 3.0;

/// Blocks at or below this size are never purged — tiny blocks are the
/// discriminative ones Block Purging exists to protect.
inline constexpr std::size_t kMinKeptBlockSize = 4;

/// \brief Computes the maximum allowed block cardinality ||b||.
///
/// The size statistic is a parallel sum reduction with a multi-worker
/// `pool` (chunked partial sums merged in chunk order; sizes are integers,
/// so the sum is exact and identical at every thread count).
double ComputePurgingThreshold(const BlockCollection& blocks,
                               double outlier_factor = kDefaultPurgingOutlierFactor,
                               ThreadPool* pool = nullptr);

/// \brief Same rule over bare block sizes (|b| values), without needing
/// materialized blocks. Used by the planner's comparison estimator.
double ComputePurgingThresholdFromSizes(const std::vector<std::size_t>& block_sizes,
                                        double outlier_factor = kDefaultPurgingOutlierFactor);

/// \brief Removes blocks with cardinality above the threshold.
BlockCollection PurgeBlocks(BlockCollection blocks, double threshold);

/// \brief Convenience: threshold computation + purge in one step.
BlockCollection BlockPurging(BlockCollection blocks,
                             double outlier_factor = kDefaultPurgingOutlierFactor,
                             ThreadPool* pool = nullptr);

}  // namespace queryer

#endif  // QUERYER_METABLOCKING_BLOCK_PURGING_H_
