#include "metablocking/block_purging.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace queryer {

namespace {

double ThresholdFromSizeSum(double total_size, std::size_t num_blocks,
                            double outlier_factor) {
  if (num_blocks == 0) return 0;
  double mean_size = total_size / static_cast<double>(num_blocks);
  double size_limit =
      std::max(static_cast<double>(kMinKeptBlockSize), outlier_factor * mean_size);
  // Express the limit in cardinality units: ||b|| = |b| (|b| - 1) / 2.
  return size_limit * (size_limit - 1) / 2.0;
}

}  // namespace

double ComputePurgingThreshold(const BlockCollection& blocks,
                               double outlier_factor, ThreadPool* pool) {
  // Parallel sum reduction over the block sizes: per-chunk partial sums
  // merged in chunk order. Sizes are integers, so the double sum is exact
  // and thread-count independent.
  std::vector<ChunkRange> chunks =
      SplitRange(blocks.size(), pool == nullptr ? 1 : pool->num_threads());
  std::vector<double> partials(chunks.size(), 0.0);
  Status status = ParallelFor(
      pool, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        double sum = 0;
        for (std::size_t i = begin; i < end; ++i) {
          sum += static_cast<double>(blocks[i].size());
        }
        partials[chunk] = sum;
        return Status::OK();
      });
  if (!status.ok()) throw std::runtime_error(status.ToString());
  double total = 0;
  for (double partial : partials) total += partial;
  return ThresholdFromSizeSum(total, blocks.size(), outlier_factor);
}

double ComputePurgingThresholdFromSizes(
    const std::vector<std::size_t>& block_sizes, double outlier_factor) {
  double total = 0;
  for (std::size_t size : block_sizes) total += static_cast<double>(size);
  return ThresholdFromSizeSum(total, block_sizes.size(), outlier_factor);
}

BlockCollection PurgeBlocks(BlockCollection blocks, double threshold) {
  BlockCollection kept;
  kept.reserve(blocks.size());
  for (Block& b : blocks) {
    if (b.Cardinality() <= threshold) kept.push_back(std::move(b));
  }
  return kept;
}

BlockCollection BlockPurging(BlockCollection blocks, double outlier_factor,
                             ThreadPool* pool) {
  double threshold = ComputePurgingThreshold(blocks, outlier_factor, pool);
  return PurgeBlocks(std::move(blocks), threshold);
}

}  // namespace queryer
