#include "datagen/orgs.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "datagen/dictionaries.h"

namespace queryer::datagen {

GeneratedDataset MakeOrganisations(std::size_t total_rows, std::uint64_t seed,
                                   const OrgOptions& options) {
  RandomEngine rng(seed);
  queryer::Schema schema(std::vector<std::string>{"id", "name", "country"});

  const std::size_t num_originals =
      NumOriginalsFor(total_rows, options.duplication.duplicate_ratio);
  std::vector<std::vector<std::string>> originals;
  originals.reserve(num_originals);
  std::set<std::string> used_names;
  // When a place+kind base repeats, names are disambiguated with a topic
  // qualifier whose first word is unique per base, so two organisations
  // never differ only in their trailing word.
  std::map<std::string, std::set<std::string>> used_topics;
  for (std::size_t i = 0; i < num_originals; ++i) {
    std::string place(ZipfPick(OrgPlaces(), &rng, 0.3));
    std::string kind(ZipfPick(OrgKinds(), &rng, 0.3));
    std::string name = place + " " + kind;
    if (used_names.count(name) > 0) {
      std::set<std::string>& taken = used_topics[name];
      auto fresh_topic = [&]() {
        std::string topic(ZipfPick(TopicWords(), &rng, 0.0));
        while (taken.count(topic) > 0) {
          // Once the topic pool is exhausted for a base, synthesize one.
          topic = taken.size() < TopicWords().size()
                      ? std::string(ZipfPick(TopicWords(), &rng, 0.0))
                      : rng.AlphaString(7);
        }
        taken.insert(topic);
        return topic;
      };
      std::string first = fresh_topic();
      std::string second = fresh_topic();
      name += " of " + first + " " + second;
    }
    used_names.insert(name);
    originals.push_back({
        "",
        name,
        std::string(ZipfPick(Countries(), &rng, 0.4)),
    });
  }

  std::vector<std::size_t> corruptible = {1, 2};
  return AssembleDirtyTable("oao", std::move(schema), std::move(originals),
                            corruptible, options.duplication, &rng);
}

std::vector<std::string> OrganisationNamePool(const GeneratedDataset& orgs) {
  const queryer::Table& table = *orgs.table;
  auto name_idx = table.schema().IndexOf("name");
  std::vector<std::string> pool;
  for (queryer::EntityId e = 0; e < table.num_rows(); ++e) {
    // One name per true cluster: its lowest-id member (deterministic; the
    // variant chosen is immaterial, any of them joins with the table).
    if (orgs.ground_truth.ClusterMembers(e).front() != e) continue;
    pool.emplace_back(table.ValueAt(e, *name_idx));
  }
  return pool;
}

GeneratedDataset MakeProjects(std::size_t total_rows,
                              const std::vector<std::string>& org_names,
                              std::uint64_t seed,
                              const ProjectOptions& options) {
  RandomEngine rng(seed);
  queryer::Schema schema(std::vector<std::string>{
      "id", "title", "acronym", "funder", "start_year", "end_year", "org",
      "budget"});

  const std::size_t num_originals =
      NumOriginalsFor(total_rows, options.duplication.duplicate_ratio);
  std::vector<std::vector<std::string>> originals;
  originals.reserve(num_originals);
  for (std::size_t i = 0; i < num_originals; ++i) {
    std::string title = MakeTitle(&rng, 4 + static_cast<std::size_t>(rng.Uniform(0, 3)));
    // Acronym: initials of the title's first tokens, upper-cased.
    std::string acronym;
    for (const auto& token : Split(title, ' ')) {
      if (!token.empty()) acronym += static_cast<char>(std::toupper(token[0]));
      if (acronym.size() >= 5) break;
    }
    int start_year = static_cast<int>(rng.Uniform(2004, 2021));
    std::string org;
    if (!org_names.empty() && rng.Bernoulli(options.org_join_fraction)) {
      org = rng.Pick(org_names);
    } else {
      org = std::string(ZipfPick(OrgPlaces(), &rng, 0.3)) + " external " +
            std::string(ZipfPick(OrgKinds(), &rng, 0.3));
    }
    originals.push_back({
        "",
        title,
        acronym,
        std::string(ZipfPick(Funders(), &rng, 0.5)),
        std::to_string(start_year),
        std::to_string(start_year + static_cast<int>(rng.Uniform(1, 5))),
        org,
        std::to_string(rng.Uniform(50, 4000) * 1000),
    });
  }

  std::vector<std::size_t> corruptible = {1, 2, 3, 4, 5, 6, 7};
  return AssembleDirtyTable("oap", std::move(schema), std::move(originals),
                            corruptible, options.duplication, &rng);
}

}  // namespace queryer::datagen
