// Ground truth for generated datasets: which entities are true duplicates.
// Used to measure Pair Completeness (PC), the recall measure of the paper's
// evaluation, and to report the |L_E| column of Table 7.

#ifndef QUERYER_DATAGEN_GROUND_TRUTH_H_
#define QUERYER_DATAGEN_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "metablocking/edge_pruning.h"
#include "storage/table.h"

namespace queryer::datagen {

/// \brief Duplicate-cluster assignment of every entity in a table.
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(std::vector<std::uint32_t> cluster_of_entity);

  std::size_t num_entities() const { return cluster_of_entity_.size(); }
  std::uint32_t cluster(EntityId e) const { return cluster_of_entity_[e]; }

  bool AreDuplicates(EntityId a, EntityId b) const {
    return a != b && cluster_of_entity_[a] == cluster_of_entity_[b];
  }

  /// Number of duplicate records: Σ over clusters of (size - 1). This is
  /// the |L_E| statistic of paper Table 7.
  std::size_t NumDuplicateRecords() const;

  /// Number of duplicate pairs: Σ over clusters of C(size, 2).
  std::size_t NumDuplicatePairs() const;

  /// Members of e's true cluster, including e.
  const std::vector<EntityId>& ClusterMembers(EntityId e) const;

  /// \brief Pair Completeness of a comparison set w.r.t. a query selection.
  ///
  /// PC = (ground-truth pairs with >= 1 endpoint in `query_entities` that
  /// appear in `comparisons`) / (all such ground-truth pairs). Pairs whose
  /// outcome is already recorded (e.g. found by a previous query) can be
  /// passed via `already_linked` and count as covered.
  double PairCompleteness(const std::vector<queryer::Comparison>& comparisons,
                          const std::vector<EntityId>& query_entities) const;

 private:
  void BuildClusters();

  std::vector<std::uint32_t> cluster_of_entity_;
  // cluster id -> members (ascending).
  std::vector<std::vector<EntityId>> cluster_members_;
};

/// \brief A generated dirty table plus its ground truth.
struct GeneratedDataset {
  queryer::TablePtr table;
  GroundTruth ground_truth;
};

}  // namespace queryer::datagen

#endif  // QUERYER_DATAGEN_GROUND_TRUTH_H_
