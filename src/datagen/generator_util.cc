#include "datagen/generator_util.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace queryer::datagen {

std::size_t NumOriginalsFor(std::size_t total_rows, double duplicate_ratio) {
  QUERYER_CHECK(duplicate_ratio >= 0.0 && duplicate_ratio < 1.0);
  auto originals = static_cast<std::size_t>(
      std::llround(static_cast<double>(total_rows) * (1.0 - duplicate_ratio)));
  return std::max<std::size_t>(1, originals);
}

GeneratedDataset AssembleDirtyTable(std::string table_name, queryer::Schema schema,
                                    std::vector<std::vector<std::string>> originals,
                                    const std::vector<std::size_t>& corruptible,
                                    const DuplicationOptions& options,
                                    RandomEngine* rng) {
  const std::size_t num_originals = originals.size();
  const double ratio = options.duplicate_ratio;
  QUERYER_CHECK(ratio >= 0.0 && ratio < 1.0);
  auto num_duplicates = static_cast<std::size_t>(
      std::llround(static_cast<double>(num_originals) * ratio / (1.0 - ratio)));

  struct PendingRow {
    std::vector<std::string> values;
    std::uint32_t cluster;
  };
  std::vector<PendingRow> rows;
  rows.reserve(num_originals + num_duplicates);
  for (std::uint32_t i = 0; i < num_originals; ++i) {
    rows.push_back({std::move(originals[i]), i});
  }

  // Inject duplicates: pick originals (without exceeding the per-record cap)
  // and corrupt them. Each duplicate copies the *original*, so clusters stay
  // pairwise similar under the error model.
  std::vector<std::size_t> dup_count(num_originals, 0);
  std::size_t injected = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = num_duplicates * 8 + 64;
  while (injected < num_duplicates && attempts < max_attempts) {
    ++attempts;
    auto origin = static_cast<std::size_t>(
        rng->Uniform(0, static_cast<std::int64_t>(num_originals) - 1));
    if (dup_count[origin] >= options.max_duplicates_per_record) continue;
    ++dup_count[origin];
    ++injected;
    std::vector<std::string> duplicate = CorruptRecord(
        rows[origin].values, corruptible, rng, options.corruption);
    rows.push_back({std::move(duplicate), static_cast<std::uint32_t>(origin)});
  }

  rng->Shuffle(&rows);

  queryer::TableBuilder builder(std::move(table_name), std::move(schema));
  builder.Reserve(rows.size());
  std::vector<std::uint32_t> cluster_of_entity;
  cluster_of_entity.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].values[0] = std::to_string(i);  // Final sequential id.
    cluster_of_entity.push_back(rows[i].cluster);
    QUERYER_CHECK(builder.AddRow(rows[i].values).ok());
  }
  return {builder.Build(), GroundTruth(std::move(cluster_of_entity))};
}

}  // namespace queryer::datagen
