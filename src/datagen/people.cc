#include "datagen/people.h"

#include "common/logging.h"
#include "datagen/dictionaries.h"

namespace queryer::datagen {

GeneratedDataset MakePeople(std::size_t total_rows,
                            const std::vector<std::string>& org_names,
                            std::uint64_t seed, const PeopleOptions& options) {
  RandomEngine rng(seed);
  queryer::Schema schema(std::vector<std::string>{
      "id", "given_name", "surname", "street_number", "address", "suburb",
      "postcode", "state", "date_of_birth", "age", "phone", "org"});

  const std::size_t num_originals =
      NumOriginalsFor(total_rows, options.duplication.duplicate_ratio);
  std::vector<std::vector<std::string>> originals;
  originals.reserve(num_originals);
  for (std::size_t i = 0; i < num_originals; ++i) {
    int birth_year = static_cast<int>(rng.Uniform(1930, 2005));
    int month = static_cast<int>(rng.Uniform(1, 12));
    int day = static_cast<int>(rng.Uniform(1, 28));
    std::string dob = std::to_string(birth_year) + "-" +
                      (month < 10 ? "0" : "") + std::to_string(month) + "-" +
                      (day < 10 ? "0" : "") + std::to_string(day);
    std::string org;
    if (!org_names.empty() && rng.Bernoulli(options.org_join_fraction)) {
      org = rng.Pick(org_names);
    } else {
      // An organisation name that does not occur in the OAO table.
      org = std::string(ZipfPick(OrgPlaces(), &rng, 0.3)) + " external " +
            std::string(ZipfPick(OrgKinds(), &rng, 0.3));
    }
    originals.push_back({
        "",  // id assigned at assembly.
        std::string(ZipfPick(FirstNames(), &rng, 0.2)),
        std::string(ZipfPick(LastNames(), &rng, 0.2)),
        std::to_string(rng.Uniform(1, 450)),
        std::string(ZipfPick(StreetNames(), &rng, 0.4)),
        std::string(ZipfPick(Suburbs(), &rng, 0.4)),
        std::to_string(rng.Uniform(2000, 7999)),
        std::string(ZipfPick(States(), &rng, 0.5)),
        dob,
        std::to_string(2022 - birth_year),
        "0" + std::to_string(rng.Uniform(400000000, 499999999)),
        org,
    });
  }

  // Everything but id and state is corruptible (state is a code list).
  std::vector<std::size_t> corruptible = {1, 2, 3, 4, 5, 6, 8, 9, 10, 11};
  return AssembleDirtyTable("ppl", std::move(schema), std::move(originals),
                            corruptible, options.duplication, &rng);
}

}  // namespace queryer::datagen
