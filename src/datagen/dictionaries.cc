#include "datagen/dictionaries.h"

namespace queryer::datagen {

namespace {

const std::vector<std::string_view> kFirstNames = {
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "nancy", "daniel", "lisa", "matthew", "margaret", "anthony", "betty",
    "mark", "sandra", "donald", "ashley", "steven", "dorothy", "paul",
    "kimberly", "andrew", "emily", "joshua", "donna", "kenneth", "michelle",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "laura",
    "jeffrey", "sharon", "ryan", "cynthia", "jacob", "kathleen", "gary",
    "helen", "nicholas", "amy", "eric", "shirley", "jonathan", "angela",
    "stephen", "anna", "larry", "brenda", "justin", "pamela", "scott",
    "nicole", "brandon", "ruth", "benjamin", "katherine", "samuel",
    "samantha", "gregory", "christine", "frank", "emma", "alexander",
    "catherine", "raymond", "debra", "patrick", "virginia", "jack", "rachel",
    "dennis", "carolyn", "jerry", "janet", "tyler", "maria", "aaron",
    "heather", "jose", "diane", "adam", "julie", "henry", "joyce", "nathan",
    "victoria", "douglas", "kelly", "zachary", "christina", "peter", "joan",
    "kyle", "evelyn", "walter", "lauren", "ethan", "judith", "jeremy",
    "megan", "harold", "cheryl", "keith", "andrea", "christian", "hannah",
    "roger", "martha", "noah", "jacqueline", "gerald", "frances", "carl",
    "gloria", "terry", "ann", "sean", "teresa", "austin", "kathryn",
    "arthur", "sara", "lawrence", "janice", "jesse", "jean", "dylan",
    "alice", "bryan", "madison", "joe", "doris", "jordan", "abigail",
    "billy", "julia", "bruce", "judy", "albert", "grace", "willie",
    "denise", "gabriel", "amber", "logan", "marilyn", "alan", "beverly",
    "juan", "danielle", "wayne", "theresa", "roy", "sophia", "ralph",
    "marie", "randy", "diana", "eugene", "brittany", "vincent", "natalie",
    "russell", "isabella", "elijah", "charlotte", "louis", "rose", "bobby",
    "alexis", "philip", "kayla",
};

const std::vector<std::string_view> kLastNames = {
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
    "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
    "price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
    "ross", "foster", "jimenez", "powell", "jenkins", "perry", "russell",
    "sullivan", "bell", "coleman", "butler", "henderson", "barnes",
    "gonzales", "fisher", "vasquez", "simmons", "romero", "jordan",
    "patterson", "alexander", "hamilton", "graham", "reynolds", "griffin",
    "wallace", "moreno", "west", "cole", "hayes", "bryant", "herrera",
    "gibson", "ellis", "tran", "medina", "aguilar", "stevens", "murray",
    "ford", "castro", "marshall", "owens", "harrison", "fernandez",
    "mcdonald", "woods", "washington", "kennedy", "wells", "vargas",
    "henry", "chen", "freeman", "webb", "tucker", "guzman", "burns",
    "crawford", "olson", "simpson", "porter", "hunter", "gordon", "mendez",
    "silva", "shaw", "snyder", "mason", "dixon", "munoz", "hunt", "hicks",
    "holmes", "palmer", "wagner", "black", "robertson", "boyd", "rose",
    "stone", "salazar", "fox", "warren", "mills", "meyer", "rice",
    "schmidt", "garza", "daniels", "ferguson", "nichols", "stephens",
    "soto", "weaver", "ryan", "gardner", "payne", "grant", "dunn",
};

const std::vector<std::string_view> kStreetNames = {
    "main street",      "church road",    "high street",    "park avenue",
    "station road",     "victoria road",  "green lane",     "manor road",
    "kings road",       "queens road",    "school lane",    "mill lane",
    "york road",        "springfield ave","george street",  "park road",
    "grove road",       "south street",   "grange road",    "richmond road",
    "north street",     "west street",    "east street",    "chester road",
    "london road",      "albert road",    "new road",       "queen street",
    "windsor road",     "highfield road", "alexandra road", "king street",
    "broadway",         "stanley road",   "chapel lane",    "bridge street",
    "park lane",        "church lane",    "garden close",   "orchard drive",
    "cedar avenue",     "maple drive",    "elm grove",      "oak lane",
    "willow close",     "poplar avenue",  "birch road",     "ash grove",
    "cherry orchard",   "sycamore drive", "beech crescent", "hazel court",
    "juniper way",      "laurel gardens", "magnolia place", "pine ridge",
};

const std::vector<std::string_view> kSuburbs = {
    "ashfield",    "bankstown",  "burwood",     "campsie",    "chatswood",
    "cronulla",    "dee why",    "earlwood",    "epping",     "fairfield",
    "glebe",       "hornsby",    "hurstville",  "kogarah",    "lakemba",
    "liverpool",   "manly",      "marrickville","miranda",    "mosman",
    "newtown",     "parramatta", "penrith",     "randwick",   "redfern",
    "rockdale",    "ryde",       "st leonards", "strathfield","sutherland",
    "auburn",      "balmain",    "blacktown",   "bondi",      "botany",
    "brighton",    "cabramatta", "carlton",     "castle hill","coogee",
    "croydon",     "drummoyne",  "dulwich hill","eastwood",   "granville",
    "greenacre",   "kensington", "kirribilli",  "lane cove",  "leichhardt",
    "maroubra",    "mascot",     "matraville",  "north ryde", "paddington",
    "punchbowl",   "pyrmont",    "rosebery",    "seven hills","ultimo",
    "waterloo",    "waverley",   "westmead",    "woollahra",  "yagoona",
};

const std::vector<std::string_view> kStates = {
    "nsw", "vic", "qld", "wa", "sa", "tas", "act", "nt",
};

const std::vector<std::string_view> kTopicWords = {
    "entity",       "resolution",  "data",        "query",       "database",
    "distributed",  "learning",    "deep",        "graph",       "stream",
    "processing",   "analysis",    "scalable",    "efficient",   "adaptive",
    "incremental",  "parallel",    "approximate", "probabilistic","semantic",
    "knowledge",    "integration", "cleaning",    "deduplication","blocking",
    "matching",     "linkage",     "record",      "schema",      "index",
    "join",         "aggregation", "optimization","planning",    "execution",
    "transaction",  "concurrency", "storage",     "memory",      "cache",
    "compression",  "encryption",  "privacy",     "provenance",  "workflow",
    "crowdsourcing","exploration", "visualization","sampling",   "estimation",
    "cardinality",  "selectivity", "partitioning","replication", "consistency",
    "recovery",     "benchmark",   "workload",    "tuning",      "monitoring",
    "federated",    "relational",  "columnar",    "vectorized",  "compiled",
    "declarative",  "interactive", "progressive", "online",      "offline",
    "temporal",     "spatial",     "textual",     "multimodal",  "heterogeneous",
    "web",          "social",      "scholarly",   "biomedical",  "scientific",
    "sensor",       "mobile",      "cloud",       "serverless",  "elastic",
    "similarity",   "clustering",  "classification","ranking",   "recommendation",
    "embedding",    "transformer", "neural",      "bayesian",    "statistical",
    "crowdsourced", "versioned",   "streaming",   "materialized","views",
};

const std::vector<std::string_view> kGlueWords = {
    "for", "over", "with", "in", "under", "beyond", "towards", "via",
    "using", "through", "against", "without",
};

const std::vector<VenueEntry> kVenues = {
    {"EDBT", "International Conference on Extending Database Technology", 1, 1988, "annual"},
    {"SIGMOD", "ACM SIGMOD International Conference on Management of Data", 1, 1975, "annual"},
    {"VLDB", "International Conference on Very Large Data Bases", 1, 1975, "annual"},
    {"ICDE", "IEEE International Conference on Data Engineering", 1, 1984, "annual"},
    {"CIDR", "Conference on Innovative Data Systems Research", 1, 2002, "biennial"},
    {"PODS", "Symposium on Principles of Database Systems", 1, 1982, "annual"},
    {"KDD", "ACM SIGKDD Conference on Knowledge Discovery and Data Mining", 1, 1995, "annual"},
    {"WWW", "The Web Conference", 1, 1994, "annual"},
    {"CIKM", "ACM International Conference on Information and Knowledge Management", 2, 1992, "annual"},
    {"ICDM", "IEEE International Conference on Data Mining", 2, 2001, "annual"},
    {"WSDM", "ACM International Conference on Web Search and Data Mining", 1, 2008, "annual"},
    {"DASFAA", "International Conference on Database Systems for Advanced Applications", 2, 1989, "annual"},
    {"SSDBM", "International Conference on Scientific and Statistical Database Management", 2, 1981, "annual"},
    {"TKDE", "IEEE Transactions on Knowledge and Data Engineering", 1, 1989, "monthly"},
    {"VLDBJ", "The VLDB Journal", 1, 1992, "quarterly"},
    {"TODS", "ACM Transactions on Database Systems", 1, 1976, "quarterly"},
    {"SIGIR", "International ACM SIGIR Conference on Research and Development in Information Retrieval", 1, 1978, "annual"},
    {"ECIR", "European Conference on Information Retrieval", 2, 1979, "annual"},
    {"ISWC", "International Semantic Web Conference", 2, 2002, "annual"},
    {"ESWC", "Extended Semantic Web Conference", 2, 2004, "annual"},
    {"SODA", "ACM-SIAM Symposium on Discrete Algorithms", 1, 1990, "annual"},
    {"NEURIPS", "Conference on Neural Information Processing Systems", 1, 1987, "annual"},
    {"ICML", "International Conference on Machine Learning", 1, 1980, "annual"},
    {"AAAI", "AAAI Conference on Artificial Intelligence", 1, 1980, "annual"},
    {"IJCAI", "International Joint Conference on Artificial Intelligence", 1, 1969, "biennial"},
    {"SOCC", "ACM Symposium on Cloud Computing", 2, 2010, "annual"},
    {"OSDI", "USENIX Symposium on Operating Systems Design and Implementation", 1, 1994, "biennial"},
    {"SOSP", "ACM Symposium on Operating Systems Principles", 1, 1967, "biennial"},
    {"ATC", "USENIX Annual Technical Conference", 2, 1992, "annual"},
    {"EUROSYS", "European Conference on Computer Systems", 2, 2006, "annual"},
    {"MDM", "IEEE International Conference on Mobile Data Management", 3, 2000, "annual"},
    {"SSTD", "International Symposium on Spatial and Temporal Databases", 3, 1989, "biennial"},
    {"ADBIS", "European Conference on Advances in Databases and Information Systems", 3, 1997, "annual"},
    {"BTW", "Datenbanksysteme fur Business Technologie und Web", 3, 1985, "biennial"},
    {"SEBD", "Italian Symposium on Advanced Database Systems", 3, 1993, "annual"},
    {"WEBDB", "International Workshop on the Web and Databases", 3, 1998, "annual"},
    {"DOLAP", "International Workshop on Data Warehousing and OLAP", 3, 1998, "annual"},
    {"TPCTC", "TPC Technology Conference on Performance Evaluation and Benchmarking", 3, 2009, "annual"},
    {"DEBS", "ACM International Conference on Distributed and Event-Based Systems", 3, 2007, "annual"},
    {"ICDT", "International Conference on Database Theory", 2, 1986, "annual"},
};

const std::vector<std::string_view> kOrgKinds = {
    "university", "institute", "research center", "laboratory", "college",
    "polytechnic", "academy", "foundation", "agency", "consortium",
};

const std::vector<std::string_view> kOrgPlaces = {
    "athens",    "berlin",   "paris",     "london",   "madrid",   "rome",
    "vienna",    "lisbon",   "amsterdam", "brussels", "dublin",   "helsinki",
    "stockholm", "oslo",     "copenhagen","warsaw",   "prague",   "budapest",
    "zurich",    "geneva",   "munich",    "hamburg",  "lyon",     "marseille",
    "barcelona", "valencia", "milan",     "turin",    "naples",   "porto",
    "rotterdam", "utrecht",  "antwerp",   "ghent",    "cork",     "tampere",
    "uppsala",   "bergen",   "aarhus",    "krakow",   "brno",     "debrecen",
    "basel",     "lausanne", "graz",      "salzburg", "heraklion","patras",
    "thessaloniki", "ioannina", "volos",  "larissa",  "chania",   "kavala",
};

const std::vector<std::string_view> kCountries = {
    "greece",  "germany", "france", "united kingdom", "spain",   "italy",
    "austria", "portugal","netherlands", "belgium",   "ireland", "finland",
    "sweden",  "norway",  "denmark","poland",  "czechia", "hungary",
    "switzerland",
};

const std::vector<std::string_view> kFunders = {
    "ec h2020", "erc", "nsf", "elidek", "gsrt", "dfg", "anr", "epsrc",
    "fwf", "snsf", "nwo", "vr", "aka", "fct",
};

}  // namespace

const std::vector<std::string_view>& FirstNames() { return kFirstNames; }
const std::vector<std::string_view>& LastNames() { return kLastNames; }
const std::vector<std::string_view>& StreetNames() { return kStreetNames; }
const std::vector<std::string_view>& Suburbs() { return kSuburbs; }
const std::vector<std::string_view>& States() { return kStates; }
const std::vector<std::string_view>& TopicWords() { return kTopicWords; }
const std::vector<std::string_view>& GlueWords() { return kGlueWords; }
const std::vector<VenueEntry>& Venues() { return kVenues; }
const std::vector<std::string_view>& OrgKinds() { return kOrgKinds; }
const std::vector<std::string_view>& OrgPlaces() { return kOrgPlaces; }
const std::vector<std::string_view>& Countries() { return kCountries; }
const std::vector<std::string_view>& Funders() { return kFunders; }

std::string_view ZipfPick(const std::vector<std::string_view>& pool,
                          RandomEngine* rng, double skew) {
  return pool[rng->Zipf(pool.size(), skew)];
}

std::string MakeTitle(RandomEngine* rng, std::size_t words) {
  std::string title;
  for (std::size_t i = 0; i < words; ++i) {
    if (i > 0) title += ' ';
    // Interleave an occasional glue word for realism.
    if (i > 0 && i + 1 < words && rng->Bernoulli(0.25)) {
      title += ZipfPick(GlueWords(), rng, 0.3);
      title += ' ';
    }
    title += ZipfPick(TopicWords(), rng, 0.25);
  }
  return title;
}

std::string MakePersonName(RandomEngine* rng) {
  // Mild skew: realistic name frequencies without making full-name
  // collisions (distinct people with identical names) common.
  std::string name(ZipfPick(FirstNames(), rng, 0.15));
  name += ' ';
  name += ZipfPick(LastNames(), rng, 0.15);
  return name;
}

}  // namespace queryer::datagen
