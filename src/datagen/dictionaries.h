// Value pools for the synthetic dataset generators. The pools are
// frequency-skewed at sampling time (Zipf) so generated data has the
// realistic token-frequency skew that Block Purging exists to handle.

#ifndef QUERYER_DATAGEN_DICTIONARIES_H_
#define QUERYER_DATAGEN_DICTIONARIES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"

namespace queryer::datagen {

/// \brief A scholarly venue with its short and full names, e.g.
/// {"EDBT", "International Conference on Extending Database Technology"}.
struct VenueEntry {
  std::string_view short_name;
  std::string_view full_name;
  int rank;           // 1..3, 1 best.
  int established;    // Year.
  std::string_view frequency;  // "annual", "biennial", ...
};

const std::vector<std::string_view>& FirstNames();
const std::vector<std::string_view>& LastNames();
const std::vector<std::string_view>& StreetNames();
const std::vector<std::string_view>& Suburbs();
const std::vector<std::string_view>& States();
/// Research-topic words used to compose publication and project titles.
const std::vector<std::string_view>& TopicWords();
/// Connective words for titles ("for", "over", ...).
const std::vector<std::string_view>& GlueWords();
const std::vector<VenueEntry>& Venues();
/// Organisation name components ("Institute", "University", ...).
const std::vector<std::string_view>& OrgKinds();
const std::vector<std::string_view>& OrgPlaces();
const std::vector<std::string_view>& Countries();
const std::vector<std::string_view>& Funders();

/// \brief Zipf-skewed pick from a pool.
std::string_view ZipfPick(const std::vector<std::string_view>& pool,
                          RandomEngine* rng, double skew = 0.6);

/// \brief Composes a research title of `words` topic words.
std::string MakeTitle(RandomEngine* rng, std::size_t words);

/// \brief Composes a person name "First Last".
std::string MakePersonName(RandomEngine* rng);

}  // namespace queryer::datagen

#endif  // QUERYER_DATAGEN_DICTIONARIES_H_
