// Shared machinery for the dataset generators: duplicate injection,
// shuffling, id assignment and ground-truth bookkeeping.

#ifndef QUERYER_DATAGEN_GENERATOR_UTIL_H_
#define QUERYER_DATAGEN_GENERATOR_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/corruptor.h"
#include "datagen/ground_truth.h"
#include "storage/schema.h"

namespace queryer::datagen {

/// \brief Duplicate-injection knobs shared by all generators.
struct DuplicationOptions {
  /// Fraction of the final table that is duplicate records. The paper's
  /// datasets range from ~3% (OAGP200K) to 40% (PPL).
  double duplicate_ratio = 0.1;
  /// Maximum duplicates derived from one original (paper PPL: 3).
  std::size_t max_duplicates_per_record = 3;
  CorruptionConfig corruption;
};

/// \brief Turns clean originals into a shuffled dirty table + ground truth.
///
/// `originals` are the clean records; attribute 0 of `schema` must be the
/// synthetic "id" column, which this helper overwrites with the final row
/// position so predicates like MOD(id, 10) select uniform random subsets.
/// Duplicates are corrupted copies of their original (never of another
/// duplicate), keeping true clusters pairwise similar. The final table has
/// `originals.size() / (1 - duplicate_ratio)` rows, approximately.
GeneratedDataset AssembleDirtyTable(std::string table_name, queryer::Schema schema,
                                    std::vector<std::vector<std::string>> originals,
                                    const std::vector<std::size_t>& corruptible,
                                    const DuplicationOptions& options,
                                    RandomEngine* rng);

/// \brief Number of originals to generate so the assembled table has
/// `total_rows` rows at the given duplicate ratio.
std::size_t NumOriginalsFor(std::size_t total_rows, double duplicate_ratio);

}  // namespace queryer::datagen

#endif  // QUERYER_DATAGEN_GENERATOR_UTIL_H_
