#include "datagen/scholarly.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/dictionaries.h"

namespace queryer::datagen {

namespace {

// Makes an author list of 2..3 "First Last" names, comma separated.
// At least two authors: a single frequent name agreeing by chance is the
// main source of false-positive matches between distinct records.
std::string MakeAuthors(RandomEngine* rng) {
  std::size_t count = 2 + static_cast<std::size_t>(rng->Uniform(0, 1));
  std::string authors;
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0) authors += ", ";
    authors += MakePersonName(rng);
  }
  return authors;
}

// Picks a venue index from the universe. With probability `join_fraction`
// the venue comes from the first `coverage` share (which the OAGV table
// contains); otherwise from the remainder.
std::size_t PickVenueIndex(const std::vector<VenueUniverseEntry>& universe,
                           double join_fraction, double coverage,
                           RandomEngine* rng) {
  auto covered = static_cast<std::size_t>(
      std::max(1.0, coverage * static_cast<double>(universe.size())));
  covered = std::min(covered, universe.size());
  if (covered >= universe.size() || rng->Bernoulli(join_fraction)) {
    return rng->Zipf(covered, 0.4);
  }
  return covered + static_cast<std::size_t>(rng->Uniform(
                       0, static_cast<std::int64_t>(universe.size() - covered) - 1));
}

}  // namespace

std::vector<VenueUniverseEntry> MakeVenueUniverse(std::size_t size,
                                                  std::uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<VenueUniverseEntry> universe;
  universe.reserve(size);
  for (const VenueEntry& v : Venues()) {
    if (universe.size() >= size) break;
    universe.push_back({std::string(v.short_name), std::string(v.full_name),
                        v.rank, v.established, std::string(v.frequency)});
  }
  const std::vector<std::string_view> kBodies = {
      "international conference on", "symposium on", "workshop on",
      "european conference on", "transactions on", "journal of"};
  const std::vector<std::string_view> kFrequencies = {"annual", "biennial",
                                                      "quarterly", "monthly"};
  while (universe.size() < size) {
    std::string t1(ZipfPick(TopicWords(), &rng, 0.3));
    std::string t2(ZipfPick(TopicWords(), &rng, 0.3));
    if (t1 == t2) continue;
    std::string full = std::string(rng.Pick(kBodies)) + " " + t1 + " " + t2;
    std::string abbrev;
    for (const auto& token : TokenizeAlnum(full, 1)) {
      if (token == "on" || token == "of") continue;
      abbrev += static_cast<char>(std::toupper(token[0]));
    }
    abbrev += std::to_string(universe.size());  // Disambiguate acronyms.
    universe.push_back({std::move(abbrev), std::move(full),
                        static_cast<int>(rng.Uniform(1, 3)),
                        static_cast<int>(rng.Uniform(1970, 2018)),
                        std::string(rng.Pick(kFrequencies))});
  }
  return universe;
}

GeneratedDataset MakeDsdLike(std::size_t total_rows, std::uint64_t seed,
                             const DsdOptions& options) {
  RandomEngine rng(seed);
  queryer::Schema schema(
      std::vector<std::string>{"id", "title", "authors", "venue", "year"});

  std::vector<VenueUniverseEntry> universe = MakeVenueUniverse(60, seed ^ 0x9e37);
  const std::size_t num_originals =
      NumOriginalsFor(total_rows, options.duplication.duplicate_ratio);
  std::vector<std::vector<std::string>> originals;
  originals.reserve(num_originals);
  for (std::size_t i = 0; i < num_originals; ++i) {
    const VenueUniverseEntry& venue = universe[rng.Zipf(universe.size(), 0.5)];
    // Source-style split: DBLP-style rows use the short venue name, Google
    // Scholar-style rows the full name.
    bool dblp_style = rng.Bernoulli(0.6);
    originals.push_back({
        "",
        MakeTitle(&rng, 5 + static_cast<std::size_t>(rng.Uniform(0, 3))),
        MakeAuthors(&rng),
        dblp_style ? venue.short_name : venue.full_name,
        rng.Bernoulli(0.9) ? std::to_string(rng.Uniform(1990, 2021)) : "",
    });
  }

  std::vector<std::size_t> corruptible = {1, 2, 3, 4};
  return AssembleDirtyTable("dsd", std::move(schema), std::move(originals),
                            corruptible, options.duplication, &rng);
}

GeneratedDataset MakeOagpLike(std::size_t total_rows,
                              const std::vector<VenueUniverseEntry>& universe,
                              std::uint64_t seed, const OagpOptions& options) {
  QUERYER_CHECK(!universe.empty());
  RandomEngine rng(seed);
  queryer::Schema schema(std::vector<std::string>{
      "id", "title", "authors", "venue", "year", "keywords", "abstract",
      "doi", "publisher", "volume", "issue", "pages", "lang", "doc_type",
      "issn", "url", "n_citation", "page_count"});

  const std::vector<std::string_view> kPublishers = {
      "acm", "ieee", "springer", "elsevier", "vldb endowment",
      "openproceedings", "usenix", "wiley", "mit press", "now publishers"};
  const std::vector<std::string_view> kLangs = {"en", "en", "en", "de", "fr",
                                                "es", "el"};
  const std::vector<std::string_view> kDocTypes = {"conference", "journal",
                                                   "workshop", "book chapter"};

  const std::size_t num_originals =
      NumOriginalsFor(total_rows, options.duplication.duplicate_ratio);
  std::vector<std::vector<std::string>> originals;
  originals.reserve(num_originals);
  for (std::size_t i = 0; i < num_originals; ++i) {
    std::size_t venue_idx = PickVenueIndex(
        universe, options.venue_join_fraction, options.venue_table_coverage, &rng);
    const VenueUniverseEntry& venue = universe[venue_idx];
    int year = static_cast<int>(rng.Uniform(1998, 2021));
    int first_page = static_cast<int>(rng.Uniform(1, 1800));
    int page_count = static_cast<int>(rng.Uniform(4, 16));
    std::string title = MakeTitle(&rng, 4 + static_cast<std::size_t>(rng.Uniform(0, 4)));
    originals.push_back({
        "",
        title,
        MakeAuthors(&rng),
        rng.Bernoulli(0.55) ? venue.short_name : venue.full_name,
        std::to_string(year),
        MakeTitle(&rng, 3),  // Keywords: topic words.
        MakeTitle(&rng, 8),  // Abstract-like snippet.
        "10." + std::to_string(rng.Uniform(1000, 9999)) + "/" + rng.AlphaString(7),
        std::string(ZipfPick(kPublishers, &rng, 0.5)),
        std::to_string(rng.Uniform(1, 40)),
        std::to_string(rng.Uniform(1, 12)),
        std::to_string(first_page) + "-" + std::to_string(first_page + page_count),
        std::string(rng.Pick(kLangs)),
        std::string(ZipfPick(kDocTypes, &rng, 0.6)),
        std::to_string(rng.Uniform(1000, 2999)) + "-" + std::to_string(rng.Uniform(1000, 9999)),
        "https://doi.example.org/" + rng.AlphaString(10),
        std::to_string(rng.Zipf(800, 1.2)),
        std::to_string(page_count),
    });
  }

  std::vector<std::size_t> corruptible = {1, 2, 3, 4, 5, 6, 8, 11, 15};
  return AssembleDirtyTable("oagp", std::move(schema), std::move(originals),
                            corruptible, options.duplication, &rng);
}

GeneratedDataset MakeOagvLike(std::size_t total_rows,
                              const std::vector<VenueUniverseEntry>& universe,
                              std::uint64_t seed, const OagvOptions& options) {
  QUERYER_CHECK(!universe.empty());
  RandomEngine rng(seed);
  queryer::Schema schema(std::vector<std::string>{
      "id", "title", "description", "rank", "frequency", "established"});

  auto covered = static_cast<std::size_t>(std::max(
      1.0, options.universe_coverage * static_cast<double>(universe.size())));
  covered = std::min(covered, universe.size());

  const std::size_t num_originals =
      NumOriginalsFor(total_rows, options.duplication.duplicate_ratio);
  std::vector<std::vector<std::string>> originals;
  originals.reserve(num_originals);
  for (std::size_t i = 0; i < num_originals; ++i) {
    // Cycle through the covered share so every joinable venue appears; the
    // rest of the rows are filled with repeated picks (venue tables list
    // editions/series, so repeats with differing descriptions are natural).
    const VenueUniverseEntry& venue =
        universe[i < covered ? i : rng.Zipf(covered, 0.4)];
    bool short_form = rng.Bernoulli(0.5);
    originals.push_back({
        "",
        short_form ? venue.short_name : venue.full_name,
        short_form ? venue.full_name
                   : MakeTitle(&rng, 2),  // Motivating example: V4 carries the
                                          // full name in its description.
        rng.Bernoulli(0.8) ? std::to_string(venue.rank) : "",
        rng.Bernoulli(0.8) ? venue.frequency : "",
        rng.Bernoulli(0.8) ? std::to_string(venue.established) : "",
    });
  }

  std::vector<std::size_t> corruptible = {1, 2, 4, 5};
  return AssembleDirtyTable("oagv", std::move(schema), std::move(originals),
                            corruptible, options.duplication, &rng);
}

namespace {

GeneratedDataset DatasetFromRows(
    std::string name, std::vector<std::string> attributes,
    std::vector<std::vector<std::string>> rows,
    std::vector<std::uint32_t> clusters) {
  queryer::TableBuilder builder(std::move(name),
                                queryer::Schema(std::move(attributes)));
  builder.Reserve(rows.size());
  for (const auto& row : rows) QUERYER_CHECK(builder.AddRow(row).ok());
  return {builder.Build(), GroundTruth(std::move(clusters))};
}

}  // namespace

GeneratedDataset MakeMotivatingPublications() {
  // Table 1 of the paper: publications P1..P8 (entity ids 0..7).
  return DatasetFromRows(
      "p", {"id", "title", "author", "venue", "year"},
      {
          {"P1", "Collective Entity Resolution", "", "EDBT", "2008"},
          {"P2", "Collective E.R.", "Allan Blake",
           "International Conference on Extending Database Technology", "2008"},
          {"P3", "Entity Resolution on Big Data", "Jane Davids, John Doe",
           "ACM Sigmod", "2017"},
          {"P4", "E.R on Big Data", "J. Davids, J. Doe", "Sigmod", ""},
          {"P5", "Entity Resolution on Big Data", "J. Davids, John Doe.",
           "Proc of ACM SIGMOD", "2017"},
          {"P6", "E.R for consumer data", "Allan Blake, Lisa Davidson", "EDBT",
           "2015"},
          {"P7", "Entity-Resolution for consumer data", "A. Blake, L. Davidson",
           "International Conference on Extending Database Technology", ""},
          {"P8", "Entity-Resolution for consumer data",
           "Allan Blake , Davidson Lisa", "EDBT", "2015"},
      },
      {0, 0, 1, 1, 1, 2, 2, 2});
}

GeneratedDataset MakeMotivatingVenues() {
  // Table 2 of the paper: venues V1..V6 (entity ids 0..5).
  return DatasetFromRows(
      "v", {"id", "title", "description", "rank", "frequency", "established"},
      {
          {"V1", "International Conference on Extending Database Technology",
           "Extending Database Technology", "1", "annual", "1984"},
          {"V2", "SIGMOD", "ACM SIGMOD Conference", "1", "", "1975"},
          {"V3", "ACM SIGMOD", "", "1", "annual", "1975"},
          {"V4", "EDBT",
           "International Conference on Extending Database Technology", "",
           "yearly", ""},
          {"V5", "CIDR", "Conference on Innovative Data Systems Research", "",
           "biennial", "2002"},
          {"V6", "Conference on Innovative Data Systems Research", "", "2",
           "biyearly", "2002"},
      },
      {0, 1, 1, 0, 2, 2});
}

}  // namespace queryer::datagen
