// OAO/OAP-like datasets: research organisations and the projects they
// participate in, mirroring the OpenAIRE-derived tables of the paper
// (both modified febrl-style to contain 10% duplicate records).

#ifndef QUERYER_DATAGEN_ORGS_H_
#define QUERYER_DATAGEN_ORGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/generator_util.h"

namespace queryer::datagen {

struct OrgOptions {
  DuplicationOptions duplication = {
      /*duplicate_ratio=*/0.1,
      /*max_duplicates_per_record=*/2,
      /*corruption=*/{/*max_mods_per_attribute=*/2, /*max_mods_per_record=*/3,
                      /*missing_value_probability=*/0.08,
                      /*abbreviation_probability=*/0.25,
                      /*token_swap_probability=*/0.1},
  };
};

/// \brief OAO-like organisations table (3 attributes: id, name, country).
GeneratedDataset MakeOrganisations(std::size_t total_rows, std::uint64_t seed,
                                   const OrgOptions& options = {});

/// \brief Distinct clean organisation names of a generated OAO table, for
/// use as the foreign-key pool of MakePeople / MakeProjects. Only original
/// (cluster-representative) rows contribute, so referencing rows join with
/// the clean variant of each organisation.
std::vector<std::string> OrganisationNamePool(const GeneratedDataset& orgs);

struct ProjectOptions {
  DuplicationOptions duplication = {
      /*duplicate_ratio=*/0.1,
      /*max_duplicates_per_record=*/2,
      /*corruption=*/{/*max_mods_per_attribute=*/2, /*max_mods_per_record=*/4,
                      /*missing_value_probability=*/0.1,
                      /*abbreviation_probability=*/0.25,
                      /*token_swap_probability=*/0.12},
  };
  /// Fraction of projects whose `org` is drawn from the OAO name pool.
  double org_join_fraction = 1.0;
};

/// \brief OAP-like projects table (8 attributes: id, title, acronym,
/// funder, start_year, end_year, org, budget).
GeneratedDataset MakeProjects(std::size_t total_rows,
                              const std::vector<std::string>& org_names,
                              std::uint64_t seed,
                              const ProjectOptions& options = {});

}  // namespace queryer::datagen

#endif  // QUERYER_DATAGEN_ORGS_H_
