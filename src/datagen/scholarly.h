// Scholarly datasets: DSD-like bibliography records (DBLP-Scholar style,
// records harvested from two "sources" with different formatting habits),
// OAGP-like paper records (18 attributes) and OAGV-like venue records
// (5 attributes), plus the paper's motivating-example tables P and V.

#ifndef QUERYER_DATAGEN_SCHOLARLY_H_
#define QUERYER_DATAGEN_SCHOLARLY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/generator_util.h"

namespace queryer::datagen {

/// \brief A synthetic venue with a short and a full name variant.
struct VenueUniverseEntry {
  std::string short_name;
  std::string full_name;
  int rank;
  int established;
  std::string frequency;
};

/// \brief The venue universe: the curated real-world venue list extended
/// with composed synthetic venues up to `size` entries. Deterministic in
/// `seed`.
std::vector<VenueUniverseEntry> MakeVenueUniverse(std::size_t size,
                                                  std::uint64_t seed);

struct DsdOptions {
  DuplicationOptions duplication = {
      /*duplicate_ratio=*/0.08,
      /*max_duplicates_per_record=*/1,
      /*corruption=*/{/*max_mods_per_attribute=*/2, /*max_mods_per_record=*/4,
                      /*missing_value_probability=*/0.12,
                      /*abbreviation_probability=*/0.35,
                      /*token_swap_probability=*/0.1},
  };
};

/// \brief DSD-like bibliography table (5 attributes: id, title, authors,
/// venue, year). Duplicates mimic the DBLP vs Google-Scholar formatting
/// differences: abbreviated venues/authors and missing years.
GeneratedDataset MakeDsdLike(std::size_t total_rows, std::uint64_t seed,
                             const DsdOptions& options = {});

struct OagpOptions {
  DuplicationOptions duplication = {
      /*duplicate_ratio=*/0.12,
      /*max_duplicates_per_record=*/2,
      /*corruption=*/{/*max_mods_per_attribute=*/2, /*max_mods_per_record=*/4,
                      /*missing_value_probability=*/0.1,
                      /*abbreviation_probability=*/0.3,
                      /*token_swap_probability=*/0.1},
  };
  /// Fraction of papers whose venue comes from the first
  /// `venue_table_coverage` share of the universe (the part an OAGV table
  /// generated from the same universe actually contains). Controls the
  /// OAGP ⋈ OAGV join percentage, which the paper reports as low (~5%).
  double venue_join_fraction = 0.05;
  /// Share of the universe covered by the OAGV table (see above).
  double venue_table_coverage = 0.2;
};

/// \brief OAGP-like paper table (18 attributes).
GeneratedDataset MakeOagpLike(std::size_t total_rows,
                              const std::vector<VenueUniverseEntry>& universe,
                              std::uint64_t seed,
                              const OagpOptions& options = {});

struct OagvOptions {
  DuplicationOptions duplication = {
      /*duplicate_ratio=*/0.22,
      /*max_duplicates_per_record=*/2,
      /*corruption=*/{/*max_mods_per_attribute=*/1, /*max_mods_per_record=*/2,
                      /*missing_value_probability=*/0.15,
                      /*abbreviation_probability=*/0.2,
                      /*token_swap_probability=*/0.05},
  };
  /// Share of the universe the table draws venues from (must match the
  /// OagpOptions::venue_table_coverage of the paper table it joins with).
  double universe_coverage = 0.2;
};

/// \brief OAGV-like venue table (6 attributes: id, title, description,
/// rank, frequency, established). Duplicate venue rows use the opposite
/// name variant (short vs full), reproducing the motivating example's
/// V1/V4-style duplicates.
GeneratedDataset MakeOagvLike(std::size_t total_rows,
                              const std::vector<VenueUniverseEntry>& universe,
                              std::uint64_t seed,
                              const OagvOptions& options = {});

/// \brief The exact Tables 1 and 2 of the paper (publications P with
/// entities P1..P8, venues V with V1..V6), for the quickstart example and
/// the Table 5 cleaning-order experiment.
GeneratedDataset MakeMotivatingPublications();
GeneratedDataset MakeMotivatingVenues();

}  // namespace queryer::datagen

#endif  // QUERYER_DATAGEN_SCHOLARLY_H_
