// febrl-style record corruptor (paper Sec. 9.1): creates duplicate records
// by applying real-world error patterns — character typos, token
// abbreviations and swaps, and missing values — with the same knobs the
// paper's synthetic datasets use (max modifications per attribute and per
// record).

#ifndef QUERYER_DATAGEN_CORRUPTOR_H_
#define QUERYER_DATAGEN_CORRUPTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"

namespace queryer::datagen {

/// \brief Error-model configuration, mirroring febrl's generator options.
struct CorruptionConfig {
  /// Upper bound on modifications applied to a single attribute value.
  std::size_t max_mods_per_attribute = 2;
  /// Upper bound on modifications applied across the whole record.
  std::size_t max_mods_per_record = 4;
  /// Probability that a chosen modification blanks the value entirely
  /// (missing-value error), instead of editing it.
  double missing_value_probability = 0.1;
  /// Probability that a chosen modification abbreviates a token
  /// ("entity" -> "e.") rather than applying a character edit.
  double abbreviation_probability = 0.25;
  /// Probability of a token swap ("allan blake" -> "blake allan").
  double token_swap_probability = 0.15;
};

/// \brief One character-level typo: insert, delete, substitute or transpose.
std::string ApplyTypo(const std::string& value, RandomEngine* rng);

/// \brief Abbreviates a random token to its initial + '.'.
std::string AbbreviateToken(const std::string& value, RandomEngine* rng);

/// \brief Swaps two adjacent tokens.
std::string SwapTokens(const std::string& value, RandomEngine* rng);

/// \brief Applies up to `max_mods_per_attribute` modifications to one value.
/// `allow_missing` gates the blank-the-value error (callers limit it to at
/// most one attribute per record).
std::string CorruptValue(const std::string& value, RandomEngine* rng,
                         const CorruptionConfig& config,
                         std::size_t* mods_budget, bool allow_missing = true);

/// \brief Produces a corrupted duplicate of a record.
///
/// Only attributes listed in `corruptible` are eligible (identifier columns
/// stay intact structurally but receive fresh ids by the caller). At least
/// one modification is always applied so a duplicate is never byte-identical.
std::vector<std::string> CorruptRecord(const std::vector<std::string>& record,
                                       const std::vector<std::size_t>& corruptible,
                                       RandomEngine* rng,
                                       const CorruptionConfig& config);

}  // namespace queryer::datagen

#endif  // QUERYER_DATAGEN_CORRUPTOR_H_
