#include "datagen/corruptor.h"

#include <algorithm>

#include "common/string_util.h"

namespace queryer::datagen {

namespace {

char RandomLowercase(RandomEngine* rng) {
  return static_cast<char>('a' + rng->Uniform(0, 25));
}

}  // namespace

std::string ApplyTypo(const std::string& value, RandomEngine* rng) {
  if (value.empty()) return value;
  std::string out = value;
  auto pos = static_cast<std::size_t>(
      rng->Uniform(0, static_cast<std::int64_t>(out.size()) - 1));
  switch (rng->Uniform(0, 3)) {
    case 0:  // Insert.
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 RandomLowercase(rng));
      break;
    case 1:  // Delete.
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      break;
    case 2:  // Substitute.
      out[pos] = RandomLowercase(rng);
      break;
    default:  // Transpose with the next character.
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      else if (pos > 0) std::swap(out[pos], out[pos - 1]);
      break;
  }
  return out;
}

std::string AbbreviateToken(const std::string& value, RandomEngine* rng) {
  std::vector<std::string> tokens = Split(value, ' ');
  // Candidates: alphabetic tokens of length >= 4 (abbreviating "on" or a
  // year like "2011" is not an error pattern febrl models).
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].size() < 4) continue;
    bool alphabetic = true;
    for (char c : tokens[i]) {
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        alphabetic = false;
        break;
      }
    }
    if (alphabetic) candidates.push_back(i);
  }
  if (candidates.empty()) return value;
  std::size_t target = rng->Pick(candidates);
  tokens[target] = std::string(1, tokens[target][0]) + ".";
  return Join(tokens, " ");
}

std::string SwapTokens(const std::string& value, RandomEngine* rng) {
  std::vector<std::string> tokens = Split(value, ' ');
  if (tokens.size() < 2) return value;
  auto i = static_cast<std::size_t>(
      rng->Uniform(0, static_cast<std::int64_t>(tokens.size()) - 2));
  std::swap(tokens[i], tokens[i + 1]);
  return Join(tokens, " ");
}

std::string CorruptValue(const std::string& value, RandomEngine* rng,
                         const CorruptionConfig& config,
                         std::size_t* mods_budget, bool allow_missing) {
  std::string out = value;
  auto mods = static_cast<std::size_t>(rng->Uniform(
      1, static_cast<std::int64_t>(config.max_mods_per_attribute)));
  mods = std::min(mods, *mods_budget);
  for (std::size_t m = 0; m < mods; ++m) {
    if (out.empty()) break;
    --*mods_budget;
    double roll = rng->UniformReal();
    if (allow_missing && roll < config.missing_value_probability) {
      out.clear();
    } else if (roll < config.missing_value_probability +
                          config.abbreviation_probability) {
      out = AbbreviateToken(out, rng);
    } else if (roll < config.missing_value_probability +
                          config.abbreviation_probability +
                          config.token_swap_probability) {
      out = SwapTokens(out, rng);
    } else {
      out = ApplyTypo(out, rng);
    }
  }
  return out;
}

std::vector<std::string> CorruptRecord(const std::vector<std::string>& record,
                                       const std::vector<std::size_t>& corruptible,
                                       RandomEngine* rng,
                                       const CorruptionConfig& config) {
  std::vector<std::string> duplicate = record;
  if (corruptible.empty()) return duplicate;

  std::size_t budget = std::max<std::size_t>(1, config.max_mods_per_record);
  // Corrupt a random non-empty subset of the corruptible attributes. At
  // most one attribute per duplicate is blanked: a record stripped of all
  // its descriptive content is no longer a manifestation of anything.
  std::vector<std::size_t> order = corruptible;
  rng->Shuffle(&order);
  auto attrs_to_touch = static_cast<std::size_t>(
      rng->Uniform(1, static_cast<std::int64_t>(order.size())));
  bool missing_used = false;
  for (std::size_t i = 0; i < attrs_to_touch && budget > 0; ++i) {
    std::size_t attr = order[i];
    std::string corrupted = CorruptValue(duplicate[attr], rng, config, &budget,
                                         /*allow_missing=*/!missing_used);
    if (corrupted.empty() && !duplicate[attr].empty()) missing_used = true;
    duplicate[attr] = std::move(corrupted);
  }
  // Guarantee at least one visible change.
  bool changed = false;
  for (std::size_t attr : corruptible) {
    if (duplicate[attr] != record[attr]) {
      changed = true;
      break;
    }
  }
  if (!changed) {
    std::size_t attr = rng->Pick(corruptible);
    if (!record[attr].empty()) duplicate[attr] = ApplyTypo(record[attr], rng);
  }
  return duplicate;
}

}  // namespace queryer::datagen
