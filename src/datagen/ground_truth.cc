#include "datagen/ground_truth.h"

#include <algorithm>

#include "common/logging.h"

namespace queryer::datagen {

GroundTruth::GroundTruth(std::vector<std::uint32_t> cluster_of_entity)
    : cluster_of_entity_(std::move(cluster_of_entity)) {
  BuildClusters();
}

void GroundTruth::BuildClusters() {
  std::uint32_t max_cluster = 0;
  for (std::uint32_t c : cluster_of_entity_) max_cluster = std::max(max_cluster, c);
  cluster_members_.assign(max_cluster + 1, {});
  for (EntityId e = 0; e < cluster_of_entity_.size(); ++e) {
    cluster_members_[cluster_of_entity_[e]].push_back(e);
  }
}

std::size_t GroundTruth::NumDuplicateRecords() const {
  std::size_t count = 0;
  for (const auto& members : cluster_members_) {
    if (members.size() > 1) count += members.size() - 1;
  }
  return count;
}

std::size_t GroundTruth::NumDuplicatePairs() const {
  std::size_t count = 0;
  for (const auto& members : cluster_members_) {
    count += members.size() * (members.size() - 1) / 2;
  }
  return count;
}

const std::vector<EntityId>& GroundTruth::ClusterMembers(EntityId e) const {
  QUERYER_CHECK(e < cluster_of_entity_.size());
  return cluster_members_[cluster_of_entity_[e]];
}

double GroundTruth::PairCompleteness(
    const std::vector<queryer::Comparison>& comparisons,
    const std::vector<EntityId>& query_entities) const {
  std::unordered_set<EntityId> query_set(query_entities.begin(),
                                         query_entities.end());
  // Denominator: ground-truth pairs touching the query selection.
  std::size_t total = 0;
  std::unordered_set<std::uint64_t> wanted;
  for (EntityId e : query_entities) {
    for (EntityId other : ClusterMembers(e)) {
      if (other == e) continue;
      EntityId lo = std::min(e, other);
      EntityId hi = std::max(e, other);
      std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
      if (wanted.insert(key).second) ++total;
    }
  }
  if (total == 0) return 1.0;

  std::size_t found = 0;
  for (const auto& [a, b] : comparisons) {
    if (!AreDuplicates(a, b)) continue;
    std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (wanted.count(key) > 0) {
      wanted.erase(key);
      ++found;
    }
  }
  return static_cast<double>(found) / static_cast<double>(total);
}

}  // namespace queryer::datagen
