// PPL-like synthetic people datasets (paper Sec. 9.1): febrl-style person
// records with 40% duplicates (<= 3 duplicates per record, <= 2
// modifications per attribute, <= 4 per record) and an `org` attribute
// linking each person to an organisation, creating the PPL ⋈ OAO join the
// planner experiments use.

#ifndef QUERYER_DATAGEN_PEOPLE_H_
#define QUERYER_DATAGEN_PEOPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/generator_util.h"

namespace queryer::datagen {

struct PeopleOptions {
  DuplicationOptions duplication = {
      /*duplicate_ratio=*/0.4,
      /*max_duplicates_per_record=*/3,
      /*corruption=*/{/*max_mods_per_attribute=*/2, /*max_mods_per_record=*/4,
                      /*missing_value_probability=*/0.08,
                      /*abbreviation_probability=*/0.2,
                      /*token_swap_probability=*/0.12},
  };
  /// Fraction of people whose `org` value is drawn from `org_names`
  /// (the rest get organisations absent from the OAO table, controlling the
  /// join percentage between PPL and OAO).
  double org_join_fraction = 1.0;
};

/// \brief Generates a PPL-like table of `total_rows` records (12 attributes:
/// id, given_name, surname, street_number, address, suburb, postcode,
/// state, date_of_birth, age, phone, org).
GeneratedDataset MakePeople(std::size_t total_rows,
                            const std::vector<std::string>& org_names,
                            std::uint64_t seed,
                            const PeopleOptions& options = {});

}  // namespace queryer::datagen

#endif  // QUERYER_DATAGEN_PEOPLE_H_
