// In-memory entity collection: a named, columnar table of string records.
//
// An entity is one row; its EntityId is its row position, which all blocking
// and matching indices use as the record identifier (the paper's e_id).
//
// Storage layout: one column per attribute, each column a dense vector of
// uint32 dictionary codes plus a per-column Dictionary interning the
// distinct strings into a stable arena. Reads hand out string_views into
// the arena — valid for the table's lifetime, no copies. Tables are
// immutable once built; loads go through TableBuilder.

#ifndef QUERYER_STORAGE_TABLE_H_
#define QUERYER_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/schema.h"

namespace queryer {

/// Row position within a table; the canonical entity identifier.
using EntityId = std::uint32_t;

/// \brief Borrowed view of one column's dictionary-code vector. The codes
/// may live in a heap vector (tables built by TableBuilder) or directly in
/// a memory-mapped snapshot section (tables loaded by the persist tier) —
/// consumers iterate either the same way.
class CodeSpan {
 public:
  CodeSpan(const DictCode* data, std::size_t size)
      : data_(data), size_(size) {}

  const DictCode* data() const { return data_; }
  std::size_t size() const { return size_; }
  DictCode operator[](std::size_t i) const { return data_[i]; }
  const DictCode* begin() const { return data_; }
  const DictCode* end() const { return data_ + size_; }

 private:
  const DictCode* data_;
  std::size_t size_;
};

/// \brief Read view of one column: dictionary codes plus their dictionary.
///
/// The view borrows from the Table; it is cheap to copy and valid for the
/// table's lifetime.
class ColumnView {
 public:
  std::size_t size() const { return size_; }
  DictCode code(EntityId id) const { return codes_[id]; }
  std::string_view value(EntityId id) const {
    return dictionary_->value(codes_[id]);
  }
  CodeSpan codes() const { return CodeSpan(codes_, size_); }
  const Dictionary& dictionary() const { return *dictionary_; }

 private:
  friend class Table;
  ColumnView(const DictCode* codes, std::size_t size,
             const Dictionary* dictionary)
      : codes_(codes), size_(size), dictionary_(dictionary) {}

  const DictCode* codes_;
  std::size_t size_;
  const Dictionary* dictionary_;
};

/// \brief A dirty (or clean) entity collection. Columnar and immutable;
/// build one with TableBuilder.
class Table {
 public:
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_attributes() const { return schema_.num_attributes(); }

  /// The value of one attribute of one entity, viewing into the column
  /// dictionary's storage (heap arena or snapshot mapping). Valid for the
  /// table's lifetime.
  std::string_view ValueAt(EntityId id, std::size_t attribute) const {
    const Column& c = columns_[attribute];
    return c.dictionary.value(c.codes[id]);
  }

  /// The dictionary code of one attribute of one entity. Equal codes imply
  /// byte-equal strings; unequal codes imply nothing under the engine's
  /// case-insensitive / numeric comparison semantics.
  DictCode CodeAt(EntityId id, std::size_t attribute) const {
    return columns_[attribute].codes[id];
  }

  ColumnView column(std::size_t attribute) const {
    const Column& c = columns_[attribute];
    return ColumnView(c.codes, num_rows_, &c.dictionary);
  }

  const Dictionary& dictionary(std::size_t attribute) const {
    return columns_[attribute].dictionary;
  }

  /// Copies one full row into `out` (resized to the table arity), reusing
  /// the strings' existing capacity — the late-materialization boundary.
  void MaterializeRow(EntityId id, std::vector<std::string>* out) const;

 private:
  friend class TableBuilder;
  // The persist tier builds tables whose code vectors and dictionary
  // string bytes point into a memory-mapped snapshot (owned_codes stays
  // empty, mapping_ pins the file mapping).
  friend class TableSnapshotIO;

  struct Column {
    /// Heap storage for tables built row by row; empty for mapped tables.
    std::vector<DictCode> owned_codes;
    /// The code vector actually read (owned_codes.data() or a pointer into
    /// the snapshot mapping). Set when the table is frozen.
    const DictCode* codes = nullptr;
    Dictionary dictionary;
  };

  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        columns_(schema_.num_attributes()) {}

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;
  /// Keeps the snapshot mapping alive for mapped tables; null otherwise.
  std::shared_ptr<const void> mapping_;
};

using TablePtr = std::shared_ptr<Table>;

/// \brief Append-only loader for Table. AddRow encodes each value through
/// the per-column dictionaries; Build() hands the finished table out and
/// leaves the builder empty.
class TableBuilder {
 public:
  TableBuilder(std::string name, Schema schema)
      : table_(new Table(std::move(name), std::move(schema))) {}

  void Reserve(std::size_t rows);

  /// Appends a row; fails if the arity does not match the schema.
  Status AddRow(const std::vector<std::string>& values);

  std::size_t num_rows() const { return table_->num_rows(); }

  /// Finalizes and returns the table. The builder must not be used after.
  TablePtr Build() { return std::move(table_); }

 private:
  TablePtr table_;
};

/// \brief Uniform read access to one tuple for expression evaluation,
/// whether the tuple lives as owned strings (a materialized Row), as a row
/// of a columnar Table, or as a single column value (TablePredicate's
/// per-dictionary-code truth table).
class RowRef {
 public:
  /// Implicit: a materialized row's owned values.
  RowRef(const std::vector<std::string>& values)  // NOLINT(runtime/explicit)
      : kind_(Kind::kOwned), owned_(&values) {}

  RowRef(const Table& table, EntityId id)
      : kind_(Kind::kTable), table_(&table), id_(id) {}

  /// A virtual tuple whose only populated column is `column` with value
  /// `value`; reading any other column is undefined. Used to evaluate a
  /// single-column predicate once per distinct dictionary value.
  static RowRef SingleColumn(std::size_t column, std::string_view value) {
    RowRef ref;
    ref.kind_ = Kind::kSingle;
    ref.single_column_ = column;
    ref.single_value_ = value;
    return ref;
  }

  std::string_view Get(std::size_t column) const {
    switch (kind_) {
      case Kind::kOwned:
        return (*owned_)[column];
      case Kind::kTable:
        return table_->ValueAt(id_, column);
      case Kind::kSingle:
      default:
        return single_value_;
    }
  }

 private:
  enum class Kind : std::uint8_t { kOwned, kTable, kSingle };

  RowRef() = default;

  Kind kind_ = Kind::kSingle;
  const std::vector<std::string>* owned_ = nullptr;
  const Table* table_ = nullptr;
  EntityId id_ = 0;
  std::size_t single_column_ = 0;
  std::string_view single_value_;
};

}  // namespace queryer

#endif  // QUERYER_STORAGE_TABLE_H_
