// In-memory entity collection: a named, columnar table of string records.
//
// An entity is one row; its EntityId is its row position, which all blocking
// and matching indices use as the record identifier (the paper's e_id).
//
// Storage layout: one column per attribute, each column a dense vector of
// uint32 dictionary codes plus a per-column Dictionary interning the
// distinct strings into a stable arena. Reads hand out string_views into
// the arena — valid for the table's lifetime, no copies. Tables are
// immutable once built; loads go through TableBuilder.

#ifndef QUERYER_STORAGE_TABLE_H_
#define QUERYER_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/schema.h"

namespace queryer {

/// Row position within a table; the canonical entity identifier.
using EntityId = std::uint32_t;

/// \brief Read view of one column: dictionary codes plus their dictionary.
///
/// The view borrows from the Table; it is cheap to copy and valid for the
/// table's lifetime.
class ColumnView {
 public:
  std::size_t size() const { return codes_->size(); }
  DictCode code(EntityId id) const { return (*codes_)[id]; }
  std::string_view value(EntityId id) const {
    return dictionary_->value((*codes_)[id]);
  }
  const std::vector<DictCode>& codes() const { return *codes_; }
  const Dictionary& dictionary() const { return *dictionary_; }

 private:
  friend class Table;
  ColumnView(const std::vector<DictCode>* codes, const Dictionary* dictionary)
      : codes_(codes), dictionary_(dictionary) {}

  const std::vector<DictCode>* codes_;
  const Dictionary* dictionary_;
};

/// \brief A dirty (or clean) entity collection. Columnar and immutable;
/// build one with TableBuilder.
class Table {
 public:
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_attributes() const { return schema_.num_attributes(); }

  /// The value of one attribute of one entity, viewing into the column
  /// dictionary's arena. Valid for the table's lifetime.
  std::string_view ValueAt(EntityId id, std::size_t attribute) const {
    const Column& c = columns_[attribute];
    return c.dictionary.value(c.codes[id]);
  }

  /// The dictionary code of one attribute of one entity. Equal codes imply
  /// byte-equal strings; unequal codes imply nothing under the engine's
  /// case-insensitive / numeric comparison semantics.
  DictCode CodeAt(EntityId id, std::size_t attribute) const {
    return columns_[attribute].codes[id];
  }

  ColumnView column(std::size_t attribute) const {
    const Column& c = columns_[attribute];
    return ColumnView(&c.codes, &c.dictionary);
  }

  const Dictionary& dictionary(std::size_t attribute) const {
    return columns_[attribute].dictionary;
  }

  /// Copies one full row into `out` (resized to the table arity), reusing
  /// the strings' existing capacity — the late-materialization boundary.
  void MaterializeRow(EntityId id, std::vector<std::string>* out) const;

 private:
  friend class TableBuilder;

  struct Column {
    std::vector<DictCode> codes;
    Dictionary dictionary;
  };

  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        columns_(schema_.num_attributes()) {}

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

/// \brief Append-only loader for Table. AddRow encodes each value through
/// the per-column dictionaries; Build() hands the finished table out and
/// leaves the builder empty.
class TableBuilder {
 public:
  TableBuilder(std::string name, Schema schema)
      : table_(new Table(std::move(name), std::move(schema))) {}

  void Reserve(std::size_t rows);

  /// Appends a row; fails if the arity does not match the schema.
  Status AddRow(const std::vector<std::string>& values);

  std::size_t num_rows() const { return table_->num_rows(); }

  /// Finalizes and returns the table. The builder must not be used after.
  TablePtr Build() { return std::move(table_); }

 private:
  TablePtr table_;
};

/// \brief Uniform read access to one tuple for expression evaluation,
/// whether the tuple lives as owned strings (a materialized Row), as a row
/// of a columnar Table, or as a single column value (TablePredicate's
/// per-dictionary-code truth table).
class RowRef {
 public:
  /// Implicit: a materialized row's owned values.
  RowRef(const std::vector<std::string>& values)  // NOLINT(runtime/explicit)
      : kind_(Kind::kOwned), owned_(&values) {}

  RowRef(const Table& table, EntityId id)
      : kind_(Kind::kTable), table_(&table), id_(id) {}

  /// A virtual tuple whose only populated column is `column` with value
  /// `value`; reading any other column is undefined. Used to evaluate a
  /// single-column predicate once per distinct dictionary value.
  static RowRef SingleColumn(std::size_t column, std::string_view value) {
    RowRef ref;
    ref.kind_ = Kind::kSingle;
    ref.single_column_ = column;
    ref.single_value_ = value;
    return ref;
  }

  std::string_view Get(std::size_t column) const {
    switch (kind_) {
      case Kind::kOwned:
        return (*owned_)[column];
      case Kind::kTable:
        return table_->ValueAt(id_, column);
      case Kind::kSingle:
      default:
        return single_value_;
    }
  }

 private:
  enum class Kind : std::uint8_t { kOwned, kTable, kSingle };

  RowRef() = default;

  Kind kind_ = Kind::kSingle;
  const std::vector<std::string>* owned_ = nullptr;
  const Table* table_ = nullptr;
  EntityId id_ = 0;
  std::size_t single_column_ = 0;
  std::string_view single_value_;
};

}  // namespace queryer

#endif  // QUERYER_STORAGE_TABLE_H_
