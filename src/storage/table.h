// In-memory entity collection: a named table of string records.
//
// An entity is one row; its EntityId is its row position, which all blocking
// and matching indices use as the record identifier (the paper's e_id).

#ifndef QUERYER_STORAGE_TABLE_H_
#define QUERYER_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace queryer {

/// Row position within a table; the canonical entity identifier.
using EntityId = std::uint32_t;

/// \brief A dirty (or clean) entity collection.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends a row; fails if the arity does not match the schema.
  Status AppendRow(std::vector<std::string> values);

  const std::vector<std::string>& row(EntityId id) const { return rows_[id]; }
  const std::string& value(EntityId id, std::size_t attribute) const {
    return rows_[id][attribute];
  }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void Reserve(std::size_t n) { rows_.reserve(n); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<std::string>> rows_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace queryer

#endif  // QUERYER_STORAGE_TABLE_H_
