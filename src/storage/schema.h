// Schema of an entity collection: an ordered list of attribute names.
//
// QueryER is schema-agnostic for ER purposes (every attribute value is
// tokenized for blocking), so attributes are untyped strings. Numeric
// comparisons in predicates are handled by the expression evaluator, which
// parses values on demand.

#ifndef QUERYER_STORAGE_SCHEMA_H_
#define QUERYER_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace queryer {

/// \brief Ordered attribute names of a table. Lookup is case-insensitive.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  /// Fails if names are empty or contain (case-insensitive) duplicates.
  static Result<Schema> Make(std::vector<std::string> attribute_names);

  std::size_t num_attributes() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(std::size_t i) const { return names_[i]; }

  /// Case-insensitive position lookup.
  std::optional<std::size_t> IndexOf(std::string_view attribute) const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace queryer

#endif  // QUERYER_STORAGE_SCHEMA_H_
