// CSV import/export so QueryER can run directly over raw data files,
// as the paper's deployment mode describes ("directly used over raw data
// files (e.g. csv)"). RFC-4180-style quoting is supported.

#ifndef QUERYER_STORAGE_CSV_H_
#define QUERYER_STORAGE_CSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/table.h"

namespace queryer {

struct CsvOptions {
  char delimiter = ',';
  /// First line holds attribute names.
  bool has_header = true;
};

/// \brief Parses CSV text into a table named `table_name`.
///
/// When `options.has_header` is false, attributes are named c0, c1, ...
Result<TablePtr> ReadCsvString(std::string_view text, std::string table_name,
                               const CsvOptions& options = {});

/// \brief Loads a CSV file from disk.
Result<TablePtr> ReadCsvFile(const std::string& path, std::string table_name,
                             const CsvOptions& options = {});

/// \brief Serializes a table to CSV text (with header).
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// \brief Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace queryer

#endif  // QUERYER_STORAGE_CSV_H_
