#include "storage/table.h"

namespace queryer {

void Table::MaterializeRow(EntityId id,
                           std::vector<std::string>* out) const {
  const std::size_t n = columns_.size();
  out->resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    const Column& c = columns_[a];
    const std::string_view v = c.dictionary.value(c.codes[id]);
    (*out)[a].assign(v.data(), v.size());
  }
}

void TableBuilder::Reserve(std::size_t rows) {
  for (auto& column : table_->columns_) column.owned_codes.reserve(rows);
}

Status TableBuilder::AddRow(const std::vector<std::string>& values) {
  Table& t = *table_;
  if (values.size() != t.schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) +
        " does not match schema arity " +
        std::to_string(t.schema_.num_attributes()) + " of table " + t.name_);
  }
  for (std::size_t a = 0; a < values.size(); ++a) {
    Table::Column& c = t.columns_[a];
    c.owned_codes.push_back(c.dictionary.GetOrAdd(values[a]));
    // Re-point after every push: readers only see the table post-Build, but
    // keeping the pointer current costs nothing and avoids a stale window.
    c.codes = c.owned_codes.data();
  }
  ++t.num_rows_;
  return Status::OK();
}

}  // namespace queryer
