#include "storage/table.h"

namespace queryer {

Status Table::AppendRow(std::vector<std::string> values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " does not match schema arity " +
        std::to_string(schema_.num_attributes()) + " of table " + name_);
  }
  rows_.push_back(std::move(values));
  return Status::OK();
}

}  // namespace queryer
