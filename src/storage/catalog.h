// Catalog: name -> table registry used by the planner and executor.

#ifndef QUERYER_STORAGE_CATALOG_H_
#define QUERYER_STORAGE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace queryer {

/// \brief Registry of loaded entity collections, keyed case-insensitively.
class Catalog {
 public:
  Status Register(TablePtr table);
  /// Replaces an existing table of the same name (or registers a new one).
  void RegisterOrReplace(TablePtr table);

  Result<TablePtr> Get(const std::string& name) const;
  bool Contains(const std::string& name) const;

  std::vector<std::string> table_names() const;
  std::size_t size() const { return tables_.size(); }

 private:
  static std::string Key(const std::string& name);
  std::map<std::string, TablePtr> tables_;
};

}  // namespace queryer

#endif  // QUERYER_STORAGE_CATALOG_H_
