#include "storage/catalog.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace queryer {

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

Status Catalog::Register(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  std::string key = Key(table->name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already registered: " + table->name());
  }
  tables_[key] = std::move(table);
  return Status::OK();
}

void Catalog::RegisterOrReplace(TablePtr table) {
  QUERYER_CHECK(table != nullptr);
  tables_[Key(table->name())] = std::move(table);
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return Status::NotFound("unknown table: " + name);
  return it->second;
}

bool Catalog::Contains(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace queryer
