#include "storage/schema.h"

#include "common/string_util.h"

namespace queryer {

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {}

Result<Schema> Schema::Make(std::vector<std::string> attribute_names) {
  if (attribute_names.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  for (std::size_t i = 0; i < attribute_names.size(); ++i) {
    for (std::size_t j = i + 1; j < attribute_names.size(); ++j) {
      if (EqualsIgnoreCase(attribute_names[i], attribute_names[j])) {
        return Status::InvalidArgument("duplicate attribute name: " +
                                       attribute_names[i]);
      }
    }
  }
  return Schema(std::move(attribute_names));
}

std::optional<std::size_t> Schema::IndexOf(std::string_view attribute) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (EqualsIgnoreCase(names_[i], attribute)) return i;
  }
  return std::nullopt;
}

bool Schema::Equals(const Schema& other) const {
  if (names_.size() != other.names_.size()) return false;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (!EqualsIgnoreCase(names_[i], other.names_[i])) return false;
  }
  return true;
}

}  // namespace queryer
