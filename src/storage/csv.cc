#include "storage/csv.h"

#include <fstream>
#include <sstream>

namespace queryer {

namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// trailing newline. Handles quoted fields with embedded delimiters/newlines
// and doubled quotes.
Result<std::vector<std::string>> ParseRecord(std::string_view text,
                                             std::size_t* pos,
                                             char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  std::size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty()) {
        return Status::ParseError("quote inside unquoted CSV field");
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // Swallow; handled with the following '\n' (or ignored).
    } else if (c == '\n') {
      ++i;
      break;
    } else {
      field += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

std::string EscapeField(std::string_view field, char delimiter) {
  bool needs_quotes = field.find(delimiter) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<TablePtr> ReadCsvString(std::string_view text, std::string table_name,
                               const CsvOptions& options) {
  std::size_t pos = 0;
  std::vector<std::string> header;
  if (options.has_header) {
    if (pos >= text.size()) return Status::ParseError("empty CSV input");
    QUERYER_ASSIGN_OR_RETURN(header, ParseRecord(text, &pos, options.delimiter));
  }

  // Records stream straight into the TableBuilder (one dictionary-encode
  // pass, no row-major staging buffer). A headerless file needs its first
  // record parsed before the schema arity is known.
  std::vector<std::string> first_record;
  bool has_first = false;
  if (!options.has_header) {
    std::size_t arity = 1;
    if (pos < text.size()) {
      QUERYER_ASSIGN_OR_RETURN(first_record,
                               ParseRecord(text, &pos, options.delimiter));
      has_first = !(first_record.size() == 1 && first_record[0].empty());
      if (has_first) arity = first_record.size();
    }
    for (std::size_t i = 0; i < arity; ++i) header.push_back("c" + std::to_string(i));
  }

  QUERYER_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(header)));
  TableBuilder builder(std::move(table_name), std::move(schema));
  if (has_first) QUERYER_RETURN_NOT_OK(builder.AddRow(first_record));
  std::vector<std::string> record;
  while (pos < text.size()) {
    QUERYER_ASSIGN_OR_RETURN(record, ParseRecord(text, &pos, options.delimiter));
    // Skip blank trailing lines.
    if (record.size() == 1 && record[0].empty()) continue;
    QUERYER_RETURN_NOT_OK(builder.AddRow(record));
  }
  return builder.Build();
}

Result<TablePtr> ReadCsvFile(const std::string& path, std::string table_name,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), std::move(table_name), options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = table.schema();
  for (std::size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += options.delimiter;
    out += EscapeField(schema.name(i), options.delimiter);
  }
  out += '\n';
  for (EntityId id = 0; id < table.num_rows(); ++id) {
    for (std::size_t i = 0; i < table.num_attributes(); ++i) {
      if (i > 0) out += options.delimiter;
      out += EscapeField(table.ValueAt(id, i), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out << WriteCsvString(table, options);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace queryer
