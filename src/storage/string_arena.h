// Append-only string storage with stable addresses.
//
// The per-column Dictionary copies every distinct attribute value into one
// of these arenas and hands out string_views into it. Blocks are never
// reallocated or freed until the arena dies, so a view stays valid for the
// lifetime of the owning Table no matter how many strings are added later —
// that stability is what lets ColumnView / Table::ValueAt return
// string_view instead of owned strings.

#ifndef QUERYER_STORAGE_STRING_ARENA_H_
#define QUERYER_STORAGE_STRING_ARENA_H_

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace queryer {

/// \brief Chunked append-only byte storage for dictionary strings.
class StringArena {
 public:
  StringArena() = default;

  // Views into the arena must survive arena moves (blocks are heap
  // allocations, so moving the vector of unique_ptrs keeps them alive),
  // but copying would silently invalidate nothing and double memory —
  // forbid it.
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;
  StringArena(StringArena&&) = default;
  StringArena& operator=(StringArena&&) = default;

  /// Copies `s` (which may contain NUL bytes) into the arena and returns a
  /// view of the copy. The view stays valid until the arena is destroyed.
  /// Every stored string is followed by a NUL byte (not part of the view),
  /// matching std::string's layout guarantee — so ParseNumber and other
  /// C-string consumers can read arena values in place.
  std::string_view Add(std::string_view s) {
    if (s.empty()) return std::string_view(kEmpty, 0);
    if (s.size() + 1 > kBlockSize) {
      // Oversize strings get a private block so regular blocks stay small.
      blocks_.emplace_back(new char[s.size() + 1]);
      char* dst = blocks_.back().get();
      std::memcpy(dst, s.data(), s.size());
      dst[s.size()] = '\0';
      bytes_ += s.size();
      return std::string_view(dst, s.size());
    }
    if (used_ + s.size() + 1 > kBlockSize || current_ == nullptr) {
      blocks_.emplace_back(new char[kBlockSize]);
      current_ = blocks_.back().get();
      used_ = 0;
    }
    char* dst = current_ + used_;
    std::memcpy(dst, s.data(), s.size());
    dst[s.size()] = '\0';
    used_ += s.size() + 1;
    bytes_ += s.size();
    return std::string_view(dst, s.size());
  }

  /// Total string bytes stored (excluding block slack).
  std::size_t bytes() const { return bytes_; }

 private:
  static constexpr std::size_t kBlockSize = 64 * 1024;
  // A non-null data pointer for the empty string, so callers can hash and
  // compare empty views without tripping UB checks on nullptr arithmetic.
  static constexpr const char* kEmpty = "";

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* current_ = nullptr;
  std::size_t used_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_STORAGE_STRING_ARENA_H_
