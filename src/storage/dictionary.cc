#include "storage/dictionary.h"

namespace queryer {

Dictionary Dictionary::FromMapped(std::vector<std::string_view> views) {
  Dictionary d;
  d.views_ = std::move(views);
  d.index_.reserve(d.views_.size());
  for (DictCode code = 0; code < d.views_.size(); ++code) {
    d.index_.emplace(d.views_[code], code);
  }
  return d;
}

DictCode Dictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  std::string_view interned = arena_.Add(s);
  const DictCode code = static_cast<DictCode>(views_.size());
  views_.push_back(interned);
  index_.emplace(interned, code);
  return code;
}

std::optional<DictCode> Dictionary::Find(std::string_view s) const {
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace queryer
