#include "storage/dictionary.h"

namespace queryer {

DictCode Dictionary::GetOrAdd(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  std::string_view interned = arena_.Add(s);
  const DictCode code = static_cast<DictCode>(views_.size());
  views_.push_back(interned);
  index_.emplace(interned, code);
  return code;
}

std::optional<DictCode> Dictionary::Find(std::string_view s) const {
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace queryer
