// Per-column string dictionary: distinct values -> dense uint32 codes.
//
// Codes are assigned in first-appearance order during the table load, so a
// table built twice from the same input gets byte-identical code vectors —
// part of the engine's determinism contract. Lookup structures view into a
// StringArena, which guarantees address stability, so the string_views
// handed out by value() remain valid for the table's lifetime.

#ifndef QUERYER_STORAGE_DICTIONARY_H_
#define QUERYER_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/string_arena.h"

namespace queryer {

/// Dictionary code of one distinct string within one column.
using DictCode = std::uint32_t;

/// \brief Distinct-value dictionary for one column.
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Restores a dictionary whose string bytes live in externally-owned
  /// storage (a memory-mapped snapshot section). `views[i]` becomes the
  /// interned string for code i and must stay valid and address-stable for
  /// the dictionary's lifetime — the caller pins the mapping. The exact-
  /// match index is rebuilt; the arena stays empty unless GetOrAdd later
  /// interns a new string (tables are immutable, so loads never do).
  static Dictionary FromMapped(std::vector<std::string_view> views);

  /// Returns the code for `s`, interning a copy on first sight.
  /// Codes are dense: 0, 1, 2, ... in first-appearance order.
  DictCode GetOrAdd(std::string_view s);

  /// Returns the code for `s` if it was ever interned. Exact (byte-wise)
  /// match — callers that need the engine's case-insensitive semantics
  /// must scan codes (see TablePredicate's truth table).
  std::optional<DictCode> Find(std::string_view s) const;

  /// The interned string for a code. Valid for the dictionary's lifetime.
  std::string_view value(DictCode code) const { return views_[code]; }

  /// Number of distinct values.
  std::size_t size() const { return views_.size(); }

  /// String bytes held by the backing arena.
  std::size_t bytes() const { return arena_.bytes(); }

 private:
  StringArena arena_;
  std::vector<std::string_view> views_;  // code -> interned string
  // Keys view into arena_ (stable addresses), so no owned-string copies.
  std::unordered_map<std::string_view, DictCode> index_;
};

}  // namespace queryer

#endif  // QUERYER_STORAGE_DICTIONARY_H_
