// The Batch Approach baseline (paper Sec. 5, BAQ): deduplicate the *entire*
// table offline — the traditional ETL step QueryER avoids — before any
// query runs. Implemented over the same ER components so the comparison
// against the analysis-aware path is apples-to-apples: blocking comes from
// the TBI, the full block collection goes through the table's Meta-Blocking
// configuration, every surviving comparison is executed, and all entities
// are marked resolved in the Link Index.

#ifndef QUERYER_BASELINE_BATCH_ER_H_
#define QUERYER_BASELINE_BATCH_ER_H_

#include "common/status.h"
#include "exec/exec_stats.h"
#include "exec/table_runtime.h"

namespace queryer {

/// \brief Counters of one batch deduplication.
struct BatchErStats {
  std::size_t comparisons_executed = 0;
  std::size_t matches_found = 0;
  double seconds = 0;
};

/// \brief Fully deduplicates `runtime`'s table, populating its Link Index
/// and marking all entities resolved. Stage timings and counters are also
/// accumulated into `stats` when provided. Idempotent: a second call finds
/// every pair already linked or already compared and re-executes the
/// comparisons that found no match. Fails only when comparison execution
/// does (in practice: injected failures) — and then marks nothing
/// resolved, so the next call retries the whole pass.
Result<BatchErStats> BatchDeduplicate(TableRuntime* runtime,
                                      ExecStats* stats = nullptr);

}  // namespace queryer

#endif  // QUERYER_BASELINE_BATCH_ER_H_
