#include "baseline/batch_er.h"

#include "common/stopwatch.h"

namespace queryer {

Result<BatchErStats> BatchDeduplicate(TableRuntime* runtime,
                                      ExecStats* stats) {
  BatchErStats result;
  Stopwatch total;

  // The full block collection: every TBI block, with every member treated
  // as a "query" entity (batch ER has no selection to restrict to).
  const TableBlockIndex& tbi = runtime->tbi();
  Stopwatch watch;
  BlockCollection blocks;
  blocks.reserve(tbi.num_blocks());
  for (std::size_t b = 0; b < tbi.num_blocks(); ++b) {
    Block block;
    block.key = tbi.block_key(b);
    block.entities = tbi.block_entities(b);
    block.query_entities = block.entities;
    blocks.push_back(std::move(block));
  }
  double block_seconds = watch.ElapsedSeconds();

  watch.Restart();
  MetaBlockingResult refined =
      RunMetaBlocking(std::move(blocks), runtime->meta_blocking_config(),
                      runtime->thread_pool());
  double meta_seconds = watch.ElapsedSeconds();

  watch.Restart();
  QUERYER_ASSIGN_OR_RETURN(
      ComparisonExecStats exec,
      ExecuteComparisons(runtime->table(), refined.comparisons,
                         runtime->matching_config(), &runtime->link_index(),
                         &runtime->attribute_weights(),
                         runtime->thread_pool()));
  double resolution_seconds = watch.ElapsedSeconds();

  runtime->link_index().MarkAllResolved();

  result.comparisons_executed = exec.executed;
  result.matches_found = exec.matches_found;
  result.seconds = total.ElapsedSeconds();

  if (stats != nullptr) {
    stats->comparisons_executed += exec.executed;
    stats->comparisons_skipped_linked += exec.skipped_linked;
    stats->matches_found += exec.matches_found;
    stats->blocking_seconds += block_seconds;
    // Batch ER has no Block-Join; the meta-blocking bucket covers BP/BF/EP.
    stats->edge_pruning_seconds += meta_seconds;
    stats->resolution_seconds += resolution_seconds;
    stats->comparisons_after_metablocking += refined.comparisons.size();
    if (stats->collect_comparisons) {
      stats->collected_comparisons.insert(stats->collected_comparisons.end(),
                                          refined.comparisons.begin(),
                                          refined.comparisons.end());
    }
  }
  return result;
}

}  // namespace queryer
