// SQL parser for QueryER's flat SPJ dialect (paper Sec. 5):
//
//   SELECT [DEDUP] <items|*>
//   FROM <table> [AS alias]
//   [INNER JOIN <table> [AS alias] ON <col> = <col>]...
//   [WHERE <conjunctive/disjunctive predicate>]
//
// Condition expressions: col op literal (op in =, <>, <, <=, >, >=),
// col IN (...), col LIKE '...', col BETWEEN a AND b, MOD(col, n) op m,
// and equijoins col = col (also accepted in the WHERE clause).
// The DEDUP keyword requests duplicate-resolved results (a Dedupe Query);
// without it the statement has plain SQL semantics.

#ifndef QUERYER_SQL_PARSER_H_
#define QUERYER_SQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "plan/expr.h"
#include "plan/logical_plan.h"

namespace queryer {

/// \brief A table in the FROM clause.
struct TableRef {
  std::string name;
  std::string alias;  // Defaults to the name.
};

/// \brief One INNER JOIN clause with its equi-join keys.
struct JoinSpec {
  TableRef table;
  ExprPtr left_key;   // Column ref into tables mentioned earlier.
  ExprPtr right_key;  // Column ref into the joined table.
};

/// \brief Parsed SELECT statement, optionally prefixed with
/// `EXPLAIN [ANALYZE]`. EXPLAIN requests the static plan; EXPLAIN ANALYZE
/// executes the query and requests the plan annotated with per-operator
/// runtime stats. The planner ignores both flags — they change how the
/// engine presents the result, not the plan itself.
struct SelectStatement {
  bool explain = false;
  bool analyze = false;  // Only meaningful when `explain` is set.
  bool dedup = false;
  bool select_star = false;
  std::vector<SelectItem> items;  // Empty iff select_star.
  TableRef from;
  std::vector<JoinSpec> joins;
  ExprPtr where;  // Null when absent.

  std::string ToString() const;
};

/// \brief Parses a single SELECT statement (optionally ';'-terminated).
Result<SelectStatement> ParseSelect(std::string_view sql);

}  // namespace queryer

#endif  // QUERYER_SQL_PARSER_H_
