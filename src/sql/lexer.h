// SQL lexer: turns a query string into a token stream for the parser.

#ifndef QUERYER_SQL_LEXER_H_
#define QUERYER_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace queryer {

enum class TokenType {
  kIdentifier,  // Unquoted word or "quoted" identifier.
  kString,      // 'single-quoted' literal.
  kNumber,
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kEq,
  kNe,   // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // Identifier/string/number text (unquoted).
  std::size_t offset = 0;  // Byte offset in the input, for error messages.

  /// Case-insensitive keyword test (only meaningful for identifiers).
  bool IsKeyword(std::string_view keyword) const;
};

/// \brief Tokenizes a SQL string; fails on unterminated literals or
/// unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace queryer

#endif  // QUERYER_SQL_LEXER_H_
