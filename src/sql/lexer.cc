#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace queryer {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

bool Token::IsKeyword(std::string_view keyword) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, keyword);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < sql.size() && IsIdentChar(sql[i])) ++i;
      token.type = TokenType::kIdentifier;
      token.text = std::string(sql.substr(start, i - start));
    } else if (IsDigit(c) || (c == '.' && i + 1 < sql.size() && IsDigit(sql[i + 1]))) {
      std::size_t start = i;
      while (i < sql.size() && (IsDigit(sql[i]) || sql[i] == '.')) ++i;
      token.type = TokenType::kNumber;
      token.text = std::string(sql.substr(start, i - start));
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {  // Escaped quote.
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.offset));
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
    } else if (c == '"') {
      // Double-quoted identifier (also accepted for string-style literals in
      // the paper's example queries, e.g. venue="EDBT"); parser decides by
      // context, so expose as a string token.
      ++i;
      std::string text;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '"') {
          ++i;
          closed = true;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated quoted name at offset " +
                                  std::to_string(token.offset));
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
    } else {
      switch (c) {
        case ',': token.type = TokenType::kComma; ++i; break;
        case '.': token.type = TokenType::kDot; ++i; break;
        case '(': token.type = TokenType::kLParen; ++i; break;
        case ')': token.type = TokenType::kRParen; ++i; break;
        case '*': token.type = TokenType::kStar; ++i; break;
        case '=': token.type = TokenType::kEq; ++i; break;
        case '!':
          if (i + 1 < sql.size() && sql[i + 1] == '=') {
            token.type = TokenType::kNe;
            i += 2;
          } else {
            return Status::ParseError("unexpected '!' at offset " +
                                      std::to_string(i));
          }
          break;
        case '<':
          if (i + 1 < sql.size() && sql[i + 1] == '=') {
            token.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < sql.size() && sql[i + 1] == '>') {
            token.type = TokenType::kNe;
            i += 2;
          } else {
            token.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < sql.size() && sql[i + 1] == '=') {
            token.type = TokenType::kGe;
            i += 2;
          } else {
            token.type = TokenType::kGt;
            ++i;
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = sql.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace queryer
