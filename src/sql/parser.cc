#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace queryer {

namespace {

// Reserved words that terminate an identifier-consuming production (e.g. an
// optional alias must not swallow the next clause's keyword).
bool IsReservedKeyword(const Token& token) {
  static constexpr std::string_view kReserved[] = {
      "select", "dedup", "from",    "where", "inner", "join", "on",
      "and",    "or",    "not",     "in",    "like",  "between", "as",
      "mod",    "explain", "analyze",
  };
  if (token.type != TokenType::kIdentifier) return false;
  for (std::string_view keyword : kReserved) {
    if (EqualsIgnoreCase(token.text, keyword)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    SelectStatement stmt;
    if (Peek().IsKeyword("EXPLAIN")) {
      stmt.explain = true;
      Advance();
      if (Peek().IsKeyword("ANALYZE")) {
        stmt.analyze = true;
        Advance();
      }
    }
    QUERYER_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (Peek().IsKeyword("DEDUP")) {
      stmt.dedup = true;
      Advance();
    }
    QUERYER_RETURN_NOT_OK(ParseSelectList(&stmt));
    QUERYER_RETURN_NOT_OK(ExpectKeyword("FROM"));
    QUERYER_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());
    while (Peek().IsKeyword("INNER") || Peek().IsKeyword("JOIN")) {
      QUERYER_ASSIGN_OR_RETURN(JoinSpec join, ParseJoin());
      stmt.joins.push_back(std::move(join));
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      QUERYER_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (Peek().type == TokenType::kEnd) return stmt;
    return Error("unexpected trailing input");
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t index = pos_ + ahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset));
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error("expected " + std::string(keyword));
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenType type, const char* what) {
    if (Peek().type != type) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (Peek().type == TokenType::kStar) {
      Advance();
      stmt->select_star = true;
      return Status::OK();
    }
    while (true) {
      QUERYER_ASSIGN_OR_RETURN(ExprPtr expr, ParseOperand());
      SelectItem item;
      item.expr = std::move(expr);
      if (Peek().IsKeyword("AS")) {
        Advance();
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdentifier || IsReservedKeyword(Peek())) {
      return Error("expected table name");
    }
    TableRef ref;
    ref.name = Advance().text;
    ref.alias = ref.name;
    if (Peek().IsKeyword("AS")) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReservedKeyword(Peek())) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<JoinSpec> ParseJoin() {
    if (Peek().IsKeyword("INNER")) Advance();
    QUERYER_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    JoinSpec join;
    QUERYER_ASSIGN_OR_RETURN(join.table, ParseTableRef());
    QUERYER_RETURN_NOT_OK(ExpectKeyword("ON"));
    QUERYER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseColumnRef());
    QUERYER_RETURN_NOT_OK(Expect(TokenType::kEq, "'=' in join condition"));
    QUERYER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseColumnRef());
    join.left_key = std::move(lhs);
    join.right_key = std::move(rhs);
    return join;
  }

  Result<ExprPtr> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier || IsReservedKeyword(Peek())) {
      return Error("expected column reference");
    }
    std::string first = Advance().text;
    if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column after '.'");
      }
      return Expr::Column(std::move(first), Advance().text);
    }
    return Expr::Column("", std::move(first));
  }

  // Value operand: column ref, literal, or MOD(operand, operand).
  Result<ExprPtr> ParseOperand() {
    const Token& token = Peek();
    if (token.type == TokenType::kString) {
      Advance();
      return Expr::Literal(token.text);
    }
    if (token.type == TokenType::kNumber) {
      Advance();
      return Expr::Literal(token.text);
    }
    if (token.IsKeyword("MOD")) {
      Advance();
      QUERYER_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after MOD"));
      QUERYER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());
      QUERYER_RETURN_NOT_OK(Expect(TokenType::kComma, "',' in MOD"));
      QUERYER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
      QUERYER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')' after MOD"));
      return Expr::Mod(std::move(lhs), std::move(rhs));
    }
    if (token.type == TokenType::kIdentifier && !IsReservedKeyword(token)) {
      return ParseColumnRef();
    }
    return Error("expected value expression");
  }

  Result<ExprPtr> ParseOr() {
    QUERYER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Advance();
      QUERYER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    QUERYER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().IsKeyword("AND")) {
      Advance();
      QUERYER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      QUERYER_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Not(std::move(operand));
    }
    if (Peek().type == TokenType::kLParen) {
      Advance();
      QUERYER_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      QUERYER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    QUERYER_ASSIGN_OR_RETURN(ExprPtr operand, ParseOperand());
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kEq:
      case TokenType::kNe:
      case TokenType::kLt:
      case TokenType::kLe:
      case TokenType::kGt:
      case TokenType::kGe: {
        CompareOp op;
        switch (token.type) {
          case TokenType::kEq: op = CompareOp::kEq; break;
          case TokenType::kNe: op = CompareOp::kNe; break;
          case TokenType::kLt: op = CompareOp::kLt; break;
          case TokenType::kLe: op = CompareOp::kLe; break;
          case TokenType::kGt: op = CompareOp::kGt; break;
          default: op = CompareOp::kGe; break;
        }
        Advance();
        QUERYER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
        return Expr::Compare(op, std::move(operand), std::move(rhs));
      }
      default:
        break;
    }
    if (token.IsKeyword("IN")) {
      Advance();
      QUERYER_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after IN"));
      std::vector<ExprPtr> list;
      while (true) {
        QUERYER_ASSIGN_OR_RETURN(ExprPtr item, ParseOperand());
        list.push_back(std::move(item));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
      QUERYER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')' after IN list"));
      return Expr::In(std::move(operand), std::move(list));
    }
    if (token.IsKeyword("LIKE")) {
      Advance();
      if (Peek().type != TokenType::kString) {
        return Error("expected pattern string after LIKE");
      }
      return Expr::Like(std::move(operand), Advance().text);
    }
    if (token.IsKeyword("BETWEEN")) {
      Advance();
      QUERYER_ASSIGN_OR_RETURN(ExprPtr low, ParseOperand());
      QUERYER_RETURN_NOT_OK(ExpectKeyword("AND"));
      QUERYER_ASSIGN_OR_RETURN(ExprPtr high, ParseOperand());
      return Expr::Between(std::move(operand), std::move(low), std::move(high));
    }
    return Error("expected comparison operator");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string SelectStatement::ToString() const {
  std::string out;
  if (explain) out += analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ";
  out += "SELECT ";
  if (dedup) out += "DEDUP ";
  if (select_star) {
    out += "*";
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM " + from.name;
  if (from.alias != from.name) out += " AS " + from.alias;
  for (const JoinSpec& join : joins) {
    out += " INNER JOIN " + join.table.name;
    if (join.table.alias != join.table.name) out += " AS " + join.table.alias;
    out += " ON " + join.left_key->ToString() + " = " +
           join.right_key->ToString();
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  return out;
}

Result<SelectStatement> ParseSelect(std::string_view sql) {
  // Tolerate a trailing semicolon.
  std::string_view trimmed = TrimView(sql);
  if (!trimmed.empty() && trimmed.back() == ';') {
    trimmed.remove_suffix(1);
  }
  QUERYER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(trimmed));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace queryer
