#include "blocking/block_join.h"

namespace queryer {

BlockCollection BlockJoin(const QueryBlockIndex& qbi,
                          const TableBlockIndex& tbi, BlockJoinStats* stats) {
  BlockCollection enriched;
  enriched.reserve(qbi.num_blocks());
  for (const auto& [key, query_entities] : qbi.blocks()) {
    std::int64_t block_id = tbi.FindBlock(key);
    if (block_id < 0) continue;
    Block block;
    block.key = key;
    block.entities = tbi.block_entities(static_cast<std::size_t>(block_id));
    block.query_entities = query_entities;
    enriched.push_back(std::move(block));
  }
  if (stats != nullptr) {
    stats->qbi_blocks = qbi.num_blocks();
    stats->matched_blocks = enriched.size();
  }
  return enriched;
}

}  // namespace queryer
