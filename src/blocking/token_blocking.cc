#include "blocking/token_blocking.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace queryer {

namespace {

bool IsExcluded(const BlockingOptions& options, std::size_t attribute) {
  return std::find(options.excluded_attributes.begin(),
                   options.excluded_attributes.end(),
                   attribute) != options.excluded_attributes.end();
}

}  // namespace

std::vector<std::string> EntityBlockingKeys(const Table& table, EntityId entity,
                                            const BlockingOptions& options) {
  std::set<std::string> distinct;
  const auto& row = table.row(entity);
  for (std::size_t a = 0; a < row.size(); ++a) {
    if (IsExcluded(options, a)) continue;
    for (auto& token : TokenizeAlnum(row[a], options.min_token_length)) {
      distinct.insert(std::move(token));
    }
  }
  return {distinct.begin(), distinct.end()};
}

std::shared_ptr<TableBlockIndex> TableBlockIndex::Build(
    const Table& table, const BlockingOptions& options) {
  // Gather key -> entities with deterministic (key-sorted) block ids.
  std::map<std::string, std::vector<EntityId>> buckets;
  for (EntityId e = 0; e < table.num_rows(); ++e) {
    for (auto& key : EntityBlockingKeys(table, e, options)) {
      buckets[std::move(key)].push_back(e);
    }
  }

  auto index = std::shared_ptr<TableBlockIndex>(new TableBlockIndex());
  index->options_ = options;
  index->entity_blocks_.resize(table.num_rows());
  for (auto& [key, entities] : buckets) {
    if (entities.size() < 2) continue;  // Singleton blocks yield no pairs.
    auto block_id = static_cast<std::uint32_t>(index->block_keys_.size());
    index->key_to_block_.emplace(key, block_id);
    index->block_keys_.push_back(key);
    index->block_entities_.push_back(std::move(entities));
  }
  // Inverse index, with per-entity block lists sorted ascending by |b|.
  for (std::uint32_t b = 0; b < index->block_entities_.size(); ++b) {
    for (EntityId e : index->block_entities_[b]) {
      index->entity_blocks_[e].push_back(b);
    }
  }
  for (auto& blocks : index->entity_blocks_) {
    std::sort(blocks.begin(), blocks.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                std::size_t sa = index->block_entities_[a].size();
                std::size_t sb = index->block_entities_[b].size();
                return sa != sb ? sa < sb : a < b;
              });
  }
  return index;
}

std::int64_t TableBlockIndex::FindBlock(const std::string& key) const {
  auto it = key_to_block_.find(key);
  return it == key_to_block_.end() ? -1 : static_cast<std::int64_t>(it->second);
}

std::size_t TableBlockIndex::MemoryFootprint() const {
  std::size_t bytes = 0;
  for (const auto& key : block_keys_) bytes += key.size() + sizeof(std::string);
  for (const auto& entities : block_entities_) {
    bytes += entities.size() * sizeof(EntityId) + sizeof(entities);
  }
  for (const auto& blocks : entity_blocks_) {
    bytes += blocks.size() * sizeof(std::uint32_t) + sizeof(blocks);
  }
  // Hash map overhead: bucket array + node per key (rough but stable).
  bytes += key_to_block_.size() * (sizeof(void*) * 2 + sizeof(std::uint32_t));
  return bytes;
}

QueryBlockIndex QueryBlockIndex::Build(const Table& table,
                                       const std::vector<EntityId>& query_entities,
                                       const BlockingOptions& options) {
  std::map<std::string, std::vector<EntityId>> buckets;
  for (EntityId e : query_entities) {
    for (auto& key : EntityBlockingKeys(table, e, options)) {
      buckets[std::move(key)].push_back(e);
    }
  }
  QueryBlockIndex qbi;
  qbi.blocks_.reserve(buckets.size());
  for (auto& [key, entities] : buckets) {
    qbi.blocks_.emplace_back(key, std::move(entities));
  }
  return qbi;
}

}  // namespace queryer
