#include "blocking/token_blocking.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "common/string_util.h"

namespace queryer {

namespace {

bool IsExcluded(const BlockingOptions& options, std::size_t attribute) {
  return std::find(options.excluded_attributes.begin(),
                   options.excluded_attributes.end(),
                   attribute) != options.excluded_attributes.end();
}

}  // namespace

std::vector<std::string> EntityBlockingKeys(const Table& table, EntityId entity,
                                            const BlockingOptions& options) {
  std::set<std::string> distinct;
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    if (IsExcluded(options, a)) continue;
    // ValueAt views straight into the column dictionary — tokenization
    // never touches an owned row copy.
    for (auto& token :
         TokenizeAlnum(table.ValueAt(entity, a), options.min_token_length)) {
      distinct.insert(std::move(token));
    }
  }
  return {distinct.begin(), distinct.end()};
}

std::shared_ptr<TableBlockIndex> TableBlockIndex::Build(
    const Table& table, const BlockingOptions& options, ThreadPool* pool) {
  // Gather key -> entities with deterministic (key-sorted) block ids.
  std::map<std::string, std::vector<EntityId>> buckets;
  const bool parallel = pool != nullptr && pool->num_threads() >= 2 &&
                        table.num_rows() >= 2 * pool->num_threads();
  if (parallel) {
    // Shard the token extraction by entity range; each worker buckets its
    // own contiguous slice, then the shards merge in ascending shard order,
    // which keeps every entity list ascending exactly as the sequential
    // loop builds it.
    std::vector<ChunkRange> shards =
        SplitRange(table.num_rows(), pool->num_threads());
    std::vector<std::map<std::string, std::vector<EntityId>>> shard_buckets(
        shards.size());
    Status status = ParallelFor(
        pool, shards, [&](std::size_t shard, std::size_t begin, std::size_t end) {
          auto& local = shard_buckets[shard];
          for (EntityId e = begin; e < end; ++e) {
            for (auto& key : EntityBlockingKeys(table, e, options)) {
              local[std::move(key)].push_back(e);
            }
          }
          return Status::OK();
        });
    // Bodies only fail by throwing; rethrow on the calling thread for
    // parity with the sequential build's error behavior.
    if (!status.ok()) throw std::runtime_error(status.ToString());
    for (auto& local : shard_buckets) {
      for (auto& [key, entities] : local) {
        auto& merged = buckets[key];
        merged.insert(merged.end(), entities.begin(), entities.end());
      }
    }
  } else {
    for (EntityId e = 0; e < table.num_rows(); ++e) {
      for (auto& key : EntityBlockingKeys(table, e, options)) {
        buckets[std::move(key)].push_back(e);
      }
    }
  }

  auto index = std::shared_ptr<TableBlockIndex>(new TableBlockIndex());
  index->options_ = options;
  index->entity_blocks_.resize(table.num_rows());
  for (auto& [key, entities] : buckets) {
    if (entities.size() < 2) continue;  // Singleton blocks yield no pairs.
    auto block_id = static_cast<std::uint32_t>(index->block_keys_.size());
    index->key_to_block_.emplace(key, block_id);
    index->block_keys_.push_back(key);
    index->block_entities_.push_back(std::move(entities));
  }
  // Inverse index, with per-entity block lists sorted ascending by |b|.
  for (std::uint32_t b = 0; b < index->block_entities_.size(); ++b) {
    for (EntityId e : index->block_entities_[b]) {
      index->entity_blocks_[e].push_back(b);
    }
  }
  // The per-entity sorts are independent, so they chunk onto the pool
  // directly (inline when `pool` is null or single-threaded).
  Status sort_status = ParallelFor(
      parallel ? pool : nullptr, index->entity_blocks_.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          auto& blocks = index->entity_blocks_[e];
          std::sort(blocks.begin(), blocks.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      std::size_t sa = index->block_entities_[a].size();
                      std::size_t sb = index->block_entities_[b].size();
                      return sa != sb ? sa < sb : a < b;
                    });
        }
        return Status::OK();
      });
  if (!sort_status.ok()) throw std::runtime_error(sort_status.ToString());
  return index;
}

std::shared_ptr<TableBlockIndex> TableBlockIndex::FromParts(
    BlockingOptions options, std::vector<std::string> block_keys,
    std::vector<std::vector<EntityId>> block_entities,
    std::vector<std::vector<std::uint32_t>> entity_blocks) {
  auto index = std::shared_ptr<TableBlockIndex>(new TableBlockIndex());
  index->options_ = std::move(options);
  index->block_keys_ = std::move(block_keys);
  index->block_entities_ = std::move(block_entities);
  index->entity_blocks_ = std::move(entity_blocks);
  index->key_to_block_.reserve(index->block_keys_.size());
  for (std::uint32_t b = 0; b < index->block_keys_.size(); ++b) {
    index->key_to_block_.emplace(index->block_keys_[b], b);
  }
  return index;
}

std::int64_t TableBlockIndex::FindBlock(const std::string& key) const {
  auto it = key_to_block_.find(key);
  return it == key_to_block_.end() ? -1 : static_cast<std::int64_t>(it->second);
}

std::size_t TableBlockIndex::MemoryFootprint() const {
  std::size_t bytes = 0;
  for (const auto& key : block_keys_) bytes += key.size() + sizeof(std::string);
  for (const auto& entities : block_entities_) {
    bytes += entities.size() * sizeof(EntityId) + sizeof(entities);
  }
  for (const auto& blocks : entity_blocks_) {
    bytes += blocks.size() * sizeof(std::uint32_t) + sizeof(blocks);
  }
  // Hash map overhead: bucket array + node per key (rough but stable).
  bytes += key_to_block_.size() * (sizeof(void*) * 2 + sizeof(std::uint32_t));
  return bytes;
}

QueryBlockIndex QueryBlockIndex::Build(const Table& table,
                                       const std::vector<EntityId>& query_entities,
                                       const BlockingOptions& options) {
  std::map<std::string, std::vector<EntityId>> buckets;
  for (EntityId e : query_entities) {
    for (auto& key : EntityBlockingKeys(table, e, options)) {
      buckets[std::move(key)].push_back(e);
    }
  }
  QueryBlockIndex qbi;
  qbi.blocks_.reserve(buckets.size());
  for (auto& [key, entities] : buckets) {
    qbi.blocks_.emplace_back(key, std::move(entities));
  }
  return qbi;
}

}  // namespace queryer
