// Block-Join (paper Sec. 6.1(ii)): hash-join between the keys of a
// QueryBlockIndex and a TableBlockIndex.
//
// For every query-side blocking key that also exists in the table's TBI, the
// resulting block contains the full TBI entity set for that key (which is a
// superset of the query entities holding it). The output EQBI_QE is the
// enriched block collection over which Meta-Blocking and
// Comparison-Execution run.

#ifndef QUERYER_BLOCKING_BLOCK_JOIN_H_
#define QUERYER_BLOCKING_BLOCK_JOIN_H_

#include "blocking/block.h"
#include "blocking/token_blocking.h"

namespace queryer {

/// \brief Statistics of one Block-Join invocation.
struct BlockJoinStats {
  std::size_t qbi_blocks = 0;
  std::size_t matched_blocks = 0;
};

/// \brief Enriches query blocks with the table-side entities sharing each
/// key. Keys absent from the TBI produce no block (a singleton query block
/// with no table-side sharers cannot contribute comparisons).
BlockCollection BlockJoin(const QueryBlockIndex& qbi,
                          const TableBlockIndex& tbi,
                          BlockJoinStats* stats = nullptr);

}  // namespace queryer

#endif  // QUERYER_BLOCKING_BLOCK_JOIN_H_
