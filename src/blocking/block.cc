#include "blocking/block.h"

namespace queryer {

double Block::QueryComparisons() const {
  const double q = static_cast<double>(query_entities.size());
  const double n = static_cast<double>(entities.size());
  if (q == 0 || n < 2) return 0.0;
  double comparisons = q * (n - (q + 1) / 2.0);
  return comparisons < 0 ? 0.0 : comparisons;
}

double Block::Cardinality() const {
  const double n = static_cast<double>(entities.size());
  return n * (n - 1) / 2.0;
}

double TotalCardinality(const BlockCollection& blocks) {
  double total = 0;
  for (const Block& b : blocks) total += b.Cardinality();
  return total;
}

double TotalQueryComparisons(const BlockCollection& blocks) {
  double total = 0;
  for (const Block& b : blocks) total += b.QueryComparisons();
  return total;
}

std::size_t TotalAssignments(const BlockCollection& blocks) {
  std::size_t total = 0;
  for (const Block& b : blocks) total += b.size();
  return total;
}

}  // namespace queryer
