// Token Blocking and the three once-off table indices of QueryER.
//
// Token Blocking (paper Sec. 6.1(i)) is schema-agnostic: every lower-cased
// alphanumeric token from every attribute value of an entity becomes a
// blocking key, and the entities sharing a key form a block. The
// TableBlockIndex (TBI_E) maps key -> entities for a whole table; its
// inverse (ITBI_E) maps entity -> blocks, sorted ascending by block size
// (the order Block Filtering and the cost estimator rely on). A
// QueryBlockIndex (QBI_QE) is the same structure built on-the-fly for the
// entities a query selects.

#ifndef QUERYER_BLOCKING_TOKEN_BLOCKING_H_
#define QUERYER_BLOCKING_TOKEN_BLOCKING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/block.h"
#include "parallel/thread_pool.h"
#include "storage/table.h"

namespace queryer {

/// \brief Configuration of the blocking function.
///
/// QBI and TBI must always be built with the same options (the paper's
/// requirement that both use the same blocking function); the engine owns a
/// single BlockingOptions per table to guarantee this.
struct BlockingOptions {
  /// Minimum token length; shorter tokens are noise ("a", "of").
  std::size_t min_token_length = 2;
  /// Attributes to exclude from blocking keys (e.g. synthetic row ids whose
  /// tokens are unique and only bloat the index). Indices into the schema.
  std::vector<std::size_t> excluded_attributes;
};

/// \brief The Table Block Index TBI_E plus its inverse ITBI_E.
///
/// Built once-off per table and kept in memory (paper Sec. 3). Blocks with a
/// single entity are kept out of the block list: they can never produce a
/// comparison, and Block-Join against them would only re-add the probing
/// entity itself.
class TableBlockIndex {
 public:
  /// Builds the index over all rows of `table`.
  ///
  /// With a multi-worker `pool` the token extraction is sharded by entity
  /// range (each worker buckets its own contiguous slice, buckets are merged
  /// in shard order) and the per-entity ITBI sort runs chunked on the pool.
  /// The resulting index is identical to the sequential build: shard ranges
  /// are ascending and contiguous, so merged entity lists keep the ascending
  /// order the sequential loop produces.
  static std::shared_ptr<TableBlockIndex> Build(const Table& table,
                                                const BlockingOptions& options,
                                                ThreadPool* pool = nullptr);

  /// Restores an index from previously-built parts (the persist tier's
  /// snapshot loader). The parts must describe an index Build() produced
  /// over the same table contents and options; the key -> block map is
  /// rebuilt from `block_keys`.
  static std::shared_ptr<TableBlockIndex> FromParts(
      BlockingOptions options, std::vector<std::string> block_keys,
      std::vector<std::vector<EntityId>> block_entities,
      std::vector<std::vector<std::uint32_t>> entity_blocks);

  const BlockingOptions& options() const { return options_; }

  /// Number of distinct blocking keys (|TBI|, as reported in paper Table 7).
  std::size_t num_blocks() const { return block_keys_.size(); }

  std::size_t num_entities() const { return entity_blocks_.size(); }

  /// Block id for a key, or -1 if the key indexes no (multi-entity) block.
  std::int64_t FindBlock(const std::string& key) const;

  const std::string& block_key(std::size_t block_id) const {
    return block_keys_[block_id];
  }
  const std::vector<EntityId>& block_entities(std::size_t block_id) const {
    return block_entities_[block_id];
  }
  std::size_t block_size(std::size_t block_id) const {
    return block_entities_[block_id].size();
  }

  /// ITBI_E: the ids of the blocks containing `entity`, sorted ascending by
  /// block size (ties broken by block id for determinism).
  const std::vector<std::uint32_t>& entity_blocks(EntityId entity) const {
    return entity_blocks_[entity];
  }

  /// Approximate heap footprint in bytes (index-size reporting).
  std::size_t MemoryFootprint() const;

 private:
  TableBlockIndex() = default;

  BlockingOptions options_;
  std::unordered_map<std::string, std::uint32_t> key_to_block_;
  std::vector<std::string> block_keys_;
  std::vector<std::vector<EntityId>> block_entities_;
  std::vector<std::vector<std::uint32_t>> entity_blocks_;
};

/// \brief Extracts the blocking keys (distinct tokens) of one entity.
std::vector<std::string> EntityBlockingKeys(const Table& table, EntityId entity,
                                            const BlockingOptions& options);

/// \brief The Query Block Index QBI_QE: key -> query entities.
///
/// Unlike the TBI, singleton blocks are retained: a query entity alone in a
/// query-side block may still join with table-side entities via Block-Join.
class QueryBlockIndex {
 public:
  /// Builds blocks over the given query entities using the same blocking
  /// function as the table's TBI.
  static QueryBlockIndex Build(const Table& table,
                               const std::vector<EntityId>& query_entities,
                               const BlockingOptions& options);

  std::size_t num_blocks() const { return blocks_.size(); }

  /// key -> query entities holding it; deterministic (key-sorted) order.
  const std::vector<std::pair<std::string, std::vector<EntityId>>>& blocks()
      const {
    return blocks_;
  }

 private:
  std::vector<std::pair<std::string, std::vector<EntityId>>> blocks_;
};

}  // namespace queryer

#endif  // QUERYER_BLOCKING_TOKEN_BLOCKING_H_
