// Block structures shared by blocking and meta-blocking.
//
// A block groups entities that share a blocking key (a token, under Token
// Blocking). A BlockCollection is the working set the Deduplicate operator's
// pipeline transforms: Block-Join produces it, Block Purging / Block
// Filtering / Edge Pruning shrink it, Comparison-Execution consumes it.

#ifndef QUERYER_BLOCKING_BLOCK_H_
#define QUERYER_BLOCKING_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace queryer {

/// \brief One block: a key plus the entities that share it.
///
/// `query_entities` is the subset of `entities` that belongs to the query's
/// selection QE_E. Comparison-Execution only executes comparisons with at
/// least one query-entity endpoint (paper Sec. 6.1(iv)), so the distinction
/// is carried through the whole pipeline.
struct Block {
  std::string key;
  std::vector<EntityId> entities;
  std::vector<EntityId> query_entities;

  std::size_t size() const { return entities.size(); }

  /// Number of comparisons the block induces between query entities and all
  /// other entities: |QE_b| * (|b| - (|QE_b| + 1) / 2), the paper's formula.
  /// Pairs of two query entities are counted once; pairs of two non-query
  /// entities are not counted at all.
  double QueryComparisons() const;

  /// Full pairwise cardinality ||b|| = |b| * (|b| - 1) / 2.
  double Cardinality() const;
};

/// \brief An ordered set of blocks (deterministic iteration order).
using BlockCollection = std::vector<Block>;

/// \brief Total cardinality ||B|| of a collection.
double TotalCardinality(const BlockCollection& blocks);

/// \brief Total query-restricted comparisons of a collection (may double
/// count pairs co-occurring in several blocks; Comparison-Execution
/// deduplicates at execution time).
double TotalQueryComparisons(const BlockCollection& blocks);

/// \brief Sum of block sizes (the number of entity-to-block assignments).
std::size_t TotalAssignments(const BlockCollection& blocks);

}  // namespace queryer

#endif  // QUERYER_BLOCKING_BLOCK_H_
