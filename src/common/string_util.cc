#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace queryer {

namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
bool IsAlnumChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  return out;
}

std::string_view TrimView(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char delimiter) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      break;
    }
    pieces.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

std::vector<std::string> TokenizeAlnum(std::string_view value,
                                       std::size_t min_length) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < value.size()) {
    while (i < value.size() && !IsAlnumChar(value[i])) ++i;
    std::size_t start = i;
    while (i < value.size() && IsAlnumChar(value[i])) ++i;
    if (i - start >= min_length) {
      std::string token;
      token.reserve(i - start);
      for (std::size_t j = start; j < i; ++j) token += LowerChar(value[j]);
      tokens.push_back(std::move(token));
    }
  }
  return tokens;
}

namespace {

// Recursive matcher over lower-cased views. '%' matches any run (possibly
// empty); '_' matches exactly one character.
bool LikeMatchImpl(std::string_view value, std::string_view pattern) {
  std::size_t v = 0;
  std::size_t p = 0;
  // Track the most recent '%' so we can backtrack iteratively (avoids
  // exponential recursion on patterns with many wildcards).
  std::size_t star_p = std::string_view::npos;
  std::size_t star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || LowerChar(pattern[p]) == LowerChar(value[v]))) {
      ++p;
      ++v;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

bool LikeMatch(std::string_view value, std::string_view pattern) {
  return LikeMatchImpl(value, pattern);
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::optional<double> ParseNumber(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // Fast path: plain decimal integers (the common shape of id columns)
  // convert without the locale-aware strtod machinery. Up to 15 digits a
  // double represents the value exactly, so this matches strtod bit for
  // bit; anything else (signs, dots, exponents, hex, whitespace, longer
  // digit runs) falls through to the general parse.
  if (text.size() <= 15) {
    std::uint64_t integer = 0;
    bool all_digits = true;
    for (const char c : text) {
      if (c < '0' || c > '9') {
        all_digits = false;
        break;
      }
      integer = integer * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (all_digits) return static_cast<double>(integer);
  }
  // strtod needs NUL termination. Every value the engine parses views into
  // a buffer with a readable byte one past the end — std::string guarantees
  // it and StringArena appends one — so when that byte is NUL the parse
  // runs in place; otherwise (a substring, a foreign buffer) it copies out
  // first.
  char stack_buf[64];
  std::string heap_buf;
  const char* begin = text.data();
  if (begin[text.size()] != '\0') {
    if (text.size() < sizeof(stack_buf)) {
      std::memcpy(stack_buf, text.data(), text.size());
      stack_buf[text.size()] = '\0';
      begin = stack_buf;
    } else {
      heap_buf.assign(text.data(), text.size());
      begin = heap_buf.c_str();
    }
  }
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  // Embedded NUL bytes stop strtod early and fail this full-parse check,
  // exactly as they did when parsing from std::string::c_str().
  if (end != begin + text.size()) return std::nullopt;
  return value;
}

}  // namespace queryer
