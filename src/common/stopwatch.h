// Wall-clock stopwatch used by ExecStats and the bench harnesses.

#ifndef QUERYER_COMMON_STOPWATCH_H_
#define QUERYER_COMMON_STOPWATCH_H_

#include <chrono>

namespace queryer {

/// \brief Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace queryer

#endif  // QUERYER_COMMON_STOPWATCH_H_
