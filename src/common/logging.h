// Lightweight assertion macros (the project has no logging dependency).

#ifndef QUERYER_COMMON_LOGGING_H_
#define QUERYER_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `condition` is false. Active in all builds:
/// these guard invariants whose violation would corrupt query results.
#define QUERYER_CHECK(condition)                                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "QUERYER_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #condition);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define QUERYER_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define QUERYER_DCHECK(condition) QUERYER_CHECK(condition)
#endif

#endif  // QUERYER_COMMON_LOGGING_H_
