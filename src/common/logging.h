// Lightweight assertion macros (the project has no logging dependency).

#ifndef QUERYER_COMMON_LOGGING_H_
#define QUERYER_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace queryer {
namespace internal {

/// Strips leading directories from __FILE__ so check messages print the
/// same repo-relative "dir/file.cc" regardless of the build's source root.
/// constexpr: the scan happens at compile time, not in the failure path.
constexpr const char* CheckFileName(const char* path) {
  const char* last = path;
  const char* prev = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/' || *p == '\\') {
      prev = last;
      last = p + 1;
    }
  }
  // Keep one parent directory ("exec/operator.cc"), which is how sources
  // are addressed throughout the docs.
  return prev;
}

}  // namespace internal
}  // namespace queryer

/// Aborts with a message when `condition` is false. Active in all builds:
/// these guard invariants whose violation would corrupt query results.
/// stderr is explicitly flushed before abort() so the message survives
/// fully-buffered CI log pipes.
#define QUERYER_CHECK(condition)                                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "QUERYER_CHECK failed at %s:%d: %s\n",         \
                   ::queryer::internal::CheckFileName(__FILE__),          \
                   __LINE__, #condition);                                 \
      std::fflush(stderr);                                                \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define QUERYER_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define QUERYER_DCHECK(condition) QUERYER_CHECK(condition)
#endif

#endif  // QUERYER_COMMON_LOGGING_H_
