// String helpers shared across QueryER: case folding, trimming, splitting,
// joining, and the schema-agnostic tokenizer used by Token Blocking.

#ifndef QUERYER_COMMON_STRING_UTIL_H_
#define QUERYER_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace queryer {

/// \brief ASCII lower-cases a string.
std::string ToLower(std::string_view s);

/// \brief ASCII upper-cases a string.
std::string ToUpper(std::string_view s);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// \brief Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delimiter);

/// \brief Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// \brief True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Extracts the lower-cased alphanumeric tokens of a value.
///
/// This is the blocking-key tokenizer of Token Blocking (paper Sec. 6.1(i)):
/// every maximal run of [A-Za-z0-9] characters becomes one token; tokens are
/// lower-cased so "EDBT" and "edbt" share a block. Tokens shorter than
/// `min_length` are dropped (single characters are usually noise).
std::vector<std::string> TokenizeAlnum(std::string_view value,
                                       std::size_t min_length = 2);

/// \brief SQL LIKE pattern match ('%' = any run, '_' = any one char).
///
/// Matching is case-insensitive, following the engine's string semantics.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// \brief Formats a double with fixed precision (no locale surprises).
std::string FormatDouble(double value, int precision);

/// \brief Parses `text` as a full double; nullopt if any trailing garbage.
std::optional<double> ParseNumber(std::string_view text);

}  // namespace queryer

#endif  // QUERYER_COMMON_STRING_UTIL_H_
