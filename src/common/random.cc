#include "common/random.h"

#include <cmath>

namespace queryer {

std::int64_t RandomEngine::Uniform(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(rng_);
}

double RandomEngine::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng_);
}

bool RandomEngine::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

std::size_t RandomEngine::Zipf(std::size_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return static_cast<std::size_t>(Uniform(0, static_cast<std::int64_t>(n) - 1));
  // Exact inverse-CDF sampling over the harmonic normalizer is slow for
  // large n; a power-law transform of a uniform draw (u^(1+s) concentrates
  // mass near rank 0) preserves the skewed-rank shape datagen needs.
  double u = UniformReal();
  auto rank = static_cast<std::size_t>(std::pow(u, 1.0 + s) * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return rank;
}

std::string RandomEngine::AlphaString(std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += static_cast<char>('a' + Uniform(0, 25));
  }
  return out;
}

}  // namespace queryer
