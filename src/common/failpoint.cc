#include "common/failpoint.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"

namespace queryer {
namespace {

// "er.comparison_chunk" -> "queryer_failpoint_triggered_total_er_comparison_chunk".
std::string TriggeredCounterName(const std::string& site) {
  std::string name = "queryer_failpoint_triggered_total_";
  for (char c : site) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    name += word ? c : '_';
  }
  return name;
}

// Parses the spec argument list "p=0.5,seed=42,every=3,once" into `spec`.
// `mode_arg` receives the leading bare number for delay(<ms>).
Status ParseArgs(const std::string& site, const std::string& args,
                 Failpoint::Spec* spec, double* mode_arg, bool* has_mode_arg);

}  // namespace

Failpoint::Failpoint(std::string name)
    : name_(std::move(name)),
      triggered_(
          MetricsRegistry::Global().GetCounter(TriggeredCounterName(name_))) {}

void Failpoint::Arm(const Spec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  evaluations_ = 0;
  rng_.seed(spec.seed);
  armed_.store(true, std::memory_order_release);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

bool Failpoint::ShouldTrigger(Spec* snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return false;  // Raced Disarm.
  ++evaluations_;
  if (spec_.every > 1 && evaluations_ % spec_.every != 0) return false;
  if (spec_.probability < 1.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) >= spec_.probability) return false;
  }
  if (spec_.once) armed_.store(false, std::memory_order_release);
  // Snapshot under the SAME lock as the gate decision: a concurrent Arm
  // after this lock drops must not swap the mode under a decision made for
  // the old spec (e.g. a consumed once-error trigger executing as a delay).
  *snapshot = spec_;
  return true;
}

Status Failpoint::Triggered(const Spec& spec) {
  triggered_->Increment();
  switch (spec.mode) {
    case Mode::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          spec.delay_ms));
      return Status::OK();
    case Mode::kError:
    case Mode::kThrow:
      return Status::Internal("injected failure at failpoint '" + name_ + "'");
  }
  return Status::OK();
}

Status Failpoint::Fire() {
  Spec spec;
  if (!ShouldTrigger(&spec)) return Status::OK();
  if (spec.mode == Mode::kThrow) {
    triggered_->Increment();
    throw FailpointError("injected failure at failpoint '" + name_ + "'");
  }
  return Triggered(spec);
}

void Failpoint::FireOrThrow() {
  Spec spec;
  if (!ShouldTrigger(&spec)) return;
  Status st = Triggered(spec);
  if (!st.ok()) throw FailpointError(st.message());
}

void Failpoint::FireInert() {
  Spec spec;
  if (!ShouldTrigger(&spec)) return;
  if (spec.mode == Mode::kDelay) {
    (void)Triggered(spec);
  } else {
    // Count the trigger (the schedule "hit" this site) but inject nothing.
    triggered_->Increment();
  }
}

namespace {

Status ParseArgs(const std::string& site, const std::string& args,
                 Failpoint::Spec* spec, double* mode_arg, bool* has_mode_arg) {
  std::size_t pos = 0;
  while (pos < args.size()) {
    std::size_t comma = args.find(',', pos);
    if (comma == std::string::npos) comma = args.size();
    std::string item = args.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    std::size_t eq = item.find('=');
    const std::string key = item.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : item.substr(eq + 1);
    try {
      if (key == "once" && eq == std::string::npos) {
        spec->once = true;
      } else if (key == "p") {
        spec->probability = std::stod(value);
        if (spec->probability < 0.0 || spec->probability > 1.0) {
          return Status::InvalidArgument("failpoint '" + site +
                                         "': p must be in [0,1], got " + value);
        }
      } else if (key == "seed") {
        spec->seed = std::stoull(value);
      } else if (key == "every") {
        spec->every = std::stoull(value);
      } else if (eq == std::string::npos && !item.empty() &&
                 (std::isdigit(static_cast<unsigned char>(item[0])) ||
                  item[0] == '.')) {
        // Bare number: the mode's own argument (delay milliseconds).
        *mode_arg = std::stod(item);
        *has_mode_arg = true;
      } else {
        return Status::InvalidArgument("failpoint '" + site +
                                       "': unknown spec argument '" + item +
                                       "'");
      }
    } catch (const std::exception&) {
      return Status::InvalidArgument("failpoint '" + site +
                                     "': malformed spec argument '" + item +
                                     "'");
    }
  }
  return Status::OK();
}

}  // namespace

Failpoints::Failpoints() {
  if (const char* env = std::getenv("QUERYER_FAILPOINTS")) ArmFromEnv(env);
}

Failpoints& Failpoints::Global() {
  // Leaked like the metrics registry: worker threads may evaluate sites
  // during static destruction.
  static Failpoints* global = new Failpoints();
  return *global;
}

Failpoint* Failpoints::Get(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sites_[site];
  if (!slot) slot.reset(new Failpoint(site));
  return slot.get();
}

Status Failpoints::Arm(const std::string& site, const std::string& spec) {
  // "mode" or "mode(args)".
  std::string mode_str = spec;
  std::string args;
  std::size_t paren = spec.find('(');
  if (paren != std::string::npos) {
    if (spec.back() != ')') {
      return Status::InvalidArgument("failpoint '" + site +
                                     "': unbalanced parens in spec '" + spec +
                                     "'");
    }
    mode_str = spec.substr(0, paren);
    args = spec.substr(paren + 1, spec.size() - paren - 2);
  }

  Failpoint::Spec parsed;
  if (mode_str == "error") {
    parsed.mode = Failpoint::Mode::kError;
  } else if (mode_str == "throw") {
    parsed.mode = Failpoint::Mode::kThrow;
  } else if (mode_str == "delay") {
    parsed.mode = Failpoint::Mode::kDelay;
  } else {
    return Status::InvalidArgument("failpoint '" + site +
                                   "': unknown mode '" + mode_str +
                                   "' (want error|throw|delay)");
  }

  double mode_arg = 0;
  bool has_mode_arg = false;
  QUERYER_RETURN_NOT_OK(ParseArgs(site, args, &parsed, &mode_arg,
                                  &has_mode_arg));
  if (parsed.mode == Failpoint::Mode::kDelay) {
    if (!has_mode_arg) {
      return Status::InvalidArgument("failpoint '" + site +
                                     "': delay needs milliseconds, e.g. "
                                     "delay(10)");
    }
    parsed.delay_ms = mode_arg;
  } else if (has_mode_arg) {
    return Status::InvalidArgument("failpoint '" + site + "': mode '" +
                                   mode_str + "' takes no bare argument");
  }

  Get(site)->Arm(parsed);
  return Status::OK();
}

void Failpoints::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second->Disarm();
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fp] : sites_) fp->Disarm();
}

std::vector<std::string> Failpoints::ArmedSites() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> armed;
  for (auto& [name, fp] : sites_) {
    if (fp->armed()) armed.push_back(name);
  }
  return armed;  // std::map iteration: already sorted.
}

void Failpoints::ArmFromEnv(const char* env) {
  const std::string all(env);
  std::size_t pos = 0;
  while (pos < all.size()) {
    std::size_t semi = all.find(';', pos);
    if (semi == std::string::npos) semi = all.size();
    const std::string entry = all.substr(pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "QUERYER_FAILPOINTS: skipping entry without '=': %s\n",
                   entry.c_str());
      continue;
    }
    Status st = Arm(entry.substr(0, eq), entry.substr(eq + 1));
    if (!st.ok()) {
      std::fprintf(stderr, "QUERYER_FAILPOINTS: %s\n", st.ToString().c_str());
    }
  }
}

}  // namespace queryer
