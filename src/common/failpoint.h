// Failpoints: named fault-injection sites compiled into the engine always.
//
// A failpoint is a named place in the code where a test (or an operator via
// the QUERYER_FAILPOINTS environment variable) can inject a failure without
// recompiling: an error Status, a thrown exception, or a delay. Sites are
// planted on every cross-thread failure boundary — thread-pool task entry,
// morsel bodies, comparison-execution chunks, Link Index publishing,
// coordinator claim/release, admission, cursor Open/Next — so the engine's
// failure paths (claim abandonment, slot release, first-error-wins
// propagation) can be exercised deterministically instead of waiting for
// hardware to misbehave.
//
// Disarmed cost is one relaxed atomic load and a predictable branch per
// evaluation (the registry lookup is a function-local static, resolved
// once per call site), so sites stay compiled in for release builds.
//
// Arming, per test:
//
//   Failpoints::Global().Arm("er.comparison_chunk", "error");
//   Failpoints::Global().Arm("scan.morsel", "throw(p=0.25,seed=42)");
//   Failpoints::Global().Arm("li.publish", "error(every=3)");
//   Failpoints::Global().Arm("cursor.next", "delay(15)");   // milliseconds
//   Failpoints::Global().Arm("engine.admission", "error(once)");
//   ...
//   Failpoints::Global().DisarmAll();
//
// or externally: QUERYER_FAILPOINTS="scan.morsel=throw(p=0.5,seed=7);cursor.next=delay(10)".
//
// Spec grammar: <mode>[(<args>)] where mode is `error`, `throw`, or
// `delay(<ms>)`, and args is a comma-separated mix of `p=<0..1>`,
// `seed=<n>`, `every=<n>` (trigger every Nth eligible evaluation), and
// `once` (disarm after the first trigger). The probability gate uses a
// per-site mt19937_64 seeded from `seed` (default 0), so a seeded schedule
// replays identically.
//
// Every actual trigger increments the per-site counter
// `queryer_failpoint_triggered_total_<site>` ('.' -> '_') in the global
// metrics registry.

#ifndef QUERYER_COMMON_FAILPOINT_H_
#define QUERYER_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace queryer {

class Counter;

/// \brief Thrown by a site armed in `throw` mode (and by `error` mode at
/// FireOrThrow sites, where the surrounding code propagates exceptions).
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& what) : std::runtime_error(what) {}
};

/// \brief One named injection site. Obtained from Failpoints::Global();
/// never constructed directly. All members are thread-safe: armed() is a
/// relaxed load, the trigger gates (probability, every-N, once) run under
/// a per-site mutex on the armed slow path only.
class Failpoint {
 public:
  /// True when a spec is armed — the only cost a disarmed site pays.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates the armed spec: returns a non-OK Status in `error` mode,
  /// throws FailpointError in `throw` mode, sleeps then returns OK in
  /// `delay` mode. Returns OK without side effects when the trigger gates
  /// (p / every / once) decide this evaluation does not fire.
  Status Fire();

  /// Like Fire, but `error` mode also throws FailpointError — for sites
  /// inside code that reports failure by exception (morsel bodies,
  /// coordinator transactions).
  void FireOrThrow();

  /// Like Fire, but only `delay` triggers; `error`/`throw` specs are
  /// counted yet otherwise ignored — for sites that must not fail
  /// (thread-pool task entry, coordinator release).
  void FireInert();

  const std::string& name() const { return name_; }

  enum class Mode { kError, kThrow, kDelay };
  /// A parsed arming spec (see the grammar in the file comment).
  struct Spec {
    Mode mode = Mode::kError;
    double delay_ms = 0;
    double probability = 1.0;  // 1.0 = unconditional.
    std::uint64_t every = 0;   // 0 = no every-N gate.
    bool once = false;
    std::uint64_t seed = 0;
  };

 private:
  friend class Failpoints;
  explicit Failpoint(std::string name);

  void Arm(const Spec& spec);
  void Disarm();
  /// Runs the gates under mu_; true means this evaluation triggers, and
  /// `snapshot` receives the spec the gates decided under — acting on a
  /// re-read of spec_ instead would let a concurrent Arm swap in a new
  /// mode between the gate decision and the injected action.
  bool ShouldTrigger(Spec* snapshot);
  /// The triggered action shared by Fire/FireOrThrow: delay sleeps and
  /// returns OK; error/throw return the injected Status.
  Status Triggered(const Spec& spec);

  const std::string name_;
  Counter* triggered_;  // queryer_failpoint_triggered_total_<site>.

  std::atomic<bool> armed_{false};
  std::mutex mu_;
  Spec spec_;                    // Guarded by mu_.
  std::uint64_t evaluations_ = 0;  // Eligible evaluations since Arm.
  std::mt19937_64 rng_;          // Guarded by mu_; seeded at Arm.
};

/// \brief Process-wide registry of failpoints, keyed by site name. Sites
/// are created on first use (Get from the QUERYER_FAILPOINT macros) or on
/// first Arm, and live for the process.
class Failpoints {
 public:
  /// The process-wide registry. First call parses QUERYER_FAILPOINTS.
  static Failpoints& Global();

  /// The site named `site`, created disarmed if new. Pointer stable for
  /// the process lifetime.
  Failpoint* Get(const std::string& site);

  /// Arms `site` with `spec` (see the grammar above). Replaces any
  /// previous arming. Returns InvalidArgument on a malformed spec.
  Status Arm(const std::string& site, const std::string& spec);

  /// Disarms `site` (no-op when unknown or already disarmed).
  void Disarm(const std::string& site);
  /// Disarms every site — test teardown.
  void DisarmAll();

  /// Names of currently armed sites, sorted.
  std::vector<std::string> ArmedSites();

  /// Parses "site=spec;site=spec" (the QUERYER_FAILPOINTS format), arming
  /// each entry. Malformed entries are reported on stderr and skipped —
  /// an operator's typo must not take the process down. Public so tests
  /// can drive the env path without re-execing.
  void ArmFromEnv(const char* env);

 private:
  Failpoints();

  std::mutex mu_;
  // Stable node addresses: Get hands out raw pointers.
  std::map<std::string, std::unique_ptr<Failpoint>> sites_;
};

}  // namespace queryer

/// Evaluates the site; on an injected `error` the enclosing function (which
/// must return Status or Result<T>) returns it. `throw` propagates as a
/// FailpointError exception, `delay` just sleeps.
#define QUERYER_FAILPOINT(site)                                     \
  do {                                                              \
    static ::queryer::Failpoint* _queryer_fp =                      \
        ::queryer::Failpoints::Global().Get(site);                  \
    if (_queryer_fp->armed()) {                                     \
      ::queryer::Status _queryer_fp_st = _queryer_fp->Fire();       \
      if (!_queryer_fp_st.ok()) return _queryer_fp_st;              \
    }                                                               \
  } while (false)

/// For exception-reporting contexts: `error` and `throw` both throw
/// FailpointError, `delay` sleeps.
#define QUERYER_FAILPOINT_THROW(site)                               \
  do {                                                              \
    static ::queryer::Failpoint* _queryer_fp =                      \
        ::queryer::Failpoints::Global().Get(site);                  \
    if (_queryer_fp->armed()) _queryer_fp->FireOrThrow();           \
  } while (false)

/// For must-not-fail contexts: only `delay` has an effect.
#define QUERYER_FAILPOINT_INERT(site)                               \
  do {                                                              \
    static ::queryer::Failpoint* _queryer_fp =                      \
        ::queryer::Failpoints::Global().Get(site);                  \
    if (_queryer_fp->armed()) _queryer_fp->FireInert();             \
  } while (false)

#endif  // QUERYER_COMMON_FAILPOINT_H_
