// CancelContext: the session cancellation flag + deadline, in a form the
// ER layer can poll from deep inside comparison execution.
//
// The streaming session (QueryCursor) owns an atomic cancel flag and an
// optional deadline; scan/probe morsels already observe the flag through
// their reorder windows. Resolution, however, runs comparison chunks far
// below the batch boundaries — a cold Link Index DEDUP can spend seconds
// there. The Executor packages the session's flag and deadline into a
// CancelContext and hands it down to the Deduplicator, whose comparison
// loops call Check() every few hundred comparisons so Cancel() and
// deadline expiry pre-empt resolution instead of waiting it out.

#ifndef QUERYER_COMMON_CANCEL_CONTEXT_H_
#define QUERYER_COMMON_CANCEL_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace queryer {

/// \brief A poll-able view of one session's cancellation state. Copyable;
/// Check() is safe from any thread. A default-constructed context never
/// cancels (batch/offline callers pass nullptr instead).
struct CancelContext {
  std::shared_ptr<const std::atomic<bool>> cancel;  // Null = no flag.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  /// How many comparisons the ER loops evaluate between Check() calls —
  /// small enough that cancellation latency stays in the microseconds,
  /// large enough that the atomic load + clock read disappear in the
  /// similarity math.
  static constexpr std::size_t kPollInterval = 256;

  /// OK while the session may keep running; Cancelled once the flag is
  /// raised, DeadlineExceeded once the deadline passed.
  Status Check() const {
    if (cancel && cancel->load(std::memory_order_acquire)) {
      return Status::Cancelled("query cancelled during resolution");
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("query deadline expired during resolution");
    }
    return Status::OK();
  }
};

}  // namespace queryer

#endif  // QUERYER_COMMON_CANCEL_CONTEXT_H_
