// Deterministic random source for data generation and property tests.

#ifndef QUERYER_COMMON_RANDOM_H_
#define QUERYER_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace queryer {

/// \brief Seeded PRNG wrapper with the sampling helpers datagen needs.
///
/// All QueryER generators are parameterized on a seed so datasets (and the
/// experiments built on them) are exactly reproducible.
class RandomEngine {
 public:
  explicit RandomEngine(std::uint64_t seed) : rng_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with skew parameter `s` (s=0 uniform).
  /// Used to give generated values realistic frequency skew.
  std::size_t Zipf(std::size_t n, double s);

  /// Uniformly picks one element; requires a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(Uniform(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Random lowercase ASCII string of the given length.
  std::string AlphaString(std::size_t length);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& raw() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

}  // namespace queryer

#endif  // QUERYER_COMMON_RANDOM_H_
