// Status and Result<T>: exception-free error propagation for QueryER.
//
// Mirrors the Arrow/Abseil idiom: functions that can fail return `Status` or
// `Result<T>`; callers use QUERYER_RETURN_NOT_OK / QUERYER_ASSIGN_OR_RETURN
// to propagate failures. A Status is cheap to copy in the OK case (no
// allocation) and carries a code + message otherwise.

#ifndef QUERYER_COMMON_STATUS_H_
#define QUERYER_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace queryer {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kParseError,
  kPlanError,
  kExecutionError,
  kInternal,
  kNotImplemented,
  /// A query session was cancelled cooperatively (QueryCursor::Cancel).
  kCancelled,
  /// A query session ran past its deadline
  /// (EngineOptions::default_query_deadline).
  kDeadlineExceeded,
  /// The engine refused to admit a session: every admission slot stayed
  /// busy past EngineOptions::admission_timeout (load shedding).
  kResourceExhausted,
  /// On-disk state failed validation (bad magic, checksum mismatch,
  /// truncated section, impossible lengths). Snapshot/log readers return
  /// this instead of ever acting on bytes they cannot vouch for.
  kCorruption,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail without returning a value.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status PlanError(std::string message) {
    return Status(StatusCode::kPlanError, std::move(message));
  }
  static Status ExecutionError(std::string message) {
    return Status(StatusCode::kExecutionError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Message for a non-OK status; empty string when OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsPlanError() const { return code() == StatusCode::kPlanError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy with `context` prefixed onto the message
  /// ("context: message"), keeping the code. No-op on OK. Lets a failure
  /// crossing a subsystem boundary name where it happened — e.g. the
  /// failpoint site and session id of an injected fault.
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK, so the success path never allocates.
  std::unique_ptr<State> state_;
};

/// \brief Either a value of type T or a non-OK Status.
///
/// `Result<T>` is the return type for fallible factories and computations.
/// Accessing the value of an errored result aborts the process (programming
/// error), so callers must check `ok()` or use QUERYER_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : value_(std::move(status)) {  // NOLINT(runtime/explicit)
    CheckNotOkStatus();
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  const T& ValueOrDie() const& {
    CheckHasValue();
    return std::get<T>(value_);
  }
  T& ValueOrDie() & {
    CheckHasValue();
    return std::get<T>(value_);
  }
  T&& ValueOrDie() && {
    CheckHasValue();
    return std::move(std::get<T>(value_));
  }

  /// Moves the value out; valid only when ok().
  T&& MoveValueUnsafe() { return std::move(std::get<T>(value_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckHasValue() const;
  void CheckNotOkStatus() const;

  std::variant<T, Status> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
[[noreturn]] void DieOnOkStatusToResult();
}  // namespace internal

template <typename T>
void Result<T>::CheckHasValue() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(value_));
}

template <typename T>
void Result<T>::CheckNotOkStatus() const {
  if (std::holds_alternative<Status>(value_) && std::get<Status>(value_).ok()) {
    internal::DieOnOkStatusToResult();
  }
}

}  // namespace queryer

/// Propagates a non-OK Status from the enclosing function.
#define QUERYER_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::queryer::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define QUERYER_CONCAT_IMPL(x, y) x##y
#define QUERYER_CONCAT(x, y) QUERYER_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error Status from the enclosing function.
#define QUERYER_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  QUERYER_ASSIGN_OR_RETURN_IMPL(QUERYER_CONCAT(_result_, __COUNTER__),  \
                                lhs, rexpr)

#define QUERYER_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                  \
  if (!result_name.ok()) return result_name.status();          \
  lhs = result_name.MoveValueUnsafe()

#endif  // QUERYER_COMMON_STATUS_H_
