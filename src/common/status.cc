#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace queryer {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kPlanError:
      return "Plan error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ ? state_->message : kEmpty;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return Status::OK();
  std::string message(context);
  message += ": ";
  message += state_->message;
  return Status(state_->code, std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(state_->code));
  result += ": ";
  result += state_->message;
  return result;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieOnOkStatusToResult() {
  std::fprintf(stderr, "Fatal: constructed Result from OK Status\n");
  std::abort();
}

}  // namespace internal
}  // namespace queryer
