#include "matching/profile_matcher.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "common/string_util.h"

namespace queryer {

namespace {

bool IsExcluded(const MatchingConfig& config, std::size_t attribute) {
  return std::find(config.excluded_attributes.begin(),
                   config.excluded_attributes.end(),
                   attribute) != config.excluded_attributes.end();
}

bool TokensMatch(const std::string& a, const std::string& b,
                 const MatchingConfig& config) {
  if (a == b) return true;
  // Single-letter abbreviation: "e" (from "E.R.") matches "entity".
  if (a.size() == 1 || b.size() == 1) return a[0] == b[0];
  return ComputeSimilarity(config.function, a, b) >=
         config.token_match_threshold;
}

// Distinct lower-cased tokens of a value (min length 1; abbreviations are
// single characters and must survive).
std::vector<std::string> ValueTokens(std::string_view value) {
  std::vector<std::string> tokens = TokenizeAlnum(value, 1);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace

double ValueSimilarity(std::string_view a, std::string_view b,
                       const MatchingConfig& config) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;

  // Numeric values: string distance between numbers is meaningless.
  std::optional<double> na = ParseNumber(a);
  std::optional<double> nb = ParseNumber(b);
  if (na.has_value() && nb.has_value()) return *na == *nb ? 1.0 : 0.0;

  std::vector<std::string> tokens_a = ValueTokens(a);
  std::vector<std::string> tokens_b = ValueTokens(b);
  if (tokens_a.empty() || tokens_b.empty()) {
    return tokens_a.empty() == tokens_b.empty() ? 1.0 : 0.0;
  }

  // Greedy fuzzy matching from the smaller token set into the larger.
  const std::vector<std::string>& small =
      tokens_a.size() <= tokens_b.size() ? tokens_a : tokens_b;
  const std::vector<std::string>& large =
      tokens_a.size() <= tokens_b.size() ? tokens_b : tokens_a;
  std::vector<bool> used(large.size(), false);
  std::size_t shared = 0;
  for (const std::string& token : small) {
    for (std::size_t j = 0; j < large.size(); ++j) {
      if (used[j] || !TokensMatch(token, large[j], config)) continue;
      used[j] = true;
      ++shared;
      break;
    }
  }
  return static_cast<double>(shared) /
         static_cast<double>(tokens_a.size() + tokens_b.size() - shared);
}

AttributeWeights AttributeWeights::Compute(const Table& table) {
  AttributeWeights result;
  result.weights_.resize(table.num_attributes(), 0.0);
  for (std::size_t attr = 0; attr < table.num_attributes(); ++attr) {
    const ColumnView column = table.column(attr);
    const Dictionary& dictionary = column.dictionary();
    // Every dictionary entry occurs in at least one row, so the distinct
    // set over rows equals the distinct set over dictionary values —
    // O(distinct) lower-cased copies instead of O(rows).
    std::set<std::string> distinct;
    for (DictCode code = 0; code < dictionary.size(); ++code) {
      const std::string_view value = dictionary.value(code);
      if (!value.empty()) distinct.insert(ToLower(value));
    }
    std::size_t non_empty = table.num_rows();
    if (std::optional<DictCode> empty_code = dictionary.Find("")) {
      for (const DictCode code : column.codes()) {
        if (code == *empty_code) --non_empty;
      }
    }
    if (non_empty > 0) {
      result.weights_[attr] = static_cast<double>(distinct.size()) /
                              static_cast<double>(non_empty);
    }
  }
  return result;
}

namespace {

// Shared body of both ProfileSimilarity overloads. `value_at(which, i)`
// returns attribute i of profile a (which=0) or b (which=1) as a
// string_view; `known_equal(i)` may return true when both profiles'
// attribute i values are byte-identical (the columnar overload's
// dictionary-code shortcut) — false means "unknown", never "unequal".
template <typename ValueAtFn, typename KnownEqualFn>
double ProfileSimilarityImpl(std::size_t attributes, const ValueAtFn& value_at,
                             const KnownEqualFn& known_equal,
                             const MatchingConfig& config,
                             const AttributeWeights* weights) {
  auto weight_of = [&](std::size_t attribute) {
    return weights == nullptr ? 1.0 : weights->weight(attribute);
  };

  // Signal 1: aligned attribute similarity, distinctiveness-weighted.
  double aligned_total = 0;
  double aligned_weight = 0;
  double total_weight = 0;
  for (std::size_t i = 0; i < attributes; ++i) {
    if (IsExcluded(config, i)) continue;
    total_weight += weight_of(i);
    const std::string_view va = value_at(0, i);
    const std::string_view vb = value_at(1, i);
    if (va.empty() || vb.empty()) continue;  // No evidence either way.
    double w = weight_of(i);
    // Identical values score 1 by construction; the code shortcut skips
    // the tokenization. ValueSimilarity is case-insensitive internally, so
    // raw views compare exactly as the lower-cased copies used to.
    aligned_total +=
        w * (known_equal(i) ? 1.0 : ValueSimilarity(va, vb, config));
    aligned_weight += w;
  }
  double aligned = aligned_weight == 0 ? 0.0 : aligned_total / aligned_weight;
  // Evidence floor: a profile stripped of most of its descriptive content
  // (e.g. a record with only a code-list attribute left) must not match on
  // the little that remains.
  if (total_weight > 0 && aligned_weight < 0.5 * total_weight) {
    aligned *= aligned_weight / (0.5 * total_weight);
  }
  // The aligned signal alone already decides a match: skip the cosine
  // computation on this hot path.
  if (aligned >= config.threshold) return aligned;

  // Signal 2: whole-profile token cosine (order- and attribute-agnostic).
  // Each token carries the distinctiveness weight of the attribute it came
  // from (the max across occurrences), so code-list tokens contribute
  // little even through this channel.
  auto gather = [&](int which) {
    std::vector<std::pair<std::string, double>> tokens;
    for (std::size_t i = 0; i < attributes; ++i) {
      if (IsExcluded(config, i)) continue;
      double w = weight_of(i);
      for (auto& token : TokenizeAlnum(value_at(which, i), 1)) {
        tokens.emplace_back(std::move(token), w);
      }
    }
    std::sort(tokens.begin(), tokens.end());
    // Deduplicate, keeping the max weight per token.
    std::size_t out = 0;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (out > 0 && tokens[out - 1].first == tokens[i].first) {
        tokens[out - 1].second = std::max(tokens[out - 1].second,
                                          tokens[i].second);
      } else {
        if (out != i) tokens[out] = std::move(tokens[i]);
        ++out;
      }
    }
    tokens.resize(out);
    return tokens;
  };
  std::vector<std::pair<std::string, double>> tokens_a = gather(0);
  std::vector<std::pair<std::string, double>> tokens_b = gather(1);
  double cosine = 0;
  if (!tokens_a.empty() && !tokens_b.empty()) {
    double dot = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < tokens_a.size() && j < tokens_b.size()) {
      int cmp = tokens_a[i].first.compare(tokens_b[j].first);
      if (cmp == 0) {
        dot += tokens_a[i].second * tokens_b[j].second;
        ++i;
        ++j;
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
    double norm_a = 0;
    for (const auto& [token, w] : tokens_a) norm_a += w * w;
    double norm_b = 0;
    for (const auto& [token, w] : tokens_b) norm_b += w * w;
    if (norm_a > 0 && norm_b > 0 && dot > 0) {
      cosine = dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
    }
  }
  // Rescale so `threshold` applies to both signals (see MatchingConfig).
  double cosine_scaled =
      config.cosine_threshold > 0
          ? cosine * config.threshold / config.cosine_threshold
          : cosine;

  return std::max(aligned, cosine_scaled);
}

}  // namespace

double ProfileSimilarity(const Table& table, EntityId a, EntityId b,
                         const MatchingConfig& config,
                         const AttributeWeights* weights) {
  return ProfileSimilarityImpl(
      table.num_attributes(),
      [&](int which, std::size_t i) {
        return table.ValueAt(which == 0 ? a : b, i);
      },
      [&](std::size_t i) { return table.CodeAt(a, i) == table.CodeAt(b, i); },
      config, weights);
}

double ProfileSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b,
                         const MatchingConfig& config,
                         const AttributeWeights* weights) {
  return ProfileSimilarityImpl(
      std::min(a.size(), b.size()),
      [&](int which, std::size_t i) {
        return std::string_view(which == 0 ? a[i] : b[i]);
      },
      [](std::size_t) { return false; }, config, weights);
}

bool ProfilesMatch(const Table& table, EntityId a, EntityId b,
                   const MatchingConfig& config,
                   const AttributeWeights* weights) {
  return ProfileSimilarity(table, a, b, config, weights) >= config.threshold;
}

bool ProfilesMatch(const std::vector<std::string>& a,
                   const std::vector<std::string>& b,
                   const MatchingConfig& config,
                   const AttributeWeights* weights) {
  return ProfileSimilarity(a, b, config, weights) >= config.threshold;
}

}  // namespace queryer
