// String similarity functions for entity matching.
//
// The paper uses Jaro-Winkler as the resolution function (Sec. 9.1) and
// treats matching as orthogonal to blocking; this module provides the
// standard alternatives (Jaro, normalized Levenshtein, Jaccard and cosine
// over token sets) plus the schema-agnostic profile comparison QueryER's
// Comparison-Execution applies: the values of all corresponding attributes
// are compared and averaged, with no per-attribute configuration.

#ifndef QUERYER_MATCHING_SIMILARITY_H_
#define QUERYER_MATCHING_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace queryer {

/// \brief Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro-Winkler similarity: Jaro boosted by up to 4 chars of common
/// prefix with scaling factor `prefix_scale` (standard 0.1).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// \brief Levenshtein edit distance.
std::size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief 1 - distance / max(|a|, |b|), in [0, 1].
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// \brief Jaccard similarity of the two token sets.
double JaccardTokenSimilarity(std::string_view a, std::string_view b);

/// \brief Cosine similarity of the two token multisets.
double CosineTokenSimilarity(std::string_view a, std::string_view b);

enum class SimilarityFunction {
  kJaro,
  kJaroWinkler,
  kNormalizedLevenshtein,
  kJaccardTokens,
  kCosineTokens,
};

/// \brief Dispatches to the chosen similarity kernel.
double ComputeSimilarity(SimilarityFunction fn, std::string_view a,
                         std::string_view b);

}  // namespace queryer

#endif  // QUERYER_MATCHING_SIMILARITY_H_
