// Comparison-Execution (paper Sec. 6.1(iv)): runs the comparisons that
// survived Meta-Blocking, records matches in the Link Index, and reports
// the executed-comparison count that the paper's evaluation tracks.

#ifndef QUERYER_MATCHING_COMPARISON_EXECUTION_H_
#define QUERYER_MATCHING_COMPARISON_EXECUTION_H_

#include <cstdint>
#include <vector>

#include "common/cancel_context.h"
#include "common/status.h"
#include "matching/link_index.h"
#include "matching/profile_matcher.h"
#include "metablocking/edge_pruning.h"
#include "parallel/thread_pool.h"
#include "storage/table.h"

namespace queryer {

/// \brief Counters of one Comparison-Execution run.
struct ComparisonExecStats {
  /// Comparisons actually evaluated with the similarity function.
  std::size_t executed = 0;
  /// Comparisons skipped because the pair was already linked in LI.
  std::size_t skipped_linked = 0;
  std::size_t matches_found = 0;
};

/// \brief Outcome of the staged (read-only) evaluation used by concurrent
/// query sessions: matches are buffered instead of written, so the caller
/// can publish them to the Link Index in one short exclusive section.
struct StagedComparisons {
  /// Pairs whose profile similarity cleared the matching threshold, in
  /// input order.
  std::vector<Comparison> matched;
  std::size_t executed = 0;
  std::size_t skipped_linked = 0;
};

/// Below this many comparisons the parallel path is not worth its task
/// submission and merge overhead; the sequential loop runs instead.
inline constexpr std::size_t kParallelComparisonThreshold = 256;

/// \brief Executes the comparisons, amending `link_index` with new links.
///
/// A pair already linked in the index is not re-compared (its outcome is
/// known), which is how the LI makes repeated/overlapping queries cheaper.
/// `weights` are the table's attribute-distinctiveness weights (may be
/// null for uniform weighting).
///
/// With a multi-worker `pool` and enough comparisons the run is split into
/// two phases: a parallel read-only phase (EvaluateComparisons) that
/// partitions the comparison list into contiguous chunks and evaluates each
/// chunk against a shared snapshot of the Link Index (no writes), buffering
/// the matches per chunk; then a single exclusive publish that applies the
/// buffered links in chunk order. The resulting clustering — and therefore the query answer,
/// LinkIndex::num_links() and `matches_found` — is identical to the
/// sequential path: pairs the sequential loop skips because an earlier
/// comparison of the same run linked them transitively are no-op merges
/// here. Only `executed` / `skipped_linked` may differ (the parallel phase
/// skips against the snapshot at phase start, so it can evaluate a superset
/// of the sequential pairs).
///
/// `cancel` (optional) is polled every CancelContext::kPollInterval
/// comparisons; on Cancelled/DeadlineExceeded the run stops early with that
/// Status. The parallel path stages its matches and publishes only on
/// success, so a failed parallel run leaves the index untouched; the
/// sequential path writes links as it matches, so comparisons evaluated
/// before the cancel may already be published. That partial publish keeps
/// the index consistent — every published link is a genuine match — and the
/// caller leaves the entities unmarked-resolved, so a later session redoes
/// the remainder. Errors injected at the `er.comparison_chunk` failpoint
/// surface the same way.
Result<ComparisonExecStats> ExecuteComparisons(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, LinkIndex* link_index,
    const AttributeWeights* weights = nullptr, ThreadPool* pool = nullptr,
    const CancelContext* cancel = nullptr);

/// \brief Read-only comparison evaluation against a shared snapshot of
/// `link_index` — the staged half of the concurrent-session protocol.
///
/// Never writes the index: pairs already linked are skipped (counted in
/// `skipped_linked`, consulting a shared snapshot taken per chunk so the
/// skip check stays cheap while concurrent publishers make progress), the
/// rest are evaluated and the matches buffered for the caller to publish
/// with LinkIndex::PublishLinks. Safe to call from any number of sessions
/// while others publish. The skip check is an optimization against a
/// possibly stale snapshot: evaluating an already-linked pair only yields a
/// no-op merge at publish time, so the final clustering is unaffected.
///
/// With a multi-worker `pool` and enough comparisons the chunks run in
/// parallel; `matched` is assembled in chunk order either way, so the
/// staged buffer is deterministic for a given input order.
///
/// `cancel` is polled inside the similarity pass (every
/// CancelContext::kPollInterval comparisons, per chunk); the first failing
/// chunk's Status wins, exactly like ParallelFor's first-error-wins rule,
/// so a cancelled evaluation reports deterministically.
Result<StagedComparisons> EvaluateComparisons(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, const LinkIndex& link_index,
    const AttributeWeights* weights = nullptr, ThreadPool* pool = nullptr,
    const CancelContext* cancel = nullptr);

}  // namespace queryer

#endif  // QUERYER_MATCHING_COMPARISON_EXECUTION_H_
