// Comparison-Execution (paper Sec. 6.1(iv)): runs the comparisons that
// survived Meta-Blocking, records matches in the Link Index, and reports
// the executed-comparison count that the paper's evaluation tracks.

#ifndef QUERYER_MATCHING_COMPARISON_EXECUTION_H_
#define QUERYER_MATCHING_COMPARISON_EXECUTION_H_

#include <cstdint>
#include <vector>

#include "matching/link_index.h"
#include "matching/profile_matcher.h"
#include "metablocking/edge_pruning.h"
#include "storage/table.h"

namespace queryer {

/// \brief Counters of one Comparison-Execution run.
struct ComparisonExecStats {
  /// Comparisons actually evaluated with the similarity function.
  std::size_t executed = 0;
  /// Comparisons skipped because the pair was already linked in LI.
  std::size_t skipped_linked = 0;
  std::size_t matches_found = 0;
};

/// \brief Executes the comparisons, amending `link_index` with new links.
///
/// A pair already linked in the index is not re-compared (its outcome is
/// known), which is how the LI makes repeated/overlapping queries cheaper.
/// `weights` are the table's attribute-distinctiveness weights (may be
/// null for uniform weighting).
ComparisonExecStats ExecuteComparisons(const Table& table,
                                       const std::vector<Comparison>& comparisons,
                                       const MatchingConfig& config,
                                       LinkIndex* link_index,
                                       const AttributeWeights* weights = nullptr);

}  // namespace queryer

#endif  // QUERYER_MATCHING_COMPARISON_EXECUTION_H_
