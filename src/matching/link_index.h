// The Link Index LI_E (paper Sec. 3 / 6.1): persistent, per-table store of
// resolved links.
//
// LI_E starts empty and is amended with the links each query resolves, so
// consecutive queries over the same dirty table get progressively cheaper
// (Fig. 11): an entity whose link-set is already known skips the whole
// blocking/matching pipeline.
//
// Internally a union-find forest with per-cluster circular lists, so both
// AddLink and cluster enumeration are cheap, and the match relation exposed
// to query evaluation is automatically transitively closed.
//
// Concurrency: the index follows an epoch/snapshot reader-writer protocol
// so many query sessions can consult it while others publish links.
//
//  * Every read accessor (AreLinked, Cluster, Representative, IsResolved,
//    ...) takes a shared lock and walks the forest without path halving, so
//    any number of reader threads run concurrently and never rewire parents.
//  * Writers (AddLink, MarkResolved, Reset and the batch publishers) take
//    the exclusive lock; path compression happens only there.
//  * A query session stages the links it resolves in a private buffer and
//    applies them with PublishLinks/MarkResolvedBatch — one short exclusive
//    section per resolution instead of one lock per link.
//  * ReadView pins the shared lock across several reads (a consistent
//    snapshot: no publish can interleave while it is held).
//  * epoch() counts exclusive publications; readers use it as a cheap
//    staleness check.
//
// The final clustering is independent of publish interleaving: clusters are
// the transitive closure of all published links, and re-publishing a link
// whose endpoints were meanwhile connected elsewhere is a no-op merge.

#ifndef QUERYER_MATCHING_LINK_INDEX_H_
#define QUERYER_MATCHING_LINK_INDEX_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace queryer {

/// \brief Write-ahead sink for Link Index mutations (implemented by the
/// persist tier's DurableLinkIndex). Each Append* is called INSIDE the
/// index's exclusive section, BEFORE the in-memory apply, so the log is
/// always a superset of memory-visible state: a crash can lose an applied
/// batch from memory never, a logged-but-unapplied batch at most (replay
/// re-applies it; merges are idempotent). A non-OK return aborts the
/// mutation (thrown as LinkIndexWalError), leaving the index untouched.
class LinkIndexWal {
 public:
  virtual ~LinkIndexWal() = default;
  virtual Status AppendLinks(
      const std::vector<std::pair<EntityId, EntityId>>& links) = 0;
  virtual Status AppendMarks(const std::vector<EntityId>& entities) = 0;
  virtual Status AppendMarkAll() = 0;
  virtual Status AppendReset() = 0;
};

/// \brief Thrown by a Link Index mutator whose WAL append failed. The
/// in-memory index is unchanged; the deduplicator's publish failure path
/// (claim abandonment, orphan adoption) handles it like any other publish
/// fault.
class LinkIndexWalError : public std::runtime_error {
 public:
  explicit LinkIndexWalError(const std::string& what)
      : std::runtime_error(what) {}
};

/// \brief Union-find over the entities of one table, plus "resolved" marks.
/// Thread-safe: reads share, writes exclude (see the file comment).
class LinkIndex {
 public:
  using Link = std::pair<EntityId, EntityId>;

  explicit LinkIndex(std::size_t num_entities);

  std::size_t num_entities() const { return parent_.size(); }

  /// Records that a and b are duplicates (merges their clusters). Returns
  /// true when the clusters were actually merged, false when a and b were
  /// already (transitively) linked.
  bool AddLink(EntityId a, EntityId b);

  /// True when a and b are in the same (transitively closed) cluster.
  bool AreLinked(EntityId a, EntityId b) const;

  /// Alias of AreLinked, kept from the time when only this accessor was
  /// safe under concurrent readers (every read accessor is now).
  bool AreLinkedShared(EntityId a, EntityId b) const { return AreLinked(a, b); }

  /// Canonical cluster id of an entity; equal for all cluster members.
  EntityId Representative(EntityId e) const;

  /// All members of e's cluster, including e itself, in ascending id order.
  std::vector<EntityId> Cluster(EntityId e) const;

  /// e's duplicates: cluster members excluding e.
  std::vector<EntityId> Duplicates(EntityId e) const;

  /// Marks an entity as fully resolved: its link-set is complete and future
  /// queries may reuse it without re-running the ER pipeline.
  void MarkResolved(EntityId e);
  bool IsResolved(EntityId e) const;

  std::size_t num_resolved() const;

  /// Number of recorded duplicate links, counted as Σ (|cluster| - 1) over
  /// clusters — the number of entities that have at least one duplicate
  /// beyond their cluster representative.
  std::size_t num_links() const;

  /// Applies one query's staged link buffer under a single exclusive
  /// section. Returns the number of clusters actually merged (links whose
  /// endpoints were already connected — by this batch or a concurrent
  /// query — are no-op merges), which is what the sequential path counts
  /// as matches.
  std::size_t PublishLinks(const std::vector<Link>& links);

  /// Marks a batch of entities resolved under one exclusive section.
  void MarkResolvedBatch(const std::vector<EntityId>& entities);

  /// Marks every entity resolved (whole-table batch cleaning) under one
  /// exclusive section.
  void MarkAllResolved();

  /// Publication counter: incremented by every exclusive mutation
  /// (AddLink, MarkResolved, Reset, and once per published batch).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Drops all links and marks (fresh index for BA/no-LI experiment arms).
  void Reset();

  /// Attaches (or detaches, with nullptr) the write-ahead sink. Takes the
  /// exclusive lock; attach before serving traffic, detach before the WAL
  /// is destroyed.
  void set_wal(LinkIndexWal* wal);

  /// Recovery-path mutators: apply state replayed from a snapshot or log
  /// WITHOUT notifying the WAL (the records are already durable) and
  /// without failpoints. Entity ids must be < num_entities() — the caller
  /// (DurableLinkIndex::Open) validates against the on-disk record before
  /// applying.
  void RestoreLinks(const std::vector<Link>& links);
  void RestoreMarks(const std::vector<EntityId>& entities);
  void RestoreMarkAll();

  /// Approximate heap footprint in bytes.
  std::size_t MemoryFootprint() const;

  /// \brief Consistent read snapshot: holds the shared lock for its
  /// lifetime, so no publish can interleave between its reads. Keep it
  /// short-lived — writers wait while any view is alive.
  class ReadView {
   public:
    explicit ReadView(const LinkIndex& index)
        : index_(&index), lock_(index.mutex_) {}

    bool AreLinked(EntityId a, EntityId b) const {
      return index_->FindShared(a) == index_->FindShared(b);
    }
    EntityId Representative(EntityId e) const { return index_->FindShared(e); }
    std::vector<EntityId> Cluster(EntityId e) const {
      return index_->ClusterLocked(e);
    }
    bool IsResolved(EntityId e) const { return index_->resolved_[e]; }
    std::size_t num_links() const { return index_->num_links_; }
    std::uint64_t epoch() const { return index_->epoch(); }

   private:
    const LinkIndex* index_;
    std::shared_lock<std::shared_mutex> lock_;
  };

  /// Takes the shared snapshot (cheap: one shared-lock acquisition).
  ReadView SharedSnapshot() const { return ReadView(*this); }

 private:
  friend class ReadView;

  // Writer-side find with path halving; call only under the exclusive lock.
  EntityId Find(EntityId e);
  // Reader-side find without halving; call under the shared lock.
  EntityId FindShared(EntityId e) const;

  // Lock-free internals shared by the public methods and ReadView; callers
  // hold the appropriate lock.
  bool AddLinkLocked(EntityId a, EntityId b);
  void MarkResolvedLocked(EntityId e);
  std::vector<EntityId> ClusterLocked(EntityId e) const;

  // Appends the mutation to the attached WAL (if any); throws
  // LinkIndexWalError on failure. Call under the exclusive lock, before
  // applying the mutation.
  void WalAppendLinks(const std::vector<Link>& links);
  void WalAppendMarks(const std::vector<EntityId>& entities);

  mutable std::shared_mutex mutex_;
  LinkIndexWal* wal_ = nullptr;  // Guarded by mutex_ (exclusive).
  // Union-find parents with union by size; path compression is applied
  // only inside exclusive sections.
  std::vector<EntityId> parent_;
  std::vector<std::uint32_t> cluster_size_;
  // Circular linked list per cluster for O(|cluster|) enumeration.
  std::vector<EntityId> next_in_cluster_;
  std::vector<bool> resolved_;
  std::size_t num_resolved_count_ = 0;
  std::size_t num_links_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace queryer

#endif  // QUERYER_MATCHING_LINK_INDEX_H_
