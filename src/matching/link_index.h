// The Link Index LI_E (paper Sec. 3 / 6.1): persistent, per-table store of
// resolved links.
//
// LI_E starts empty and is amended with the links each query resolves, so
// consecutive queries over the same dirty table get progressively cheaper
// (Fig. 11): an entity whose link-set is already known skips the whole
// blocking/matching pipeline.
//
// Internally a union-find forest with per-cluster circular lists, so both
// AddLink and cluster enumeration are cheap, and the match relation exposed
// to query evaluation is automatically transitively closed.
//
// Concurrency: the index is single-writer. The mutating members (AddLink,
// MarkResolved, Reset) and the path-halving readers (AreLinked, Cluster, ...)
// must stay on one thread. AreLinkedShared is the one exception: it never
// rewires parents, so any number of threads may call it concurrently as long
// as no writer is active — which is exactly the shape of the parallel
// comparison-execution phase (read-only scan, then a single-threaded merge
// of the per-worker link buffers).

#ifndef QUERYER_MATCHING_LINK_INDEX_H_
#define QUERYER_MATCHING_LINK_INDEX_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace queryer {

/// \brief Union-find over the entities of one table, plus "resolved" marks.
class LinkIndex {
 public:
  explicit LinkIndex(std::size_t num_entities);

  std::size_t num_entities() const { return parent_.size(); }

  /// Records that a and b are duplicates (merges their clusters). Returns
  /// true when the clusters were actually merged, false when a and b were
  /// already (transitively) linked.
  bool AddLink(EntityId a, EntityId b);

  /// True when a and b are in the same (transitively closed) cluster.
  bool AreLinked(EntityId a, EntityId b) const;

  /// AreLinked without path halving: safe for concurrent calls from many
  /// threads while no writer mutates the index (see the class comment).
  /// Slightly slower than AreLinked on deep forests; use only in parallel
  /// read-only phases.
  bool AreLinkedShared(EntityId a, EntityId b) const;

  /// Canonical cluster id of an entity; equal for all cluster members.
  EntityId Representative(EntityId e) const;

  /// All members of e's cluster, including e itself, in ascending id order.
  std::vector<EntityId> Cluster(EntityId e) const;

  /// e's duplicates: cluster members excluding e.
  std::vector<EntityId> Duplicates(EntityId e) const;

  /// Marks an entity as fully resolved: its link-set is complete and future
  /// queries may reuse it without re-running the ER pipeline.
  void MarkResolved(EntityId e);
  bool IsResolved(EntityId e) const { return resolved_[e]; }

  std::size_t num_resolved() const { return num_resolved_count_; }

  /// Number of recorded duplicate links, counted as Σ (|cluster| - 1) over
  /// clusters — the number of entities that have at least one duplicate
  /// beyond their cluster representative.
  std::size_t num_links() const { return num_links_; }

  /// Drops all links and marks (fresh index for BA/no-LI experiment arms).
  void Reset();

  /// Approximate heap footprint in bytes.
  std::size_t MemoryFootprint() const;

 private:
  EntityId Find(EntityId e) const;
  EntityId FindShared(EntityId e) const;

  // Union-find parents with union by size; path compression is applied
  // in the non-const Find during AddLink.
  mutable std::vector<EntityId> parent_;
  std::vector<std::uint32_t> cluster_size_;
  // Circular linked list per cluster for O(|cluster|) enumeration.
  std::vector<EntityId> next_in_cluster_;
  std::vector<bool> resolved_;
  std::size_t num_resolved_count_ = 0;
  std::size_t num_links_ = 0;
};

}  // namespace queryer

#endif  // QUERYER_MATCHING_LINK_INDEX_H_
