#include "matching/resolution_coordinator.h"

#include <algorithm>

#include "common/failpoint.h"

namespace queryer {

std::uint64_t ResolutionCoordinator::KeyOf(const Link& link) {
  EntityId lo = std::min(link.first, link.second);
  EntityId hi = std::max(link.first, link.second);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

ResolutionCoordinator::EntityClaim ResolutionCoordinator::ClaimEntities(
    const std::vector<EntityId>& query_entities, const LinkIndex& index) {
  EntityClaim claim;
  // The resolved reads and the claim must be one atomic step: between a
  // separate "is resolved?" check and a later claim, a concurrent session
  // could finish (mark resolved + release), and the stale check would make
  // this session re-resolve the entity — re-running comparisons no serial
  // schedule executes. Lock order is coordinator mutex, then the index's
  // shared lock; nothing locks in the opposite order.
  std::lock_guard<std::mutex> lock(mutex_);
  LinkIndex::ReadView view = index.SharedSnapshot();
  for (EntityId e : query_entities) {
    if (view.IsResolved(e)) {
      ++claim.already_resolved;
    } else if (entities_in_flight_.insert(e).second) {
      claim.claimed.push_back(e);
    } else {
      claim.foreign.push_back(e);
    }
  }
  return claim;
}

void ResolutionCoordinator::ReleaseEntities(
    const std::vector<EntityId>& claimed) {
  if (claimed.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (EntityId e : claimed) entities_in_flight_.erase(e);
  }
  released_.notify_all();
}

void ResolutionCoordinator::AwaitEntities(
    const std::vector<EntityId>& foreign) {
  if (foreign.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  released_.wait(lock, [&] {
    for (EntityId e : foreign) {
      if (entities_in_flight_.count(e) > 0) return false;
    }
    return true;
  });
}

ResolutionCoordinator::ComparisonClaim
ResolutionCoordinator::ClaimComparisons(const std::vector<Link>& comparisons) {
  // Before any claim-table mutation: an injected failure here must leave
  // nothing to clean up (the session fails with zero pairs claimed).
  QUERYER_FAILPOINT_THROW("coordinator.claim_comparisons");
  ComparisonClaim claim;
  claim.owned.reserve(comparisons.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Link& pair : comparisons) {
    std::uint64_t key = KeyOf(pair);
    if (comparisons_in_flight_.insert(key).second) {
      // A fresh claim also adopts a pair a failed session abandoned: the
      // new owner evaluates it, so it must leave the adoption pool.
      comparisons_abandoned_.erase(key);
      claim.owned.push_back(pair);
    } else {
      claim.foreign.push_back(pair);
    }
  }
  return claim;
}

void ResolutionCoordinator::ReleaseComparisons(const std::vector<Link>& owned) {
  // Inert (release must not fail — the claims would be stranded forever);
  // a delay here widens the publish -> release window chaos tests probe.
  QUERYER_FAILPOINT_INERT("coordinator.release");
  if (owned.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Link& pair : owned) comparisons_in_flight_.erase(KeyOf(pair));
  }
  released_.notify_all();
}

void ResolutionCoordinator::AbandonComparisons(const std::vector<Link>& owned) {
  if (owned.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Link& pair : owned) {
      std::uint64_t key = KeyOf(pair);
      comparisons_in_flight_.erase(key);
      comparisons_abandoned_.insert(key);
    }
  }
  released_.notify_all();
}

std::vector<ResolutionCoordinator::Link> ResolutionCoordinator::AwaitComparisons(
    const std::vector<Link>& foreign) {
  std::vector<Link> adopted;
  if (foreign.empty()) return adopted;
  std::unordered_set<std::uint64_t> adopted_keys;
  std::unique_lock<std::mutex> lock(mutex_);
  // The predicate adopts abandoned pairs as a side effect: the check and
  // the re-claim must be one atomic step, or two waiters could both judge
  // a pair adoptable and race for it outside the wait.
  released_.wait(lock, [&] {
    bool settled = true;
    for (const Link& pair : foreign) {
      std::uint64_t key = KeyOf(pair);
      if (adopted_keys.count(key) > 0) continue;  // Already ours.
      if (comparisons_abandoned_.count(key) > 0) {
        // Local bookkeeping first, global claim state last: if an insert
        // throws (bad_alloc), the pair must still be abandoned and
        // unclaimed, not in flight under nobody.
        adopted.push_back(pair);
        adopted_keys.insert(key);
        comparisons_in_flight_.insert(key);
        comparisons_abandoned_.erase(key);
        continue;
      }
      if (comparisons_in_flight_.count(key) > 0) settled = false;
    }
    return settled;
  });
  return adopted;
}

std::size_t ResolutionCoordinator::num_entities_in_flight() {
  std::lock_guard<std::mutex> lock(mutex_);
  return entities_in_flight_.size();
}

std::size_t ResolutionCoordinator::num_comparisons_in_flight() {
  std::lock_guard<std::mutex> lock(mutex_);
  return comparisons_in_flight_.size();
}

std::size_t ResolutionCoordinator::num_comparisons_abandoned() {
  std::lock_guard<std::mutex> lock(mutex_);
  return comparisons_abandoned_.size();
}

}  // namespace queryer
