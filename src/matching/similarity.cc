#include "matching/similarity.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace queryer {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const std::size_t len_a = a.size();
  const std::size_t len_b = b.size();
  const std::size_t match_window =
      std::max<std::size_t>(1, std::max(len_a, len_b) / 2) - 1;

  std::vector<bool> a_matched(len_a, false);
  std::vector<bool> b_matched(len_b, false);

  std::size_t matches = 0;
  for (std::size_t i = 0; i < len_a; ++i) {
    const std::size_t lo = i > match_window ? i - match_window : 0;
    const std::size_t hi = std::min(len_b, i + match_window + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  std::size_t transpositions = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < len_a; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = static_cast<double>(matches);
  const double t = static_cast<double>(transpositions) / 2.0;
  return (m / static_cast<double>(len_a) + m / static_cast<double>(len_b) +
          (m - t) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  const double jaro = JaroSimilarity(a, b);
  std::size_t prefix = 0;
  const std::size_t max_prefix = std::min<std::size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

std::size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, substitution});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const double max_len = static_cast<double>(std::max(a.size(), b.size()));
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) / max_len;
}

double JaccardTokenSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = TokenizeAlnum(a, 1);
  std::vector<std::string> tb = TokenizeAlnum(b, 1);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::sort(ta.begin(), ta.end());
  ta.erase(std::unique(ta.begin(), ta.end()), ta.end());
  std::sort(tb.begin(), tb.end());
  tb.erase(std::unique(tb.begin(), tb.end()), tb.end());
  std::size_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i] == tb[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (ta[i] < tb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(shared) /
         static_cast<double>(ta.size() + tb.size() - shared);
}

double CosineTokenSimilarity(std::string_view a, std::string_view b) {
  std::map<std::string, double> freq_a;
  std::map<std::string, double> freq_b;
  for (auto& t : TokenizeAlnum(a, 1)) freq_a[t] += 1;
  for (auto& t : TokenizeAlnum(b, 1)) freq_b[t] += 1;
  if (freq_a.empty() && freq_b.empty()) return 1.0;
  if (freq_a.empty() || freq_b.empty()) return 0.0;
  double dot = 0;
  for (const auto& [token, count] : freq_a) {
    auto it = freq_b.find(token);
    if (it != freq_b.end()) dot += count * it->second;
  }
  double norm_a = 0;
  for (const auto& [token, count] : freq_a) norm_a += count * count;
  double norm_b = 0;
  for (const auto& [token, count] : freq_b) norm_b += count * count;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double ComputeSimilarity(SimilarityFunction fn, std::string_view a,
                         std::string_view b) {
  switch (fn) {
    case SimilarityFunction::kJaro:
      return JaroSimilarity(a, b);
    case SimilarityFunction::kJaroWinkler:
      return JaroWinklerSimilarity(a, b);
    case SimilarityFunction::kNormalizedLevenshtein:
      return NormalizedLevenshtein(a, b);
    case SimilarityFunction::kJaccardTokens:
      return JaccardTokenSimilarity(a, b);
    case SimilarityFunction::kCosineTokens:
      return CosineTokenSimilarity(a, b);
  }
  return 0.0;
}

}  // namespace queryer
