// Coordination of concurrent resolution transactions over one table.
//
// When several query sessions call QueryEngine::Execute at once, each
// session that meets unresolved entities runs its own Deduplicate pipeline.
// Two sessions with overlapping selections would resolve the same entities
// and execute the same comparisons twice — wasted work, and worse, the
// entity-level interleaving could produce link sets no serial execution of
// the same queries can produce. The coordinator prevents both with two
// claim tables:
//
//  * Entity claims: a session atomically claims the unresolved entities it
//    will resolve. Entities claimed by another in-flight session are left
//    to that session; the claimer later waits for them to be resolved
//    instead of resolving them again. Every entity is therefore resolved by
//    exactly one session, and the resolution order is the claim order — a
//    valid serial schedule.
//
//  * Comparison claims (the comparison-dedup table): sessions resolving
//    different entities can still derive the same comparison pair (each
//    endpoint pulls the pair into its own blocks). A session claims the
//    pairs it will evaluate; pairs already in flight elsewhere are skipped
//    and awaited before the session declares its entities resolved, so a
//    "resolved" mark never precedes the completion of a comparison that
//    could still link the entity.
//
// Deadlock freedom: a session releases all its comparison claims before it
// waits for foreign comparisons, and releases its entity claims before it
// waits for foreign entities. Waits therefore only ever depend on sections
// that complete unconditionally.

#ifndef QUERYER_MATCHING_RESOLUTION_COORDINATOR_H_
#define QUERYER_MATCHING_RESOLUTION_COORDINATOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "matching/link_index.h"

namespace queryer {

/// \brief Claim tables for concurrent resolution transactions on one table.
class ResolutionCoordinator {
 public:
  using Link = LinkIndex::Link;

  /// Outcome of an entity claim.
  struct EntityClaim {
    /// Unresolved entities this session now owns and must resolve.
    std::vector<EntityId> claimed;
    /// Unresolved entities another in-flight session owns; wait for them
    /// with AwaitEntities before reading their clusters.
    std::vector<EntityId> foreign;
    /// Entities whose link-set was already complete at claim time.
    std::size_t already_resolved = 0;
  };

  /// Atomically partitions `query_entities`: entities resolved in `index`
  /// are counted, unclaimed unresolved entities become this session's
  /// (registered in-flight), the rest are foreign. The resolved check and
  /// the claim happen under one lock so a session can never re-resolve an
  /// entity that a concurrent session is completing.
  EntityClaim ClaimEntities(const std::vector<EntityId>& query_entities,
                            const LinkIndex& index);

  /// Removes this session's entity claims and wakes waiters. Call after
  /// the entities were marked resolved in the Link Index, so a subsequent
  /// claimer sees them as resolved rather than unclaimed. On the failure
  /// path (resolution threw), release WITHOUT marking resolved: unlike
  /// comparisons, entity state is re-checkable, so a waiter re-claims the
  /// still-unresolved leftovers by looping ClaimEntities after
  /// AwaitEntities (see Deduplicator::ResolveConcurrent).
  void ReleaseEntities(const std::vector<EntityId>& claimed);

  /// Blocks until none of `foreign` is claimed by any in-flight session.
  /// Callers must then re-claim: a released entity is not necessarily a
  /// resolved one (its owner may have failed).
  void AwaitEntities(const std::vector<EntityId>& foreign);

  /// Outcome of a comparison claim.
  struct ComparisonClaim {
    /// Pairs this session now owns and must evaluate + publish.
    std::vector<Link> owned;
    /// Pairs another in-flight session is evaluating; wait for them with
    /// AwaitComparisons before marking entities resolved.
    std::vector<Link> foreign;
  };

  /// Atomically partitions `comparisons` into owned and foreign pairs.
  ComparisonClaim ClaimComparisons(const std::vector<Link>& comparisons);

  /// Removes this session's comparison claims and wakes waiters. Call
  /// after the pairs' outcomes were published to the Link Index.
  void ReleaseComparisons(const std::vector<Link>& owned);

  /// The failure-path counterpart of ReleaseComparisons: the owner could
  /// not publish the pairs' outcomes (its evaluation threw). The pairs are
  /// parked in the abandoned set, where a session that was awaiting them
  /// adopts and evaluates them itself — a waiter must never declare its
  /// entities resolved on the strength of a comparison nobody ran.
  void AbandonComparisons(const std::vector<Link>& owned);

  /// Blocks until every pair of `foreign` is either published (released by
  /// its owner) or abandoned. Abandoned pairs are atomically re-claimed by
  /// this caller and returned: the caller owns them now and must evaluate,
  /// publish and release (or abandon) them like its own claims. The common
  /// case — no owner failed — returns an empty vector.
  std::vector<Link> AwaitComparisons(const std::vector<Link>& foreign);

  /// Inspection for tests and invariant checks: with no resolution in
  /// flight, all three must be zero — a non-zero count after every session
  /// ended means a claim was stranded by a failure path.
  std::size_t num_entities_in_flight();
  std::size_t num_comparisons_in_flight();
  std::size_t num_comparisons_abandoned();

 private:
  static std::uint64_t KeyOf(const Link& link);

  std::mutex mutex_;
  std::condition_variable released_;
  std::unordered_set<EntityId> entities_in_flight_;
  std::unordered_set<std::uint64_t> comparisons_in_flight_;
  // Pairs whose owner failed before publishing; adopted by the next
  // session that waits on them.
  std::unordered_set<std::uint64_t> comparisons_abandoned_;
};

}  // namespace queryer

#endif  // QUERYER_MATCHING_RESOLUTION_COORDINATOR_H_
