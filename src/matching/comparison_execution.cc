#include "matching/comparison_execution.h"

namespace queryer {

ComparisonExecStats ExecuteComparisons(const Table& table,
                                       const std::vector<Comparison>& comparisons,
                                       const MatchingConfig& config,
                                       LinkIndex* link_index,
                                       const AttributeWeights* weights) {
  ComparisonExecStats stats;
  for (const auto& [a, b] : comparisons) {
    if (link_index->AreLinked(a, b)) {
      ++stats.skipped_linked;
      continue;
    }
    ++stats.executed;
    double similarity =
        ProfileSimilarity(table.row(a), table.row(b), config, weights);
    if (similarity >= config.threshold) {
      link_index->AddLink(a, b);
      ++stats.matches_found;
    }
  }
  return stats;
}

}  // namespace queryer
