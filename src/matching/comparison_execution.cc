#include "matching/comparison_execution.h"

#include "common/failpoint.h"

namespace queryer {

namespace {

Result<ComparisonExecStats> ExecuteComparisonsSequential(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, LinkIndex* link_index,
    const AttributeWeights* weights, const CancelContext* cancel) {
  // The same site as the parallel chunk bodies: a sequential execution is
  // one chunk, so chaos specs behave uniformly across engine widths.
  QUERYER_FAILPOINT("er.comparison_chunk");
  ComparisonExecStats stats;
  std::size_t visited = 0;
  for (const auto& [a, b] : comparisons) {
    if (cancel != nullptr && visited % CancelContext::kPollInterval == 0) {
      QUERYER_RETURN_NOT_OK(cancel->Check());
    }
    ++visited;
    if (link_index->AreLinked(a, b)) {
      ++stats.skipped_linked;
      continue;
    }
    ++stats.executed;
    double similarity =
        ProfileSimilarity(table, a, b, config, weights);
    if (similarity >= config.threshold) {
      link_index->AddLink(a, b);
      ++stats.matches_found;
    }
  }
  return stats;
}

}  // namespace

Result<StagedComparisons> EvaluateComparisons(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, const LinkIndex& link_index,
    const AttributeWeights* weights, ThreadPool* pool,
    const CancelContext* cancel) {
  StagedComparisons staged;
  if (comparisons.empty()) return staged;

  struct ChunkResult {
    std::vector<Comparison> pending;
    std::vector<Comparison> matched;
    std::size_t skipped_linked = 0;
  };
  const bool parallel = pool != nullptr && pool->num_threads() >= 2 &&
                        comparisons.size() >= kParallelComparisonThreshold;
  std::vector<ChunkRange> chunks =
      SplitRange(comparisons.size(), parallel ? pool->num_threads() : 1);
  std::vector<ChunkResult> results(chunks.size());

  Status status = ParallelFor(
      parallel ? pool : nullptr, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        // Injected chunk failures exercise the claim-abandonment path the
        // Deduplicator wraps around this call.
        QUERYER_FAILPOINT("er.comparison_chunk");
        ChunkResult& result = results[chunk];
        // Pass 1, under one shared snapshot per chunk: drop pairs that are
        // already linked. Separated from the similarity pass so the shared
        // lock covers only cheap forest walks and concurrent publishers are
        // not stalled behind string similarity computation.
        {
          LinkIndex::ReadView view = link_index.SharedSnapshot();
          for (std::size_t i = begin; i < end; ++i) {
            const auto& [a, b] = comparisons[i];
            if (view.AreLinked(a, b)) {
              ++result.skipped_linked;
            } else {
              result.pending.emplace_back(a, b);
            }
          }
        }
        // Pass 2, lock-free: evaluate the survivors and buffer the matches.
        // The cancel poll lives here because this pass is where a cold-LI
        // resolution spends its seconds.
        std::size_t evaluated = 0;
        for (const auto& [a, b] : result.pending) {
          if (cancel != nullptr &&
              evaluated % CancelContext::kPollInterval == 0) {
            QUERYER_RETURN_NOT_OK(cancel->Check());
          }
          ++evaluated;
          double similarity =
              ProfileSimilarity(table, a, b, config, weights);
          if (similarity >= config.threshold) result.matched.emplace_back(a, b);
        }
        return Status::OK();
      });
  // First-error-wins (lowest chunk index) from ParallelFor. Nothing was
  // written to the Link Index, so the caller can abandon or retry freely.
  QUERYER_RETURN_NOT_OK(status);

  // Assemble in chunk order: deterministic for a given input order no
  // matter how the chunks were scheduled.
  for (ChunkResult& result : results) {
    staged.executed += result.pending.size();
    staged.skipped_linked += result.skipped_linked;
    staged.matched.insert(staged.matched.end(), result.matched.begin(),
                          result.matched.end());
  }
  return staged;
}

Result<ComparisonExecStats> ExecuteComparisons(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, LinkIndex* link_index,
    const AttributeWeights* weights, ThreadPool* pool,
    const CancelContext* cancel) {
  if (pool == nullptr || pool->num_threads() < 2 ||
      comparisons.size() < kParallelComparisonThreshold) {
    return ExecuteComparisonsSequential(table, comparisons, config, link_index,
                                        weights, cancel);
  }
  // Parallel path: staged read-only evaluation, then one exclusive publish.
  // Matches whose endpoints were linked transitively by an earlier buffered
  // link are no-op merges, so matches_found counts exactly the merges the
  // sequential loop performs.
  QUERYER_ASSIGN_OR_RETURN(
      StagedComparisons staged,
      EvaluateComparisons(table, comparisons, config, *link_index, weights,
                          pool, cancel));
  ComparisonExecStats stats;
  stats.executed = staged.executed;
  stats.skipped_linked = staged.skipped_linked;
  stats.matches_found = link_index->PublishLinks(staged.matched);
  return stats;
}

}  // namespace queryer
