#include "matching/comparison_execution.h"

#include <stdexcept>

namespace queryer {

namespace {

ComparisonExecStats ExecuteComparisonsSequential(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, LinkIndex* link_index,
    const AttributeWeights* weights) {
  ComparisonExecStats stats;
  for (const auto& [a, b] : comparisons) {
    if (link_index->AreLinked(a, b)) {
      ++stats.skipped_linked;
      continue;
    }
    ++stats.executed;
    double similarity =
        ProfileSimilarity(table, a, b, config, weights);
    if (similarity >= config.threshold) {
      link_index->AddLink(a, b);
      ++stats.matches_found;
    }
  }
  return stats;
}

}  // namespace

StagedComparisons EvaluateComparisons(const Table& table,
                                      const std::vector<Comparison>& comparisons,
                                      const MatchingConfig& config,
                                      const LinkIndex& link_index,
                                      const AttributeWeights* weights,
                                      ThreadPool* pool) {
  StagedComparisons staged;
  if (comparisons.empty()) return staged;

  struct ChunkResult {
    std::vector<Comparison> pending;
    std::vector<Comparison> matched;
    std::size_t skipped_linked = 0;
  };
  const bool parallel = pool != nullptr && pool->num_threads() >= 2 &&
                        comparisons.size() >= kParallelComparisonThreshold;
  std::vector<ChunkRange> chunks =
      SplitRange(comparisons.size(), parallel ? pool->num_threads() : 1);
  std::vector<ChunkResult> results(chunks.size());

  Status status = ParallelFor(
      parallel ? pool : nullptr, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ChunkResult& result = results[chunk];
        // Pass 1, under one shared snapshot per chunk: drop pairs that are
        // already linked. Separated from the similarity pass so the shared
        // lock covers only cheap forest walks and concurrent publishers are
        // not stalled behind string similarity computation.
        {
          LinkIndex::ReadView view = link_index.SharedSnapshot();
          for (std::size_t i = begin; i < end; ++i) {
            const auto& [a, b] = comparisons[i];
            if (view.AreLinked(a, b)) {
              ++result.skipped_linked;
            } else {
              result.pending.emplace_back(a, b);
            }
          }
        }
        // Pass 2, lock-free: evaluate the survivors and buffer the matches.
        for (const auto& [a, b] : result.pending) {
          double similarity =
              ProfileSimilarity(table, a, b, config, weights);
          if (similarity >= config.threshold) result.matched.emplace_back(a, b);
        }
        return Status::OK();
      });
  // The bodies only fail by throwing (e.g. bad_alloc); rethrow on the
  // calling thread so the error surfaces exactly as the sequential path's
  // would. Nothing was written to the Link Index.
  if (!status.ok()) throw std::runtime_error(status.ToString());

  // Assemble in chunk order: deterministic for a given input order no
  // matter how the chunks were scheduled.
  for (ChunkResult& result : results) {
    staged.executed += result.pending.size();
    staged.skipped_linked += result.skipped_linked;
    staged.matched.insert(staged.matched.end(), result.matched.begin(),
                          result.matched.end());
  }
  return staged;
}

ComparisonExecStats ExecuteComparisons(const Table& table,
                                       const std::vector<Comparison>& comparisons,
                                       const MatchingConfig& config,
                                       LinkIndex* link_index,
                                       const AttributeWeights* weights,
                                       ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() < 2 ||
      comparisons.size() < kParallelComparisonThreshold) {
    return ExecuteComparisonsSequential(table, comparisons, config, link_index,
                                        weights);
  }
  // Parallel path: staged read-only evaluation, then one exclusive publish.
  // Matches whose endpoints were linked transitively by an earlier buffered
  // link are no-op merges, so matches_found counts exactly the merges the
  // sequential loop performs.
  StagedComparisons staged = EvaluateComparisons(table, comparisons, config,
                                                 *link_index, weights, pool);
  ComparisonExecStats stats;
  stats.executed = staged.executed;
  stats.skipped_linked = staged.skipped_linked;
  stats.matches_found = link_index->PublishLinks(staged.matched);
  return stats;
}

}  // namespace queryer
