#include "matching/comparison_execution.h"

#include <stdexcept>

namespace queryer {

namespace {

ComparisonExecStats ExecuteComparisonsSequential(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, LinkIndex* link_index,
    const AttributeWeights* weights) {
  ComparisonExecStats stats;
  for (const auto& [a, b] : comparisons) {
    if (link_index->AreLinked(a, b)) {
      ++stats.skipped_linked;
      continue;
    }
    ++stats.executed;
    double similarity =
        ProfileSimilarity(table.row(a), table.row(b), config, weights);
    if (similarity >= config.threshold) {
      link_index->AddLink(a, b);
      ++stats.matches_found;
    }
  }
  return stats;
}

ComparisonExecStats ExecuteComparisonsParallel(
    const Table& table, const std::vector<Comparison>& comparisons,
    const MatchingConfig& config, LinkIndex* link_index,
    const AttributeWeights* weights, ThreadPool* pool) {
  struct ChunkResult {
    std::vector<Comparison> matched;
    std::size_t executed = 0;
    std::size_t skipped_linked = 0;
  };
  std::vector<ChunkRange> chunks =
      SplitRange(comparisons.size(), pool->num_threads());
  std::vector<ChunkResult> results(chunks.size());

  // Phase 1: read-only scan. Workers consult the Link Index through the
  // shared (non-halving) path and buffer their matches; no index writes
  // happen until every chunk finished.
  Status status = ParallelFor(
      pool, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ChunkResult& result = results[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const auto& [a, b] = comparisons[i];
          if (link_index->AreLinkedShared(a, b)) {
            ++result.skipped_linked;
            continue;
          }
          ++result.executed;
          double similarity =
              ProfileSimilarity(table.row(a), table.row(b), config, weights);
          if (similarity >= config.threshold) result.matched.emplace_back(a, b);
        }
        return Status::OK();
      });
  // The bodies only fail by throwing (e.g. bad_alloc); rethrow on the
  // calling thread so the error surfaces exactly as the sequential path's
  // would. No index writes happened yet, so the Link Index is untouched.
  if (!status.ok()) throw std::runtime_error(status.ToString());

  // Phase 2: single-threaded merge in chunk order. Matches whose endpoints
  // were linked transitively by an earlier buffered link are no-op merges,
  // so matches_found counts exactly the merges the sequential loop performs.
  ComparisonExecStats stats;
  for (const ChunkResult& result : results) {
    stats.executed += result.executed;
    stats.skipped_linked += result.skipped_linked;
    for (const auto& [a, b] : result.matched) {
      if (link_index->AddLink(a, b)) ++stats.matches_found;
    }
  }
  return stats;
}

}  // namespace

ComparisonExecStats ExecuteComparisons(const Table& table,
                                       const std::vector<Comparison>& comparisons,
                                       const MatchingConfig& config,
                                       LinkIndex* link_index,
                                       const AttributeWeights* weights,
                                       ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() < 2 ||
      comparisons.size() < kParallelComparisonThreshold) {
    return ExecuteComparisonsSequential(table, comparisons, config, link_index,
                                        weights);
  }
  return ExecuteComparisonsParallel(table, comparisons, config, link_index,
                                    weights, pool);
}

}  // namespace queryer
