// Schema-agnostic entity matching (paper Sec. 6.1(iv)): "we compare the
// values of all corresponding attributes between entity pairs ... it
// requires no configuration from the user".
//
// The profile similarity combines two schema-agnostic signals:
//
//  1. Aligned attribute similarity — the mean, over attributes where both
//     entities have a value, of a fuzzy token-set Jaccard: two tokens count
//     as shared when they are equal, when one is a single-letter
//     abbreviation of the other ("e." ~ "entity", "j" ~ "jane"), or when
//     their Jaro-Winkler similarity clears `token_match_threshold` (typos).
//     Purely numeric values compare by equality (string distance between
//     numbers is meaningless).
//
//  2. Whole-profile token cosine — cosine similarity over the token
//     multiset of *all* attribute values, which catches duplicates whose
//     content migrated across attributes (the motivating example's V1/V4,
//     where one record's title is the other's description).
//
// Both signals are weighted by per-attribute *distinctiveness* — the ratio
// of distinct non-empty values to non-empty rows, computed once per table.
// This is the schema-agnostic analogue of a Fellegi-Sunter u-probability:
// agreeing on a near-unique attribute (a title, a phone number) is strong
// evidence; agreeing on a code-list attribute (a country, a state) is weak.
// Without it, low-arity tables (e.g. organisations with only name+country)
// produce false matches whenever the weak attribute agrees.
//
// The profile score is the max of the two signals; a pair matches when the
// score reaches `threshold`. The entity-identifier attribute (the paper's
// e_id) is excluded: it names the row, it does not describe the entity.

#ifndef QUERYER_MATCHING_PROFILE_MATCHER_H_
#define QUERYER_MATCHING_PROFILE_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

#include "matching/similarity.h"
#include "storage/table.h"

namespace queryer {

/// \brief Resolution-function configuration.
struct MatchingConfig {
  /// Token-level string kernel for fuzzy token matching.
  SimilarityFunction function = SimilarityFunction::kJaroWinkler;
  /// Profile similarity at or above this value declares a match.
  double threshold = 0.65;
  /// The cosine signal needs a stricter bar than the aligned signal: two
  /// short values sharing most tokens ("geneva institute" / "turin
  /// institute") reach 2/3 cosine without being the same entity. The
  /// cosine is folded into the profile score scaled by
  /// threshold / cosine_threshold, so one `threshold` check covers both.
  double cosine_threshold = 0.72;
  /// Tokens with kernel similarity >= this are considered the same token.
  double token_match_threshold = 0.88;
  /// Attribute positions excluded from matching (the e_id column; set
  /// automatically by the engine for the column named "id").
  std::vector<std::size_t> excluded_attributes;
};

/// \brief Per-attribute distinctiveness weights of one table (see above).
class AttributeWeights {
 public:
  AttributeWeights() = default;

  /// weight_i = |distinct non-empty values of attribute i| / |non-empty
  /// rows of attribute i| (0 when the attribute is always empty).
  static AttributeWeights Compute(const Table& table);

  /// Restores weights previously produced by Compute (the persist tier's
  /// snapshot loader).
  static AttributeWeights FromWeights(std::vector<double> weights) {
    AttributeWeights w;
    w.weights_ = std::move(weights);
    return w;
  }

  double weight(std::size_t attribute) const {
    return attribute < weights_.size() ? weights_[attribute] : 1.0;
  }
  std::size_t size() const { return weights_.size(); }

 private:
  std::vector<double> weights_;
};

/// \brief Fuzzy token-set similarity of two attribute values (see above).
/// Returns 1 when both are empty, 0 when exactly one is. Comparison is
/// case-insensitive by construction (tokens are lower-cased, numeric
/// parsing ignores case), so callers pass raw values — typically
/// string_views straight out of a table's column dictionaries.
double ValueSimilarity(std::string_view a, std::string_view b,
                       const MatchingConfig& config);

/// \brief Schema-agnostic profile similarity of two entities of one table
/// (see above). Reads attribute values as string_views out of the columnar
/// storage; attributes whose dictionary codes are equal short-circuit to
/// similarity 1 without touching the strings. `weights` may be null
/// (uniform attribute weights).
double ProfileSimilarity(const Table& table, EntityId a, EntityId b,
                         const MatchingConfig& config,
                         const AttributeWeights* weights = nullptr);

/// \brief The same similarity over two ad-hoc value vectors (profiles not
/// backed by a table).
double ProfileSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b,
                         const MatchingConfig& config,
                         const AttributeWeights* weights = nullptr);

/// \brief Convenience predicate: ProfileSimilarity >= config.threshold.
bool ProfilesMatch(const Table& table, EntityId a, EntityId b,
                   const MatchingConfig& config,
                   const AttributeWeights* weights = nullptr);
bool ProfilesMatch(const std::vector<std::string>& a,
                   const std::vector<std::string>& b,
                   const MatchingConfig& config,
                   const AttributeWeights* weights = nullptr);

}  // namespace queryer

#endif  // QUERYER_MATCHING_PROFILE_MATCHER_H_
